// Shared driver for the figure benches. Since the sweep engine landed,
// the grids, captions and paper claims of fig2/fig3/fig4a/fig4bc live in
// ONE place — the figure registry behind `btmf_tool reproduce`
// (src/sweep/src/reproduce.cpp) — and each bench binary is a thin wrapper
// that runs its registered figure, prints the data tables, and reports
// the claim checks. Custom grids (other K, other step counts) are served
// by `btmf_tool sweep` and the core::fig*_table functions.
#pragma once

#include <iostream>
#include <string>

#include "bench_util.h"
#include "btmf/sweep/reproduce.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::bench {

/// Runs registered figure `figure` with bench-standard options (--csv,
/// --cache-dir, --jobs). Returns 0 when every claim passes, 1 otherwise.
inline int run_figure_bench(const std::string& program,
                            const std::string& figure, int argc,
                            const char* const* argv) {
  const sweep::FigureSpec* spec = sweep::find_figure(figure);
  if (spec == nullptr) throw ConfigError("unregistered figure " + figure);

  util::ArgParser parser = make_parser(
      program, spec->title + " [" + spec->paper_ref +
                   "] — thin wrapper over the `btmf_tool reproduce` "
                   "registration");
  parser.add_option("cache-dir", "",
                    "sweep point cache root ('' = uncached)");
  parser.add_option("jobs", "0", "worker threads (0 = shared global pool)");
  if (!parser.parse(argc, argv)) return 0;

  sweep::ReproduceOptions options;
  options.cache_dir = parser.get("cache-dir");
  const long long jobs = parser.get_int("jobs");
  if (jobs < 0) throw ConfigError("--jobs must be >= 0");
  options.jobs = static_cast<std::size_t>(jobs);

  const sweep::FigureReport report = spec->run(options);
  const std::string csv = parser.get("csv");
  for (std::size_t i = 0; i < report.tables.size(); ++i) {
    std::string path = csv;
    if (!path.empty() && report.tables.size() > 1) {
      path += '.';
      path += std::to_string(i + 1);
      path += ".csv";
    }
    emit(report.tables[i].second, report.tables[i].first, path);
  }
  std::cout << '\n';
  for (const sweep::Claim& claim : report.claims) {
    std::cout << (claim.pass ? "PASS  " : "FAIL  ") << claim.id << " — "
              << claim.description << '\n';
  }
  std::cout << "(" << report.stats.points << " points: "
            << report.stats.cache_hits << " cached, "
            << report.stats.cache_misses << " computed in "
            << util::format_double(report.stats.seconds, 3) << " s)\n";
  return report.all_pass() ? 0 : 1;
}

}  // namespace btmf::bench
