// Shared plumbing for the figure-reproduction benches: every binary
// prints a caption, the figure's data as an aligned table, and (with
// --csv <path>) saves the same data for replotting.
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "btmf/util/cli.h"
#include "btmf/util/stopwatch.h"
#include "btmf/util/table.h"

namespace btmf::bench {

/// Peak resident-set size (VmHWM) of this process in bytes, read from
/// /proc/self/status. Returns 0 where procfs is unavailable, so callers
/// can print "n/a" instead of a lie.
inline std::size_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%zu", &kib);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

/// Resets the kernel's peak-RSS water mark (writes "5" to
/// /proc/self/clear_refs) so per-phase peaks can be measured in one
/// process. Returns false when the platform refuses; peak_rss_bytes()
/// then reports the process-lifetime high water mark instead.
inline bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
}

inline void emit(const util::Table& table, const std::string& caption,
                 const std::string& csv_path) {
  std::cout << "\n== " << caption << " ==\n\n";
  table.write_pretty(std::cout);
  if (!csv_path.empty()) {
    table.save_csv(csv_path);
    std::cout << "\n(csv saved to " << csv_path << ")\n";
  }
}

/// Standard option set shared by all table benches.
inline util::ArgParser make_parser(const std::string& name,
                                   const std::string& summary) {
  util::ArgParser parser(name, summary);
  parser.add_option("csv", "", "also save the table as CSV to this path");
  return parser;
}

}  // namespace btmf::bench
