// Shared plumbing for the figure-reproduction benches: every binary
// prints a caption, the figure's data as an aligned table, and (with
// --csv <path>) saves the same data for replotting.
#pragma once

#include <iostream>
#include <string>

#include "btmf/util/cli.h"
#include "btmf/util/stopwatch.h"
#include "btmf/util/table.h"

namespace btmf::bench {

inline void emit(const util::Table& table, const std::string& caption,
                 const std::string& csv_path) {
  std::cout << "\n== " << caption << " ==\n\n";
  table.write_pretty(std::cout);
  if (!csv_path.empty()) {
    table.save_csv(csv_path);
    std::cout << "\n(csv saved to " << csv_path << ")\n";
  }
}

/// Standard option set shared by all table benches.
inline util::ArgParser make_parser(const std::string& name,
                                   const std::string& summary) {
  util::ArgParser parser(name, summary);
  parser.add_option("csv", "", "also save the table as CSV to this path");
  return parser;
}

}  // namespace btmf::bench
