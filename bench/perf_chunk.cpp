// Flash-crowd piece-selection experiment on the chunk substrate.
//
// Probes the RFwPMS claim (arXiv 2211.00213): under a seed-scarce flash
// crowd, local rarest-first herds every peer onto the same availability
// tier, while probabilistic mode suppression deliberately spreads picks
// across tiers. The paper argues suppression stabilises the missing-piece
// regime; this experiment measures what each policy actually buys on our
// substrate — mean download time, crowd drain (peak population and the
// time-averaged backlog it leaves), realised sharing efficiency, and the
// idle-uploader fraction that rarest-first exists to minimise.
//
// The scenario is deliberately hostile: one initial seed, a cold C = 64
// torrent, a flash crowd of class-K users injected at t = 0, and a trickle
// of Poisson arrivals behind them. Rows average over a few RNG seeds so a
// single lucky optimistic unchoke cannot decide the table. `--json <path>`
// records the rows for regression tracking against the committed
// BENCH_chunk.json baseline; `--smoke` shrinks the run for CI.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/sim/chunk_sim.h"
#include "btmf/util/stopwatch.h"

namespace {

struct Row {
  std::string label;
  btmf::sim::PiecePolicy policy;
  double suppression;
};

struct Averages {
  double download = 0.0;
  double peak = 0.0;
  double backlog = 0.0;
  double eta = 0.0;
  double idle = 0.0;
  std::size_t completed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "perf_chunk",
      "Flash-crowd piece-selection ablation: rarest-first vs random vs "
      "RFwPMS mode suppression");
  parser.add_option("chunks", "64", "chunks per file C");
  parser.add_option("entry-rate", "0.25", "trickle arrival rate behind the crowd");
  parser.add_option("gamma", "0.25", "seed departure rate (hot = scarce seeds)");
  parser.add_option("flash-crowd", "60", "users injected at t = 0");
  parser.add_option("horizon", "1500", "simulated time per run");
  parser.add_option("seeds", "3", "RNG seeds averaged per row");
  parser.add_option("suppression", "0.9", "mode-suppression probability");
  parser.add_option("json", "", "also dump rows as JSON to this path");
  parser.add_flag("smoke", "CI-sized run: fewer seeds, shorter horizon");
  if (!parser.parse(argc, argv)) return 0;

  const bool smoke = parser.get_flag("smoke");
  const int num_seeds =
      smoke ? 1 : static_cast<int>(parser.get_int("seeds"));
  const double horizon =
      smoke ? 800.0 : parser.get_double("horizon");

  const std::vector<Row> rows{
      {"rarest-first", sim::PiecePolicy::kRarestFirst, 0.0},
      {"random", sim::PiecePolicy::kRandom, 0.0},
      {"mode-suppression", sim::PiecePolicy::kModeSuppression,
       parser.get_double("suppression")},
  };

  util::Table table({"policy", "mean dl time", "peak peers", "avg backlog",
                     "eta_hat", "idle frac", "users done", "wall s"});
  table.set_precision(3);
  std::vector<std::string> json_rows;

  for (const Row& row : rows) {
    Averages avg;
    util::Stopwatch timer;
    for (int s = 0; s < num_seeds; ++s) {
      sim::ChunkSimConfig config;
      config.num_chunks = static_cast<unsigned>(parser.get_int("chunks"));
      config.entry_rate = parser.get_double("entry-rate");
      config.fluid.gamma = parser.get_double("gamma");
      config.policy = row.policy;
      config.suppression_prob = row.suppression;
      config.initial_seeds = 1;
      config.flash_crowd =
          static_cast<unsigned>(parser.get_int("flash-crowd"));
      config.horizon = horizon;
      config.warmup = 0.0;  // the crowd IS the experiment — measure it all
      config.seed = static_cast<std::uint64_t>(s + 1);
      const sim::ChunkSimResult r = sim::run_chunk_sim(config);
      avg.download += r.mean_download_time;
      avg.peak += r.peak_downloaders;
      avg.backlog += r.avg_downloaders;
      avg.eta += r.emergent_eta;
      avg.idle += r.idle_fraction;
      avg.completed += r.completed_peers;
    }
    const double wall = timer.seconds();
    const double n = static_cast<double>(num_seeds);
    avg.download /= n;
    avg.peak /= n;
    avg.backlog /= n;
    avg.eta /= n;
    avg.idle /= n;

    table.add_row({row.label, avg.download, avg.peak, avg.backlog, avg.eta,
                   avg.idle, static_cast<double>(avg.completed), wall});

    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"policy\": \"%s\", \"mean_download\": %.3f, "
                  "\"peak_downloaders\": %.1f, \"avg_backlog\": %.2f, "
                  "\"eta_hat\": %.4f, \"idle_fraction\": %.4f, "
                  "\"completed\": %zu}",
                  row.label.c_str(), avg.download, avg.peak, avg.backlog,
                  avg.eta, avg.idle, avg.completed);
    json_rows.emplace_back(buf);
  }

  bench::emit(table,
              "Flash crowd (1 seed, C = 64): piece-selection policies",
              parser.get("csv"));
  std::printf(
      "\nReading: rarest-first should post the lowest download time and\n"
      "idle fraction; mode suppression trades both for tier spread (its\n"
      "win is variance under missing-piece death, not the mean).\n");

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    out << "]\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }
  return 0;
}
