// Evaluation of the Adapt mechanism (paper Sec. 4.3) — the paper proposes
// it and explicitly leaves its systematic evaluation to future work; this
// bench provides that evaluation.
//
// Table 1: Adapt vs fixed-rho baselines across cheater fractions. The
// prediction to confirm: with few cheaters Adapt keeps the system near
// the generous rho = 0 optimum; as cheaters take over, obedient peers
// self-protect (mean rho climbs toward 1) and the system degenerates
// toward MFCD-like performance — but the obedient peers are no longer
// exploited.
//
// Table 2: sensitivity to the Adapt knobs (phi dead band, step sizes).
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/sim/simulator.h"

namespace {

btmf::sim::SimConfig base_config(const btmf::util::ArgParser& parser) {
  btmf::sim::SimConfig config;
  config.scheme = btmf::fluid::SchemeKind::kCmfsd;
  config.num_files = static_cast<unsigned>(parser.get_int("k"));
  config.correlation = parser.get_double("p");
  config.visit_rate = 1.0;
  config.horizon = parser.get_double("horizon");
  config.warmup = config.horizon * 0.3;
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  return config;
}

double mean_final_rho(const btmf::sim::ReplicationSummary& summary,
                      unsigned num_classes) {
  // Average the per-class departure rho over multi-file classes.
  double sum = 0.0;
  unsigned n = 0;
  for (unsigned k = 1; k < num_classes; ++k) {
    sum += summary.class_mean_final_rho[k];
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "adapt_ablation", "Adapt mechanism evaluation under cheating peers");
  parser.add_option("k", "5", "number of files K");
  parser.add_option("p", "0.9", "file correlation");
  parser.add_option("horizon", "3500", "simulated time per run");
  parser.add_option("reps", "3", "replications per cell");
  parser.add_option("seed", "77", "master RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const auto reps = static_cast<std::size_t>(parser.get_int("reps"));
  const unsigned k = static_cast<unsigned>(parser.get_int("k"));

  // ---- Table 1: Adapt vs fixed rho across cheater fractions -----------
  util::Table table({"cheater frac", "policy", "online/file (obedient avg)",
                     "stderr", "mean final rho"});
  table.set_precision(4);
  for (const double cheaters : {0.0, 0.2, 0.5, 0.8}) {
    for (const std::string& policy :
         {std::string("adapt"), std::string("rho=0"), std::string("rho=1")}) {
      sim::SimConfig config = base_config(parser);
      config.cheater_fraction = cheaters;
      if (policy == "adapt") {
        config.adapt.enabled = true;
      } else {
        config.rho = policy == "rho=0" ? 0.0 : 1.0;
      }
      const sim::ReplicationSummary summary =
          sim::run_replications(config, reps);
      table.add_row({cheaters, policy, summary.mean_online_per_file,
                     summary.stderr_online_per_file,
                     policy == "adapt" ? mean_final_rho(summary, k) : -1.0});
    }
  }
  bench::emit(table, "Adapt vs fixed rho across cheater fractions",
              parser.get("csv"));

  // ---- Table 2: Adapt parameter sensitivity ---------------------------
  struct Knobs {
    std::string label;
    double phi;    // symmetric dead band half-width
    double step;   // v1 = v2
    unsigned consecutive;
  };
  const std::vector<Knobs> grid{
      {"phi=0.0025 step=0.1 n=2", 0.0025, 0.1, 2},
      {"phi=0.005  step=0.1 n=2", 0.005, 0.1, 2},
      {"phi=0.01   step=0.1 n=2", 0.01, 0.1, 2},
      {"phi=0.005  step=0.05 n=2", 0.005, 0.05, 2},
      {"phi=0.005  step=0.25 n=2", 0.005, 0.25, 2},
      {"phi=0.005  step=0.1 n=1", 0.005, 0.1, 1},
      {"phi=0.005  step=0.1 n=4", 0.005, 0.1, 4},
  };
  util::Table knobs_table({"knobs", "online/file (cheaters=0.5)",
                           "mean final rho"});
  knobs_table.set_precision(4);
  for (const Knobs& knobs : grid) {
    sim::SimConfig config = base_config(parser);
    config.cheater_fraction = 0.5;
    config.adapt.enabled = true;
    config.adapt.phi_lo = -knobs.phi;
    config.adapt.phi_hi = knobs.phi;
    config.adapt.step_up = knobs.step;
    config.adapt.step_down = knobs.step;
    config.adapt.consecutive = knobs.consecutive;
    const sim::ReplicationSummary summary =
        sim::run_replications(config, reps);
    knobs_table.add_row({knobs.label, summary.mean_online_per_file,
                         mean_final_rho(summary, k)});
  }
  bench::emit(knobs_table, "Adapt knob sensitivity (phi_1/2, v_1/2, streak)",
              parser.get("csv").empty() ? "" : parser.get("csv") + ".knobs.csv");

  // ---- rho trajectory under a cheater majority -------------------------
  sim::SimConfig config = base_config(parser);
  config.cheater_fraction = 0.8;
  config.adapt.enabled = true;
  const sim::SimResult run = sim::run_simulation(config);
  util::Table trajectory({"t", "mean rho (obedient peers)"});
  trajectory.set_precision(4);
  const std::size_t stride =
      std::max<std::size_t>(1, run.rho_trajectory_time.size() / 24);
  for (std::size_t s = 0; s < run.rho_trajectory_time.size(); s += stride) {
    trajectory.add_row(
        {run.rho_trajectory_time[s], run.rho_trajectory_mean[s]});
  }
  bench::emit(trajectory,
              "Obedient-peer rho trajectory with 80% cheaters (one run)",
              parser.get("csv").empty() ? ""
                                        : parser.get("csv") + ".traj.csv");
  return 0;
}
