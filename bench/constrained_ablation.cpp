// Audit of the paper's two Sec. 2 simplifications (extension).
//
// Table 1 — the "download bandwidth much larger than upload" assumption:
// sweep the per-peer download cap c around the critical value
// c* = gamma mu eta/(gamma - mu) and report the single-torrent download
// time from the closed form and from the agent-level simulator. The
// punchline: at the paper's constants c* = 0.83 mu, so the assumption
// costs nothing as long as peers can download merely as fast as they
// upload.
//
// Table 2 — downloader impatience theta: the classic theta-extension
// treats aborting peers' partial progress as transferable; the
// abort-aware fixed point (and the simulator) waste it. The table
// quantifies how optimistic the classic model is as theta grows.
#include <cmath>

#include "bench_util.h"
#include "btmf/fluid/extended.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/strings.h"

namespace {

btmf::sim::SimResult run_single_torrent(double download_bw,
                                        double abort_rate, double horizon,
                                        std::uint64_t seed) {
  btmf::sim::SimConfig c;
  c.scheme = btmf::fluid::SchemeKind::kMtsd;  // K = 1: plain torrent
  c.num_files = 1;
  c.correlation = 1.0;
  c.visit_rate = 1.0;
  c.download_bw = download_bw;
  c.abort_rate = abort_rate;
  c.horizon = horizon;
  c.warmup = horizon * 0.25;
  c.seed = seed;
  return btmf::sim::run_simulation(c);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "constrained_ablation",
      "download-bandwidth and abort-rate audits of the fluid assumptions");
  parser.add_option("horizon", "4000", "simulated time per point");
  parser.add_option("seed", "17", "RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const double horizon = parser.get_double("horizon");
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  const double c_star =
      fluid::critical_download_bandwidth(fluid::kPaperParams);
  std::cout << "critical download bandwidth c* = "
            << util::format_double(c_star, 6) << " = "
            << util::format_double(c_star / fluid::kPaperParams.mu, 4)
            << " x mu\n";

  util::Table bw_table({"c / mu", "regime", "fluid dl time", "sim dl time",
                        "fluid downloaders", "sim downloaders"});
  bw_table.set_precision(4);
  for (const double ratio : {0.25, 0.5, 0.75, 0.8333, 0.9, 1.0, 2.0, 10.0}) {
    fluid::ExtendedParams params;
    params.download_bw = ratio * fluid::kPaperParams.mu;
    const fluid::ExtendedEquilibrium eq =
        fluid::extended_single_torrent_equilibrium(params, 1.0);
    const sim::SimResult r =
        run_single_torrent(params.download_bw, 0.0, horizon, seed);
    bw_table.add_row({ratio,
                      std::string(eq.download_constrained ? "download-bound"
                                                          : "upload-bound"),
                      eq.download_time, r.classes[0].mean_download_per_file,
                      eq.downloaders, r.classes[0].avg_downloaders});
  }
  bench::emit(bw_table, "Download-bandwidth sweep (single torrent, theta=0)",
              parser.get("csv").empty() ? "" : parser.get("csv") + ".bw.csv");

  util::Table theta_table({"theta", "classic dl time", "abort-aware dl time",
                           "sim dl time", "classic compl. frac",
                           "abort-aware compl. frac", "sim compl. frac"});
  theta_table.set_precision(4);
  for (const double theta :
       {1.0 / 480.0, 1.0 / 240.0, 1.0 / 120.0, 1.0 / 60.0}) {
    fluid::ExtendedParams params;
    params.abort_rate = theta;
    const fluid::ExtendedEquilibrium classic =
        fluid::extended_single_torrent_equilibrium(params, 1.0);
    const fluid::ExtendedEquilibrium aware =
        fluid::abort_aware_single_torrent_equilibrium(params, 1.0);
    const sim::SimResult r = run_single_torrent(
        std::numeric_limits<double>::infinity(), theta, horizon, seed);
    const double total =
        static_cast<double>(r.total_users + r.aborted_users);
    theta_table.add_row(
        {theta, classic.download_time, aware.download_time,
         r.classes[0].mean_download_per_file, classic.completion_fraction,
         aware.completion_fraction,
         total > 0.0 ? static_cast<double>(r.total_users) / total : 0.0});
  }
  bench::emit(theta_table,
              "Abort-rate sweep: transferable vs wasted partial progress",
              parser.get("csv").empty() ? ""
                                        : parser.get("csv") + ".theta.csv");
  return 0;
}
