// Model validation (paper Sec. 3.3's correctness argument, extended):
//  (a) with K = 1 every multi-file scheme reduces to the Qiu–Srikant
//      single-torrent result T + 1/gamma = 80;
//  (b) CMFSD at rho = 1 reproduces the MFCD per-file download time for
//      every correlation p — the analytic identity derived in cmfsd.h,
//      here confirmed by the numerical steady-state solver.
#include <vector>

#include "bench_util.h"
#include "btmf/core/experiments.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "validation_degenerate",
      "Degenerate-case and identity checks for every fluid model");
  parser.add_option("k", "10", "number of files K for the identity sweep");
  if (!parser.parse(argc, argv)) return 0;

  core::ScenarioConfig base;
  base.num_files = static_cast<unsigned>(parser.get_int("k"));
  const std::vector<double> ps{0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

  util::Table table = core::validation_table(base, ps);
  table.set_precision(10);
  bench::emit(table, "Model validation — degeneracies and identities",
              parser.get("csv"));
  return 0;
}
