// google-benchmark micro-benchmarks for the numerical kernels: how the
// CMFSD steady-state solve scales with K, and RK45 vs RK4 vs Newton cost
// on the same system. These guard against performance regressions in the
// sweep-heavy benches (fig4a solves 110 cells).
#include <benchmark/benchmark.h>

#include <vector>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/math/newton.h"
#include "btmf/math/ode.h"

namespace {

using namespace btmf;

fluid::CmfsdModel make_model(unsigned k, double rho) {
  const fluid::CorrelationModel corr(k, 0.7, 1.0);
  return {fluid::kPaperParams, corr.system_entry_rates(), rho};
}

void BM_CmfsdSolve(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const fluid::CmfsdModel model = make_model(k, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve().residual_inf);
  }
  state.SetLabel("states=" + std::to_string(model.state_size()));
}
BENCHMARK(BM_CmfsdSolve)->Arg(5)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_CmfsdRhsEval(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const fluid::CmfsdModel model = make_model(k, 0.3);
  const math::OdeRhs rhs = model.rhs();
  std::vector<double> y(model.state_size(), 10.0);
  std::vector<double> dy(model.state_size());
  for (auto _ : state) {
    rhs(0.0, y, dy);
    benchmark::DoNotOptimize(dy.data());
  }
}
BENCHMARK(BM_CmfsdRhsEval)->Arg(10)->Arg(40);

void BM_Dopri5Transient(benchmark::State& state) {
  const fluid::CmfsdModel model = make_model(10, 0.3);
  const math::OdeRhs rhs = model.rhs();
  math::AdaptiveOptions options;
  options.rtol = 1e-8;
  options.atol = 1e-10;
  for (auto _ : state) {
    auto r = math::integrate_dopri5(
        rhs, std::vector<double>(model.state_size(), 0.0), 0.0, 2000.0,
        options);
    benchmark::DoNotOptimize(r.y.data());
  }
}
BENCHMARK(BM_Dopri5Transient)->Unit(benchmark::kMillisecond);

void BM_Rk4FixedTransient(benchmark::State& state) {
  const fluid::CmfsdModel model = make_model(10, 0.3);
  const math::OdeRhs rhs = model.rhs();
  for (auto _ : state) {
    auto y = math::integrate_fixed(
        rhs, std::vector<double>(model.state_size(), 0.0), 0.0, 2000.0, 1.0,
        math::FixedStepMethod::kRk4);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Rk4FixedTransient)->Unit(benchmark::kMillisecond);

void BM_NewtonPolish(benchmark::State& state) {
  // Newton from a near-equilibrium start (the role it plays in solve()).
  const fluid::CmfsdModel model = make_model(10, 0.3);
  const auto eq = model.solve();
  std::vector<double> start = eq.state;
  for (double& v : start) v *= 1.05;
  const math::OdeRhs rhs = model.rhs();
  const math::VectorField field = [&rhs](std::span<const double> x,
                                         std::span<double> out) {
    rhs(0.0, x, out);
  };
  for (auto _ : state) {
    auto r = math::newton_solve(field, start);
    benchmark::DoNotOptimize(r.residual_inf);
  }
}
BENCHMARK(BM_NewtonPolish)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
