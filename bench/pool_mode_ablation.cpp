// Ablation of the CMFSD seed-pool assumption (not in the paper).
//
// The fluid model's S^{i,j} term implicitly assumes virtual-seed and
// real-seed bandwidth is *transferable*: one global pool shared by every
// downloader of the torrent. A literal implementation serves one
// subtorrent per virtual seed. This bench quantifies the gap:
//  * kGlobal            — the fluid assumption (baseline);
//  * kSubtorrentLocal   — random completed file per stage; at rho = 0
//    this convoy-collapses (a starved subtorrent cannot be helped by the
//    peers stuck inside it, and rho = 0 removes their mutual TFT);
//  * kSubtorrentDemandAware — donors re-target the most backlogged
//    completed subtorrent every rate epoch; recovers the global pool at
//    moderate rho but still cannot rescue rho = 0.
//
// Practical reading: the paper's "set rho = 0" recommendation needs
// either chunk-level transferability or a floor rho > 0 in deployment.
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "pool_mode_ablation",
      "CMFSD global vs per-subtorrent virtual seeding (Little's-law view)");
  parser.add_option("k", "5", "number of files K");
  parser.add_option("p", "0.9", "file correlation");
  parser.add_option("horizon", "3000", "simulated time per run");
  parser.add_option("reps", "3", "replications per cell");
  parser.add_option("seed", "31", "master RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const auto reps = static_cast<std::size_t>(parser.get_int("reps"));
  const unsigned k = static_cast<unsigned>(parser.get_int("k"));

  const std::vector<std::pair<std::string, sim::SeedPoolMode>> modes{
      {"global (fluid)", sim::SeedPoolMode::kGlobal},
      {"local random", sim::SeedPoolMode::kSubtorrentLocal},
      {"local demand-aware", sim::SeedPoolMode::kSubtorrentDemandAware},
  };

  util::Table table({"rho", "pool mode", "little online/file (class K)",
                     "censored frac"});
  table.set_precision(4);
  for (const double rho : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    for (const auto& [label, mode] : modes) {
      sim::SimConfig config;
      config.scheme = fluid::SchemeKind::kCmfsd;
      config.num_files = k;
      config.correlation = parser.get_double("p");
      config.visit_rate = 1.0;
      config.rho = rho;
      config.seed_pool = mode;
      config.horizon = parser.get_double("horizon");
      config.warmup = config.horizon * 0.25;
      config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
      const sim::ReplicationSummary summary =
          sim::run_replications(config, reps);
      double censored = 0.0;
      double arrivals = 0.0;
      for (const sim::SimResult& run : summary.runs) {
        censored += static_cast<double>(run.censored_users);
        arrivals +=
            static_cast<double>(run.total_users + run.censored_users);
      }
      table.add_row({rho, label, summary.class_little_online[k - 1],
                     arrivals > 0.0 ? censored / arrivals : 0.0});
    }
  }
  bench::emit(table,
              "Seed-pool transferability ablation (K=" + std::to_string(k) +
                  ", p=" + parser.get("p") + ")",
              parser.get("csv"));
  return 0;
}
