// Typed-demand traffic matrix on the backend seam.
//
// Walks demand shapes (homogeneous Poisson, diurnal sinusoid, a
// flash-pulse train, and a two-speed bandwidth-class mix) across the
// backends that evaluate time-varying or heterogeneous traffic
// (fluid-transient, kernel-sim, stochastic-epidemic) and records the
// headline download time plus the wall cost of each cell. Two things are
// being guarded:
//
//  * correctness drift — the demand cells' headline numbers are tracked
//    against the committed BENCH_traffic.json baseline, so a thinning or
//    service-lane regression that shifts results shows up in review;
//  * the homogeneous tax — the Poisson rows measure the same scenarios
//    the repo ran before the demand model existed, so their wall time is
//    the price every legacy run pays for the new code paths (it should
//    be zero: the homogeneous fast paths skip the thinning draw and the
//    class lanes collapse to B = 1).
//
// Unsupported (backend x demand) cells are printed as typed refusals —
// the same contract the conformance matrix enforces — never skipped
// silently. `--smoke` shrinks horizons and replications for CI;
// `--json <path>` dumps the rows for regression tracking.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/fluid/demand.h"
#include "btmf/fluid/schemes.h"
#include "btmf/model/backend.h"
#include "btmf/util/stopwatch.h"

namespace {

struct DemandRow {
  std::string label;
  std::string arrival;  ///< parse_arrival grammar; "poisson" = homogeneous
  std::string classes;  ///< parse_classes grammar; "" = one population
};

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "perf_traffic",
      "Typed-demand matrix: arrival processes and bandwidth classes "
      "across fluid-transient, kernel-sim and stochastic-epidemic");
  parser.add_option("k", "5", "number of files K");
  parser.add_option("p", "0.7", "file correlation p");
  parser.add_option("horizon", "6000", "simulated end time per cell");
  parser.add_option("ereps", "8", "stochastic-epidemic replications");
  parser.add_option("json", "", "also dump rows as JSON to this path");
  parser.add_flag("smoke", "CI-sized run: shorter horizon, fewer reps");
  if (!parser.parse(argc, argv)) return 0;

  const bool smoke = parser.get_flag("smoke");
  const double horizon = smoke ? 2000.0 : parser.get_double("horizon");
  const unsigned ereps =
      smoke ? 4 : static_cast<unsigned>(parser.get_int("ereps"));

  const std::vector<DemandRow> demands{
      {"poisson", "poisson", ""},
      {"diurnal", "diurnal,0.5,400,0", ""},
      {"flash-train", "flash,0,50,5,400,3", ""},
      {"two-speed classes", "poisson", "1,0.6,0|1,1.4,0"},
  };
  const std::vector<std::string> backends{
      "fluid-transient", "kernel-sim", "stochastic-epidemic"};

  util::Table table({"demand", "backend", "avg dl/file", "wall s"});
  table.set_precision(4);
  std::vector<std::string> json_rows;

  for (const DemandRow& demand : demands) {
    for (const std::string& name : backends) {
      model::ScenarioSpec spec;
      spec.num_files = static_cast<unsigned>(parser.get_int("k"));
      spec.correlation = parser.get_double("p");
      spec.scheme = fluid::SchemeKind::kMtcd;
      spec.horizon = horizon;
      spec.warmup = horizon / 4.0;
      spec.seed = 42;
      spec.epidemic_replications = ereps;
      spec.arrival = fluid::parse_arrival(demand.arrival);
      spec.bandwidth_classes = fluid::parse_classes(demand.classes);

      util::Stopwatch timer;
      const model::Outcome outcome =
          model::require_backend(name).evaluate(spec);
      const double wall = timer.seconds();

      if (outcome.ok()) {
        table.add_row(
            {demand.label, name, outcome.avg_download_per_file, wall});
      } else {
        table.add_row({demand.label, name + " (unsupported)", 0.0, wall});
      }

      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "{\"demand\": \"%s\", \"backend\": \"%s\", "
                    "\"supported\": %s, \"avg_download_per_file\": %.4f}",
                    demand.label.c_str(), name.c_str(),
                    outcome.ok() ? "true" : "false",
                    outcome.ok() ? outcome.avg_download_per_file : 0.0);
      json_rows.emplace_back(buf);
    }
  }

  bench::emit(table,
              "Typed demand matrix (MTCD, K = " + parser.get("k") +
                  ", p = " + parser.get("p") + ")",
              parser.get("csv"));
  std::printf(
      "\nReading: the three backends should agree on each supported demand\n"
      "column within Monte-Carlo tolerance, and the poisson rows cost what\n"
      "they cost before the demand model existed (the homogeneous fast\n"
      "paths skip thinning and collapse the class lanes).\n");

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    out << "]\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }
  return 0;
}
