// Reproduces Figure 2: average online time per file vs file correlation p
// under MTCD and MTSD (K = 10, mu = 0.02, eta = 0.5, gamma = 0.05).
//
// Paper shape: MTSD is flat at 80; MTCD matches it at p -> 0 and degrades
// monotonically to 98 at p = 1 (~22% worse). The grid and claim checks
// live in the `btmf_tool reproduce` registry; see fig_common.h.
#include "fig_common.h"

int main(int argc, char** argv) {
  return btmf::bench::run_figure_bench("fig2_mtcd_vs_mtsd", "fig2", argc,
                                       argv);
}
