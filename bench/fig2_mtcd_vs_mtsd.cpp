// Reproduces Figure 2: average online time per file vs file correlation p
// under MTCD and MTSD (K = 10, mu = 0.02, eta = 0.5, gamma = 0.05).
//
// Paper shape: MTSD is flat at 80; MTCD matches it at p -> 0 and degrades
// monotonically to 98 at p = 1 (~22% worse).
#include <vector>

#include "bench_util.h"
#include "btmf/core/experiments.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser =
      bench::make_parser("fig2_mtcd_vs_mtsd",
                         "Figure 2: MTCD vs MTSD average online time per "
                         "file over the file correlation p");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("steps", "21", "number of p samples in [0, 1]");
  if (!parser.parse(argc, argv)) return 0;

  core::ScenarioConfig base;
  base.num_files = static_cast<unsigned>(parser.get_int("k"));

  const auto steps = static_cast<std::size_t>(parser.get_int("steps"));
  std::vector<double> ps;
  for (std::size_t s = 0; s < steps; ++s) {
    ps.push_back(static_cast<double>(s) / static_cast<double>(steps - 1));
  }

  const util::Table table = core::fig2_table(base, ps);
  bench::emit(table,
              "Figure 2 — average online time per file (fluid model)",
              parser.get("csv"));
  return 0;
}
