// Reproduces Figures 4(b) and 4(c): per-class online and download time
// per file under CMFSD (rho = 0.1 and 0.9) and MFCD, at p = 0.9 (b) and
// p = 0.1 (c).
//
// Paper shape: CMFSD introduces class unfairness — single-file peers
// download faster per file than multi-file peers — most visibly at large
// rho and low p; at p = 0.9 with rho = 0.1 every class clearly beats
// MFCD and the unfairness is mild. The grid and claim checks live in the
// `btmf_tool reproduce` registry; see fig_common.h.
#include "fig_common.h"

int main(int argc, char** argv) {
  return btmf::bench::run_figure_bench("fig4bc_per_class", "fig4bc", argc,
                                       argv);
}
