// Reproduces Figures 4(b) and 4(c): per-class online and download time
// per file under CMFSD (rho = 0.1 and 0.9) and MFCD, at p = 0.9 (b) and
// p = 0.1 (c).
//
// Paper shape: CMFSD introduces class unfairness — single-file peers
// download faster per file than multi-file peers — most visibly at large
// rho and low p; at p = 0.9 with rho = 0.1 every class clearly beats
// MFCD and the unfairness is mild.
#include <vector>

#include "bench_util.h"
#include "btmf/core/experiments.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "fig4bc_per_class",
      "Figures 4(b)/(c): per-class metrics under CMFSD and MFCD");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("rho-low", "0.1", "generous CMFSD setting");
  parser.add_option("rho-high", "0.9", "selfish CMFSD setting");
  if (!parser.parse(argc, argv)) return 0;

  core::ScenarioConfig base;
  base.num_files = static_cast<unsigned>(parser.get_int("k"));
  const std::vector<double> rhos{parser.get_double("rho-low"),
                                 parser.get_double("rho-high")};

  const util::Table fig4b = core::fig4bc_table(base, 0.9, rhos);
  bench::emit(fig4b, "Figure 4(b) — per-class metrics at p = 0.9 (fluid)",
              parser.get("csv").empty() ? "" : parser.get("csv") + ".b.csv");

  const util::Table fig4c = core::fig4bc_table(base, 0.1, rhos);
  bench::emit(fig4c, "Figure 4(c) — per-class metrics at p = 0.1 (fluid)",
              parser.get("csv").empty() ? "" : parser.get("csv") + ".c.csv");
  return 0;
}
