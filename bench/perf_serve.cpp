// Throughput/latency gate for the btmf::serve evaluation daemon.
//
// Two phases, each against a live daemon over a unix socket:
//
//  * warm — populate `unique` distinct scenarios once, then hammer the
//    daemon from `clients` concurrent connections for `rounds` rounds of
//    warm-cache requests. Reports sustained requests/s and client-side
//    p50/p99 latency; fails (exit 1) below --min-qps or if any request
//    errors.
//  * coalesce — duplicate-heavy load against an injected evaluator that
//    counts invocations and sleeps long enough to hold the coalescing
//    window open: every round, all clients request the SAME fresh
//    scenario at once. The gate is exact: backend evaluations == rounds,
//    i.e. N identical concurrent requests cost one computation, however
//    many clients pile on.
//
// `--json` records the measurement for the committed BENCH_serve.json
// baseline.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "btmf/serve/client.h"
#include "btmf/serve/daemon.h"
#include "btmf/util/stopwatch.h"

namespace {

using namespace btmf;
using Clock = std::chrono::steady_clock;

model::ScenarioSpec bench_spec(std::uint64_t seed) {
  model::ScenarioSpec spec;
  spec.scheme = fluid::SchemeKind::kCmfsd;
  spec.correlation = 0.9;
  spec.rho = 0.1;
  spec.seed = seed;  // distinct seeds = distinct fingerprints/cache keys
  return spec;
}

double quantile_ms(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[rank];
}

struct WarmResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  std::uint64_t cache_hits = 0;
};

WarmResult run_warm(const std::string& dir, std::size_t clients,
                    std::size_t rounds, std::size_t unique) {
  serve::DaemonOptions options;
  options.endpoint = serve::Endpoint::parse("unix:" + dir + "/warm.sock");
  options.cache_dir = dir + "/warm-cache";
  serve::Daemon daemon(std::move(options));
  daemon.start();

  {
    serve::Client client = serve::Client::connect(daemon.endpoint());
    for (std::size_t u = 0; u < unique; ++u) {
      const serve::EvalReply reply =
          client.evaluate("fluid-equilibrium", bench_spec(u + 1));
      if (!reply.ok) {
        std::fprintf(stderr, "populate failed: %s\n",
                     reply.message.c_str());
        std::exit(1);
      }
    }
  }

  std::vector<std::vector<double>> latencies_ms(clients);
  std::atomic<std::size_t> errors{0};
  util::Stopwatch timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        serve::Client client = serve::Client::connect(daemon.endpoint());
        auto& mine = latencies_ms[c];
        mine.reserve(rounds * unique);
        for (std::size_t r = 0; r < rounds; ++r) {
          for (std::size_t u = 0; u < unique; ++u) {
            const Clock::time_point begin = Clock::now();
            const serve::EvalReply reply =
                client.evaluate("fluid-equilibrium", bench_spec(u + 1));
            mine.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          begin)
                    .count());
            if (!reply.ok || !reply.cached) errors.fetch_add(1);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  const double wall = timer.seconds();

  WarmResult result;
  result.requests = clients * rounds * unique;
  result.errors = errors.load();
  result.qps = wall > 0.0 ? static_cast<double>(result.requests) / wall : 0.0;
  std::vector<double> all_ms;
  all_ms.reserve(result.requests);
  for (const auto& mine : latencies_ms)
    all_ms.insert(all_ms.end(), mine.begin(), mine.end());
  std::sort(all_ms.begin(), all_ms.end());
  result.p50_ms = quantile_ms(all_ms, 0.50);
  result.p99_ms = quantile_ms(all_ms, 0.99);
  const obs::MetricsSnapshot snapshot = daemon.stats();
  result.cache_hits = snapshot.counters.at("serve.cache_hit");
  daemon.drain();
  return result;
}

struct CoalesceResult {
  std::size_t rounds = 0;
  std::size_t requests = 0;
  std::size_t errors = 0;
  int backend_evals = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t cache_hits = 0;
};

CoalesceResult run_coalesce(const std::string& dir, std::size_t clients,
                            std::size_t rounds) {
  std::atomic<int> evaluations{0};
  serve::DaemonOptions options;
  options.endpoint =
      serve::Endpoint::parse("unix:" + dir + "/coalesce.sock");
  options.cache_dir = dir + "/coalesce-cache";
  options.eval = [&evaluations](const std::string& backend,
                                const model::ScenarioSpec& spec) {
    evaluations.fetch_add(1);
    // Hold the coalescing window open long enough for every client in
    // the round to attach.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return serve::default_eval(backend, spec);
  };
  serve::Daemon daemon(std::move(options));
  daemon.start();

  std::atomic<std::size_t> errors{0};
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, r] {
        serve::Client client = serve::Client::connect(daemon.endpoint());
        const serve::EvalReply reply = client.evaluate(
            "fluid-equilibrium", bench_spec(1'000'000 + r));
        if (!reply.ok) errors.fetch_add(1);
      });
    }
    for (auto& thread : threads) thread.join();
  }

  CoalesceResult result;
  result.rounds = rounds;
  result.requests = clients * rounds;
  result.errors = errors.load();
  result.backend_evals = evaluations.load();
  const obs::MetricsSnapshot snapshot = daemon.stats();
  result.coalesced = snapshot.counters.at("serve.coalesced");
  result.cache_hits = snapshot.counters.at("serve.cache_hit");
  daemon.drain();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser = bench::make_parser(
      "perf_serve",
      "Evaluation-daemon throughput, latency and coalescing gates");
  parser.add_option("clients", "8", "concurrent client connections");
  parser.add_option("rounds", "25", "request rounds per phase");
  parser.add_option("unique", "16", "distinct warm-cache scenarios");
  parser.add_option("min-qps", "200",
                    "fail below this sustained warm-cache requests/s");
  parser.add_option("scratch", ".perf-serve",
                    "scratch directory (recreated each run)");
  parser.add_option("json", "", "also dump the measurement as JSON here");
  if (!parser.parse(argc, argv)) return 0;
  if (!serve::serve_supported()) {
    std::fprintf(stderr, "SKIP: POSIX sockets unavailable\n");
    return 0;
  }

  const auto clients = static_cast<std::size_t>(parser.get_int("clients"));
  const auto rounds = static_cast<std::size_t>(parser.get_int("rounds"));
  const auto unique = static_cast<std::size_t>(parser.get_int("unique"));
  const double min_qps = parser.get_double("min-qps");
  const std::string scratch = parser.get("scratch");
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);

  const WarmResult warm = run_warm(scratch, clients, rounds, unique);
  const CoalesceResult coalesce = run_coalesce(scratch, clients, rounds);

  util::Table table({"phase", "requests", "qps", "p50 ms", "p99 ms",
                     "backend evals", "coalesced+hits"});
  table.set_precision(3);
  table.add_row({"warm", static_cast<double>(warm.requests), warm.qps,
                 warm.p50_ms, warm.p99_ms, 0.0,
                 static_cast<double>(warm.cache_hits)});
  table.add_row({"coalesce", static_cast<double>(coalesce.requests), 0.0,
                 0.0, 0.0, static_cast<double>(coalesce.backend_evals),
                 static_cast<double>(coalesce.coalesced +
                                     coalesce.cache_hits)});
  bench::emit(table, "Serve daemon (warm-cache + duplicate-heavy load)",
              parser.get("csv"));

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"clients\": %zu, \"warm_requests\": %zu, \"qps\": %.0f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"min_qps\": %.0f, "
        "\"coalesce_requests\": %zu, \"coalesce_rounds\": %zu, "
        "\"backend_evals\": %d, \"coalesced\": %llu, "
        "\"coalesce_cache_hits\": %llu}\n",
        clients, warm.requests, warm.qps, warm.p50_ms, warm.p99_ms,
        min_qps, coalesce.requests, coalesce.rounds,
        coalesce.backend_evals,
        static_cast<unsigned long long>(coalesce.coalesced),
        static_cast<unsigned long long>(coalesce.cache_hits));
    out << buf;
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }

  bool pass = true;
  if (warm.errors != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu warm requests errored or missed the cache\n",
                 warm.errors);
    pass = false;
  }
  if (warm.qps < min_qps) {
    std::fprintf(stderr, "FAIL: warm qps %.0f below floor %.0f\n", warm.qps,
                 min_qps);
    pass = false;
  }
  if (coalesce.errors != 0) {
    std::fprintf(stderr, "FAIL: %zu coalesce requests errored\n",
                 coalesce.errors);
    pass = false;
  }
  if (coalesce.backend_evals != static_cast<int>(coalesce.rounds)) {
    std::fprintf(stderr,
                 "FAIL: %zu rounds of %zu identical requests cost %d "
                 "backend evaluations (want exactly %zu)\n",
                 coalesce.rounds, clients, coalesce.backend_evals,
                 coalesce.rounds);
    pass = false;
  }
  if (pass) {
    std::printf(
        "PASS: %.0f warm qps (floor %.0f), p99 %.3f ms; %zux%zu duplicate "
        "requests -> %d evaluations\n",
        warm.qps, min_qps, warm.p99_ms, coalesce.rounds, clients,
        coalesce.backend_evals);
  }
  return pass ? 0 : 1;
}
