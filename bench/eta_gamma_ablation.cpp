// Sensitivity of the paper's conclusions to the two contested fluid
// parameters:
//  * eta — the paper argues for 0.5 (based on the Izal et al. seeder/
//    downloader traffic ratio) where Qiu–Srikant argue ~1; how much do
//    the scheme gaps depend on that choice?
//  * gamma/mu — seed patience relative to upload speed; the closed forms
//    need gamma > mu, and the MTCD-vs-MTSD gap shrinks as seeds become
//    more generous (gamma -> mu keeps torrents saturated with seeds).
#include <vector>

#include "bench_util.h"
#include "btmf/core/evaluate.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "eta_gamma_ablation",
      "Sensitivity of scheme comparisons to eta and gamma/mu");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.9", "file correlation");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));
  const double p = parser.get_double("p");

  const auto evaluate = [&](const fluid::FluidParams& params,
                            fluid::SchemeKind scheme, double rho) {
    core::ScenarioConfig scenario;
    scenario.num_files = k;
    scenario.correlation = p;
    scenario.fluid = params;
    core::EvaluateOptions options;
    options.rho = rho;
    return core::evaluate_scheme(scenario, scheme, options)
        .avg_online_per_file;
  };

  // ---- eta sweep -------------------------------------------------------
  util::Table eta_table({"eta", "MTSD", "MTCD", "CMFSD rho=0",
                         "MTCD/MTSD", "CMFSD(0)/MTSD"});
  eta_table.set_precision(4);
  for (const double eta : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    fluid::FluidParams params = fluid::kPaperParams;
    params.eta = eta;
    const double mtsd = evaluate(params, fluid::SchemeKind::kMtsd, 0.0);
    const double mtcd = evaluate(params, fluid::SchemeKind::kMtcd, 0.0);
    const double cmfsd = evaluate(params, fluid::SchemeKind::kCmfsd, 0.0);
    eta_table.add_row(
        {eta, mtsd, mtcd, cmfsd, mtcd / mtsd, cmfsd / mtsd});
  }
  bench::emit(eta_table,
              "eta ablation (K=10, p=0.9) — avg online time per file",
              parser.get("csv").empty() ? "" : parser.get("csv") + ".eta.csv");

  // ---- gamma/mu sweep --------------------------------------------------
  util::Table gamma_table({"gamma/mu", "MTSD", "MTCD", "CMFSD rho=0",
                           "MTCD/MTSD", "CMFSD(0)/MTSD"});
  gamma_table.set_precision(4);
  for (const double ratio : {1.25, 1.5, 2.0, 2.5, 4.0, 8.0}) {
    fluid::FluidParams params = fluid::kPaperParams;
    params.gamma = params.mu * ratio;
    const double mtsd = evaluate(params, fluid::SchemeKind::kMtsd, 0.0);
    const double mtcd = evaluate(params, fluid::SchemeKind::kMtcd, 0.0);
    const double cmfsd = evaluate(params, fluid::SchemeKind::kCmfsd, 0.0);
    gamma_table.add_row(
        {ratio, mtsd, mtcd, cmfsd, mtcd / mtsd, cmfsd / mtsd});
  }
  bench::emit(
      gamma_table,
      "gamma/mu ablation (K=10, p=0.9) — avg online time per file",
      parser.get("csv").empty() ? "" : parser.get("csv") + ".gamma.csv");
  return 0;
}
