// Overhead budget check for the btmf::obs telemetry subsystem.
//
// Runs perf_sim's standard CMFSD workload twice — once with a
// default-constructed (null) sink, once with all three sinks attached
// (metrics registry, time-series recorder, Chrome tracer) — taking the
// best of --repeats wall-clock runs of each. Fails (exit 1) if the
// attached-sink event throughput drops more than --budget percent below
// the null-sink rate, and cross-checks that both modes produce the same
// SimResult (observation must never perturb the simulation). `--json`
// records the measurement for the committed BENCH_obs.json baseline.
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "btmf/obs/sink.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/stopwatch.h"

namespace {

using namespace btmf;

sim::SimConfig base_config(const util::ArgParser& parser) {
  sim::SimConfig config;
  config.scheme = fluid::SchemeKind::kCmfsd;
  config.rho = 0.2;
  config.num_files = static_cast<unsigned>(parser.get_int("k"));
  config.correlation = parser.get_double("p");
  // Same x5 boost as perf_sim's CMFSD row: one active peer per user means
  // a hotter arrival rate is needed to reach the same population.
  config.visit_rate = parser.get_double("lambda0") * 5.0;
  config.horizon = parser.get_double("horizon");
  config.warmup = parser.get_double("warmup");
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  config.max_active_peers = 4'000'000;
  return config;
}

struct Measurement {
  double best_rate = 0.0;     ///< events/s, best across repeats
  sim::SimResult result;      ///< last run's result (identical across runs)
};

double timed_rate(const sim::SimConfig& config, sim::SimResult& out) {
  util::Stopwatch timer;
  out = sim::run_simulation(config);
  const double wall = timer.seconds();
  return wall > 0.0 ? static_cast<double>(out.events_processed) / wall : 0.0;
}

bool same_results(const sim::SimResult& a, const sim::SimResult& b) {
  return a.events_processed == b.events_processed &&
         a.total_users == b.total_users &&
         a.avg_online_per_file == b.avg_online_per_file &&
         a.avg_download_per_file == b.avg_download_per_file &&
         a.peak_live_peers == b.peak_live_peers;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser = bench::make_parser(
      "perf_obs", "Telemetry sink overhead vs a null sink (budget check)");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.5", "file request correlation");
  parser.add_option("lambda0", "4.0", "base indexing-server visit rate");
  parser.add_option("horizon", "1200", "simulated time per run");
  parser.add_option("warmup", "300", "statistics warm-up time");
  parser.add_option("seed", "2025", "RNG seed");
  parser.add_option("repeats", "5", "timed runs per mode; best rate wins");
  parser.add_option("budget", "5.0", "max allowed overhead in percent");
  parser.add_option("json", "", "also dump the measurement as JSON here");
  parser.add_option("metrics-out", "",
                    "write the attached run's metrics + series JSON here");
  parser.add_option("trace-out", "",
                    "write the attached run's Chrome trace here");
  if (!parser.parse(argc, argv)) return 0;
  if (!parser.get("metrics-out").empty()) {
    obs::require_writable_path(parser.get("metrics-out"));
  }
  if (!parser.get("trace-out").empty()) {
    obs::require_writable_path(parser.get("trace-out"));
  }

  const int repeats = static_cast<int>(parser.get_int("repeats"));
  const double budget = parser.get_double("budget");

  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder recorder;
  obs::TraceWriter trace("perf_obs");
  const sim::SimConfig null_config = base_config(parser);
  sim::SimConfig attached_config = base_config(parser);
  attached_config.obs.metrics = &metrics;
  attached_config.obs.recorder = &recorder;
  attached_config.obs.trace = &trace;

  // One untimed run warms caches and the frequency governor; the timed
  // runs then interleave the two modes so slow drifts hit both equally.
  Measurement null_sink;
  Measurement attached;
  sim::run_simulation(null_config);
  for (int i = 0; i < repeats; ++i) {
    null_sink.best_rate = std::max(
        null_sink.best_rate, timed_rate(null_config, null_sink.result));
    attached.best_rate = std::max(
        attached.best_rate, timed_rate(attached_config, attached.result));
  }

  const double overhead_pct =
      null_sink.best_rate > 0.0
          ? 100.0 * (1.0 - attached.best_rate / null_sink.best_rate)
          : 0.0;

  util::Table table({"mode", "events", "best events/s", "overhead %"});
  table.set_precision(3);
  table.add_row({"null sink",
                 static_cast<double>(null_sink.result.events_processed),
                 null_sink.best_rate, 0.0});
  table.add_row({"metrics+series+trace",
                 static_cast<double>(attached.result.events_processed),
                 attached.best_rate, overhead_pct});
  bench::emit(table, "Telemetry overhead (CMFSD, perf_sim workload)",
              parser.get("csv"));

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"events\": %zu, \"null_events_per_sec\": %.0f, "
        "\"attached_events_per_sec\": %.0f, \"overhead_pct\": %.2f, "
        "\"budget_pct\": %.2f, \"trace_events\": %zu}\n",
        null_sink.result.events_processed, null_sink.best_rate,
        attached.best_rate, overhead_pct, budget, trace.event_count());
    out << buf;
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }

  if (!parser.get("metrics-out").empty()) {
    const obs::MetricsSnapshot snap = metrics.snapshot();
    obs::write_combined_json(parser.get("metrics-out"), &snap, &recorder);
    std::printf("(metrics saved to %s)\n", parser.get("metrics-out").c_str());
  }
  if (!parser.get("trace-out").empty()) {
    trace.write_file(parser.get("trace-out"));
    std::printf("(trace saved to %s)\n", parser.get("trace-out").c_str());
  }

  if (!same_results(null_sink.result, attached.result)) {
    std::fprintf(stderr,
                 "FAIL: attaching sinks changed the simulation result\n");
    return 1;
  }
  if (overhead_pct > budget) {
    std::fprintf(stderr, "FAIL: sink overhead %.2f%% exceeds budget %.2f%%\n",
                 overhead_pct, budget);
    return 1;
  }
  std::printf("PASS: sink overhead %.2f%% within %.2f%% budget\n",
              overhead_pct, budget);
  return 0;
}
