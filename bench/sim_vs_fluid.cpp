// Cross-validation experiment (not in the paper, which is numerical-only):
// the agent-level discrete-event simulator vs the fluid-model steady
// states, for all four schemes at the paper's constants.
//
// Columns report both the sample-mean view (completed users) and the
// censoring-free Little's-law view (time-averaged populations / arrival
// rate) next to the fluid prediction.
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/core/evaluate.h"
#include "btmf/sim/simulator.h"

namespace {

struct Row {
  std::string label;
  btmf::fluid::SchemeKind scheme;
  double p;
  double rho;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "sim_vs_fluid",
      "Agent-level simulation vs fluid steady state, all four schemes");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("lambda0", "1.0", "indexing-server visit rate");
  parser.add_option("horizon", "5000", "simulated time per run");
  parser.add_option("reps", "3", "independent replications per row");
  parser.add_option("seed", "2024", "master RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const std::vector<Row> rows{
      {"MTSD  p=0.5", fluid::SchemeKind::kMtsd, 0.5, 0.0},
      {"MTCD  p=0.5", fluid::SchemeKind::kMtcd, 0.5, 0.0},
      {"MTCD  p=1.0", fluid::SchemeKind::kMtcd, 1.0, 0.0},
      {"MFCD  p=1.0", fluid::SchemeKind::kMfcd, 1.0, 0.0},
      {"CMFSD p=0.9 rho=0", fluid::SchemeKind::kCmfsd, 0.9, 0.0},
      {"CMFSD p=0.9 rho=0.5", fluid::SchemeKind::kCmfsd, 0.9, 0.5},
      {"CMFSD p=0.9 rho=1", fluid::SchemeKind::kCmfsd, 0.9, 1.0},
      {"CMFSD p=0.1 rho=0", fluid::SchemeKind::kCmfsd, 0.1, 0.0},
  };

  util::Table table({"scenario", "fluid online/file", "sim online/file",
                     "sim stderr", "sim/fluid", "censored frac"});
  table.set_precision(4);

  for (const Row& row : rows) {
    core::ScenarioConfig scenario;
    scenario.num_files = static_cast<unsigned>(parser.get_int("k"));
    scenario.correlation = row.p;
    scenario.visit_rate = parser.get_double("lambda0");
    core::EvaluateOptions options;
    options.rho = row.rho;
    const core::SchemeReport fluid_report =
        core::evaluate_scheme(scenario, row.scheme, options);

    sim::SimConfig config;
    config.scheme = row.scheme;
    config.num_files = scenario.num_files;
    config.correlation = row.p;
    config.visit_rate = scenario.visit_rate;
    config.rho = row.rho;
    config.horizon = parser.get_double("horizon");
    config.warmup = config.horizon * 0.25;
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    const sim::ReplicationSummary summary = sim::run_replications(
        config, static_cast<std::size_t>(parser.get_int("reps")));

    double censored = 0.0;
    double users = 0.0;
    for (const sim::SimResult& run : summary.runs) {
      censored += static_cast<double>(run.censored_users);
      users += static_cast<double>(run.total_users + run.censored_users);
    }
    table.add_row({row.label, fluid_report.avg_online_per_file,
                   summary.mean_online_per_file,
                   summary.stderr_online_per_file,
                   summary.mean_online_per_file /
                       fluid_report.avg_online_per_file,
                   users > 0.0 ? censored / users : 0.0});
  }

  bench::emit(table, "Simulation vs fluid model — average online time/file",
              parser.get("csv"));
  return 0;
}
