// Emergent sharing efficiency from the chunk-level protocol (extension).
//
// The paper sets eta = 0.5, reading the Izal et al. measurement ("seeds
// contributed twice the downloader traffic") as downloader inefficiency;
// Qiu–Srikant prove eta ~ 1 when files have many chunks. The chunk-level
// simulator arbitrates:
//
// Table 1 — eta_hat vs chunk count: rarest-first + tit-for-tat drive the
// realised downloader efficiency from ~0.8 (tiny files) toward 1 (many
// chunks), and plugging eta_hat back into T = (gamma-mu)/(gamma mu eta)
// predicts the measured download time — Qiu–Srikant are right about the
// *mechanism*.
//
// Table 2 — upload shares vs seed patience (1/gamma): the seed/downloader
// traffic ratio is governed by how long seeds linger, NOT by eta. Patient
// seeds reproduce Izal's 2:1 ratio with eta still ~1 — the paper's
// inference conflates seed abundance with downloader inefficiency. Its
// eta = 0.5 remains a defensible *empirical calibration* (Sec. 4's
// conclusions survive any eta < 1, see eta_gamma_ablation), but the
// chunk-level mechanism does not produce it.
#include "bench_util.h"
#include "btmf/sim/chunk_sim.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "emergent_eta", "chunk-level swarm: measured eta and upload shares");
  parser.add_option("lambda", "1.0", "peer arrival rate");
  parser.add_option("horizon", "3000", "simulated time per point");
  parser.add_option("seed", "11", "RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  sim::ChunkSimConfig base;
  base.entry_rate = parser.get_double("lambda");
  base.horizon = parser.get_double("horizon");
  base.warmup = base.horizon * 0.25;
  base.seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  util::Table chunk_table({"chunks", "eta_hat", "measured T",
                           "fluid T(eta_hat)", "T at paper eta=0.5",
                           "downloader share"});
  chunk_table.set_precision(4);
  for (const unsigned chunks : {4u, 8u, 16u, 32u, 64u, 128u}) {
    sim::ChunkSimConfig config = base;
    config.num_chunks = chunks;
    const sim::ChunkSimResult r = sim::run_chunk_sim(config);
    chunk_table.add_row({static_cast<double>(chunks), r.emergent_eta,
                         r.mean_download_time, r.fluid_prediction, 60.0,
                         r.downloader_upload_share});
  }
  bench::emit(chunk_table, "Emergent eta vs chunk count (gamma = 0.05)",
              parser.get("csv").empty() ? ""
                                        : parser.get("csv") + ".chunks.csv");

  util::Table share_table({"1/gamma (seed residence)", "seed share",
                           "downloader share", "seed/downloader ratio",
                           "eta_hat"});
  share_table.set_precision(4);
  for (const double residence : {10.0, 20.0, 40.0, 80.0}) {
    sim::ChunkSimConfig config = base;
    config.num_chunks = 32;
    config.fluid.gamma = 1.0 / residence;
    const sim::ChunkSimResult r = sim::run_chunk_sim(config);
    share_table.add_row({residence, r.seed_upload_share,
                         r.downloader_upload_share,
                         r.downloader_upload_share > 0.0
                             ? r.seed_upload_share /
                                   r.downloader_upload_share
                             : 0.0,
                         r.emergent_eta});
  }
  bench::emit(share_table,
              "Upload shares vs seed patience (C = 32): the Izal 2:1 "
              "ratio is a gamma story, not an eta story",
              parser.get("csv").empty() ? ""
                                        : parser.get("csv") + ".gamma.csv");
  return 0;
}
