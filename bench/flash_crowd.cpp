// Flash-crowd transient experiment (extension — the paper's evaluation is
// steady-state only, but its fluid models are dynamic and the flash crowd
// is the classic transient question for BitTorrent fluid models).
//
// A crowd of N users interested in the whole K-file catalogue lands on an
// empty system at t = 0 with only a trickle of background arrivals. We
// track the total downloader population under MFCD and under CMFSD at
// several rho, and report the crowd drain metrics: the peak population,
// the time until 95% of the crowd mass is gone, and the time to settle at
// the long-run steady state.
#include <cmath>

#include "bench_util.h"
#include "btmf/core/evaluate.h"
#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/transient.h"
#include "btmf/util/strings.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "flash_crowd", "crowd-drain transients under MFCD-like and CMFSD");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.9", "file correlation of background arrivals");
  parser.add_option("crowd", "2000", "crowd size at t = 0 (class-K users)");
  parser.add_option("lambda0", "0.25", "background visit rate");
  parser.add_option("t-end", "4000", "trajectory horizon");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));
  const double crowd = parser.get_double("crowd");
  const fluid::CorrelationModel corr(k, parser.get_double("p"),
                                     parser.get_double("lambda0"));

  util::Table table({"scheme", "peak downloaders",
                     "95% crowd drained at t", "settled at t",
                     "steady downloaders"});
  table.set_precision(5);

  fluid::TransientOptions options;
  options.t_end = parser.get_double("t-end");
  options.samples = 400;

  for (const double rho : {0.0, 0.5, 1.0}) {
    const fluid::CmfsdModel model(fluid::kPaperParams,
                                  corr.system_entry_rates(), rho);
    // The crowd: `crowd` class-K users, all starting their first file.
    std::vector<double> y0(model.state_size(), 0.0);
    y0[model.x_index(k, 1)] = crowd;

    const fluid::TransientSeries series =
        fluid::sample_trajectory(model.rhs(), y0, options);
    const auto total_downloaders = [&](std::span<const double> state) {
      double total = 0.0;
      for (unsigned i = 1; i <= k; ++i)
        for (unsigned j = 1; j <= i; ++j)
          total += state[model.x_index(i, j)];
      return total;
    };

    const fluid::CmfsdEquilibrium eq = model.solve();
    const double steady = [&] {
      double total = 0.0;
      for (unsigned i = 1; i <= k; ++i)
        for (unsigned j = 1; j <= i; ++j)
          total += eq.state[model.x_index(i, j)];
      return total;
    }();

    // 95% of the crowd mass above steady state has drained.
    const double threshold = steady + 0.05 * crowd;
    double drained_at = std::numeric_limits<double>::infinity();
    const std::vector<double> totals = series.map(total_downloaders);
    for (std::size_t s = 0; s < totals.size(); ++s) {
      if (totals[s] <= threshold) {
        drained_at = series.times[s];
        break;
      }
    }
    const double settle = fluid::settling_time(series, eq.state, 0.02);

    const std::string label =
        rho == 1.0 ? "CMFSD rho=1 (= MFCD behaviour)"
                   : "CMFSD rho=" + util::format_double(rho, 3);
    table.add_row({label, fluid::peak_value(series, total_downloaders),
                   drained_at, settle, steady});
  }

  bench::emit(table,
              "Flash crowd of " + util::format_double(crowd, 6) +
                  " class-K users — drain and settling metrics",
              parser.get("csv"));
  std::cout << "\nReading: collaborative re-seeding (small rho) drains the "
               "crowd far faster because the\ncrowd itself becomes the "
               "seed capacity as soon as the first files complete.\n";
  return 0;
}
