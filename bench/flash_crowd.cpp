// Flash-crowd transient experiment (extension — the paper's evaluation is
// steady-state only, but its fluid models are dynamic and the flash crowd
// is the classic transient question for BitTorrent fluid models).
//
// A crowd of N users lands on an empty system as a flash-crowd pulse of
// the arrival process itself — a boosted arrival window [0, width)
// carrying `crowd` extra users on top of a trickle of background
// arrivals (the demand model's ArrivalProcess flash pulse; no hand-rolled
// initial-condition injection). We track the total downloader population
// under CMFSD at several rho and report the crowd drain metrics: the
// peak population, the time until 95% of the crowd mass is gone, and the
// time to settle at the long-run steady state (the pulse ends, so the
// system returns to the autonomous equilibrium).
#include <cmath>

#include "bench_util.h"
#include "btmf/core/evaluate.h"
#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/demand.h"
#include "btmf/fluid/transient.h"
#include "btmf/util/strings.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "flash_crowd", "crowd-drain transients under MFCD-like and CMFSD");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.9", "file correlation of background arrivals");
  parser.add_option("crowd", "2000", "crowd size landing in the burst");
  parser.add_option("burst-width", "50",
                    "flash-pulse duration carrying the crowd");
  parser.add_option("lambda0", "0.25", "background visit rate");
  parser.add_option("t-end", "4000", "trajectory horizon");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));
  const double crowd = parser.get_double("crowd");
  const double width = parser.get_double("burst-width");
  const fluid::CorrelationModel corr(k, parser.get_double("p"),
                                     parser.get_double("lambda0"));

  // The crowd rides the arrival process: one flash pulse over [0, width)
  // whose boost delivers exactly `crowd` extra arrivals on top of the
  // background rate (spread across classes like the background mix).
  const std::vector<double> rates = corr.system_entry_rates();
  double total_rate = 0.0;
  for (const double r : rates) total_rate += r;
  fluid::ArrivalProcess burst;
  burst.kind = fluid::ArrivalKind::kFlashCrowd;
  burst.t0 = 0.0;
  burst.width = width;
  burst.boost = 1.0 + crowd / (total_rate * width);
  burst.pulses = 1;
  burst.validate();

  util::Table table({"scheme", "peak downloaders",
                     "95% crowd drained at t", "settled at t",
                     "steady downloaders"});
  table.set_precision(5);

  fluid::TransientOptions options;
  options.t_end = parser.get_double("t-end");
  options.samples = 400;

  for (const double rho : {0.0, 0.5, 1.0}) {
    const fluid::CmfsdModel model(fluid::kPaperParams, rates, rho);
    const fluid::TransientSeries series = fluid::sample_trajectory(
        model.rhs(burst), std::vector<double>(model.state_size(), 0.0),
        options);
    const auto total_downloaders = [&](std::span<const double> state) {
      double total = 0.0;
      for (unsigned i = 1; i <= k; ++i)
        for (unsigned j = 1; j <= i; ++j)
          total += state[model.x_index(i, j)];
      return total;
    };

    const fluid::CmfsdEquilibrium eq = model.solve();
    const double steady = [&] {
      double total = 0.0;
      for (unsigned i = 1; i <= k; ++i)
        for (unsigned j = 1; j <= i; ++j)
          total += eq.state[model.x_index(i, j)];
      return total;
    }();

    // 95% of the crowd mass above steady state has drained.
    const double threshold = steady + 0.05 * crowd;
    double drained_at = std::numeric_limits<double>::infinity();
    const std::vector<double> totals = series.map(total_downloaders);
    for (std::size_t s = 0; s < totals.size(); ++s) {
      if (series.times[s] > burst.width && totals[s] <= threshold) {
        drained_at = series.times[s];
        break;
      }
    }
    const double settle = fluid::settling_time(series, eq.state, 0.02);

    const std::string label =
        rho == 1.0 ? "CMFSD rho=1 (= MFCD behaviour)"
                   : "CMFSD rho=" + util::format_double(rho, 3);
    table.add_row({label, fluid::peak_value(series, total_downloaders),
                   drained_at, settle, steady});
  }

  bench::emit(table,
              "Flash crowd of " + util::format_double(crowd, 6) +
                  " users over a " + util::format_double(width, 4) +
                  "-unit arrival burst — drain and settling metrics",
              parser.get("csv"));
  std::cout << "\nReading: collaborative re-seeding (small rho) drains the "
               "crowd far faster because the\ncrowd itself becomes the "
               "seed capacity as soon as the first files complete.\n";
  return 0;
}
