// Overhead budget check for the btmf::robust execution supervisor.
//
// The supervisor (deadlines, retry policy, crash isolation, checkpoint
// journal) must be free when nothing goes wrong: the common case is a
// fully warm cache where every point is a hit and the supervisor's only
// possible cost is its bookkeeping (journal open, replay table, options
// plumbing). This bench times the same warm-cache sweep twice — once
// with a default (inert) SweepOptions, once with the full supervision
// stack switched on (deadline + retries + resume) — taking the best of
// --repeats runs of each, and fails (exit 1) if supervision costs more
// than --budget percent of warm-cache throughput. It also cross-checks
// that both modes return bit-identical SweepResults: supervision decides
// *whether* a point computes, never what it computes. `--json` records
// the measurement for the committed BENCH_robust.json baseline.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "bench_util.h"
#include "btmf/sweep/grid.h"
#include "btmf/sweep/sweep.h"
#include "btmf/util/stopwatch.h"

namespace {

using namespace btmf;

sweep::SweepSpec bench_spec(std::size_t points) {
  sweep::SweepSpec spec;
  spec.name = "perf-robust";
  spec.grid.axis("p", sweep::linspace(0.01, 1.0, points));
  spec.fingerprint = "perf-robust-v1";
  // Deliberately cheap compute: the cold populate is not what's measured,
  // and trivial points make the warm-path bookkeeping the entire signal
  // instead of burying it under solver time.
  spec.compute = [](const sweep::GridPoint& point) {
    const double p = point.at("p");
    sweep::PointResult result;
    result.values["inv"] = 1.0 / (p + 0.5);
    result.values["sq"] = p * p;
    return result;
  };
  return spec;
}

sweep::SweepOptions baseline_options(const std::string& cache_dir) {
  sweep::SweepOptions options;
  options.cache_dir = cache_dir;
  options.jobs = 1;  // single worker: steadiest timing signal
  return options;
}

sweep::SweepOptions supervised_options(const std::string& cache_dir) {
  sweep::SweepOptions options = baseline_options(cache_dir);
  options.robust.timeout_s = 30.0;
  options.robust.retry.retries = 2;
  options.resume = true;
  return options;
}

double timed_rate(const sweep::SweepSpec& spec,
                  const sweep::SweepOptions& options, std::size_t points,
                  sweep::SweepResult& out) {
  util::Stopwatch timer;
  out = sweep::run_sweep(spec, options);
  const double wall = timer.seconds();
  return wall > 0.0 ? static_cast<double>(points) / wall : 0.0;
}

bool same_results(const sweep::SweepResult& a, const sweep::SweepResult& b) {
  if (a.num_points() != b.num_points() || a.failures != b.failures) {
    return false;
  }
  for (std::size_t i = 0; i < a.num_points(); ++i) {
    if (a.points[i].status != b.points[i].status) return false;
    for (const auto& [name, value] : a.points[i].result.values) {
      if (std::bit_cast<std::uint64_t>(value) !=
          std::bit_cast<std::uint64_t>(b.points[i].result.at(name))) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser = bench::make_parser(
      "perf_robust",
      "Execution-supervisor overhead on a warm-cache sweep (budget check)");
  parser.add_option("points", "400", "grid points in the sweep");
  parser.add_option("repeats", "5", "timed runs per mode; best rate wins");
  parser.add_option("budget", "2.0", "max allowed overhead in percent");
  parser.add_option("cache-dir", ".perf-robust-cache",
                    "scratch cache directory (recreated each run)");
  parser.add_option("json", "", "also dump the measurement as JSON here");
  if (!parser.parse(argc, argv)) return 0;

  const std::size_t points =
      static_cast<std::size_t>(parser.get_int("points"));
  const int repeats = static_cast<int>(parser.get_int("repeats"));
  const double budget = parser.get_double("budget");
  const std::string cache_dir = parser.get("cache-dir");
  std::filesystem::remove_all(cache_dir);

  const sweep::SweepSpec spec = bench_spec(points);

  // Cold populate once, then one untimed warm run per mode to fault in
  // the cache files; the timed runs interleave the two modes so slow
  // drifts (page cache churn, governor) hit both equally.
  sweep::SweepResult baseline_result, supervised_result;
  (void)sweep::run_sweep(spec, baseline_options(cache_dir));
  (void)timed_rate(spec, baseline_options(cache_dir), points,
                   baseline_result);
  (void)timed_rate(spec, supervised_options(cache_dir), points,
                   supervised_result);
  double baseline_rate = 0.0;
  double supervised_rate = 0.0;
  for (int i = 0; i < repeats; ++i) {
    baseline_rate =
        std::max(baseline_rate, timed_rate(spec, baseline_options(cache_dir),
                                           points, baseline_result));
    supervised_rate = std::max(
        supervised_rate, timed_rate(spec, supervised_options(cache_dir),
                                    points, supervised_result));
  }

  const double overhead_pct =
      baseline_rate > 0.0 ? 100.0 * (1.0 - supervised_rate / baseline_rate)
                          : 0.0;

  util::Table table({"mode", "cache hits", "best points/s", "overhead %"});
  table.set_precision(3);
  table.add_row({"inert (default options)",
                 static_cast<double>(baseline_result.cache_hits),
                 baseline_rate, 0.0});
  table.add_row({"supervised (deadline+retries+resume)",
                 static_cast<double>(supervised_result.cache_hits),
                 supervised_rate, overhead_pct});
  bench::emit(table, "Supervisor overhead (warm-cache sweep)",
              parser.get("csv"));

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"points\": %zu, \"baseline_points_per_sec\": %.0f, "
                  "\"supervised_points_per_sec\": %.0f, "
                  "\"overhead_pct\": %.2f, \"budget_pct\": %.2f}\n",
                  points, baseline_rate, supervised_rate, overhead_pct,
                  budget);
    out << buf;
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }

  if (!same_results(baseline_result, supervised_result)) {
    std::fprintf(
        stderr,
        "FAIL: supervision changed the sweep result (it must only decide "
        "whether points compute, never what they compute)\n");
    return 1;
  }
  if (baseline_result.cache_hits != points ||
      supervised_result.cache_hits != points) {
    std::fprintf(stderr,
                 "FAIL: warm runs were not fully cached (%zu / %zu hits)\n",
                 baseline_result.cache_hits, supervised_result.cache_hits);
    return 1;
  }
  if (overhead_pct > budget) {
    std::fprintf(stderr,
                 "FAIL: supervisor overhead %.2f%% exceeds budget %.2f%%\n",
                 overhead_pct, budget);
    return 1;
  }
  std::printf("PASS: supervisor overhead %.2f%% within %.2f%% budget\n",
              overhead_pct, budget);
  return 0;
}
