// Churn-burst robustness sweep (extension — the paper's swarms never lose
// peers mid-download, but real swarms do, and the fault layer lets us ask
// how each downloading scheme weathers a correlated crash).
//
// Every scheme runs the same scenario with a single churn burst at
// mid-horizon, swept over the kill fraction: each downloading user crashes
// independently with that probability, loses all in-flight (and, here, all
// completed) progress, and re-arrives after an Exp(backoff) delay. The
// table reports the kernel's recovery observability counters — peers
// killed, re-admissions and their queue peak, the time the swarm needed to
// regain its pre-fault population — plus the resulting quality-of-service
// hit. `--json <path>` records the rows for regression tracking against
// the committed BENCH_faults.json baseline.
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/strings.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "churn_sweep", "recovery metrics per scheme under churn bursts");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.5", "file request correlation");
  parser.add_option("lambda0", "1.0", "indexing-server visit rate");
  parser.add_option("horizon", "4000", "simulated time per run");
  parser.add_option("backoff", "0.2", "re-arrival rate after a crash");
  parser.add_option("seed", "2025", "RNG seed");
  parser.add_option("json", "", "also dump rows as JSON to this path");
  parser.add_flag("paranoid", "audit kernel invariants after every event");
  if (!parser.parse(argc, argv)) return 0;

  const std::vector<std::pair<std::string, fluid::SchemeKind>> schemes{
      {"MTCD", fluid::SchemeKind::kMtcd},
      {"MTSD", fluid::SchemeKind::kMtsd},
      {"MFCD", fluid::SchemeKind::kMfcd},
      {"CMFSD rho=0.2", fluid::SchemeKind::kCmfsd},
  };
  const std::vector<double> kill_fractions{0.25, 0.5, 0.75};

  util::Table table({"scheme", "kill frac", "killed", "readmitted",
                     "queue peak", "time to recover", "unrecovered",
                     "online/file"});
  table.set_precision(4);
  std::vector<std::string> json_rows;

  for (const auto& [label, scheme] : schemes) {
    for (const double kill : kill_fractions) {
      sim::SimConfig config;
      config.scheme = scheme;
      config.num_files = static_cast<unsigned>(parser.get_int("k"));
      config.correlation = parser.get_double("p");
      config.visit_rate = parser.get_double("lambda0");
      config.rho = scheme == fluid::SchemeKind::kCmfsd ? 0.2 : 0.0;
      config.horizon = parser.get_double("horizon");
      config.warmup = config.horizon * 0.25;
      config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
      config.paranoid = parser.get_flag("paranoid");

      sim::ChurnBurstFault burst;
      burst.time = config.horizon * 0.5;
      burst.kill_fraction = kill;
      burst.progress_loss = 1.0;
      burst.backoff_rate = parser.get_double("backoff");
      config.faults.churn_bursts.push_back(burst);
      config.validate();

      const sim::SimResult r = sim::run_simulation(config);
      table.add_row({label, kill, static_cast<double>(r.downloads_killed),
                     static_cast<double>(r.readmissions),
                     static_cast<double>(r.readmission_queue_peak),
                     r.time_to_recover,
                     static_cast<double>(r.faults_unrecovered),
                     r.avg_online_per_file});
      char buf[512];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"scheme\": \"%s\", \"kill_fraction\": %.2f, "
          "\"downloads_killed\": %zu, \"readmissions\": %zu, "
          "\"readmission_queue_peak\": %zu, \"time_to_recover\": %.3f, "
          "\"faults_unrecovered\": %zu, \"avg_online_per_file\": %.4f, "
          "\"users\": %zu}",
          label.c_str(), kill, r.downloads_killed, r.readmissions,
          r.readmission_queue_peak, r.time_to_recover, r.faults_unrecovered,
          r.avg_online_per_file, r.total_users);
      json_rows.emplace_back(buf);
    }
  }

  bench::emit(table,
              "Churn-burst recovery sweep (single burst at horizon/2, "
              "full progress loss)",
              parser.get("csv"));
  std::cout << "\nReading: sequential schemes re-admit crashed peers into "
               "short per-file downloads and\nrecover quickly; concurrent "
               "schemes lose more aggregate progress per kill, and the\n"
               "re-admission wave is visible in the queue peak.\n";

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"benchmark\": \"bench/churn_sweep\",\n"
        << "  \"config\": {\"num_files\": " << parser.get_int("k")
        << ", \"correlation\": " << parser.get("p")
        << ", \"visit_rate\": " << parser.get("lambda0")
        << ", \"horizon\": " << parser.get("horizon")
        << ", \"burst_time\": \"horizon/2\", \"progress_loss\": 1.0"
        << ", \"backoff_rate\": " << parser.get("backoff")
        << ", \"seed\": " << parser.get_int("seed") << "},\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }
  return 0;
}
