// Reproduces Figure 4(a): the average online time per file under CMFSD
// over the (file correlation p, bandwidth ratio rho) grid.
//
// Paper shape: for every p the surface is minimised at rho = 0; the
// improvement over rho = 1 (which equals MFCD) grows with p. Each cell is
// an independent 65-state ODE steady-state solve, sharded across the
// thread pool (and cached with --cache-dir). The grid and claim checks
// live in the `btmf_tool reproduce` registry; see fig_common.h.
#include "fig_common.h"

int main(int argc, char** argv) {
  return btmf::bench::run_figure_bench("fig4a_cmfsd_surface", "fig4a", argc,
                                       argv);
}
