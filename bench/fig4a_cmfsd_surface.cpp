// Reproduces Figure 4(a): the average online time per file under CMFSD
// over the (file correlation p, bandwidth ratio rho) grid.
//
// Paper shape: for every p the surface is minimised at rho = 0; the
// improvement over rho = 1 (which equals MFCD) grows with p. Each cell is
// an independent 65-state ODE steady-state solve, run in parallel.
#include <vector>

#include "bench_util.h"
#include "btmf/core/experiments.h"
#include "btmf/util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "fig4a_cmfsd_surface",
      "Figure 4(a): CMFSD average online time per file over (p, rho)");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p-steps", "10", "number of p samples in (0, 1]");
  parser.add_option("rho-steps", "11", "number of rho samples in [0, 1]");
  if (!parser.parse(argc, argv)) return 0;

  core::ScenarioConfig base;
  base.num_files = static_cast<unsigned>(parser.get_int("k"));

  const auto np = static_cast<std::size_t>(parser.get_int("p-steps"));
  const auto nr = static_cast<std::size_t>(parser.get_int("rho-steps"));
  std::vector<double> ps, rhos;
  for (std::size_t s = 1; s <= np; ++s) {
    ps.push_back(static_cast<double>(s) / static_cast<double>(np));
  }
  for (std::size_t s = 0; s < nr; ++s) {
    rhos.push_back(static_cast<double>(s) / static_cast<double>(nr - 1));
  }

  util::Stopwatch timer;
  const util::Table table = core::fig4a_table(base, ps, rhos);
  bench::emit(table,
              "Figure 4(a) — CMFSD avg online time per file over (p, rho)",
              parser.get("csv"));
  std::cout << "\n(" << ps.size() * rhos.size()
            << " steady-state solves in " << timer.seconds() << " s)\n";
  return 0;
}
