// The CMFSD social dilemma, quantified (extension of Sec. 4.3).
//
// For population ratios rho_bar and correlations p, print a tagged
// class-K peer's download time when it conforms vs when it defects
// (rho_d = 1), the relative temptation, and the welfare anchor points.
// The structure this reveals: defection is a dominant strategy (the
// temptation column is positive everywhere except rho_bar = 1), yet a
// defector inside a generous population still finishes faster than
// anyone in the all-defect equilibrium — the textbook prisoner's-dilemma
// shape that motivates the paper's Adapt mechanism.
#include "bench_util.h"
#include "btmf/fluid/correlation.h"
#include "btmf/fluid/incentives.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "incentive_gap", "conform-vs-defect download times under CMFSD");
  parser.add_option("k", "10", "number of files K");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));

  util::Table table({"p", "population rho", "conform dl (class K)",
                     "defect dl (class K)", "temptation %",
                     "pool rate / mu"});
  table.set_precision(4);
  for (const double p : {0.3, 0.9}) {
    const fluid::CorrelationModel corr(k, p, 1.0);
    const auto rates = corr.system_entry_rates();
    for (const double rho_bar : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const fluid::IncentiveReport report =
          fluid::cmfsd_incentives(fluid::kPaperParams, rates, rho_bar);
      table.add_row({p, rho_bar, report.conforming_download[k - 1],
                     report.defecting_download[k - 1],
                     100.0 * report.temptation[k - 1],
                     report.pool_rate / fluid::kPaperParams.mu});
    }
  }
  bench::emit(table, "CMFSD incentive gap (tagged class-K peer)",
              parser.get("csv"));
  std::cout << "\nReading: positive temptation at every rho_bar < 1 makes "
               "defection dominant, while the\nconform column at rho_bar=0 "
               "vs rho_bar=1 shows what universal cooperation is worth — "
               "the\nclassic social dilemma the Adapt mechanism (Sec. 4.3) "
               "exists to police.\n";
  return 0;
}
