// Scale gate for the sharded kernel: a flash-crowd MTCD workload whose
// live population crosses ten million concurrent peer units, plus a
// thread-scaling projection of aggregate event throughput.
//
// Methodology (honest numbers on a small container)
// -------------------------------------------------
// This repository's CI box exposes a single CPU, so "events/s at T
// threads" cannot be measured directly. Instead the bench runs the
// sharded kernel inline (kernel_threads = 1), measures the run's CPU
// time with CLOCK_THREAD_CPUTIME_ID (exact for an inline run: every
// shard executes on the calling thread), apportions that CPU time across
// shards by their event counts (the `sim.kernel.shard<N>.events` obs
// counters), and projects the T-thread makespan with an LPT (longest
// processing time first) list schedule of the per-shard work onto T
// workers. Epoch barriers divide every shard's work uniformly, so the
// barrier-aware makespan equals the LPT makespan of the per-shard
// totals. The projection is a model, and BENCH_scale.json labels it as
// such; determinism (tests/sim/shard_determinism_test.cpp) guarantees
// the answer a real T-thread box computes is bit-identical — only the
// wall clock is projected here.
//
// --smoke shrinks the workload to a CI-sized run (seconds, no 10M
// claim) while still exercising every stage, including the JSON shape.
#include <ctime>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/obs/metrics.h"
#include "btmf/sim/simulator.h"

namespace {

/// CPU time of the calling thread, in seconds.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// LPT list-schedule makespan of `work` on `machines` workers.
double lpt_makespan(std::vector<double> work, unsigned machines) {
  std::sort(work.begin(), work.end(), std::greater<double>());
  std::vector<double> load(machines, 0.0);
  for (const double w : work) {
    *std::min_element(load.begin(), load.end()) += w;
  }
  return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "perf_scale", "Sharded-kernel scale gate: 10M+ peers, events/s vs threads");
  parser.add_option("shards", "8", "torrent shards for the measured run");
  parser.add_option("json", "", "dump the scale record as JSON to this path");
  parser.add_flag("smoke", "CI-sized run: seconds of work, no 10M-peer claim");
  if (!parser.parse(argc, argv)) return 0;

  const bool smoke = parser.get_flag("smoke");

  // Flash crowd: every user requests all K files (p = 1), arrivals are
  // hot, downloads are fast (hot upload capacity), and seeds linger
  // (mean seeding time 50 >> horizon - arrival), so the live population
  // climbs towards arrivals x K across the whole horizon while every
  // torrent still turns over completions (events on every shard).
  sim::SimConfig config;
  config.scheme = fluid::SchemeKind::kMtcd;
  config.num_files = 10;
  config.correlation = 1.0;
  config.visit_rate = smoke ? 100.0 : 29'000.0;
  config.fluid.mu = 1.0;      // ~2 time units per file download
  config.fluid.gamma = 0.02;  // mean seeding time 50: seeds pile up
  config.horizon = 60.0;
  config.warmup = 15.0;
  config.seed = 31337;
  config.shards = static_cast<unsigned>(parser.get_int("shards"));
  config.kernel_threads = 1;  // inline: thread CPU time covers every shard
  config.max_active_peers = 50'000'000;

  obs::MetricsRegistry metrics;
  config.obs.metrics = &metrics;

  bench::reset_peak_rss();
  const double cpu0 = thread_cpu_seconds();
  const sim::SimResult r = sim::run_simulation(config);
  const double cpu = thread_cpu_seconds() - cpu0;
  const std::size_t rss = bench::peak_rss_bytes();

  const obs::MetricsSnapshot snap = metrics.snapshot();
  std::vector<std::uint64_t> shard_events;
  for (unsigned s = 0;; ++s) {
    const auto it =
        snap.counters.find("sim.kernel.shard" + std::to_string(s) + ".events");
    if (it == snap.counters.end()) break;
    shard_events.push_back(it->second);
  }
  std::uint64_t shard_total = 0;
  for (const std::uint64_t e : shard_events) shard_total += e;

  // Apportion measured CPU across shards by event share, then project
  // the makespan for each thread count with an LPT list schedule.
  std::vector<double> shard_cpu;
  for (const std::uint64_t e : shard_events) {
    shard_cpu.push_back(shard_total == 0 ? 0.0
                                         : cpu * static_cast<double>(e) /
                                               static_cast<double>(shard_total));
  }

  util::Table table({"threads", "makespan s (LPT)", "events/s (model)"});
  table.set_precision(3);
  std::vector<std::string> scaling_rows;
  double prev_rate = 0.0;
  bool monotone = true;
  for (const unsigned threads : {1U, 2U, 4U}) {
    const double makespan = lpt_makespan(shard_cpu, threads);
    const double rate =
        makespan > 0.0 ? static_cast<double>(r.events_processed) / makespan
                       : 0.0;
    monotone = monotone && rate >= prev_rate;
    prev_rate = rate;
    table.add_row({static_cast<double>(threads), makespan, rate});
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"threads\": %u, \"makespan_s\": %.4f, "
                  "\"events_per_sec\": %.0f}",
                  threads, makespan, rate);
    scaling_rows.emplace_back(buf);
  }

  bench::emit(table, "Sharded kernel thread-scaling (LPT projection)",
              parser.get("csv"));
  std::printf("peak live peers : %zu%s\n", r.peak_live_peers,
              smoke ? " (smoke run; the 10M gate applies to full runs)" : "");
  std::printf("events          : %zu over %u shards\n", r.events_processed,
              config.shards);
  std::printf("serial CPU      : %.3f s   peak RSS: %.1f MiB\n", cpu,
              static_cast<double>(rss) / (1024.0 * 1024.0));

  bool ok = true;
  if (!smoke && r.peak_live_peers < 10'000'000) {
    std::fprintf(stderr, "FAIL: peak live peers %zu < 10M gate\n",
                 r.peak_live_peers);
    ok = false;
  }
  if (!monotone) {
    std::fprintf(stderr, "FAIL: modeled events/s not monotone in threads\n");
    ok = false;
  }

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n"
        << "  \"benchmark\": \"bench/perf_scale\",\n"
        << "  \"workload\": {\"scheme\": \"MTCD\", \"k\": "
        << config.num_files << ", \"p\": 1.0, \"lambda0\": "
        << config.visit_rate << ", \"gamma\": " << config.fluid.gamma
        << ", \"horizon\": " << config.horizon << ", \"seed\": "
        << config.seed << ", \"shards\": " << config.shards
        << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"peak_live_peers\": %zu,\n  \"events\": %zu,\n"
                  "  \"serial_cpu_s\": %.3f,\n  \"peak_rss_bytes\": %zu,\n",
                  r.peak_live_peers, r.events_processed, cpu, rss);
    out << buf;
    out << "  \"shard_events\": [";
    for (std::size_t s = 0; s < shard_events.size(); ++s) {
      out << (s == 0 ? "" : ", ") << shard_events[s];
    }
    out << "],\n"
        << "  \"thread_scaling\": [\n";
    for (std::size_t i = 0; i < scaling_rows.size(); ++i) {
      out << scaling_rows[i] << (i + 1 < scaling_rows.size() ? ",\n" : "\n");
    }
    out << "  ],\n"
        << "  \"methodology\": \"Inline run on one thread; CPU measured "
           "with CLOCK_THREAD_CPUTIME_ID, apportioned across shards by "
           "event count, T-thread makespan projected by LPT list "
           "schedule (epoch barriers split shard work uniformly). The "
           "simulation RESULT is bit-identical at any threads/shards "
           "setting; only the wall clock is modeled.\"\n"
        << "}\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }
  return ok ? 0 : 1;
}
