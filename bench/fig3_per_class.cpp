// Reproduces Figure 3: online time per file and download time per file
// for peers in classes 1..K under MTCD and MTSD, at p = 0.1 and p = 1.0.
//
// Paper shape: MTSD is flat (80 online / 60 download per file, all
// classes). Under MTCD the per-file online time falls with the class
// index (multi-file peers amortise the single seeding residence); at low
// p class-1 peers do worse than MTSD while high classes do better; at
// p = 1 every class does worse than MTSD. The grid and claim checks live
// in the `btmf_tool reproduce` registry; see fig_common.h.
#include "fig_common.h"

int main(int argc, char** argv) {
  return btmf::bench::run_figure_bench("fig3_per_class", "fig3", argc, argv);
}
