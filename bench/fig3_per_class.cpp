// Reproduces Figure 3: online time per file and download time per file
// for peers in classes 1..K under MTCD and MTSD, at p = 0.1 and p = 1.0.
//
// Paper shape: MTSD is flat (80 online / 60 download per file, all
// classes). Under MTCD the per-file online time falls with the class
// index (multi-file peers amortise the single seeding residence); at low
// p class-1 peers do worse than MTSD while high classes do better; at
// p = 1 every class does worse than MTSD.
#include <vector>

#include "bench_util.h"
#include "btmf/core/experiments.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "fig3_per_class",
      "Figure 3: per-class online/download time per file, MTCD vs MTSD");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p-low", "0.1", "low file correlation");
  parser.add_option("p-high", "1.0", "high file correlation");
  if (!parser.parse(argc, argv)) return 0;

  core::ScenarioConfig base;
  base.num_files = static_cast<unsigned>(parser.get_int("k"));
  const std::vector<double> ps{parser.get_double("p-low"),
                               parser.get_double("p-high")};

  const util::Table table = core::fig3_table(base, ps);
  bench::emit(table, "Figure 3 — per-class metrics, MTCD vs MTSD (fluid)",
              parser.get("csv"));
  return 0;
}
