// Adapt fixed points: fluid prediction vs agent-level simulation
// (extension — the paper proposes Adapt and defers its evaluation).
//
// For a sweep of cheater fractions f, solve the coupled CMFSD + rho
// fluid model (AdaptFluidModel) for the obedient peers' equilibrium rho
// and average online time, and compare against the simulator's measured
// mean departure rho. The qualitative prediction under test: rho*(f)
// rises from ~0 (everyone obedient) toward 1 (cheater-dominated), i.e.
// Adapt degenerates the system gracefully toward MFCD instead of letting
// obedient peers be exploited.
#include <vector>

#include "bench_util.h"
#include "btmf/fluid/adapt_fluid.h"
#include "btmf/fluid/correlation.h"
#include "btmf/sim/simulator.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "adapt_fixed_point", "Adapt equilibrium rho: fluid vs simulation");
  parser.add_option("k", "5", "number of files K");
  parser.add_option("p", "0.9", "file correlation");
  parser.add_option("horizon", "3500", "simulated time per replication");
  parser.add_option("reps", "3", "simulator replications per point");
  parser.add_option("seed", "99", "master RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));
  const fluid::CorrelationModel corr(k, parser.get_double("p"), 1.0);
  const auto rates = corr.system_entry_rates();

  util::Table table({"cheater frac", "fluid rho* (class K)",
                     "sim mean final rho", "fluid online/file",
                     "sim online/file"});
  table.set_precision(4);

  for (const double f : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const fluid::AdaptFluidModel model(fluid::kPaperParams, rates, f);
    const fluid::AdaptFluidEquilibrium eq = model.solve();

    sim::SimConfig config;
    config.scheme = fluid::SchemeKind::kCmfsd;
    config.num_files = k;
    config.correlation = parser.get_double("p");
    config.visit_rate = 1.0;
    config.cheater_fraction = f;
    config.adapt.enabled = true;
    config.horizon = parser.get_double("horizon");
    config.warmup = config.horizon * 0.3;
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    const sim::ReplicationSummary summary = sim::run_replications(
        config, static_cast<std::size_t>(parser.get_int("reps")));

    // Mean departure rho over multi-file classes, rate-weighted.
    double rho_sum = 0.0;
    double weight = 0.0;
    for (unsigned i = 2; i <= k; ++i) {
      const double rate = rates[i - 1];
      rho_sum += rate * summary.class_mean_final_rho[i - 1];
      weight += rate;
    }
    table.add_row({f, eq.rho[k - 1], weight > 0.0 ? rho_sum / weight : 0.0,
                   eq.avg_online_per_file, summary.mean_online_per_file});
  }

  bench::emit(table, "Adapt fixed point vs cheater fraction (K=5, p=0.9)",
              parser.get("csv"));
  return 0;
}
