// Heterogeneous (Zipf) file popularity ablation — extension toward the
// paper's future-work question of how files are correlated in practice.
//
// Zipf(s) catalogues at equal total demand (same mean request
// probability) for several skews s: per-torrent MTCD factors A_j, the
// popularity-weighted averages, CMFSD with the Poisson-binomial class
// rates, and an agent-level simulation cross-check on the headline
// number. Prediction: skew creates a hot/cold split — cold torrents are
// populated by peers whose bandwidth is split across many hot files, so
// their per-file factor grows — while the CMFSD global pool is nearly
// skew-insensitive.
#include <numeric>

#include "bench_util.h"
#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/hetero.h"
#include "btmf/fluid/metrics.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/strings.h"

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "popularity_skew", "Zipf popularity ablation: MTCD and CMFSD");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("mean-p", "0.5", "mean request probability");
  parser.add_option("horizon", "4000", "simulated time for the sim check");
  parser.add_option("seed", "23", "RNG seed");
  if (!parser.parse(argc, argv)) return 0;

  const unsigned k = static_cast<unsigned>(parser.get_int("k"));
  const double mean_p = parser.get_double("mean-p");

  util::Table table({"Zipf s", "hottest p", "coldest p",
                     "MTCD A (hot)", "MTCD A (cold)",
                     "MTCD online/file", "sim MTCD online/file",
                     "CMFSD rho=0 online/file"});
  table.set_precision(4);

  for (const double skew : {0.0, 0.5, 1.0, 1.5}) {
    const auto probs =
        fluid::HeterogeneousCatalog::zipf_profile(k, skew, mean_p);
    const fluid::HeterogeneousCatalog catalog(probs, 1.0);
    const fluid::HeteroMtcdReport mtcd =
        fluid::hetero_mtcd_report(fluid::kPaperParams, catalog);

    // CMFSD with the Poisson-binomial class rates (global pool: only
    // the class populations matter).
    const auto class_rates = catalog.system_class_rates();
    const fluid::CmfsdEquilibrium cmfsd =
        fluid::CmfsdModel(fluid::kPaperParams, class_rates, 0.0).solve();
    const double cmfsd_online =
        fluid::average_online_time_per_file(cmfsd.metrics, class_rates);

    // Agent-level cross-check of the MTCD headline (Little view of the
    // population totals would need per-torrent resolution; the sample
    // mean over completing users is the directly comparable number).
    sim::SimConfig config;
    config.scheme = fluid::SchemeKind::kMtcd;
    config.num_files = k;
    config.file_probs = probs;
    config.visit_rate = 1.0;
    config.horizon = parser.get_double("horizon");
    config.warmup = config.horizon * 0.25;
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    const sim::SimResult sim_result = sim::run_simulation(config);

    table.add_row({skew, probs.front(), probs.back(),
                   mtcd.per_torrent_factor.front(),
                   mtcd.per_torrent_factor.back(),
                   mtcd.avg_online_per_file,
                   sim_result.avg_online_per_file, cmfsd_online});
  }

  bench::emit(table,
              "Zipf popularity ablation at equal demand (K=" +
                  std::to_string(k) +
                  ", mean p=" + util::format_double(mean_p, 4) + ")",
              parser.get("csv"));
  return 0;
}
