// Throughput benchmark of the discrete-event simulator.
//
// Drives every scheme at a load heavy enough to hold >= 10^4 concurrent
// peers and reports raw event throughput plus the kernel's observability
// counters (rate-epoch invalidations, peak population, wall clock). The
// scenario is deliberately statistics-light: the point is events/sec at
// scale, not figure reproduction. `--json <path>` records the rows for
// regression tracking against the committed BENCH_sim.json baseline.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/stopwatch.h"

namespace {

struct Row {
  std::string label;
  btmf::fluid::SchemeKind scheme;
  double rho;
  double lambda_scale;  ///< per-scheme boost to hit comparable populations
};

}  // namespace

int main(int argc, char** argv) {
  using namespace btmf;
  util::ArgParser parser = bench::make_parser(
      "perf_sim", "Simulator event throughput at >= 10^4 concurrent peers");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.5", "file request correlation");
  parser.add_option("lambda0", "4.0", "base indexing-server visit rate");
  parser.add_option("horizon", "1200", "simulated time per run");
  parser.add_option("warmup", "300", "statistics warm-up time");
  parser.add_option("seed", "2025", "RNG seed");
  parser.add_option("json", "", "also dump rows as JSON to this path");
  if (!parser.parse(argc, argv)) return 0;

  // CMFSD and MTSD carry one active peer per user instead of one per
  // requested file, so they need a hotter arrival rate to reach the same
  // concurrent population as the virtual-peer schemes.
  const std::vector<Row> rows{
      {"MTCD", fluid::SchemeKind::kMtcd, 0.0, 1.0},
      {"MTSD", fluid::SchemeKind::kMtsd, 0.0, 5.0},
      {"MFCD", fluid::SchemeKind::kMfcd, 0.0, 1.0},
      {"CMFSD rho=0.2", fluid::SchemeKind::kCmfsd, 0.2, 5.0},
  };

  util::Table table({"scheme", "events", "wall s", "events/s", "peak peers",
                     "rate epochs", "users done", "peak RSS MiB"});
  table.set_precision(3);
  std::vector<std::string> json_rows;

  // Per-scheme peak RSS needs the water mark cleared between runs; when
  // the platform refuses, the column degrades to the process-lifetime
  // high water mark (monotone across rows).
  const bool rss_per_scheme = bench::reset_peak_rss();

  for (const Row& row : rows) {
    sim::SimConfig config;
    config.scheme = row.scheme;
    config.num_files = static_cast<unsigned>(parser.get_int("k"));
    config.correlation = parser.get_double("p");
    config.visit_rate = parser.get_double("lambda0") * row.lambda_scale;
    config.rho = row.rho;
    config.horizon = parser.get_double("horizon");
    config.warmup = parser.get_double("warmup");
    config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    config.max_active_peers = 4'000'000;

    if (rss_per_scheme) bench::reset_peak_rss();
    util::Stopwatch timer;
    const sim::SimResult r = sim::run_simulation(config);
    const double wall = timer.seconds();
    const double rate =
        wall > 0.0 ? static_cast<double>(r.events_processed) / wall : 0.0;
    const std::size_t rss = bench::peak_rss_bytes();
    const double rss_mib = static_cast<double>(rss) / (1024.0 * 1024.0);

    table.add_row({row.label, static_cast<double>(r.events_processed), wall,
                   rate, static_cast<double>(r.peak_live_peers),
                   static_cast<double>(r.rate_epochs),
                   static_cast<double>(r.total_users), rss_mib});
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"scheme\": \"%s\", \"events\": %zu, \"wall_s\": %.3f, "
                  "\"events_per_sec\": %.0f, \"peak_peers\": %zu, "
                  "\"rate_epochs\": %zu, \"users\": %zu, "
                  "\"peak_rss_bytes\": %zu, \"rss_per_scheme\": %s}",
                  row.label.c_str(), r.events_processed, wall, rate,
                  r.peak_live_peers, r.rate_epochs, r.total_users, rss,
                  rss_per_scheme ? "true" : "false");
    json_rows.emplace_back(buf);
  }

  bench::emit(table, "Simulator throughput (unified event kernel)",
              parser.get("csv"));

  const std::string json_path = parser.get("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      out << json_rows[i] << (i + 1 < json_rows.size() ? ",\n" : "\n");
    }
    out << "]\n";
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("(json saved to %s)\n", json_path.c_str());
  }
  return 0;
}
