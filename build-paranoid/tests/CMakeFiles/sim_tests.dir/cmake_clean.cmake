file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/abort_bandwidth_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/abort_bandwidth_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/adapt_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/adapt_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/chunk_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/chunk_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/cmfsd_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/cmfsd_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/config_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/config_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/determinism_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/determinism_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fault_kernel_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fault_kernel_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/fault_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/fault_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/hetero_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/hetero_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/multi_torrent_sim_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/multi_torrent_sim_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/rng_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/rng_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
