
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/abort_bandwidth_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/abort_bandwidth_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/abort_bandwidth_test.cpp.o.d"
  "/root/repo/tests/sim/adapt_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/adapt_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/adapt_test.cpp.o.d"
  "/root/repo/tests/sim/chunk_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/chunk_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/chunk_sim_test.cpp.o.d"
  "/root/repo/tests/sim/cmfsd_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/cmfsd_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/cmfsd_sim_test.cpp.o.d"
  "/root/repo/tests/sim/config_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/config_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/config_test.cpp.o.d"
  "/root/repo/tests/sim/determinism_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/determinism_test.cpp.o.d"
  "/root/repo/tests/sim/fault_kernel_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fault_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fault_kernel_test.cpp.o.d"
  "/root/repo/tests/sim/fault_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/fault_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/fault_sim_test.cpp.o.d"
  "/root/repo/tests/sim/hetero_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/hetero_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/hetero_sim_test.cpp.o.d"
  "/root/repo/tests/sim/multi_torrent_sim_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/multi_torrent_sim_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/multi_torrent_sim_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/core/CMakeFiles/btmf_core.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/sim/CMakeFiles/btmf_sim.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/fluid/CMakeFiles/btmf_fluid.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/math/CMakeFiles/btmf_math.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/parallel/CMakeFiles/btmf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
