
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parallel/parallel_for_test.cpp" "tests/CMakeFiles/parallel_tests.dir/parallel/parallel_for_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_tests.dir/parallel/parallel_for_test.cpp.o.d"
  "/root/repo/tests/parallel/seeds_test.cpp" "tests/CMakeFiles/parallel_tests.dir/parallel/seeds_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_tests.dir/parallel/seeds_test.cpp.o.d"
  "/root/repo/tests/parallel/thread_pool_test.cpp" "tests/CMakeFiles/parallel_tests.dir/parallel/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/parallel_tests.dir/parallel/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/core/CMakeFiles/btmf_core.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/sim/CMakeFiles/btmf_sim.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/fluid/CMakeFiles/btmf_fluid.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/math/CMakeFiles/btmf_math.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/parallel/CMakeFiles/btmf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
