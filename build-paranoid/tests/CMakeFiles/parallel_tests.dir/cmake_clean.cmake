file(REMOVE_RECURSE
  "CMakeFiles/parallel_tests.dir/parallel/parallel_for_test.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/parallel_for_test.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/seeds_test.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/seeds_test.cpp.o.d"
  "CMakeFiles/parallel_tests.dir/parallel/thread_pool_test.cpp.o"
  "CMakeFiles/parallel_tests.dir/parallel/thread_pool_test.cpp.o.d"
  "parallel_tests"
  "parallel_tests.pdb"
  "parallel_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
