# Empty compiler generated dependencies file for parallel_tests.
# This may be replaced when dependencies are built.
