# Empty compiler generated dependencies file for fluid_tests.
# This may be replaced when dependencies are built.
