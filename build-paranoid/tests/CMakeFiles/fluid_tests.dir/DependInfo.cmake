
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fluid/abort_aware_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/abort_aware_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/abort_aware_test.cpp.o.d"
  "/root/repo/tests/fluid/adapt_fluid_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/adapt_fluid_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/adapt_fluid_test.cpp.o.d"
  "/root/repo/tests/fluid/cmfsd_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/cmfsd_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/cmfsd_test.cpp.o.d"
  "/root/repo/tests/fluid/correlation_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/correlation_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/correlation_test.cpp.o.d"
  "/root/repo/tests/fluid/extended_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/extended_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/extended_test.cpp.o.d"
  "/root/repo/tests/fluid/hetero_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/hetero_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/hetero_test.cpp.o.d"
  "/root/repo/tests/fluid/incentives_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/incentives_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/incentives_test.cpp.o.d"
  "/root/repo/tests/fluid/metrics_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/metrics_test.cpp.o.d"
  "/root/repo/tests/fluid/mfcd_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/mfcd_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/mfcd_test.cpp.o.d"
  "/root/repo/tests/fluid/mtcd_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/mtcd_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/mtcd_test.cpp.o.d"
  "/root/repo/tests/fluid/mtsd_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/mtsd_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/mtsd_test.cpp.o.d"
  "/root/repo/tests/fluid/properties_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/properties_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/properties_test.cpp.o.d"
  "/root/repo/tests/fluid/randomized_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/randomized_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/randomized_test.cpp.o.d"
  "/root/repo/tests/fluid/single_torrent_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/single_torrent_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/single_torrent_test.cpp.o.d"
  "/root/repo/tests/fluid/transient_test.cpp" "tests/CMakeFiles/fluid_tests.dir/fluid/transient_test.cpp.o" "gcc" "tests/CMakeFiles/fluid_tests.dir/fluid/transient_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/core/CMakeFiles/btmf_core.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/sim/CMakeFiles/btmf_sim.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/fluid/CMakeFiles/btmf_fluid.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/math/CMakeFiles/btmf_math.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/parallel/CMakeFiles/btmf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
