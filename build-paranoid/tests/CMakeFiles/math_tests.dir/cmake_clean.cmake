file(REMOVE_RECURSE
  "CMakeFiles/math_tests.dir/math/equilibrium_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/equilibrium_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/matrix_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/matrix_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/newton_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/newton_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/ode_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/ode_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/roots_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/roots_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/special_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/special_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/stats_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/stats_test.cpp.o.d"
  "CMakeFiles/math_tests.dir/math/vec_test.cpp.o"
  "CMakeFiles/math_tests.dir/math/vec_test.cpp.o.d"
  "math_tests"
  "math_tests.pdb"
  "math_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/math_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
