# Empty compiler generated dependencies file for math_tests.
# This may be replaced when dependencies are built.
