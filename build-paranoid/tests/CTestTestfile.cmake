# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-paranoid/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-paranoid/tests/util_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/parallel_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/math_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/fluid_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/sim_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/core_tests[1]_include.cmake")
include("/root/repo/build-paranoid/tests/integration_tests[1]_include.cmake")
