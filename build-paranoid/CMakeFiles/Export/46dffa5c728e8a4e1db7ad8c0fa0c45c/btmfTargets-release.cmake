#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "btmf::btmf_util" for configuration "Release"
set_property(TARGET btmf::btmf_util APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_util PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_util.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_util )
list(APPEND _cmake_import_check_files_for_btmf::btmf_util "${_IMPORT_PREFIX}/lib/libbtmf_util.a" )

# Import target "btmf::btmf_parallel" for configuration "Release"
set_property(TARGET btmf::btmf_parallel APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_parallel PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_parallel.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_parallel )
list(APPEND _cmake_import_check_files_for_btmf::btmf_parallel "${_IMPORT_PREFIX}/lib/libbtmf_parallel.a" )

# Import target "btmf::btmf_math" for configuration "Release"
set_property(TARGET btmf::btmf_math APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_math PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_math.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_math )
list(APPEND _cmake_import_check_files_for_btmf::btmf_math "${_IMPORT_PREFIX}/lib/libbtmf_math.a" )

# Import target "btmf::btmf_fluid" for configuration "Release"
set_property(TARGET btmf::btmf_fluid APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_fluid PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_fluid.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_fluid )
list(APPEND _cmake_import_check_files_for_btmf::btmf_fluid "${_IMPORT_PREFIX}/lib/libbtmf_fluid.a" )

# Import target "btmf::btmf_sim" for configuration "Release"
set_property(TARGET btmf::btmf_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_sim.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_sim )
list(APPEND _cmake_import_check_files_for_btmf::btmf_sim "${_IMPORT_PREFIX}/lib/libbtmf_sim.a" )

# Import target "btmf::btmf_core" for configuration "Release"
set_property(TARGET btmf::btmf_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(btmf::btmf_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libbtmf_core.a"
  )

list(APPEND _cmake_import_check_targets btmf::btmf_core )
list(APPEND _cmake_import_check_files_for_btmf::btmf_core "${_IMPORT_PREFIX}/lib/libbtmf_core.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
