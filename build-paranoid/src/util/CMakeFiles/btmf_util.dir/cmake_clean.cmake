file(REMOVE_RECURSE
  "CMakeFiles/btmf_util.dir/src/cli.cpp.o"
  "CMakeFiles/btmf_util.dir/src/cli.cpp.o.d"
  "CMakeFiles/btmf_util.dir/src/logging.cpp.o"
  "CMakeFiles/btmf_util.dir/src/logging.cpp.o.d"
  "CMakeFiles/btmf_util.dir/src/strings.cpp.o"
  "CMakeFiles/btmf_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/btmf_util.dir/src/table.cpp.o"
  "CMakeFiles/btmf_util.dir/src/table.cpp.o.d"
  "libbtmf_util.a"
  "libbtmf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
