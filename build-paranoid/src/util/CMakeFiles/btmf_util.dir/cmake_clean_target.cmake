file(REMOVE_RECURSE
  "libbtmf_util.a"
)
