
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/src/cli.cpp" "src/util/CMakeFiles/btmf_util.dir/src/cli.cpp.o" "gcc" "src/util/CMakeFiles/btmf_util.dir/src/cli.cpp.o.d"
  "/root/repo/src/util/src/logging.cpp" "src/util/CMakeFiles/btmf_util.dir/src/logging.cpp.o" "gcc" "src/util/CMakeFiles/btmf_util.dir/src/logging.cpp.o.d"
  "/root/repo/src/util/src/strings.cpp" "src/util/CMakeFiles/btmf_util.dir/src/strings.cpp.o" "gcc" "src/util/CMakeFiles/btmf_util.dir/src/strings.cpp.o.d"
  "/root/repo/src/util/src/table.cpp" "src/util/CMakeFiles/btmf_util.dir/src/table.cpp.o" "gcc" "src/util/CMakeFiles/btmf_util.dir/src/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
