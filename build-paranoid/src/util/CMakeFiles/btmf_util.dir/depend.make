# Empty dependencies file for btmf_util.
# This may be replaced when dependencies are built.
