file(REMOVE_RECURSE
  "libbtmf_core.a"
)
