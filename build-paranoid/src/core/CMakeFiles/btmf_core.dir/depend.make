# Empty dependencies file for btmf_core.
# This may be replaced when dependencies are built.
