file(REMOVE_RECURSE
  "CMakeFiles/btmf_core.dir/src/evaluate.cpp.o"
  "CMakeFiles/btmf_core.dir/src/evaluate.cpp.o.d"
  "CMakeFiles/btmf_core.dir/src/experiments.cpp.o"
  "CMakeFiles/btmf_core.dir/src/experiments.cpp.o.d"
  "libbtmf_core.a"
  "libbtmf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
