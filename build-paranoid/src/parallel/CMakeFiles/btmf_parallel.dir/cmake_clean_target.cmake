file(REMOVE_RECURSE
  "libbtmf_parallel.a"
)
