# Empty dependencies file for btmf_parallel.
# This may be replaced when dependencies are built.
