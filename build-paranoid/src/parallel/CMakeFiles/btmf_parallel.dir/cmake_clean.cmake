file(REMOVE_RECURSE
  "CMakeFiles/btmf_parallel.dir/src/thread_pool.cpp.o"
  "CMakeFiles/btmf_parallel.dir/src/thread_pool.cpp.o.d"
  "libbtmf_parallel.a"
  "libbtmf_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
