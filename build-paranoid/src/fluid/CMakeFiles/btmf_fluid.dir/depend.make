# Empty dependencies file for btmf_fluid.
# This may be replaced when dependencies are built.
