file(REMOVE_RECURSE
  "CMakeFiles/btmf_fluid.dir/src/adapt_fluid.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/adapt_fluid.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/cmfsd.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/cmfsd.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/correlation.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/correlation.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/extended.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/extended.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/hetero.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/hetero.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/incentives.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/incentives.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/metrics.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/metrics.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/mfcd.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/mfcd.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/mtcd.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/mtcd.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/mtsd.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/mtsd.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/params.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/params.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/single_torrent.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/single_torrent.cpp.o.d"
  "CMakeFiles/btmf_fluid.dir/src/transient.cpp.o"
  "CMakeFiles/btmf_fluid.dir/src/transient.cpp.o.d"
  "libbtmf_fluid.a"
  "libbtmf_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
