file(REMOVE_RECURSE
  "libbtmf_fluid.a"
)
