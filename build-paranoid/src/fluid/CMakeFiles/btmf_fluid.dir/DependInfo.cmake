
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fluid/src/adapt_fluid.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/adapt_fluid.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/adapt_fluid.cpp.o.d"
  "/root/repo/src/fluid/src/cmfsd.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/cmfsd.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/cmfsd.cpp.o.d"
  "/root/repo/src/fluid/src/correlation.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/correlation.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/correlation.cpp.o.d"
  "/root/repo/src/fluid/src/extended.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/extended.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/extended.cpp.o.d"
  "/root/repo/src/fluid/src/hetero.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/hetero.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/hetero.cpp.o.d"
  "/root/repo/src/fluid/src/incentives.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/incentives.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/incentives.cpp.o.d"
  "/root/repo/src/fluid/src/metrics.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/metrics.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/metrics.cpp.o.d"
  "/root/repo/src/fluid/src/mfcd.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mfcd.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mfcd.cpp.o.d"
  "/root/repo/src/fluid/src/mtcd.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mtcd.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mtcd.cpp.o.d"
  "/root/repo/src/fluid/src/mtsd.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mtsd.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/mtsd.cpp.o.d"
  "/root/repo/src/fluid/src/params.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/params.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/params.cpp.o.d"
  "/root/repo/src/fluid/src/single_torrent.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/single_torrent.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/single_torrent.cpp.o.d"
  "/root/repo/src/fluid/src/transient.cpp" "src/fluid/CMakeFiles/btmf_fluid.dir/src/transient.cpp.o" "gcc" "src/fluid/CMakeFiles/btmf_fluid.dir/src/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/math/CMakeFiles/btmf_math.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
