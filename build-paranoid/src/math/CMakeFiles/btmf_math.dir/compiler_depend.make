# Empty compiler generated dependencies file for btmf_math.
# This may be replaced when dependencies are built.
