file(REMOVE_RECURSE
  "libbtmf_math.a"
)
