
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/src/equilibrium.cpp" "src/math/CMakeFiles/btmf_math.dir/src/equilibrium.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/equilibrium.cpp.o.d"
  "/root/repo/src/math/src/matrix.cpp" "src/math/CMakeFiles/btmf_math.dir/src/matrix.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/matrix.cpp.o.d"
  "/root/repo/src/math/src/newton.cpp" "src/math/CMakeFiles/btmf_math.dir/src/newton.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/newton.cpp.o.d"
  "/root/repo/src/math/src/ode.cpp" "src/math/CMakeFiles/btmf_math.dir/src/ode.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/ode.cpp.o.d"
  "/root/repo/src/math/src/roots.cpp" "src/math/CMakeFiles/btmf_math.dir/src/roots.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/roots.cpp.o.d"
  "/root/repo/src/math/src/special.cpp" "src/math/CMakeFiles/btmf_math.dir/src/special.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/special.cpp.o.d"
  "/root/repo/src/math/src/stats.cpp" "src/math/CMakeFiles/btmf_math.dir/src/stats.cpp.o" "gcc" "src/math/CMakeFiles/btmf_math.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
