file(REMOVE_RECURSE
  "CMakeFiles/btmf_math.dir/src/equilibrium.cpp.o"
  "CMakeFiles/btmf_math.dir/src/equilibrium.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/matrix.cpp.o"
  "CMakeFiles/btmf_math.dir/src/matrix.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/newton.cpp.o"
  "CMakeFiles/btmf_math.dir/src/newton.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/ode.cpp.o"
  "CMakeFiles/btmf_math.dir/src/ode.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/roots.cpp.o"
  "CMakeFiles/btmf_math.dir/src/roots.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/special.cpp.o"
  "CMakeFiles/btmf_math.dir/src/special.cpp.o.d"
  "CMakeFiles/btmf_math.dir/src/stats.cpp.o"
  "CMakeFiles/btmf_math.dir/src/stats.cpp.o.d"
  "libbtmf_math.a"
  "libbtmf_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
