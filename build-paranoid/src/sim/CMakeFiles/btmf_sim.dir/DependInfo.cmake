
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/chunk_sim.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/chunk_sim.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/chunk_sim.cpp.o.d"
  "/root/repo/src/sim/src/cmfsd_sim.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/cmfsd_sim.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/cmfsd_sim.cpp.o.d"
  "/root/repo/src/sim/src/event_kernel.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/event_kernel.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/event_kernel.cpp.o.d"
  "/root/repo/src/sim/src/faults.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/faults.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/faults.cpp.o.d"
  "/root/repo/src/sim/src/multi_torrent_sim.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/multi_torrent_sim.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/multi_torrent_sim.cpp.o.d"
  "/root/repo/src/sim/src/policy_cmfsd.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/policy_cmfsd.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/policy_cmfsd.cpp.o.d"
  "/root/repo/src/sim/src/policy_multi_torrent.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/policy_multi_torrent.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/policy_multi_torrent.cpp.o.d"
  "/root/repo/src/sim/src/simulator.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/simulator.cpp.o.d"
  "/root/repo/src/sim/src/stats.cpp" "src/sim/CMakeFiles/btmf_sim.dir/src/stats.cpp.o" "gcc" "src/sim/CMakeFiles/btmf_sim.dir/src/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-paranoid/src/fluid/CMakeFiles/btmf_fluid.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/math/CMakeFiles/btmf_math.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/parallel/CMakeFiles/btmf_parallel.dir/DependInfo.cmake"
  "/root/repo/build-paranoid/src/util/CMakeFiles/btmf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
