# Empty dependencies file for btmf_sim.
# This may be replaced when dependencies are built.
