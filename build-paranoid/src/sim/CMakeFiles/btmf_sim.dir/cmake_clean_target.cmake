file(REMOVE_RECURSE
  "libbtmf_sim.a"
)
