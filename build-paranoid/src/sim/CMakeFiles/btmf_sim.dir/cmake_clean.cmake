file(REMOVE_RECURSE
  "CMakeFiles/btmf_sim.dir/src/chunk_sim.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/chunk_sim.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/cmfsd_sim.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/cmfsd_sim.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/event_kernel.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/event_kernel.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/faults.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/faults.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/multi_torrent_sim.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/multi_torrent_sim.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/policy_cmfsd.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/policy_cmfsd.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/policy_multi_torrent.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/policy_multi_torrent.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/simulator.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/simulator.cpp.o.d"
  "CMakeFiles/btmf_sim.dir/src/stats.cpp.o"
  "CMakeFiles/btmf_sim.dir/src/stats.cpp.o.d"
  "libbtmf_sim.a"
  "libbtmf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btmf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
