#!/usr/bin/env bash
# End-to-end smoke of the serve daemon through the btmf_tool CLI:
#
#   1. start `btmf_tool serve` on a unix socket with a fresh cache
#   2. fire concurrent duplicate queries (coalescing window) + a warm
#      repeat, and assert the serve.* metrics prove what happened:
#      exactly one backend evaluation for the duplicates, at least one
#      cache hit for the repeat
#   3. fire queries, then SIGTERM the daemon mid-load and assert it
#      drains: every in-flight query still gets its answer, the daemon
#      exits 0, and the socket file is gone
#
# Usage: scripts/serve_smoke.sh <path-to-btmf_tool> <scratch-dir>
set -euo pipefail

TOOL=${1:?usage: serve_smoke.sh <btmf_tool> <scratch-dir>}
SCRATCH=${2:?usage: serve_smoke.sh <btmf_tool> <scratch-dir>}

rm -rf "$SCRATCH"
mkdir -p "$SCRATCH"
SOCK="$SCRATCH/daemon.sock"
CACHE="$SCRATCH/cache"

"$TOOL" serve --listen "unix:$SOCK" --cache-dir "$CACHE" \
  > "$SCRATCH/serve.log" 2>&1 &
DAEMON=$!
trap 'kill -9 $DAEMON 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "FAIL: daemon never bound $SOCK"; cat "$SCRATCH/serve.log"; exit 1; }

"$TOOL" query --connect "unix:$SOCK" --ping

# --- concurrent duplicates: one computation, N answers ----------------------
PIDS=()
for i in $(seq 1 8); do
  "$TOOL" query --connect "unix:$SOCK" --backend kernel-sim \
    --scheme cmfsd --p 0.9 --rho 0.1 --lambda0 20 --horizon 15000 --seed 7 \
    > "$SCRATCH/dup.$i.out" 2>&1 &
  PIDS+=($!)
done
for pid in "${PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: a duplicate query failed"; cat "$SCRATCH"/dup.*.out; exit 1; }
done
# All eight answers must be identical (the coalescing contract), modulo
# the [computed]/[coalesced]/[cache hit] provenance tag on line 1.
for i in $(seq 2 8); do
  diff <(tail -n +2 "$SCRATCH/dup.1.out") <(tail -n +2 "$SCRATCH/dup.$i.out") \
    || { echo "FAIL: duplicate query $i answered differently"; exit 1; }
done

# Warm repeat: must be served from the cache.
"$TOOL" query --connect "unix:$SOCK" --backend kernel-sim \
  --scheme cmfsd --p 0.9 --rho 0.1 --lambda0 20 --horizon 15000 --seed 7 \
  | grep -q "cache hit" || { echo "FAIL: warm repeat was not a cache hit"; exit 1; }

"$TOOL" query --connect "unix:$SOCK" --stats > "$SCRATCH/stats.json"
python3 - "$SCRATCH/stats.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
evals = counters["serve.evaluations"]
hits = counters["serve.cache_hit"]
coalesced = counters["serve.coalesced"]
assert evals == 1, f"8 duplicate queries cost {evals} evaluations, want 1"
assert hits >= 1, f"warm repeat did not hit the cache (hits={hits})"
assert coalesced + hits >= 7, (
    f"duplicates neither coalesced nor cache-served "
    f"(coalesced={coalesced}, hits={hits})")
print(f"metrics ok: evaluations={evals} coalesced={coalesced} hits={hits}")
EOF

# --- SIGTERM drain: in-flight queries keep their answers --------------------
PIDS=()
for i in $(seq 1 4); do
  "$TOOL" query --connect "unix:$SOCK" --backend kernel-sim \
    --scheme cmfsd --p 0.5 --rho 0.2 --lambda0 20 --horizon 8000 --seed "$((100 + i))" \
    > "$SCRATCH/drain.$i.out" 2>&1 &
  PIDS+=($!)
done
sleep 0.2  # let the queries reach the daemon before the TERM
kill -TERM "$DAEMON"
for pid in "${PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: an in-flight query lost its response to the drain"; cat "$SCRATCH"/drain.*.out; exit 1; }
done
wait "$DAEMON" || { echo "FAIL: daemon did not exit cleanly after SIGTERM"; cat "$SCRATCH/serve.log"; exit 1; }
trap - EXIT
[ ! -e "$SOCK" ] || { echo "FAIL: drain left the socket file behind"; exit 1; }

echo "PASS: serve smoke (coalescing, cache hits, SIGTERM drain)"
