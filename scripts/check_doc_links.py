#!/usr/bin/env python3
"""Check relative links, anchors and the docs map in the markdown docs.

Scans the top-level markdown files and everything under docs/ for
markdown-style links `[text](target)` and fails (exit 1) if:

* a relative target does not exist on disk;
* a `#fragment` (in-page or `path#fragment`) does not match any heading
  in the target file, using GitHub's slug rules (lowercase, punctuation
  stripped, spaces to hyphens, `-N` suffixes for duplicates);
* a file under docs/*.md is not linked from README.md's documentation
  index — the map must stay complete.

External links (http/https/mailto) are skipped. Run from anywhere:
paths resolve against the repo root (the parent of this script's
directory).

Usage: python3 scripts/check_doc_links.py [extra files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Files whose links must resolve. ISSUE/PAPERS/SNIPPETS are working notes
# with external or illustrative references, so they are not checked.
DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
]

# [text](target) — target must not contain spaces or nested parens.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
# Fenced code blocks: links inside them are illustrative, not navigational.
FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor for a heading: strip markup/punctuation, lowercase,
    spaces to hyphens."""
    # Drop inline code/emphasis markers and links, keep the text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "").replace("_", " ")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def iter_lines_outside_fences(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield lineno, line


def heading_anchors(path: Path) -> set[str]:
    """All valid fragment targets in a file (with GitHub's -N dedup)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for _, line in iter_lines_outside_fences(path):
        match = HEADING_RE.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    """Yield (line_number, target) for every markdown link outside code fences."""
    for lineno, line in iter_lines_outside_fences(path):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path, anchor_cache: dict[Path, set[str]]) -> list[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        resolved = (path.parent / file_part).resolve() if file_part else path
        rel = path.relative_to(REPO_ROOT)
        if not resolved.exists():
            errors.append(f"{rel}:{lineno}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if resolved not in anchor_cache:
                anchor_cache[resolved] = heading_anchors(resolved)
            if fragment.lower() not in anchor_cache[resolved]:
                errors.append(
                    f"{rel}:{lineno}: broken anchor -> {target} "
                    f"(no such heading in {resolved.name})")
    return errors


def check_readme_docs_map(readme: Path) -> list[str]:
    """Every docs/*.md must be linked from README.md."""
    linked = set()
    for _, target in iter_links(readme):
        file_part = target.partition("#")[0]
        if file_part:
            linked.add((readme.parent / file_part).resolve())
    errors = []
    for doc in sorted((REPO_ROOT / "docs").glob("*.md")):
        if doc.resolve() not in linked:
            errors.append(
                f"README.md: docs map is incomplete — docs/{doc.name} "
                f"is not linked (add it to the documentation index)")
    return errors


def main(argv: list[str]) -> int:
    docs = [REPO_ROOT / name for name in DEFAULT_DOCS]
    docs += sorted((REPO_ROOT / "docs").glob("*.md"))
    docs += [Path(arg).resolve() for arg in argv[1:]]

    errors = []
    checked = 0
    anchor_cache: dict[Path, set[str]] = {}
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: file listed for checking does not exist")
            continue
        checked += 1
        errors.extend(check_file(doc, anchor_cache))
    errors.extend(check_readme_docs_map(REPO_ROOT / "README.md"))

    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} problems)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
