#!/usr/bin/env python3
"""Check relative links in the repo's markdown docs.

Scans the top-level markdown files and everything under docs/ for
markdown-style links `[text](target)` and fails (exit 1) if a relative
target does not exist on disk. External links (http/https/mailto) and
pure in-page anchors (#...) are skipped; a `path#anchor` target is
checked for the path part only.

Run from anywhere: paths resolve against the repo root (the parent of
this script's directory).

Usage: python3 scripts/check_doc_links.py [extra files...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Files whose links must resolve. ISSUE/PAPERS/SNIPPETS are working notes
# with external or illustrative references, so they are not checked.
DEFAULT_DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
]

# [text](target) — target must not contain spaces or nested parens.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")
# Fenced code blocks: links inside them are illustrative, not navigational.
FENCE_RE = re.compile(r"^(```|~~~)")


def iter_links(path: Path):
    """Yield (line_number, target) for every markdown link outside code fences."""
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> list[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:  # pure in-page anchor
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            rel = path.relative_to(REPO_ROOT)
            errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    docs = [REPO_ROOT / name for name in DEFAULT_DOCS]
    docs += sorted((REPO_ROOT / "docs").glob("*.md"))
    docs += [Path(arg).resolve() for arg in argv[1:]]

    errors = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: file listed for checking does not exist")
            continue
        checked += 1
        errors.extend(check_file(doc))

    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {checked} files: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken links)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
