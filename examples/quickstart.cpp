// Quickstart: the one-call public API.
//
// Evaluates all four multiple-file downloading schemes at the paper's
// evaluation constants (K = 10 files, mu = 0.02, eta = 0.5, gamma = 0.05)
// for a chosen file correlation p, and prints the comparison the paper's
// Section 4 draws: sequential beats concurrent, and collaborative
// sequential (CMFSD, rho = 0) beats everything when files are correlated.
//
//   ./quickstart            # p = 0.9
//   ./quickstart --p 0.3    # any correlation in (0, 1]
//
// Pass --metrics-out / --trace-out / --sample-dt to also run a short
// CMFSD swarm simulation with the btmf::obs telemetry sinks attached
// (see docs/OBSERVABILITY.md).
#include <iostream>
#include <optional>

#include "btmf/core/evaluate.h"
#include "btmf/obs/sink.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/cli.h"
#include "btmf/util/error.h"
#include "btmf/util/table.h"

int main(int argc, char** argv) try {
  using namespace btmf;
  util::ArgParser parser("quickstart",
                         "compare all four downloading schemes at the "
                         "paper's constants");
  parser.add_option("p", "0.9", "file correlation in (0, 1]");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("metrics-out", "",
                    "also simulate CMFSD and write metrics JSON here");
  parser.add_option("trace-out", "",
                    "also simulate CMFSD and write a Chrome trace here");
  parser.add_option("sample-dt", "0",
                    "time-series sampling cadence (0 = horizon / 512)");
  if (!parser.parse(argc, argv)) return 0;

  const long long k = parser.get_int("k");
  if (k < 1) throw ConfigError("--k must be >= 1");
  core::ScenarioConfig scenario;  // paper defaults: mu/eta/gamma
  scenario.num_files = static_cast<unsigned>(k);
  scenario.correlation = parser.get_double("p");
  scenario.validate();

  util::Table table({"scheme", "avg online time/file", "avg download/file",
                     "vs MTSD"});
  table.set_precision(4);

  core::EvaluateOptions generous;
  generous.rho = 0.0;  // the paper's recommended CMFSD setting
  const double mtsd_baseline =
      core::evaluate_scheme(scenario, fluid::SchemeKind::kMtsd)
          .avg_online_per_file;

  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
    const core::SchemeReport report =
        core::evaluate_scheme(scenario, scheme, generous);
    table.add_row({std::string(fluid::to_string(scheme)),
                   report.avg_online_per_file, report.avg_download_per_file,
                   report.avg_online_per_file / mtsd_baseline});
  }

  std::cout << "Scenario: K = " << scenario.num_files
            << " interest-correlated files, correlation p = "
            << scenario.correlation << "\n(CMFSD uses rho = 0, the paper's "
            << "recommended collaborative setting)\n\n";
  table.write_pretty(std::cout);
  std::cout << "\nReading: under MTCD/MFCD a class-i user splits bandwidth "
               "i ways, so correlated demand\ninflates everyone's time; "
               "CMFSD turns finished downloaders into partial seeds and "
               "wins\nby a wide margin when p is high.\n";

  // Optional telemetry tour: a short CMFSD swarm run with obs sinks.
  const std::string metrics_out = parser.get("metrics-out");
  const std::string trace_out = parser.get("trace-out");
  if (!metrics_out.empty() || !trace_out.empty()) {
    if (!metrics_out.empty()) obs::require_writable_path(metrics_out);
    if (!trace_out.empty()) obs::require_writable_path(trace_out);
    obs::MetricsRegistry metrics;
    obs::TimeSeriesRecorder recorder;
    std::optional<obs::TraceWriter> trace;
    sim::SimConfig config;
    config.scheme = fluid::SchemeKind::kCmfsd;
    config.num_files = scenario.num_files;
    config.correlation = scenario.correlation;
    config.horizon = 1000.0;
    config.warmup = 250.0;
    config.obs.metrics = &metrics;
    config.obs.recorder = &recorder;
    if (!trace_out.empty()) {
      trace.emplace("quickstart");
      config.obs.trace = &*trace;
    }
    config.obs.sample_dt = parser.get_double("sample-dt");
    config.validate();
    const sim::SimResult r = sim::run_simulation(config);
    std::cout << "\nTelemetry demo: CMFSD simulation to t = "
              << config.horizon << " processed " << r.events_processed
              << " events.\n";
    if (!metrics_out.empty()) {
      const obs::MetricsSnapshot snapshot = metrics.snapshot();
      obs::write_combined_json(metrics_out, &snapshot, &recorder);
      std::cout << "metrics + series written to " << metrics_out << '\n';
    }
    if (trace.has_value()) {
      trace->write_file(trace_out);
      std::cout << "trace written to " << trace_out << '\n';
    }
  }
  return 0;
} catch (const btmf::Error& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
