// Scenario example: watching the Adapt mechanism defend obedient peers.
//
// Runs the CMFSD swarm simulator twice — once with everyone obedient and
// once with a configurable fraction of cheaters who never virtual-seed —
// and prints how the obedient peers' bandwidth-allocation ratio rho
// evolves (the paper's Sec. 4.3 mechanism: start generous at rho = 0,
// self-protect when uploading much more through virtual seeds than
// receiving).
//
//   ./adapt_demo --cheaters 0.8
#include <iostream>

#include "btmf/sim/simulator.h"
#include "btmf/util/cli.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"
#include "btmf/util/table.h"

namespace {

btmf::sim::SimResult run(double cheaters, const btmf::util::ArgParser& args) {
  const long long k = args.get_int("k");
  if (k < 1) throw btmf::ConfigError("--k must be >= 1");
  btmf::sim::SimConfig config;
  config.scheme = btmf::fluid::SchemeKind::kCmfsd;
  config.num_files = static_cast<unsigned>(k);
  config.correlation = args.get_double("p");
  config.visit_rate = 1.0;
  config.horizon = args.get_double("horizon");
  config.warmup = config.horizon * 0.25;
  config.cheater_fraction = cheaters;
  config.adapt.enabled = true;
  config.seed = 123;
  config.validate();
  return btmf::sim::run_simulation(config);
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace btmf;
  util::ArgParser parser("adapt_demo",
                         "watch obedient peers adapt rho under cheating");
  parser.add_option("cheaters", "0.8",
                    "fraction of multi-file users who never virtual-seed");
  parser.add_option("k", "5", "number of files in the torrent");
  parser.add_option("p", "0.9", "file correlation");
  parser.add_option("horizon", "3000", "simulated time");
  if (!parser.parse(argc, argv)) return 0;

  const double cheaters = parser.get_double("cheaters");
  std::cout << "Running the honest swarm..." << std::endl;
  const sim::SimResult honest = run(0.0, parser);
  std::cout << "Running the swarm with " << cheaters * 100
            << "% cheaters..." << std::endl;
  const sim::SimResult cheated = run(cheaters, parser);

  util::Table summary({"swarm", "avg online/file", "final mean rho"});
  summary.set_precision(4);
  summary.add_row({std::string("all obedient"), honest.avg_online_per_file,
                   honest.rho_trajectory_mean.empty()
                       ? 0.0
                       : honest.rho_trajectory_mean.back()});
  summary.add_row({std::string("with cheaters"), cheated.avg_online_per_file,
                   cheated.rho_trajectory_mean.empty()
                       ? 0.0
                       : cheated.rho_trajectory_mean.back()});
  std::cout << '\n';
  summary.write_pretty(std::cout);

  std::cout << "\nObedient peers' mean rho over time (cheated swarm):\n";
  const auto& times = cheated.rho_trajectory_time;
  const auto& rhos = cheated.rho_trajectory_mean;
  const std::size_t stride = std::max<std::size_t>(1, times.size() / 20);
  for (std::size_t s = 0; s < times.size(); s += stride) {
    const int bars = static_cast<int>(rhos[s] * 50.0);
    std::cout << "  t=" << util::format_double(times[s], 5) << "  "
              << std::string(static_cast<std::size_t>(bars), '#') << ' '
              << util::format_double(rhos[s], 3) << '\n';
  }
  std::cout << "\nWhen contributions through virtual seeds persistently "
               "exceed receipts, Adapt raises rho\n(less donation); a "
               "cheater-dominated swarm drives obedient peers toward "
               "rho = 1,\ndegenerating CMFSD into MFCD — exactly the "
               "paper's predicted failure mode.\n";
  return 0;
} catch (const btmf::Error& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
