// Scenario example: a BitTorrent client deciding how to schedule a user's
// download queue.
//
// The user queued n files from a catalogue of K correlated files. The
// advisor compares "start them all now" (MTCD — what most clients do)
// against "download one at a time" (MTSD) from the *user's own class*
// perspective, in the fluid model, then confirms the fluid numbers with a
// short discrete-event simulation of the whole swarm.
//
//   ./client_advisor --queued 4 --k 10 --p 0.5
#include <iostream>

#include "btmf/core/evaluate.h"
#include "btmf/sim/simulator.h"
#include "btmf/util/cli.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"
#include "btmf/util/table.h"

int main(int argc, char** argv) try {
  using namespace btmf;
  util::ArgParser parser("client_advisor",
                         "concurrent or sequential? advice for a user's "
                         "download queue");
  parser.add_option("queued", "4", "files in the user's queue (class i)");
  parser.add_option("k", "10", "catalogue size K");
  parser.add_option("p", "0.5", "estimated file correlation");
  parser.add_flag("no-sim", "skip the confirming simulation");
  if (!parser.parse(argc, argv)) return 0;

  const long long raw_queued = parser.get_int("queued");
  const long long raw_k = parser.get_int("k");
  if (raw_k < 1) throw ConfigError("--k must be >= 1");
  if (raw_queued < 1 || raw_queued > raw_k) {
    throw ConfigError("--queued must lie in [1, K]");
  }
  const unsigned queued = static_cast<unsigned>(raw_queued);
  core::ScenarioConfig scenario;
  scenario.num_files = static_cast<unsigned>(raw_k);
  scenario.correlation = parser.get_double("p");
  scenario.validate();

  const auto mtcd = core::evaluate_scheme(scenario, fluid::SchemeKind::kMtcd);
  const auto mtsd = core::evaluate_scheme(scenario, fluid::SchemeKind::kMtsd);
  const unsigned idx = queued - 1;

  util::Table table({"strategy", "your online time (all files + seeding)",
                     "your download time", "per file online"});
  table.set_precision(4);
  table.add_row({std::string("concurrent (MTCD)"),
                 mtcd.per_class.online_time[idx],
                 mtcd.per_class.download_time[idx],
                 mtcd.per_class.online_per_file[idx]});
  table.add_row({std::string("sequential (MTSD)"),
                 mtsd.per_class.online_time[idx],
                 mtsd.per_class.download_time[idx],
                 mtsd.per_class.online_per_file[idx]});

  std::cout << "You queued " << queued << " of " << scenario.num_files
            << " files (correlation p = " << scenario.correlation << ")\n\n";
  table.write_pretty(std::cout);

  const bool concurrent_wins =
      mtcd.per_class.online_time[idx] < mtsd.per_class.online_time[idx];
  std::cout << "\nAdvice for YOU: "
            << (concurrent_wins ? "concurrent finishes your queue sooner "
                                  "(you amortise one seeding residence)"
                                : "sequential finishes your queue sooner")
            << ".\nAdvice for the SWARM: sequential — the system-wide "
               "average online time per file is "
            << util::format_double(mtcd.avg_online_per_file, 4)
            << " under MTCD vs "
            << util::format_double(mtsd.avg_online_per_file, 4)
            << " under MTSD.\n";

  if (!parser.get_flag("no-sim")) {
    std::cout << "\nConfirming with a discrete-event swarm simulation "
                 "(this takes a few seconds)...\n";
    sim::SimConfig config;
    config.num_files = scenario.num_files;
    config.correlation = scenario.correlation;
    config.visit_rate = 1.0;
    config.horizon = 4000.0;
    config.warmup = 1000.0;
    config.scheme = fluid::SchemeKind::kMtcd;
    const sim::SimResult mtcd_sim = sim::run_simulation(config);
    config.scheme = fluid::SchemeKind::kMtsd;
    const sim::SimResult mtsd_sim = sim::run_simulation(config);
    std::cout << "  simulated avg online/file: MTCD = "
              << util::format_double(mtcd_sim.avg_online_per_file, 4)
              << ", MTSD = "
              << util::format_double(mtsd_sim.avg_online_per_file, 4)
              << " (fluid said "
              << util::format_double(mtcd.avg_online_per_file, 4) << " / "
              << util::format_double(mtsd.avg_online_per_file, 4) << ")\n";
  }
  return 0;
} catch (const btmf::Error& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
