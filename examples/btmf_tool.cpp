// btmf_tool — command-line front end for the whole library.
//
//   btmf_tool evaluate --scheme cmfsd --p 0.9 --rho 0.1   fluid steady state
//   btmf_tool simulate --scheme mtsd --p 0.5              agent-level swarm
//   btmf_tool sweep --scheme cmfsd --rho 0.0              online time vs p
//   btmf_tool adapt --cheaters 0.5                        Adapt fixed point
//   btmf_tool reproduce [--figure fig2]                   paper-vs-measured
//
// evaluate, simulate and sweep all run through the btmf::model backend
// layer: one ScenarioSpec built from the shared CLI options, dispatched
// to any registered backend via --backend (see --list-backends and
// docs/BACKENDS.md). Every subcommand accepts --help.
#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "btmf/core/version.h"
#include "btmf/fluid/adapt_fluid.h"
#include "btmf/model/backend.h"
#include "btmf/obs/sink.h"
#include "btmf/robust/escalate.h"
#include "btmf/robust/failure.h"
#include "btmf/robust/isolate.h"
#include "btmf/robust/supervisor.h"
#include "btmf/serve/client.h"
#include "btmf/serve/daemon.h"
#include "btmf/serve/protocol.h"
#include "btmf/sim/faults.h"
#include "btmf/sim/simulator.h"
#include "btmf/sweep/cache.h"
#include "btmf/sweep/reproduce.h"
#include "btmf/sweep/sweep.h"
#include "btmf/util/cli.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"
#include "btmf/util/table.h"

namespace {

using namespace btmf;

void require(bool ok, const std::string& msg) {
  if (!ok) throw ConfigError(msg);
}

/// Reads an integral option that denotes a count. The range check runs on
/// the raw int: casting a negative value first would wrap it to a huge
/// unsigned that sails past every downstream `>= 1` validation.
unsigned positive_count(const util::ArgParser& parser,
                        const std::string& name) {
  const long long raw = parser.get_int(name);
  require(raw >= 1, "--" + name + " must be >= 1 (got " +
                        std::to_string(raw) + ")");
  return static_cast<unsigned>(raw);
}

/// The shared spec options of evaluate / simulate / sweep. `backend_default`
/// is the subcommand's natural evaluator; any registered backend works.
void add_spec_options(util::ArgParser& parser,
                      const std::string& backend_default) {
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.9", "file correlation in [0, 1]");
  parser.add_option("lambda0", "1.0", "indexing-server visit rate");
  parser.add_option("mu", "0.02", "peer upload bandwidth");
  parser.add_option("eta", "0.5", "downloader sharing efficiency");
  parser.add_option("gamma", "0.05", "seed departure rate");
  parser.add_option("scheme", "cmfsd", "mtcd|mtsd|mfcd|cmfsd");
  parser.add_option("rho", "0.0", "CMFSD bandwidth split");
  parser.add_option("arrival", "poisson",
                    "arrival process: poisson | "
                    "diurnal,<amp>,<period>,<phase> | "
                    "flash,<t0>,<width>,<boost>,<interval>,<pulses>");
  parser.add_option("classes", "",
                    "bandwidth classes as weight,up_scale,down_cap|... "
                    "(empty = homogeneous)");
  parser.add_option("backend", backend_default,
                    "evaluator: fluid-equilibrium|fluid-transient|"
                    "kernel-sim|chunk-sim|stochastic-epidemic");
  parser.add_option("shards", "1",
                    "torrent shards for the sharded kernel (kernel-sim, "
                    "decomposable schemes; bit-identical for any value)");
  parser.add_option("kernel-threads", "1",
                    "worker threads driving the shards (0 = one per core)");
  parser.add_flag("list-backends",
                  "print the backend capability table and exit");
}

/// The one spec-from-CLI builder shared by evaluate / simulate / sweep.
model::ScenarioSpec spec_from_cli(const util::ArgParser& parser) {
  model::ScenarioSpec spec;
  spec.num_files = positive_count(parser, "k");
  spec.correlation = parser.get_double("p");
  spec.visit_rate = parser.get_double("lambda0");
  spec.fluid.mu = parser.get_double("mu");
  spec.fluid.eta = parser.get_double("eta");
  spec.fluid.gamma = parser.get_double("gamma");
  spec.scheme = fluid::scheme_from_string(parser.get("scheme"));
  spec.rho = parser.get_double("rho");
  spec.arrival = fluid::parse_arrival(parser.get("arrival"));
  if (!parser.get("classes").empty()) {
    spec.bandwidth_classes = fluid::parse_classes(parser.get("classes"));
  }
  spec.shards = static_cast<unsigned>(positive_count(parser, "shards"));
  const long long threads = parser.get_int("kernel-threads");
  require(threads >= 0, "--kernel-threads must be non-negative");
  spec.kernel_threads = static_cast<unsigned>(threads);
  return spec;
}

std::string scheme_list(const model::BackendCapabilities& caps) {
  std::string out;
  for (const fluid::SchemeKind scheme :
       {fluid::SchemeKind::kMtcd, fluid::SchemeKind::kMtsd,
        fluid::SchemeKind::kMfcd, fluid::SchemeKind::kCmfsd}) {
    if (!caps.supports_scheme(scheme)) continue;
    if (!out.empty()) out += ',';
    out += std::string(fluid::to_string(scheme));
  }
  return out;
}

int list_backends() {
  const auto yn = [](bool v) { return std::string(v ? "yes" : "-"); };
  util::Table table({"backend", "schemes", "max K", "kind", "p=0",
                     "rho/class", "demand", "pieces", "adapt", "cheaters",
                     "aborts", "faults", "extras"});
  for (const model::Backend* backend : model::backend_registry()) {
    const model::BackendCapabilities caps = backend->capabilities();
    std::string extras;
    if (caps.trajectory) extras += "trajectory ";
    if (caps.sim_counters) extras += "sim-counters ";
    if (!extras.empty()) extras.pop_back();
    std::string demand;
    if (caps.arrivals_time_varying) demand += "lambda(t) ";
    if (caps.bandwidth_classes) demand += "classes ";
    if (!demand.empty()) demand.pop_back();
    table.add_row({std::string(backend->name()), scheme_list(caps),
                   caps.max_files == 0 ? std::string("-")
                                       : std::to_string(caps.max_files),
                   std::string(caps.monte_carlo ? "monte-carlo"
                                                : "deterministic"),
                   yn(caps.zero_correlation), yn(caps.rho_per_class),
                   demand.empty() ? "-" : demand,
                   yn(caps.piece_policies), yn(caps.adapt), yn(caps.cheaters),
                   yn(caps.aborts), yn(caps.faults),
                   extras.empty() ? "-" : extras});
  }
  table.write_pretty(std::cout);
  std::cout << "\nspecs outside a backend's declared capabilities return a "
               "typed 'unsupported'\noutcome, never a crash; see "
               "docs/BACKENDS.md.\n";
  return 0;
}

/// The chunk-level substrate's own measurements: the emergent sharing
/// efficiency, and at K > 1 the per-torrent (per-file) breakdown.
void print_chunk_details(const sim::ChunkSimResult& chunk) {
  std::cout << "\nemergent eta: " << chunk.emergent_eta
            << "  (downloader share " << chunk.downloader_upload_share
            << ", idle " << chunk.idle_fraction << ")\n";
  if (chunk.fluid_prediction > 0.0) {
    std::cout << "single-torrent fluid T at measured eta: "
              << chunk.fluid_prediction << '\n';
  }
  if (chunk.files.size() > 1) {
    util::Table table({"file", "eta_f", "downloaders", "seeds",
                       "completions", "dl time"});
    table.set_precision(5);
    for (std::size_t f = 0; f < chunk.files.size(); ++f) {
      const sim::ChunkFileResult& fr = chunk.files[f];
      table.add_row({static_cast<double>(f + 1), fr.emergent_eta,
                     fr.avg_downloaders, fr.avg_seeds,
                     static_cast<double>(fr.completions),
                     fr.mean_download_time});
    }
    table.write_pretty(std::cout);
  }
}

void print_outcome(const model::Outcome& outcome) {
  std::cout << "scheme " << fluid::to_string(outcome.scheme)
            << "  p = " << outcome.correlation << '\n'
            << "avg online time per file:   " << outcome.avg_online_per_file
            << '\n'
            << "avg download time per file: "
            << outcome.avg_download_per_file << "\n\n";
  util::Table table({"class", "online time", "download time",
                     "online/file", "dl/file"});
  table.set_precision(5);
  for (std::size_t i = 0; i < outcome.per_class.num_classes(); ++i) {
    table.add_row({static_cast<double>(i + 1),
                   outcome.per_class.online_time[i],
                   outcome.per_class.download_time[i],
                   outcome.per_class.online_per_file[i],
                   outcome.per_class.download_per_file[i]});
  }
  table.write_pretty(std::cout);
  if (outcome.chunk.has_value()) print_chunk_details(*outcome.chunk);
}

int cmd_evaluate(int argc, const char* const* argv) {
  util::ArgParser parser("btmf_tool evaluate",
                         "steady-state evaluation of one scheme");
  add_spec_options(parser, "fluid-equilibrium");
  parser.add_option("horizon", "6000",
                    "time horizon (fluid-transient and the simulators)");
  parser.add_option("seed", "42", "RNG seed (stochastic backends)");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.get_flag("list-backends")) return list_backends();

  model::ScenarioSpec spec = spec_from_cli(parser);
  spec.horizon = parser.get_double("horizon");
  spec.warmup = spec.horizon * 0.25;
  const long long seed = parser.get_int("seed");
  require(seed >= 0, "--seed must be non-negative");
  spec.seed = static_cast<std::uint64_t>(seed);

  const model::Backend& backend =
      model::require_backend(parser.get("backend"));
  print_outcome(backend.evaluate_or_throw(spec));
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  util::ArgParser parser("btmf_tool simulate",
                         "agent-level swarm simulation of one scheme");
  add_spec_options(parser, "kernel-sim");
  parser.add_option("cheaters", "0.0", "fraction of multi-file cheaters");
  parser.add_option("theta", "0.0", "downloader abort rate");
  parser.add_option("horizon", "5000", "simulated time");
  parser.add_option("seed", "42", "RNG seed");
  parser.add_option("chunks", "32", "chunks per file (chunk-sim backend)");
  parser.add_option("piece-policy", "rarest-first",
                    "chunk-sim piece selection: rarest-first|random|"
                    "mode-suppression");
  parser.add_option("suppression", "0.9",
                    "mode-suppression probability (piece-policy "
                    "mode-suppression)");
  parser.add_option("faults", "",
                    "fault plan, e.g. \"tracker:500:200;churn:1200:0.5\" "
                    "(see docs/FAULTS.md)");
  parser.add_flag("adapt", "enable the Adapt rho controller");
  parser.add_flag("paranoid",
                  "audit the kernel's invariants after every event");
  parser.add_option("metrics-out", "",
                    "write a metrics + time-series JSON snapshot here");
  parser.add_option("trace-out", "",
                    "write a Chrome trace_event JSON here (load in Perfetto)");
  parser.add_option("sample-dt", "0",
                    "time-series sampling cadence (0 = horizon / 512)");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.get_flag("list-backends")) return list_backends();

  model::ScenarioSpec spec = spec_from_cli(parser);
  spec.cheater_fraction = parser.get_double("cheaters");
  spec.abort_rate = parser.get_double("theta");
  spec.adapt.enabled = parser.get_flag("adapt");
  spec.horizon = parser.get_double("horizon");
  spec.warmup = spec.horizon * 0.25;
  const long long seed = parser.get_int("seed");
  require(seed >= 0, "--seed must be non-negative");
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.num_chunks = positive_count(parser, "chunks");
  spec.chunk_policy = sim::piece_policy_from_string(parser.get("piece-policy"));
  spec.chunk_suppression = parser.get_double("suppression");
  if (!parser.get("faults").empty()) {
    spec.faults = sim::parse_fault_plan(parser.get("faults"));
  }

  const model::Backend& backend =
      model::require_backend(parser.get("backend"));
  const bool kernel = backend.name() == "kernel-sim";

  // Telemetry sinks and the paranoid auditor hook into the event kernel's
  // run loop, so they exist only behind the kernel-sim backend; other
  // backends evaluate the same spec without them.
  const std::string metrics_out = parser.get("metrics-out");
  const std::string trace_out = parser.get("trace-out");
  const bool paranoid = parser.get_flag("paranoid");
  if (!kernel) {
    require(metrics_out.empty() && trace_out.empty() && !paranoid &&
                parser.get_double("sample-dt") == 0.0,
            "--metrics-out/--trace-out/--sample-dt/--paranoid require "
            "--backend kernel-sim");
    print_outcome(backend.evaluate_or_throw(spec));
    return 0;
  }

  // kernel-sim: run the exact config the backend would build — via the
  // shared sim_config_from_spec mapping — with the sinks attached.
  spec.validate();
  if (const std::optional<std::string> reason =
          backend.unsupported_reason(spec)) {
    throw ConfigError(*reason);
  }
  sim::SimConfig config = model::sim_config_from_spec(spec);
  config.paranoid = paranoid;

  // Telemetry sinks: fail fast on unwritable paths before the long run.
  if (!metrics_out.empty()) obs::require_writable_path(metrics_out);
  if (!trace_out.empty()) obs::require_writable_path(trace_out);
  obs::MetricsRegistry metrics;
  obs::TimeSeriesRecorder recorder;
  std::optional<obs::TraceWriter> trace;
  if (!metrics_out.empty()) {
    config.obs.metrics = &metrics;
    config.obs.recorder = &recorder;
  }
  if (!trace_out.empty()) {
    trace.emplace("btmf_tool simulate");
    config.obs.trace = &*trace;
  }
  config.obs.sample_dt = parser.get_double("sample-dt");
  config.validate();  // reject bad rho/cheaters/theta/horizon/faults here

  const sim::SimResult r = sim::run_simulation(config);
  if (!metrics_out.empty()) {
    const obs::MetricsSnapshot snapshot = metrics.snapshot();
    obs::write_combined_json(metrics_out, &snapshot, &recorder);
    std::cout << "metrics + series written to " << metrics_out << '\n';
  }
  if (trace.has_value()) {
    trace->write_file(trace_out);
    std::cout << "trace written to " << trace_out << '\n';
  }
  std::cout << "avg online time per file:   " << r.avg_online_per_file
            << "\navg download time per file: " << r.avg_download_per_file
            << "\nusers sampled / censored / aborted: " << r.total_users
            << " / " << r.censored_users << " / " << r.aborted_users
            << "\nevents processed: " << r.events_processed << '\n';
  if (!config.faults.empty()) {
    std::cout << "faults injected: " << r.faults_injected
              << "  downloads killed: " << r.downloads_killed
              << "  arrivals dropped/queued: " << r.arrivals_dropped << " / "
              << r.arrivals_queued << "\nreadmissions: " << r.readmissions
              << " (queue peak " << r.readmission_queue_peak
              << ")  time to recover: " << r.time_to_recover
              << "  unrecovered: " << r.faults_unrecovered << '\n';
  }
  std::cout << '\n';
  util::Table table({"class", "users", "online/file", "+-95%",
                     "little online/file", "avg downloaders"});
  table.set_precision(5);
  for (std::size_t i = 0; i < r.classes.size(); ++i) {
    const sim::PerClassResult& c = r.classes[i];
    table.add_row({static_cast<double>(i + 1),
                   static_cast<double>(c.completed_users),
                   c.mean_online_per_file, c.ci_online_per_file,
                   c.little_online_time, c.avg_downloaders});
  }
  table.write_pretty(std::cout);
  return 0;
}

/// The supervision flags shared by sweep and reproduce. None of them can
/// change a computed number — only whether/how points get (re)computed.
void add_robust_options(util::ArgParser& parser) {
  parser.add_option("timeout-s", "0",
                    "per-point wall-clock deadline in seconds (0 = none)");
  parser.add_option("retries", "0",
                    "supervisor retries per point (escalating solver "
                    "tolerances where the backend allows)");
  parser.add_flag("isolate",
                  "run each computed point in a forked worker subprocess "
                  "(crashes are contained and retried, not fatal)");
  parser.add_flag("resume",
                  "resume an interrupted run: replay journaled failures "
                  "and serve completed points from the cache");
}

void robust_options_from_cli(const util::ArgParser& parser,
                             robust::SupervisorOptions* robust,
                             bool* resume) {
  const double timeout_s = parser.get_double("timeout-s");
  require(timeout_s >= 0.0, "--timeout-s must be non-negative");
  const long long retries = parser.get_int("retries");
  require(retries >= 0, "--retries must be non-negative");
  robust->timeout_s = timeout_s;
  robust->retry.retries = static_cast<unsigned>(retries);
  robust->isolate = parser.get_flag("isolate");
  // Fail at parse time, not per point: containment was explicitly asked
  // for, so a platform that cannot provide it must refuse, not degrade.
  require(!robust->isolate || robust::isolation_supported(),
          "--isolate requires fork(), which this platform lacks");
  *resume = parser.get_flag("resume");
}

int cmd_sweep(int argc, const char* const* argv) {
  util::ArgParser parser("btmf_tool sweep",
                         "avg online time per file vs correlation p");
  add_spec_options(parser, "fluid-equilibrium");
  parser.add_option("steps", "10", "p samples in (0, 1]");
  parser.add_option("seed", "42", "RNG seed (stochastic backends)");
  parser.add_option("csv", "", "save CSV here");
  parser.add_option("cache-dir", "",
                    "sweep point cache root ('' = uncached)");
  parser.add_option("jobs", "0", "worker threads (0 = shared global pool)");
  add_robust_options(parser);
  if (!parser.parse(argc, argv)) return 0;
  if (parser.get_flag("list-backends")) return list_backends();

  model::ScenarioSpec base = spec_from_cli(parser);
  const long long seed = parser.get_int("seed");
  require(seed >= 0, "--seed must be non-negative");
  base.seed = static_cast<std::uint64_t>(seed);
  // The grid supplies p; pin the base's correlation so --p cannot split
  // the cache namespace for otherwise-identical sweeps.
  base.correlation = 1.0;
  const std::size_t steps = positive_count(parser, "steps");
  const long long jobs = parser.get_int("jobs");
  require(jobs >= 0, "--jobs must be >= 0");
  const model::Backend& backend =
      model::require_backend(parser.get("backend"));

  std::vector<double> p_values;
  p_values.reserve(steps);
  for (std::size_t s = 1; s <= steps; ++s) {
    p_values.push_back(static_cast<double>(s) /
                       static_cast<double>(steps));
  }

  // The same engine the reproduce registry uses: content-addressed cache,
  // per-point failure isolation, and the execution supervisor.
  sweep::SweepSpec spec;
  spec.name = "cli-" + std::string(backend.name()) + "-" +
              std::string(fluid::to_string(base.scheme));
  spec.grid.axis("p", std::move(p_values));
  spec.fingerprint =
      "backend=" + std::string(backend.name()) + "|" + base.fingerprint();
  const auto eval_point = [base, &backend](const sweep::GridPoint& point,
                                           unsigned attempt) {
    model::ScenarioSpec scenario =
        attempt > 0 ? robust::escalate_spec(base, attempt) : base;
    scenario.correlation = point.at("p");
    const model::Outcome outcome = backend.evaluate_or_throw(scenario);
    sweep::PointResult result;
    result.values["online_per_file"] = outcome.avg_online_per_file;
    result.values["dl_per_file"] = outcome.avg_download_per_file;
    return result;
  };
  spec.compute = [eval_point](const sweep::GridPoint& point) {
    return eval_point(point, 0);
  };
  spec.compute_retry = eval_point;

  sweep::SweepOptions options;
  options.cache_dir = parser.get("cache-dir");
  options.jobs = static_cast<std::size_t>(jobs);
  robust_options_from_cli(parser, &options.robust, &options.resume);

  const sweep::SweepResult sweep = sweep::run_sweep(spec, options);

  util::Table table({"p", "avg online/file", "avg dl/file"});
  table.set_precision(6);
  for (const sweep::PointOutcome& outcome : sweep.points) {
    if (outcome.status != sweep::PointStatus::kOk) continue;
    table.add_row({outcome.point.at("p"),
                   outcome.result.at("online_per_file"),
                   outcome.result.at("dl_per_file")});
  }
  table.write_pretty(std::cout);
  if (!parser.get("csv").empty()) table.save_csv(parser.get("csv"));

  for (const sweep::PointOutcome& outcome : sweep.points) {
    if (outcome.status != sweep::PointStatus::kOk) {
      std::cout << "FAILED [" << robust::to_string(outcome.failure) << "] "
                << outcome.point.canonical() << ": " << outcome.error
                << (outcome.from_journal ? " (replayed from journal)" : "")
                << '\n';
    }
  }
  if (sweep.retries + sweep.timeouts + sweep.crashes + sweep.quarantined >
      0) {
    std::cout << "supervisor: " << sweep.retries << " retries, "
              << sweep.timeouts << " timeouts, " << sweep.crashes
              << " crashes, " << sweep.quarantined
              << " quarantined cache entries\n";
  }
  return sweep.failures == 0 ? 0 : 1;
}

int cmd_adapt(int argc, const char* const* argv) {
  util::ArgParser parser("btmf_tool adapt",
                         "fluid fixed point of the Adapt mechanism");
  parser.add_option("k", "10", "number of files K");
  parser.add_option("p", "0.9", "file correlation in [0, 1]");
  parser.add_option("lambda0", "1.0", "indexing-server visit rate");
  parser.add_option("mu", "0.02", "peer upload bandwidth");
  parser.add_option("eta", "0.5", "downloader sharing efficiency");
  parser.add_option("gamma", "0.05", "seed departure rate");
  parser.add_option("cheaters", "0.5", "fraction of multi-file cheaters");
  if (!parser.parse(argc, argv)) return 0;

  model::ScenarioSpec scenario;
  scenario.num_files = positive_count(parser, "k");
  scenario.correlation = parser.get_double("p");
  scenario.visit_rate = parser.get_double("lambda0");
  scenario.fluid.mu = parser.get_double("mu");
  scenario.fluid.eta = parser.get_double("eta");
  scenario.fluid.gamma = parser.get_double("gamma");
  scenario.validate();
  const double cheaters = parser.get_double("cheaters");
  require(cheaters >= 0.0 && cheaters <= 1.0,
          "--cheaters must lie in [0, 1]");
  const fluid::AdaptFluidModel model(
      scenario.fluid, scenario.correlation_model().system_entry_rates(),
      cheaters);
  const fluid::AdaptFluidEquilibrium eq = model.solve();

  std::cout << "avg online time per file (everyone): "
            << eq.avg_online_per_file
            << "\navg online time per file (obedient): "
            << eq.obedient_avg_online_per_file << "\n\n";
  util::Table table({"class", "equilibrium rho", "obedient online/file",
                     "cheater online/file"});
  table.set_precision(5);
  for (std::size_t i = 0; i < eq.rho.size(); ++i) {
    table.add_row({static_cast<double>(i + 1), eq.rho[i],
                   eq.obedient.online_per_file[i],
                   eq.cheater.online_per_file[i]});
  }
  table.write_pretty(std::cout);
  return 0;
}

std::string claim_condition(const sweep::Claim& claim) {
  const std::string expected = util::format_double(claim.expected, 6);
  const std::string tol = util::format_double(claim.tolerance, 6);
  switch (claim.relation) {
    case sweep::Relation::kWithin:
      return "want " + expected + " +- " + tol;
    case sweep::Relation::kAtMost:
      return "want <= " + expected + (claim.tolerance != 0.0
                                          ? " (+" + tol + " slack)"
                                          : "");
    case sweep::Relation::kAtLeast:
      return "want >= " + expected + (claim.tolerance != 0.0
                                          ? " (-" + tol + " slack)"
                                          : "");
  }
  return {};
}

int cmd_reproduce(int argc, const char* const* argv) {
  util::ArgParser parser(
      "btmf_tool reproduce",
      "regenerate the paper's figures, check every headline claim against "
      "explicit tolerances, and write docs/REPRODUCTION.md");
  parser.add_option("figure", "all", "fig2|fig3|fig4a|fig4bc|adapt|all");
  parser.add_option("cache-dir", ".btmf-sweep-cache",
                    "sweep point cache root ('' = recompute everything)");
  parser.add_option("jobs", "0", "worker threads (0 = shared global pool)");
  parser.add_option("report", "docs/REPRODUCTION.md",
                    "write the paper-vs-measured markdown here ('' = skip)");
  parser.add_option("shards", "1",
                    "kernel-sim sharding (bit-identical for any value; the "
                    "report must not change)");
  add_robust_options(parser);
  if (!parser.parse(argc, argv)) return 0;

  const long long jobs = parser.get_int("jobs");
  require(jobs >= 0, "--jobs must be >= 0");
  obs::MetricsRegistry metrics;
  sweep::ReproduceOptions options;
  options.cache_dir = parser.get("cache-dir");
  options.jobs = static_cast<std::size_t>(jobs);
  options.metrics = &metrics;
  options.shards = static_cast<unsigned>(positive_count(parser, "shards"));
  robust::SupervisorOptions robust;
  robust_options_from_cli(parser, &robust, &options.resume);
  options.timeout_s = robust.timeout_s;
  options.retries = robust.retry.retries;
  options.isolate = robust.isolate;

  const std::string figure = util::to_lower(parser.get("figure"));
  std::vector<const sweep::FigureSpec*> specs;
  if (figure == "all") {
    for (const sweep::FigureSpec& spec : sweep::figure_registry()) {
      specs.push_back(&spec);
    }
  } else {
    const sweep::FigureSpec* spec = sweep::find_figure(figure);
    require(spec != nullptr,
            "unknown figure '" + figure +
                "' (expected fig2|fig3|fig4a|fig4bc|adapt|all)");
    specs.push_back(spec);
  }

  std::vector<sweep::FigureReport> reports;
  reports.reserve(specs.size());
  for (const sweep::FigureSpec* spec : specs) {
    std::cout << "== " << spec->name << " — " << spec->title << " ("
              << spec->paper_ref << ")\n";
    reports.push_back(spec->run(options));
    const sweep::FigureReport& report = reports.back();
    for (const sweep::Claim& claim : report.claims) {
      if (claim.skipped) {
        std::cout << "  SKIP  " << claim.id
                  << ": not evaluated (the sweep had failed points)\n";
        continue;
      }
      std::cout << (claim.pass ? "  PASS  " : "  FAIL  ") << claim.id << ": "
                << "measured " << util::format_double(claim.measured, 6)
                << " (" << claim_condition(claim) << ")\n";
    }
    std::cout << "  sweep: " << report.stats.points << " points — "
              << report.stats.cache_hits << " cached, "
              << report.stats.cache_misses << " computed, "
              << report.stats.failures << " failed ("
              << util::format_double(report.stats.seconds, 3) << " s)\n";
  }

  const obs::MetricsSnapshot snapshot = metrics.snapshot();
  const auto counter = [&snapshot](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  std::size_t passed = 0;
  std::size_t total = 0;
  for (const sweep::FigureReport& report : reports) {
    passed += report.num_passed();
    total += report.claims.size();
  }
  std::cout << "\nsweep metrics: " << counter("sweep.points_done")
            << " points done, " << counter("sweep.cache_hits")
            << " cache hits, " << counter("sweep.cache_misses")
            << " computed, " << counter("sweep.failures") << " failures\n";
  if (counter("robust.retries") + counter("robust.timeouts") +
          counter("robust.crashes") + counter("robust.quarantined") >
      0) {
    std::cout << "supervisor: " << counter("robust.retries") << " retries, "
              << counter("robust.timeouts") << " timeouts, "
              << counter("robust.crashes") << " crashes, "
              << counter("robust.quarantined")
              << " quarantined cache entries\n";
  }
  std::cout << "claims: " << passed << "/" << total << " passed\n";

  // A partial --figure run never overwrites the committed report at the
  // default path (it would silently shrink it); redirect with --report to
  // capture a partial run's claim summary (the CI smoke test does).
  const std::string report_path = parser.get("report");
  if (!report_path.empty()) {
    if (figure == "all" || report_path != "docs/REPRODUCTION.md") {
      sweep::write_reproduction_report(report_path, reports);
      std::cout << "report written to " << report_path << '\n';
    } else {
      std::cout << "partial run (--figure " << figure
                << "); not overwriting " << report_path
                << " (pass --report elsewhere to save this run)\n";
    }
  }
  return passed == total ? 0 : 1;
}

// --- serve / query / version ----------------------------------------------

/// Set by SIGTERM/SIGINT; the serve loop polls it and drains.
volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void handle_stop_signal(int) { g_stop_requested = 1; }

int cmd_serve(int argc, const char* const* argv) {
  util::ArgParser parser(
      "btmf_tool serve",
      "run the evaluation daemon: evaluate/sweep requests over a socket, "
      "warm hits from the disk cache, duplicates coalesced "
      "(see docs/SERVE.md)");
  parser.add_option("listen", ".btmf-serve.sock",
                    "endpoint: unix:<path> or tcp:<host>:<port> "
                    "(tcp port 0 = ephemeral, printed on startup)");
  parser.add_option("cache-dir", ".btmf-sweep-cache",
                    "content-addressed result cache ('' = uncached)");
  parser.add_option("workers", "4",
                    "evaluation worker threads (0 = one per core)");
  parser.add_option("queue-depth", "128",
                    "bounded evaluation queue; a full queue answers a "
                    "typed 'overloaded' error instead of queueing");
  parser.add_option("max-connections", "64",
                    "concurrent client connections admitted");
  parser.add_option("timeout-s", "0",
                    "per-evaluation wall-clock deadline (0 = none)");
  parser.add_option("retries", "0",
                    "supervisor retries per evaluation (escalating solver "
                    "tolerances where the backend allows)");
  parser.add_flag("isolate",
                  "run each evaluation in a forked worker subprocess "
                  "(a crashing request is contained, not fatal)");
  if (!parser.parse(argc, argv)) return 0;

  serve::DaemonOptions options;
  options.endpoint = serve::Endpoint::parse(parser.get("listen"));
  options.cache_dir = parser.get("cache-dir");
  const long long workers = parser.get_int("workers");
  require(workers >= 0, "--workers must be non-negative");
  options.workers = static_cast<std::size_t>(workers);
  options.queue_depth = positive_count(parser, "queue-depth");
  options.max_connections = positive_count(parser, "max-connections");
  const double timeout_s = parser.get_double("timeout-s");
  require(timeout_s >= 0.0, "--timeout-s must be non-negative");
  options.robust.timeout_s = timeout_s;
  const long long retries = parser.get_int("retries");
  require(retries >= 0, "--retries must be non-negative");
  options.robust.retry.retries = static_cast<unsigned>(retries);
  options.robust.isolate = parser.get_flag("isolate");
  require(!options.robust.isolate || robust::isolation_supported(),
          "--isolate requires fork(), which this platform lacks");

  serve::Daemon daemon(std::move(options));
  daemon.start();
  std::cout << "serving on " << daemon.endpoint().describe() << " (salt "
            << serve::handshake_salt() << "); SIGTERM drains\n"
            << std::flush;

  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "draining...\n" << std::flush;
  daemon.drain();
  const obs::MetricsSnapshot snapshot = daemon.stats();
  const auto counter = [&snapshot](const char* name) -> std::uint64_t {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  std::cout << "served " << counter("serve.requests") << " requests — "
            << counter("serve.cache_hit") << " cache hits, "
            << counter("serve.coalesced") << " coalesced, "
            << counter("serve.evaluations") << " evaluations, "
            << counter("serve.overload") << " overloads\n";
  return 0;
}

int cmd_query(int argc, const char* const* argv) {
  util::ArgParser parser(
      "btmf_tool query",
      "query a running serve daemon: one evaluation, an axis sweep, "
      "--stats, or --ping");
  parser.add_option("connect", ".btmf-serve.sock",
                    "daemon endpoint: unix:<path> or tcp:<host>:<port>");
  add_spec_options(parser, "fluid-equilibrium");
  parser.add_option("horizon", "6000",
                    "time horizon (fluid-transient and the simulators)");
  parser.add_option("seed", "42", "RNG seed (stochastic backends)");
  parser.add_option("axis", "",
                    "sweep this axis instead of one evaluation "
                    "(p|rho|lambda0|mu|eta|gamma|cheaters|theta|horizon|"
                    "seed)");
  parser.add_option("values", "",
                    "comma-separated axis values for --axis");
  parser.add_flag("stats", "print the daemon's metrics JSON and exit");
  parser.add_flag("ping", "liveness probe and exit");
  if (!parser.parse(argc, argv)) return 0;
  if (parser.get_flag("list-backends")) return list_backends();

  serve::Client client =
      serve::Client::connect(serve::Endpoint::parse(parser.get("connect")));
  if (parser.get_flag("ping")) {
    client.ping();
    std::cout << "pong\n";
    return 0;
  }
  if (parser.get_flag("stats")) {
    std::cout << client.stats_json() << '\n';
    return 0;
  }

  model::ScenarioSpec spec = spec_from_cli(parser);
  spec.horizon = parser.get_double("horizon");
  spec.warmup = spec.horizon * 0.25;
  const long long seed = parser.get_int("seed");
  require(seed >= 0, "--seed must be non-negative");
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.validate();
  const std::string backend = parser.get("backend");

  const auto print_reply = [](const serve::EvalReply& reply) {
    if (!reply.ok) {
      std::cout << "error [" << serve::to_string(reply.code) << "] "
                << reply.message << '\n';
      return false;
    }
    for (const auto& [name, value] : reply.values) {
      std::cout << name << " = " << util::format_double_exact(value) << '\n';
    }
    return true;
  };

  const std::string axis = parser.get("axis");
  if (axis.empty()) {
    require(parser.get("values").empty(), "--values requires --axis");
    const serve::EvalReply reply = client.evaluate(backend, spec);
    if (reply.ok) {
      std::cout << (reply.cached ? "[cache hit]"
                                 : reply.coalesced ? "[coalesced]"
                                                   : "[computed]")
                << '\n';
    }
    return print_reply(reply) ? 0 : 1;
  }

  std::vector<double> values;
  for (const std::string& token :
       util::split(parser.get("values"), ',')) {
    values.push_back(util::parse_double(util::trim(token), "--values"));
  }
  require(!values.empty(), "--axis requires a non-empty --values list");
  const std::vector<serve::EvalReply> replies =
      client.sweep(backend, axis, values, spec);
  bool all_ok = true;
  for (std::size_t i = 0; i < replies.size(); ++i) {
    std::cout << axis << " = " << util::format_double(values[i], 6) << ":\n";
    if (!print_reply(replies[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}

int cmd_version() {
  std::cout << "btmf " << kVersionString << '\n'
            << "cache format: v" << sweep::kCacheFormatVersion << " (salt "
            << sweep::cache_format_salt() << ")\n"
            << "serve protocol: " << serve::kProtocolVersion << '\n';
  return 0;
}

void print_usage() {
  std::cout << "btmf_tool — multiple-file BitTorrent downloading analysis\n"
               "usage: btmf_tool "
               "<evaluate|simulate|sweep|adapt|reproduce|serve|query|version>"
               " [options]\n"
               "       btmf_tool <subcommand> --help for details\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string subcommand = argv[1];
  // Shift argv so each subcommand parser sees its own options.
  std::vector<const char*> args;
  args.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) args.push_back(argv[i]);

  try {
    if (subcommand == "evaluate") {
      return cmd_evaluate(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "simulate") {
      return cmd_simulate(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "sweep") {
      return cmd_sweep(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "adapt") {
      return cmd_adapt(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "reproduce") {
      return cmd_reproduce(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "serve") {
      return cmd_serve(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "query") {
      return cmd_query(static_cast<int>(args.size()), args.data());
    }
    if (subcommand == "version" || subcommand == "--version") {
      return cmd_version();
    }
    if (subcommand == "--help" || subcommand == "-h") {
      print_usage();
      return 0;
    }
    std::cerr << "unknown subcommand '" << subcommand << "'\n";
    print_usage();
    return 1;
  } catch (const btmf::Error& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
