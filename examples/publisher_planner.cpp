// Scenario example: a publisher releasing a TV series.
//
// A publisher has E episodes and must choose how to publish them:
//  (a) E separate torrents — users grab them concurrently (MTCD, what
//      clients do by default);
//  (b) E separate torrents — users queue them (MTSD);
//  (c) one multi-file torrent with default clients (MFCD);
//  (d) one multi-file torrent with collaborating CMFSD clients.
// Episodes of one series are highly interest-correlated, so p is high.
// The planner prints the expected per-user completion times for each
// option over a range of season lengths and recommends the best.
//
//   ./publisher_planner --episodes 12 --p 0.9
#include <iostream>
#include <string>
#include <vector>

#include "btmf/core/evaluate.h"
#include "btmf/util/cli.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"
#include "btmf/util/table.h"

int main(int argc, char** argv) try {
  using namespace btmf;
  util::ArgParser parser("publisher_planner",
                         "choose a publishing strategy for an episodic "
                         "release");
  parser.add_option("episodes", "12", "number of episodes in the season");
  parser.add_option("p", "0.9",
                    "probability a visitor wants any given episode");
  parser.add_option("rho", "0.1",
                    "CMFSD bandwidth ratio clients would use");
  if (!parser.parse(argc, argv)) return 0;

  const long long raw_episodes = parser.get_int("episodes");
  if (raw_episodes < 1) throw ConfigError("--episodes must be >= 1");
  const unsigned episodes = static_cast<unsigned>(raw_episodes);
  const double p = parser.get_double("p");
  const double rho = parser.get_double("rho");
  if (rho < 0.0 || rho > 1.0) throw ConfigError("--rho must lie in [0, 1]");

  core::ScenarioConfig scenario;
  scenario.num_files = episodes;
  scenario.correlation = p;
  scenario.validate();

  core::EvaluateOptions options;
  options.rho = rho;
  const auto mtcd = core::evaluate_scheme(scenario, fluid::SchemeKind::kMtcd);
  const auto mtsd = core::evaluate_scheme(scenario, fluid::SchemeKind::kMtsd);
  const auto mfcd = core::evaluate_scheme(scenario, fluid::SchemeKind::kMfcd);
  const auto cmfsd =
      core::evaluate_scheme(scenario, fluid::SchemeKind::kCmfsd, options);

  // A "binge watcher" requests every episode: class E.
  util::Table table({"publishing strategy", "avg online/file (all users)",
                     "binge watcher full-season online time"});
  table.set_precision(4);
  const unsigned last = episodes - 1;
  table.add_row({std::string("separate torrents, concurrent (MTCD)"),
                 mtcd.avg_online_per_file,
                 mtcd.per_class.online_time[last]});
  table.add_row({std::string("separate torrents, queued (MTSD)"),
                 mtsd.avg_online_per_file,
                 mtsd.per_class.online_time[last]});
  table.add_row({std::string("one multi-file torrent, default (MFCD)"),
                 mfcd.avg_online_per_file,
                 mfcd.per_class.online_time[last]});
  table.add_row({std::string("one multi-file torrent, CMFSD rho=") +
                     util::format_double(rho, 3),
                 cmfsd.avg_online_per_file,
                 cmfsd.per_class.online_time[last]});

  std::cout << "Season of " << episodes << " episodes, correlation p = " << p
            << "\n\n";
  table.write_pretty(std::cout);

  const double saving =
      100.0 * (1.0 - cmfsd.avg_online_per_file / mfcd.avg_online_per_file);
  std::cout << "\nRecommendation: publish the season as ONE multi-file "
               "torrent and ship CMFSD-capable\nclients — average online "
               "time per episode drops "
            << util::format_double(saving, 3)
            << "% versus the default multi-file\nbehaviour (MFCD). If "
               "clients cannot collaborate, separate torrents downloaded "
               "one at a\ntime (MTSD) still beat concurrent downloading.\n";
  return 0;
} catch (const btmf::Error& error) {
  std::cerr << "error: " << error.what() << '\n';
  return 1;
}
