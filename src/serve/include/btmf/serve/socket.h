// Minimal RAII sockets + length-prefixed framing for the serve protocol.
//
// Endpoints are Unix-domain sockets ("unix:/path" or a bare path — the
// deployment default: filesystem permissions are the access control) or
// loopback-friendly TCP ("tcp:host:port"). Frames are a 4-byte big-endian
// payload length followed by the payload; read_frame() distinguishes a
// clean peer close (nullopt, EOF on a frame boundary) from a torn frame
// (EOF mid-header or mid-payload) and from a garbage length header (zero
// or beyond kMaxFrameBytes) — both of the latter throw ProtocolError, so
// the framing layer can never be driven into a huge allocation or a
// half-read message. All blocking I/O retries EINTR and writes with
// SIGPIPE suppressed; OS-level failures throw btmf::IoError.
//
// POSIX-only (like robust's fork isolation): serve_supported() reports
// availability, and every entry point on an unsupported platform throws a
// typed btmf::ConfigError instead of degrading silently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "btmf/serve/protocol.h"

namespace btmf::serve {

/// Whether this platform has the sockets the serve subsystem needs.
[[nodiscard]] bool serve_supported();

struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< unix
  std::string host;  ///< tcp
  int port = 0;      ///< tcp; 0 = ephemeral (Listener reports the real one)

  /// "unix:<path>", "tcp:<host>:<port>", or a bare filesystem path
  /// (treated as unix). Throws btmf::ConfigError on malformed input.
  static Endpoint parse(std::string_view text);

  /// Canonical "unix:..." / "tcp:host:port" rendering.
  [[nodiscard]] std::string describe() const;
};

/// One connected stream socket (move-only; closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes one length-prefixed frame. Throws ProtocolError when the
  /// payload exceeds kMaxFrameBytes, btmf::IoError on socket failure.
  void write_frame(std::string_view payload);

  /// Reads one frame. nullopt = clean close on a frame boundary;
  /// ProtocolError = torn frame or garbage length; IoError = OS failure.
  [[nodiscard]] std::optional<std::string> read_frame();

  /// Half-closes both directions, waking a peer (or our own thread)
  /// blocked in read_frame. Safe on an already-closed socket.
  void shutdown_both();

  /// Half-closes the read side only: a thread blocked in read_frame sees
  /// a clean EOF while already-composed responses can still be written —
  /// what a graceful drain needs (no accepted request loses its reply).
  void shutdown_read();

  void close();

  /// Connects to `endpoint`; throws btmf::IoError on failure.
  static Socket connect_to(const Endpoint& endpoint);

  /// A connected AF_UNIX socket pair (for protocol tests).
  static std::pair<Socket, Socket> pair();

 private:
  int fd_ = -1;
};

/// A listening socket bound to an Endpoint.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&&) noexcept;
  Listener& operator=(Listener&&) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens. A unix endpoint unlinks a stale socket file left
  /// by a crashed daemon before binding; a tcp endpoint with port 0 binds
  /// an ephemeral port (readable from endpoint().port afterwards).
  static Listener listen_on(const Endpoint& endpoint);

  /// Accepts one connection, waiting at most `timeout_s` (poll-based so a
  /// draining daemon can re-check its stop flag). nullopt on timeout.
  [[nodiscard]] std::optional<Socket> accept_once(double timeout_s);

  /// The bound endpoint (tcp port resolved to the real one).
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

  /// Closes the listening socket; a unix endpoint's socket file is
  /// unlinked. Safe to call twice.
  void close();

 private:
  int fd_ = -1;
  Endpoint endpoint_;
};

}  // namespace btmf::serve
