// The evaluation daemon: a long-running server for evaluate/sweep traffic.
//
// Request path (docs/SERVE.md):
//
//   handshake -> parse -> cache probe -> coalesce -> worker pool -> respond
//
//  * Warm hits are answered straight from the content-addressed DiskCache
//    on the connection handler thread — no queueing, no worker dispatch.
//    The cache key is the same "backend=<name>|<fingerprint>" material the
//    sweep engine uses, so a daemon and a batch run share one memoization
//    layer (and the handshake salt guarantees the client agrees on it).
//  * A miss is keyed by that material into the in-flight table: duplicate
//    concurrent requests — across all connections — coalesce onto one
//    computation and each receives the one result. N identical requests
//    cost exactly one backend evaluation.
//  * Misses dispatch to a fixed worker pool behind a bounded queue.
//    Admission control is typed, not implicit: a full queue answers
//    `error overloaded` immediately (backpressure, never unbounded memory)
//    and a draining daemon answers `error draining`.
//  * Every computation runs under the btmf::robust supervisor — watchdog
//    deadline, retry-with-escalation, optional fork isolation — so one
//    poisoned request (crash, hang, solver blowup) is contained, reported
//    as a typed per-request failure, and cannot take the daemon down.
//  * drain() (SIGTERM in btmf_tool serve) stops accepting work, finishes
//    every in-flight evaluation, delivers every pending response, then
//    closes connections and joins all threads. No accepted request loses
//    its response.
//
// Observability: serve.* metrics (requests, cache_hit, cache_miss,
// coalesced, evaluations, overload, errors, connections, the
// serve.latency_seconds histogram, and serve.qps / serve.p99 gauges
// refreshed by stats()) through a MetricsRegistry owned by the daemon and
// exported over the wire via the `stats` request.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "btmf/model/spec.h"
#include "btmf/obs/metrics.h"
#include "btmf/robust/failure.h"
#include "btmf/robust/supervisor.h"
#include "btmf/serve/socket.h"

namespace btmf::serve {

/// The computation behind a cache miss. Must be pure per (backend, spec)
/// and self-contained (it may run on an abandoned watchdog thread or in a
/// forked child — capture by value or reference process-lifetime state
/// only; see robust/supervisor.h). The default evaluates through the
/// model backend registry. Tests and benches inject their own to count
/// evaluations, add latency, or crash on purpose.
using EvalFn = std::function<robust::Values(const std::string& backend,
                                            const model::ScenarioSpec& spec)>;

/// The registry-backed default: require_backend(backend)
/// .evaluate_or_throw(spec), reduced to the headline values
/// {avg_online_per_file, avg_download_per_file, avg_online_per_user}.
[[nodiscard]] robust::Values default_eval(const std::string& backend,
                                          const model::ScenarioSpec& spec);

struct DaemonOptions {
  Endpoint endpoint;               ///< where to listen
  std::string cache_dir;           ///< "" disables the disk cache
  std::size_t workers = 4;         ///< evaluation threads (0 = one per core)
  std::size_t queue_depth = 128;   ///< bounded; full => typed overload
  std::size_t max_connections = 64;
  /// Per-evaluation supervision (deadline, retries, fork isolation).
  /// Retries escalate solver tolerances via robust::escalate_spec.
  robust::SupervisorOptions robust{};
  EvalFn eval;                     ///< null = default_eval
};

class Daemon {
 public:
  /// Validates options; does not touch the network yet.
  explicit Daemon(DaemonOptions options);
  /// Drains first if still running.
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds, listens, and spawns the accept loop + worker pool. Throws
  /// btmf::IoError when the endpoint cannot be bound and btmf::ConfigError
  /// on unsupported platforms or option misuse.
  void start();

  /// Graceful shutdown: stop accepting, finish every in-flight
  /// evaluation, deliver every pending response, close connections, join
  /// all threads. Idempotent; returns once fully stopped.
  void drain();

  [[nodiscard]] bool draining() const;

  /// The bound endpoint (tcp port 0 resolved to the real port).
  [[nodiscard]] const Endpoint& endpoint() const;

  /// The daemon's metrics registry (valid for the daemon's lifetime).
  [[nodiscard]] obs::MetricsRegistry& metrics();

  /// Snapshot with serve.qps / serve.p99 gauges refreshed — what the
  /// `stats` request returns as JSON.
  [[nodiscard]] obs::MetricsSnapshot stats();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace btmf::serve
