// Client for the serve protocol: connect, handshake, query.
//
// One Client wraps one connection and performs the hello/welcome version
// handshake (protocol version + DiskCache format salt) in connect().
// Requests are synchronous — evaluate()/sweep()/stats_json()/ping() each
// send one frame and block for the response frame. Typed daemon refusals
// (overloaded, draining, unsupported, failed) come back as data in
// EvalReply, NOT as exceptions, so callers can branch on the code; only
// transport/grammar trouble throws (btmf::IoError, serve::ProtocolError)
// and only an incompatible daemon throws btmf::ConfigError from connect().
// Clients wanting parallelism open several Clients; the daemon coalesces
// identical in-flight work across all of them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "btmf/model/spec.h"
#include "btmf/serve/protocol.h"
#include "btmf/serve/socket.h"

namespace btmf::serve {

/// One evaluation's reply: values on success, a typed code otherwise.
struct EvalReply {
  bool ok = false;
  bool cached = false;     ///< daemon answered straight from its DiskCache
  bool coalesced = false;  ///< joined an identical in-flight computation
  std::map<std::string, double> values;
  ErrorCode code = ErrorCode::kFailed;  ///< meaningful when !ok
  std::string message;

  [[nodiscard]] double at(const std::string& name) const;
};

class Client {
 public:
  Client() = default;

  /// Connects and handshakes. Throws btmf::IoError when the endpoint is
  /// unreachable and btmf::ConfigError when the daemon's protocol version
  /// or cache salt differs from ours.
  static Client connect(const Endpoint& endpoint);

  /// Evaluates `spec` on the named backend. Typed daemon-side failures
  /// (overloaded, draining, failed, unsupported) land in the reply.
  [[nodiscard]] EvalReply evaluate(const std::string& backend,
                                   const model::ScenarioSpec& spec);

  /// Evaluates `spec` once per axis value (one request frame, one
  /// response frame; per-point errors are independent).
  [[nodiscard]] std::vector<EvalReply> sweep(
      const std::string& backend, const std::string& axis,
      const std::vector<double>& values, const model::ScenarioSpec& spec);

  /// The daemon's metrics snapshot as JSON (serve.qps etc. refreshed).
  [[nodiscard]] std::string stats_json();

  /// Round-trip liveness probe; throws on any non-pong answer.
  void ping();

  void close() { socket_.close(); }

 private:
  /// One request frame out, one response frame back. A clean daemon-side
  /// close mid-request is an IoError (the response was lost).
  Response roundtrip(const std::string& payload);

  Socket socket_;
};

}  // namespace btmf::serve
