// The serve wire protocol: length-prefixed frames of line-oriented text.
//
// Every message is one frame: a 4-byte big-endian payload length followed
// by that many bytes of UTF-8 text. The first payload line names the verb;
// subsequent lines carry fields. Doubles travel in exact round-trip form
// (util::format_double_exact) and scenario specs in their canonical wire
// encoding (model/wire.h — the spec fingerprint itself), so a value that
// crosses the socket is bit-identical on both sides.
//
// A connection begins with a version handshake: the client sends
// `hello <protocol-version> <salt>` where the salt is the DiskCache format
// salt (sweep::cache_format_salt()). The daemon replies `welcome` only
// when both match its own; otherwise it answers a typed
// `error version-mismatch` and closes. The salt — cache format version +
// library version — is exactly the key material prefix of every cache
// entry, so a successful handshake guarantees client and daemon agree on
// every content-addressed key (and on every model output, since the
// library version is folded in).
//
// After the handshake the connection is a synchronous request/response
// stream: one request frame, one response frame, repeat. Clients wanting
// concurrency open multiple connections (the daemon coalesces duplicate
// in-flight work across all of them). Frame-level garbage — a torn
// header, an oversized length, an unparseable payload — is a
// ProtocolError; the daemon answers `error bad-request` where it still
// can and closes the connection. See docs/SERVE.md for the full grammar.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "btmf/model/spec.h"
#include "btmf/util/error.h"

namespace btmf::serve {

/// Bumped on any framing or grammar change. Checked (alongside the cache
/// salt) in the handshake.
inline constexpr int kProtocolVersion = 1;

/// Upper bound on one frame's payload. A length header above this is
/// treated as garbage (ProtocolError), not an allocation request — the
/// framing layer can never be talked into OOM by four bad bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Upper bound on one sweep request's axis values (bounds response size
/// and per-request queue pressure; larger sweeps batch client-side).
inline constexpr std::size_t kMaxSweepValues = 1024;

/// Malformed bytes on the wire: bad frame header, oversized length,
/// truncated payload, unparseable message grammar.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// The handshake token: the DiskCache format salt (cache.h), i.e.
/// "v<cache-format>/<library-version>".
[[nodiscard]] std::string handshake_salt();

// --- requests (client -> daemon) ------------------------------------------

enum class RequestKind { kHello, kEvaluate, kSweep, kStats, kPing };

struct Request {
  RequestKind kind = RequestKind::kPing;
  // hello
  int protocol_version = 0;
  std::string salt;
  // evaluate / sweep
  std::string backend;
  model::ScenarioSpec spec;
  // sweep: evaluate `spec` once per value of the named axis
  std::string axis;
  std::vector<double> values;
};

[[nodiscard]] std::string encode_hello();
[[nodiscard]] std::string encode_evaluate(const std::string& backend,
                                          const model::ScenarioSpec& spec);
[[nodiscard]] std::string encode_sweep(const std::string& backend,
                                       const std::string& axis,
                                       const std::vector<double>& values,
                                       const model::ScenarioSpec& spec);
[[nodiscard]] std::string encode_stats();
[[nodiscard]] std::string encode_ping();

/// Parses a request payload; throws ProtocolError on malformed grammar
/// and btmf::ConfigError when an embedded spec fails to decode/validate.
[[nodiscard]] Request parse_request(std::string_view payload);

// --- responses (daemon -> client) -----------------------------------------

/// Typed rejection codes. kOverloaded and kDraining are the admission-
/// control outcomes: the daemon sheds load with a one-frame answer instead
/// of queueing unboundedly (docs/SERVE.md, "Overload semantics").
enum class ErrorCode {
  kBadRequest,       ///< unparseable or ill-formed request
  kVersionMismatch,  ///< handshake protocol version or cache salt differs
  kUnsupported,      ///< typed capability refusal (backend/spec mismatch)
  kFailed,           ///< evaluation failed (solver error, crash, timeout)
  kOverloaded,       ///< admission control: queue or connection limit hit
  kDraining,         ///< daemon is shutting down; no new work accepted
};

/// Stable kebab-case tokens ("bad-request", ...); round-trip through
/// error_code_from_string (which throws ProtocolError on unknown input).
[[nodiscard]] const char* to_string(ErrorCode code);
[[nodiscard]] ErrorCode error_code_from_string(std::string_view token);

enum class ResponseKind { kWelcome, kOk, kSweepOk, kStatsOk, kPong, kError };

/// One sweep point's reply: either values or a typed per-point error
/// (a single slow/broken point must not poison its siblings).
struct PointReply {
  bool ok = false;
  std::map<std::string, double> values;
  ErrorCode code = ErrorCode::kFailed;
  std::string message;
};

struct Response {
  ResponseKind kind = ResponseKind::kError;
  // welcome
  int protocol_version = 0;
  std::string salt;
  // ok (evaluate)
  bool cached = false;     ///< served straight from the disk cache
  bool coalesced = false;  ///< attached to an identical in-flight request
  std::map<std::string, double> values;
  // sweep-ok
  std::vector<PointReply> points;
  // stats-ok
  std::string stats_json;
  // error
  ErrorCode code = ErrorCode::kBadRequest;
  std::string message;
};

[[nodiscard]] std::string encode_welcome();
[[nodiscard]] std::string encode_ok(
    const std::map<std::string, double>& values, bool cached,
    bool coalesced);
[[nodiscard]] std::string encode_sweep_ok(
    const std::vector<PointReply>& points);
[[nodiscard]] std::string encode_stats_ok(const std::string& json);
[[nodiscard]] std::string encode_pong();
[[nodiscard]] std::string encode_error(ErrorCode code,
                                       const std::string& message);

/// Parses a response payload; throws ProtocolError on malformed grammar.
[[nodiscard]] Response parse_response(std::string_view payload);

}  // namespace btmf::serve
