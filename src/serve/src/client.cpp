#include "btmf/serve/client.h"

#include <utility>

#include "btmf/util/error.h"

namespace btmf::serve {
namespace {

EvalReply reply_from(const Response& response) {
  EvalReply reply;
  if (response.kind == ResponseKind::kOk) {
    reply.ok = true;
    reply.cached = response.cached;
    reply.coalesced = response.coalesced;
    reply.values = response.values;
  } else if (response.kind == ResponseKind::kError) {
    reply.code = response.code;
    reply.message = response.message;
  } else {
    throw ProtocolError("unexpected response kind to evaluate");
  }
  return reply;
}

}  // namespace

double EvalReply::at(const std::string& name) const {
  const auto it = values.find(name);
  if (it == values.end())
    throw ConfigError("reply has no value named '" + name + "'");
  return it->second;
}

Client Client::connect(const Endpoint& endpoint) {
  Client client;
  client.socket_ = Socket::connect_to(endpoint);
  const Response response = client.roundtrip(encode_hello());
  if (response.kind == ResponseKind::kError) {
    throw ConfigError("daemon refused handshake (" +
                      std::string(to_string(response.code)) +
                      "): " + response.message);
  }
  if (response.kind != ResponseKind::kWelcome)
    throw ProtocolError("expected welcome to hello");
  return client;
}

EvalReply Client::evaluate(const std::string& backend,
                           const model::ScenarioSpec& spec) {
  return reply_from(roundtrip(encode_evaluate(backend, spec)));
}

std::vector<EvalReply> Client::sweep(const std::string& backend,
                                     const std::string& axis,
                                     const std::vector<double>& values,
                                     const model::ScenarioSpec& spec) {
  const Response response =
      roundtrip(encode_sweep(backend, axis, values, spec));
  if (response.kind == ResponseKind::kError) {
    // A whole-request refusal (overloaded, draining, bad axis) applies to
    // every point equally.
    std::vector<EvalReply> replies(values.size());
    for (auto& reply : replies) {
      reply.code = response.code;
      reply.message = response.message;
    }
    return replies;
  }
  if (response.kind != ResponseKind::kSweepOk)
    throw ProtocolError("unexpected response kind to sweep");
  if (response.points.size() != values.size())
    throw ProtocolError("sweep response point count mismatch");
  std::vector<EvalReply> replies(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    const PointReply& point = response.points[i];
    replies[i].ok = point.ok;
    replies[i].values = point.values;
    replies[i].code = point.code;
    replies[i].message = point.message;
  }
  return replies;
}

std::string Client::stats_json() {
  const Response response = roundtrip(encode_stats());
  if (response.kind == ResponseKind::kError)
    throw ConfigError("stats refused (" +
                      std::string(to_string(response.code)) +
                      "): " + response.message);
  if (response.kind != ResponseKind::kStatsOk)
    throw ProtocolError("unexpected response kind to stats");
  return response.stats_json;
}

void Client::ping() {
  const Response response = roundtrip(encode_ping());
  if (response.kind != ResponseKind::kPong)
    throw ProtocolError("unexpected response kind to ping");
}

Response Client::roundtrip(const std::string& payload) {
  socket_.write_frame(payload);
  std::optional<std::string> frame = socket_.read_frame();
  if (!frame)
    throw IoError("daemon closed the connection before responding");
  return parse_response(*frame);
}

}  // namespace btmf::serve
