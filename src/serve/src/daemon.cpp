#include "btmf/serve/daemon.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "btmf/model/backend.h"
#include "btmf/model/outcome.h"
#include "btmf/model/wire.h"
#include "btmf/robust/escalate.h"
#include "btmf/serve/protocol.h"
#include "btmf/sweep/cache.h"
#include "btmf/util/error.h"

namespace btmf::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Rebinds one named axis of `spec` to `value` (the sweep request's knob).
/// Throws btmf::ConfigError on an unknown axis name; range violations are
/// caught by the validate() the caller performs per point.
model::ScenarioSpec apply_axis(const model::ScenarioSpec& spec,
                               const std::string& axis, double value) {
  model::ScenarioSpec out = spec;
  if (axis == "p") {
    out.correlation = value;
  } else if (axis == "rho") {
    out.rho = value;
    out.rho_per_class.clear();
  } else if (axis == "lambda0") {
    out.visit_rate = value;
  } else if (axis == "mu") {
    out.fluid.mu = value;
  } else if (axis == "eta") {
    out.fluid.eta = value;
  } else if (axis == "gamma") {
    out.fluid.gamma = value;
  } else if (axis == "cheaters") {
    out.cheater_fraction = value;
  } else if (axis == "theta") {
    out.abort_rate = value;
  } else if (axis == "horizon") {
    out.horizon = value;
  } else if (axis == "seed") {
    out.seed = static_cast<std::uint64_t>(value);
  } else {
    throw ConfigError(
        "unknown sweep axis '" + axis +
        "' (known: p, rho, lambda0, mu, eta, gamma, cheaters, theta, "
        "horizon, seed)");
  }
  return out;
}

ErrorCode error_code_for(const robust::Failure& failure) {
  return failure.kind == robust::FailureKind::kUnsupported
             ? ErrorCode::kUnsupported
             : ErrorCode::kFailed;
}

std::string message_for(const robust::Failure& failure) {
  return std::string(robust::to_string(failure.kind)) + ": " +
         failure.message;
}

}  // namespace

robust::Values default_eval(const std::string& backend,
                            const model::ScenarioSpec& spec) {
  const model::Backend& be = model::require_backend(backend);
  const model::Outcome outcome = be.evaluate_or_throw(spec);
  robust::Values values;
  values["avg_online_per_file"] = outcome.avg_online_per_file;
  values["avg_download_per_file"] = outcome.avg_download_per_file;
  values["avg_online_per_user"] = outcome.avg_online_per_user;
  return values;
}

struct Daemon::Impl {
  // --- one coalesced computation ----------------------------------------
  struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    robust::Failure failure;
    robust::Values values;
  };

  /// What the cache probe + admission control decided for one point.
  struct Dispatched {
    enum class Kind { kHit, kWait, kOverloaded, kDraining };
    Kind kind = Kind::kOverloaded;
    robust::Values values;                ///< kHit
    std::shared_ptr<Pending> pending;     ///< kWait
    bool coalesced = false;               ///< kWait: joined existing work
  };

  explicit Impl(DaemonOptions options) : options_(std::move(options)) {
    if (options_.workers == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      options_.workers = hw > 0 ? hw : 1;
    }
    if (options_.queue_depth == 0)
      throw ConfigError("serve: queue_depth must be >= 1");
    if (options_.max_connections == 0)
      throw ConfigError("serve: max_connections must be >= 1");
    if (!options_.eval) options_.eval = default_eval;
    options_.robust.metrics = &registry_;

    ids_.requests = registry_.counter("serve.requests");
    ids_.cache_hit = registry_.counter("serve.cache_hit");
    ids_.cache_miss = registry_.counter("serve.cache_miss");
    ids_.coalesced = registry_.counter("serve.coalesced");
    ids_.evaluations = registry_.counter("serve.evaluations");
    ids_.overload = registry_.counter("serve.overload");
    ids_.errors = registry_.counter("serve.errors");
    ids_.connections = registry_.counter("serve.connections");
    ids_.quarantined = registry_.counter("serve.quarantined");
    ids_.latency = registry_.histogram("serve.latency_seconds");
    ids_.qps = registry_.gauge("serve.qps");
    ids_.p99 = registry_.gauge("serve.p99");
  }

  ~Impl() {
    try {
      drain();
    } catch (...) {
      // Destruction must not throw; drain failures die silently here.
    }
  }

  // --- lifecycle ---------------------------------------------------------

  void start() {
    if (!serve_supported())
      throw ConfigError(
          "the serve subsystem requires POSIX sockets, which this platform "
          "does not provide");
    if (started_) throw ConfigError("serve: daemon already started");
    if (!options_.cache_dir.empty())
      cache_.emplace(options_.cache_dir);
    listener_ = Listener::listen_on(options_.endpoint);
    started_ = true;
    start_time_ = Clock::now();
    for (std::size_t i = 0; i < options_.workers; ++i)
      workers_.emplace_back(&Impl::worker_loop, this);
    accept_thread_ = std::thread(&Impl::accept_loop, this);
  }

  /// Graceful shutdown, in the order the header documents: stop intake,
  /// finish queued + running evaluations (publishing every Pending), then
  /// half-close connection read sides so handlers see EOF *after* writing
  /// any response they owe, join handlers, stop workers.
  void drain() {
    {
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      if (draining_.exchange(true)) {
        // Another drain is (or was) in flight; wait for it to finish.
        std::unique_lock<std::mutex> done(drained_mutex_);
        drained_cv_.wait(done, [&] { return drained_; });
        return;
      }
    }
    if (started_) {
      stop_accept_ = true;
      if (accept_thread_.joinable()) accept_thread_.join();
      listener_.close();

      // Every dispatched job completes and publishes its Pending; new
      // dispatches are already refused (draining_ checked under
      // inflight_mutex_), so the queue can only shrink.
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        queue_cv_.wait(lock,
                       [&] { return queue_.empty() && active_jobs_ == 0; });
      }

      // Handlers blocked on Pending have been woken; handlers blocked in
      // read_frame() see EOF. Responses already owed still go out: only
      // the read side is closed.
      {
        std::lock_guard<std::mutex> lock(connections_mutex_);
        for (auto& connection : connections_) connection->shutdown_read();
      }
      {
        std::unique_lock<std::mutex> lock(handlers_mutex_);
        handlers_cv_.wait(lock, [&] { return active_handlers_ == 0; });
      }

      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        stop_workers_ = true;
      }
      queue_cv_.notify_all();
      for (auto& worker : workers_)
        if (worker.joinable()) worker.join();
      workers_.clear();
    }
    {
      std::lock_guard<std::mutex> done(drained_mutex_);
      drained_ = true;
    }
    drained_cv_.notify_all();
  }

  [[nodiscard]] obs::MetricsSnapshot stats() {
    const double uptime = started_ ? seconds_since(start_time_) : 0.0;
    const auto requests =
        static_cast<double>(request_count_.load(std::memory_order_relaxed));
    registry_.set(ids_.qps, uptime > 0.0 ? requests / uptime : 0.0);
    const obs::MetricsSnapshot snap = registry_.snapshot();
    const auto it = snap.histograms.find("serve.latency_seconds");
    registry_.set(ids_.p99,
                  it != snap.histograms.end() ? it->second.quantile(0.99)
                                              : 0.0);
    return registry_.snapshot();
  }

  // --- worker pool --------------------------------------------------------

  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex_);
        queue_cv_.wait(lock,
                       [&] { return stop_workers_ || !queue_.empty(); });
        if (queue_.empty()) return;  // only reachable when stopping
        job = std::move(queue_.front());
        queue_.pop_front();
        ++active_jobs_;
      }
      job();
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        --active_jobs_;
      }
      queue_cv_.notify_all();
    }
  }

  /// Admission control: false when the bounded queue is full (the caller
  /// answers `error overloaded` — backpressure, never unbounded memory).
  bool try_submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (stop_workers_ || queue_.size() >= options_.queue_depth)
        return false;
      queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
    return true;
  }

  // --- the request path ---------------------------------------------------

  [[nodiscard]] std::string task_key(const std::string& backend,
                                     const model::ScenarioSpec& spec) const {
    return "backend=" + backend + "|" + spec.fingerprint();
  }

  [[nodiscard]] sweep::CacheKey cache_key(const std::string& key) const {
    return sweep::CacheKey{"serve", key, "outcome"};
  }

  /// Cache probe + coalescing + admission for one (backend, spec) point.
  Dispatched dispatch(const std::string& backend,
                      const model::ScenarioSpec& spec) {
    const std::string key = task_key(backend, spec);
    if (cache_) {
      sweep::PointResult result;
      const sweep::CacheKey ck = cache_key(key);
      switch (cache_->lookup(ck, &result)) {
        case sweep::CacheLookup::kHit:
          registry_.add(ids_.cache_hit);
          return {Dispatched::Kind::kHit, std::move(result.values), nullptr,
                  false};
        case sweep::CacheLookup::kCorrupt:
          cache_->quarantine(ck);
          registry_.add(ids_.quarantined);
          break;
        case sweep::CacheLookup::kMiss:
          break;
      }
    }
    registry_.add(ids_.cache_miss);

    // The inflight lock covers the draining check, the coalescing probe,
    // AND the queue submit: a waiter can only attach to a Pending that is
    // either queued or will be erased before anyone else can see it.
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    if (draining_) return {Dispatched::Kind::kDraining, {}, nullptr, false};
    if (const auto it = inflight_.find(key); it != inflight_.end()) {
      registry_.add(ids_.coalesced);
      return {Dispatched::Kind::kWait, {}, it->second, true};
    }
    auto pending = std::make_shared<Pending>();
    inflight_.emplace(key, pending);
    const bool admitted = try_submit(
        [this, backend, spec, key, pending] {
          compute(backend, spec, key, pending);
        });
    if (!admitted) {
      inflight_.erase(key);
      registry_.add(ids_.overload);
      return {Dispatched::Kind::kOverloaded, {}, nullptr, false};
    }
    return {Dispatched::Kind::kWait, {}, std::move(pending), false};
  }

  /// The worker-side computation: supervised evaluation, cache store,
  /// publish-to-all-waiters. Never throws.
  void compute(const std::string& backend, const model::ScenarioSpec& spec,
               const std::string& key, std::shared_ptr<Pending> pending) {
    const EvalFn eval = options_.eval;
    const robust::Task task =
        [&eval, &backend, &spec](const robust::TaskContext& ctx) {
          const model::ScenarioSpec attempt =
              ctx.attempt > 0 ? robust::escalate_spec(spec, ctx.attempt)
                              : spec;
          return eval(backend, attempt);
        };
    robust::SuperviseOutcome outcome =
        robust::supervise(task, options_.robust, sweep::fnv1a64(key));
    if (outcome.ok()) {
      registry_.add(ids_.evaluations);
      if (cache_) {
        try {
          cache_->store(cache_key(key), sweep::PointResult{outcome.values});
        } catch (const Error&) {
          // A full or read-only disk must not fail the request: the
          // result still reaches every waiter, it just is not memoized.
        }
      }
    }
    {
      // Erase before publishing: a request arriving after the erase
      // re-probes the cache (hit) or starts a fresh computation; one
      // arriving before it still attaches to this Pending.
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.erase(key);
    }
    {
      std::lock_guard<std::mutex> lock(pending->mutex);
      pending->failure = std::move(outcome.failure);
      pending->values = std::move(outcome.values);
      pending->done = true;
    }
    pending->cv.notify_all();
  }

  static void wait_pending(Pending& pending, robust::Failure* failure,
                           robust::Values* values) {
    std::unique_lock<std::mutex> lock(pending.mutex);
    pending.cv.wait(lock, [&] { return pending.done; });
    *failure = pending.failure;
    *values = pending.values;
  }

  std::string handle_evaluate(const Request& request) {
    Dispatched d = dispatch(request.backend, request.spec);
    switch (d.kind) {
      case Dispatched::Kind::kHit:
        return encode_ok(d.values, /*cached=*/true, /*coalesced=*/false);
      case Dispatched::Kind::kOverloaded:
        registry_.add(ids_.errors);
        return encode_error(ErrorCode::kOverloaded,
                            "evaluation queue is full; retry later");
      case Dispatched::Kind::kDraining:
        registry_.add(ids_.errors);
        return encode_error(ErrorCode::kDraining,
                            "daemon is draining; no new work accepted");
      case Dispatched::Kind::kWait:
        break;
    }
    robust::Failure failure;
    robust::Values values;
    wait_pending(*d.pending, &failure, &values);
    if (!failure.ok()) {
      registry_.add(ids_.errors);
      return encode_error(error_code_for(failure), message_for(failure));
    }
    return encode_ok(values, /*cached=*/false, d.coalesced);
  }

  std::string handle_sweep(const Request& request) {
    // An unknown axis poisons every point equally: whole-request error.
    (void)apply_axis(request.spec, request.axis,
                     request.values.empty() ? 0.0 : request.values.front());

    std::vector<PointReply> replies(request.values.size());
    std::vector<std::shared_ptr<Pending>> waits(request.values.size());
    for (std::size_t i = 0; i < request.values.size(); ++i) {
      PointReply& reply = replies[i];
      model::ScenarioSpec point;
      try {
        point = apply_axis(request.spec, request.axis, request.values[i]);
        point.validate();
      } catch (const Error& e) {
        registry_.add(ids_.errors);
        reply.code = ErrorCode::kBadRequest;
        reply.message = e.what();
        continue;
      }
      Dispatched d = dispatch(request.backend, point);
      switch (d.kind) {
        case Dispatched::Kind::kHit:
          reply.ok = true;
          reply.values = std::move(d.values);
          break;
        case Dispatched::Kind::kOverloaded:
          registry_.add(ids_.errors);
          reply.code = ErrorCode::kOverloaded;
          reply.message = "evaluation queue is full; retry later";
          break;
        case Dispatched::Kind::kDraining:
          registry_.add(ids_.errors);
          reply.code = ErrorCode::kDraining;
          reply.message = "daemon is draining; no new work accepted";
          break;
        case Dispatched::Kind::kWait:
          waits[i] = std::move(d.pending);
          break;
      }
    }
    for (std::size_t i = 0; i < waits.size(); ++i) {
      if (!waits[i]) continue;
      robust::Failure failure;
      robust::Values values;
      wait_pending(*waits[i], &failure, &values);
      if (failure.ok()) {
        replies[i].ok = true;
        replies[i].values = std::move(values);
      } else {
        registry_.add(ids_.errors);
        replies[i].code = error_code_for(failure);
        replies[i].message = message_for(failure);
      }
    }
    return encode_sweep_ok(replies);
  }

  // --- connection handling ------------------------------------------------

  void accept_loop() {
    while (!stop_accept_) {
      std::optional<Socket> accepted = listener_.accept_once(0.05);
      if (!accepted || !accepted->valid()) continue;
      auto connection = std::make_shared<Socket>(std::move(*accepted));
      if (draining_) {
        try {
          connection->write_frame(encode_error(
              ErrorCode::kDraining, "daemon is draining; try again later"));
        } catch (const Error&) {
        }
        continue;  // destructor closes
      }
      std::lock_guard<std::mutex> connections_lock(connections_mutex_);
      if (connections_.size() >= options_.max_connections) {
        registry_.add(ids_.overload);
        try {
          connection->write_frame(
              encode_error(ErrorCode::kOverloaded,
                           "connection limit reached; retry later"));
        } catch (const Error&) {
        }
        continue;
      }
      connections_.push_back(connection);
      registry_.add(ids_.connections);
      {
        std::lock_guard<std::mutex> handlers_lock(handlers_mutex_);
        ++active_handlers_;
      }
      // Detached: handlers signal handlers_cv_ as their very last touch of
      // this Impl, and drain() waits for active_handlers_ == 0, so no
      // handler outlives the daemon. Joining instead would accumulate one
      // dead std::thread per connection ever served.
      std::thread(&Impl::handle_connection, this, connection).detach();
    }
  }

  void handle_connection(std::shared_ptr<Socket> connection) {
    bool greeted = false;
    try {
      for (;;) {
        std::optional<std::string> payload = connection->read_frame();
        if (!payload) break;  // clean close (or drain's shutdown_read)
        const Clock::time_point begin = Clock::now();
        request_count_.fetch_add(1, std::memory_order_relaxed);
        registry_.add(ids_.requests);

        std::string reply;
        bool close_after = false;
        try {
          const Request request = parse_request(*payload);
          if (!greeted) {
            if (request.kind != RequestKind::kHello) {
              registry_.add(ids_.errors);
              reply = encode_error(ErrorCode::kBadRequest,
                                   "first frame must be hello");
              close_after = true;
            } else if (request.protocol_version != kProtocolVersion ||
                       request.salt != handshake_salt()) {
              registry_.add(ids_.errors);
              reply = encode_error(
                  ErrorCode::kVersionMismatch,
                  "daemon speaks protocol " +
                      std::to_string(kProtocolVersion) + " with salt " +
                      handshake_salt());
              close_after = true;
            } else {
              greeted = true;
              reply = encode_welcome();
            }
          } else {
            switch (request.kind) {
              case RequestKind::kHello:
                reply = encode_welcome();  // harmless re-greeting
                break;
              case RequestKind::kPing:
                reply = encode_pong();
                break;
              case RequestKind::kStats:
                reply = encode_stats_ok(stats().to_json());
                break;
              case RequestKind::kEvaluate:
                reply = handle_evaluate(request);
                break;
              case RequestKind::kSweep:
                reply = handle_sweep(request);
                break;
            }
          }
        } catch (const ProtocolError& e) {
          // Grammar-level garbage: answer once, then cut the connection —
          // the stream can no longer be trusted to be frame-aligned.
          registry_.add(ids_.errors);
          reply = encode_error(ErrorCode::kBadRequest, e.what());
          close_after = true;
        } catch (const ConfigError& e) {
          // A well-framed but invalid request (bad spec, unknown backend):
          // typed refusal, connection stays usable.
          registry_.add(ids_.errors);
          reply = encode_error(ErrorCode::kBadRequest, e.what());
        } catch (const Error& e) {
          registry_.add(ids_.errors);
          reply = encode_error(ErrorCode::kFailed, e.what());
        }
        connection->write_frame(reply);
        registry_.observe(ids_.latency, seconds_since(begin));
        if (close_after) break;
      }
    } catch (const ProtocolError&) {
      // Torn frame mid-read; nothing sensible to answer.
    } catch (const Error&) {
      // Peer vanished mid-write; nothing to do.
    }
    connection->shutdown_both();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      for (auto it = connections_.begin(); it != connections_.end(); ++it) {
        if (it->get() == connection.get()) {
          connections_.erase(it);
          break;
        }
      }
    }
    // Last touch of the Impl: notify while holding the mutex so drain()
    // cannot destroy the condition variable mid-notify.
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    --active_handlers_;
    handlers_cv_.notify_all();
  }

  // --- state --------------------------------------------------------------

  struct MetricIds {
    obs::MetricId requests = 0, cache_hit = 0, cache_miss = 0,
                  coalesced = 0, evaluations = 0, overload = 0, errors = 0,
                  connections = 0, quarantined = 0, latency = 0, qps = 0,
                  p99 = 0;
  };

  DaemonOptions options_;
  obs::MetricsRegistry registry_;
  MetricIds ids_;
  std::optional<sweep::DiskCache> cache_;
  Listener listener_;
  Clock::time_point start_time_{};
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_accept_{false};
  std::atomic<std::uint64_t> request_count_{0};

  std::thread accept_thread_;
  std::mutex handlers_mutex_;
  std::condition_variable handlers_cv_;
  std::size_t active_handlers_ = 0;
  std::mutex connections_mutex_;
  std::vector<std::shared_ptr<Socket>> connections_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_jobs_ = 0;
  bool stop_workers_ = false;
  std::vector<std::thread> workers_;

  std::mutex inflight_mutex_;
  std::unordered_map<std::string, std::shared_ptr<Pending>> inflight_;

  std::mutex drained_mutex_;
  std::condition_variable drained_cv_;
  bool drained_ = false;
};

Daemon::Daemon(DaemonOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}
Daemon::~Daemon() = default;

void Daemon::start() { impl_->start(); }
void Daemon::drain() { impl_->drain(); }
bool Daemon::draining() const { return impl_->draining_; }
const Endpoint& Daemon::endpoint() const {
  return impl_->listener_.endpoint();
}
obs::MetricsRegistry& Daemon::metrics() { return impl_->registry_; }
obs::MetricsSnapshot Daemon::stats() { return impl_->stats(); }

}  // namespace btmf::serve
