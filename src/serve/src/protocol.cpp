#include "btmf/serve/protocol.h"

#include <cstddef>

#include "btmf/model/wire.h"
#include "btmf/robust/failure.h"
#include "btmf/sweep/cache.h"
#include "btmf/util/strings.h"

namespace btmf::serve {

namespace {

[[noreturn]] void malformed(const std::string& why) {
  throw ProtocolError("serve protocol: " + why);
}

/// Tokens embedded mid-line (backend names, value names) must not carry
/// the characters the line grammar uses as separators.
void check_token(std::string_view token, std::string_view what) {
  if (token.empty()) {
    malformed(std::string(what) + " must be non-empty");
  }
  if (token.find_first_of(" \n=,") != std::string_view::npos) {
    malformed(std::string(what) + " '" + std::string(token) +
              "' must not contain spaces, newlines, '=' or ','");
  }
}

/// Splits a payload into lines, tolerating one trailing newline.
std::vector<std::string> payload_lines(std::string_view payload) {
  std::vector<std::string> lines = util::split(payload, '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.empty()) malformed("empty payload");
  return lines;
}

/// Splits `line` on single spaces into exactly `n` words.
std::vector<std::string> words_of(const std::string& line, std::size_t n,
                                  std::string_view what) {
  const std::vector<std::string> words = util::split(line, ' ');
  if (words.size() != n) {
    malformed(std::string(what) + " expects " + std::to_string(n) +
              " words, got '" + line + "'");
  }
  return words;
}

/// First word of `line`; `rest` receives everything after it ("" when the
/// line is a single word).
std::string head_word(const std::string& line, std::string* rest) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    *rest = "";
    return line;
  }
  *rest = line.substr(space + 1);
  return line.substr(0, space);
}

double wire_double(std::string_view text, std::string_view what) {
  try {
    return util::parse_double(text, what);
  } catch (const ConfigError& error) {
    malformed(error.what());
  }
}

int wire_version(std::string_view text) {
  try {
    const long long v = util::parse_int(text, "protocol version");
    if (v < 0 || v > 1'000'000) malformed("protocol version out of range");
    return static_cast<int>(v);
  } catch (const ConfigError& error) {
    malformed(error.what());
  }
}

bool wire_bool(const std::string& assignment, std::string_view key) {
  const std::string prefix = std::string(key) + "=";
  if (!util::starts_with(assignment, prefix)) {
    malformed("expected '" + prefix + "0|1', got '" + assignment + "'");
  }
  const std::string_view value =
      std::string_view(assignment).substr(prefix.size());
  if (value == "0") return false;
  if (value == "1") return true;
  malformed("expected '" + prefix + "0|1', got '" + assignment + "'");
}

std::map<std::string, double> parse_value_csv(std::string_view csv) {
  std::map<std::string, double> values;
  if (csv.empty()) return values;
  for (const std::string& field : util::split(csv, ',')) {
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos || eq == 0) {
      malformed("point value '" + field + "' is not name=value");
    }
    if (!values
             .emplace(field.substr(0, eq),
                      wire_double(std::string_view(field).substr(eq + 1),
                                  "point value"))
             .second) {
      malformed("duplicate point value name in '" + field + "'");
    }
  }
  return values;
}

std::string value_csv(const std::map<std::string, double>& values) {
  std::string out;
  for (const auto& [name, value] : values) {
    check_token(name, "value name");
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += util::format_double_exact(value);
  }
  return out;
}

}  // namespace

std::string handshake_salt() { return sweep::cache_format_salt(); }

// --- requests --------------------------------------------------------------

std::string encode_hello() {
  return "hello " + std::to_string(kProtocolVersion) + ' ' +
         handshake_salt() + '\n';
}

std::string encode_evaluate(const std::string& backend,
                            const model::ScenarioSpec& spec) {
  check_token(backend, "backend name");
  return "evaluate " + backend + "\nspec " + model::encode_spec(spec) + '\n';
}

std::string encode_sweep(const std::string& backend, const std::string& axis,
                         const std::vector<double>& values,
                         const model::ScenarioSpec& spec) {
  check_token(backend, "backend name");
  check_token(axis, "axis name");
  if (values.empty()) malformed("sweep needs at least one axis value");
  if (values.size() > kMaxSweepValues) {
    malformed("sweep axis exceeds " + std::to_string(kMaxSweepValues) +
              " values (batch client-side)");
  }
  std::string out = "sweep " + backend + ' ' + axis + "\nvalues ";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += util::format_double_exact(values[i]);
  }
  out += "\nspec " + model::encode_spec(spec) + '\n';
  return out;
}

std::string encode_stats() { return "stats\n"; }

std::string encode_ping() { return "ping\n"; }

Request parse_request(std::string_view payload) {
  const std::vector<std::string> lines = payload_lines(payload);
  std::string rest;
  const std::string verb = head_word(lines[0], &rest);

  Request request;
  if (verb == "hello") {
    const auto words = words_of(lines[0], 3, "hello");
    request.kind = RequestKind::kHello;
    request.protocol_version = wire_version(words[1]);
    request.salt = words[2];
    return request;
  }
  if (verb == "ping") {
    request.kind = RequestKind::kPing;
    return request;
  }
  if (verb == "stats") {
    request.kind = RequestKind::kStats;
    return request;
  }

  const auto spec_line = [&lines](std::size_t index) {
    if (lines.size() <= index ||
        !util::starts_with(lines[index], "spec ")) {
      malformed("missing 'spec <wire>' line");
    }
    return model::decode_spec(
        std::string_view(lines[index]).substr(5));
  };

  if (verb == "evaluate") {
    const auto words = words_of(lines[0], 2, "evaluate");
    request.kind = RequestKind::kEvaluate;
    request.backend = words[1];
    request.spec = spec_line(1);
    if (lines.size() != 2) malformed("evaluate expects 2 lines");
    return request;
  }
  if (verb == "sweep") {
    const auto words = words_of(lines[0], 3, "sweep");
    request.kind = RequestKind::kSweep;
    request.backend = words[1];
    request.axis = words[2];
    if (lines.size() != 3 || !util::starts_with(lines[1], "values ")) {
      malformed("sweep expects 'values <csv>' then 'spec <wire>'");
    }
    for (const std::string& field :
         util::split(std::string_view(lines[1]).substr(7), ',')) {
      request.values.push_back(wire_double(field, "sweep axis value"));
    }
    if (request.values.empty() || request.values.size() > kMaxSweepValues) {
      malformed("sweep axis must carry 1.." +
                std::to_string(kMaxSweepValues) + " values");
    }
    request.spec = spec_line(2);
    return request;
  }
  malformed("unknown request verb '" + verb + "'");
}

// --- responses -------------------------------------------------------------

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kVersionMismatch: return "version-mismatch";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kFailed: return "failed";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kDraining: return "draining";
  }
  return "bad-request";
}

ErrorCode error_code_from_string(std::string_view token) {
  for (const ErrorCode code :
       {ErrorCode::kBadRequest, ErrorCode::kVersionMismatch,
        ErrorCode::kUnsupported, ErrorCode::kFailed, ErrorCode::kOverloaded,
        ErrorCode::kDraining}) {
    if (token == to_string(code)) return code;
  }
  malformed("unknown error code '" + std::string(token) + "'");
}

std::string encode_welcome() {
  return "welcome " + std::to_string(kProtocolVersion) + ' ' +
         handshake_salt() + '\n';
}

std::string encode_ok(const std::map<std::string, double>& values,
                      bool cached, bool coalesced) {
  std::string out = "ok cached=";
  out += cached ? '1' : '0';
  out += " coalesced=";
  out += coalesced ? '1' : '0';
  out += '\n';
  for (const auto& [name, value] : values) {
    check_token(name, "value name");
    out += "value " + name + ' ' + util::format_double_exact(value) + '\n';
  }
  return out;
}

std::string encode_sweep_ok(const std::vector<PointReply>& points) {
  std::string out = "sweep-ok " + std::to_string(points.size()) + '\n';
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PointReply& point = points[i];
    out += "point " + std::to_string(i) + ' ';
    if (point.ok) {
      out += "ok " + value_csv(point.values);
    } else {
      out += "error " + std::string(to_string(point.code)) + ' ' +
             robust::escape_line(point.message);
    }
    out += '\n';
  }
  return out;
}

std::string encode_stats_ok(const std::string& json) {
  return "stats-ok\njson " + robust::escape_line(json) + '\n';
}

std::string encode_pong() { return "pong\n"; }

std::string encode_error(ErrorCode code, const std::string& message) {
  return "error " + std::string(to_string(code)) + ' ' +
         robust::escape_line(message) + '\n';
}

Response parse_response(std::string_view payload) {
  const std::vector<std::string> lines = payload_lines(payload);
  std::string rest;
  const std::string verb = head_word(lines[0], &rest);

  Response response;
  if (verb == "welcome") {
    const auto words = words_of(lines[0], 3, "welcome");
    response.kind = ResponseKind::kWelcome;
    response.protocol_version = wire_version(words[1]);
    response.salt = words[2];
    return response;
  }
  if (verb == "pong") {
    response.kind = ResponseKind::kPong;
    return response;
  }
  if (verb == "ok") {
    const auto words = words_of(lines[0], 3, "ok");
    response.kind = ResponseKind::kOk;
    response.cached = wire_bool(words[1], "cached");
    response.coalesced = wire_bool(words[2], "coalesced");
    for (std::size_t i = 1; i < lines.size(); ++i) {
      const auto value_words = words_of(lines[i], 3, "value");
      if (value_words[0] != "value") {
        malformed("expected 'value <name> <double>', got '" + lines[i] +
                  "'");
      }
      if (!response.values
               .emplace(value_words[1],
                        wire_double(value_words[2], "value"))
               .second) {
        malformed("duplicate value name '" + value_words[1] + "'");
      }
    }
    return response;
  }
  if (verb == "sweep-ok") {
    const auto words = words_of(lines[0], 2, "sweep-ok");
    response.kind = ResponseKind::kSweepOk;
    std::size_t count = 0;
    try {
      count = static_cast<std::size_t>(
          util::parse_int(words[1], "sweep-ok count"));
    } catch (const ConfigError& error) {
      malformed(error.what());
    }
    if (count != lines.size() - 1 || count > kMaxSweepValues) {
      malformed("sweep-ok count mismatches its point lines");
    }
    for (std::size_t i = 1; i < lines.size(); ++i) {
      std::string after_point;
      if (head_word(lines[i], &after_point) != "point") {
        malformed("expected 'point ...', got '" + lines[i] + "'");
      }
      std::string after_index;
      const std::string index = head_word(after_point, &after_index);
      if (index != std::to_string(i - 1)) {
        malformed("point lines must be in order; got index '" + index +
                  "'");
      }
      std::string detail;
      const std::string status = head_word(after_index, &detail);
      PointReply point;
      if (status == "ok") {
        point.ok = true;
        point.values = parse_value_csv(detail);
      } else if (status == "error") {
        std::string message;
        point.code = error_code_from_string(head_word(detail, &message));
        point.message = robust::unescape_line(message);
      } else {
        malformed("point status must be ok|error, got '" + status + "'");
      }
      response.points.push_back(std::move(point));
    }
    return response;
  }
  if (verb == "stats-ok") {
    if (lines.size() != 2 || !util::starts_with(lines[1], "json ")) {
      malformed("stats-ok expects a 'json <escaped>' line");
    }
    response.kind = ResponseKind::kStatsOk;
    response.stats_json =
        robust::unescape_line(std::string_view(lines[1]).substr(5));
    return response;
  }
  if (verb == "error") {
    std::string message;
    response.kind = ResponseKind::kError;
    response.code = error_code_from_string(head_word(rest, &message));
    response.message = robust::unescape_line(message);
    return response;
  }
  malformed("unknown response verb '" + verb + "'");
}

}  // namespace btmf::serve
