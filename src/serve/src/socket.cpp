#include "btmf/serve/socket.h"

#include <cstring>

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define BTMF_SERVE_POSIX 1
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define BTMF_SERVE_POSIX 0
#endif

namespace btmf::serve {

bool serve_supported() { return BTMF_SERVE_POSIX != 0; }

Endpoint Endpoint::parse(std::string_view text) {
  Endpoint endpoint;
  if (util::starts_with(text, "unix:")) {
    endpoint.kind = Kind::kUnix;
    endpoint.path = std::string(text.substr(5));
  } else if (util::starts_with(text, "tcp:")) {
    const std::string_view rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0) {
      throw ConfigError("tcp endpoint must be tcp:<host>:<port>, got '" +
                        std::string(text) + "'");
    }
    endpoint.kind = Kind::kTcp;
    endpoint.host = std::string(rest.substr(0, colon));
    const long long port =
        util::parse_int(rest.substr(colon + 1), "tcp port");
    if (port < 0 || port > 65535) {
      throw ConfigError("tcp port must lie in [0, 65535]");
    }
    endpoint.port = static_cast<int>(port);
  } else {
    endpoint.kind = Kind::kUnix;
    endpoint.path = std::string(text);
  }
  if (endpoint.kind == Kind::kUnix && endpoint.path.empty()) {
    throw ConfigError("unix endpoint path must be non-empty");
  }
  return endpoint;
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ':' + std::to_string(port);
}

#if BTMF_SERVE_POSIX

namespace {

[[noreturn]] void io_fail(const std::string& what) {
  throw IoError("serve socket: " + what + ": " +
                std::string(std::strerror(errno)));
}

/// Blocking read of exactly `len` bytes. Returns bytes read before EOF
/// (== len when complete); throws IoError on an OS error.
std::size_t read_exact(int fd, char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const ssize_t n = ::read(fd, buf + done, len - done);
    if (n == 0) return done;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("read failed");
    }
    done += static_cast<std::size_t>(n);
  }
  return done;
}

void write_all(int fd, const char* buf, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, buf + done, len - done, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, buf + done, len - done);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write failed");
    }
    done += static_cast<std::size_t>(n);
  }
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw ConfigError("unix socket path '" + path + "' exceeds " +
                      std::to_string(sizeof(addr.sun_path) - 1) + " bytes");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::write_frame(std::string_view payload) {
  if (!valid()) io_fail("write on closed socket (errno stale)");
  if (payload.size() > kMaxFrameBytes) {
    throw ProtocolError("serve protocol: outgoing frame of " +
                        std::to_string(payload.size()) +
                        " bytes exceeds the frame limit");
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>((len >> 24) & 0xff),
                    static_cast<char>((len >> 16) & 0xff),
                    static_cast<char>((len >> 8) & 0xff),
                    static_cast<char>(len & 0xff)};
  write_all(fd_, header, sizeof(header));
  write_all(fd_, payload.data(), payload.size());
}

std::optional<std::string> Socket::read_frame() {
  char header[4];
  const std::size_t got = read_exact(fd_, header, sizeof(header));
  if (got == 0) return std::nullopt;  // clean close between frames
  if (got < sizeof(header)) {
    throw ProtocolError("serve protocol: torn frame header (" +
                        std::to_string(got) + " of 4 bytes)");
  }
  const std::uint32_t len =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[0]))
       << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[1]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[2]))
       << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[3]));
  if (len == 0 || len > kMaxFrameBytes) {
    throw ProtocolError(
        "serve protocol: frame length " + std::to_string(len) +
        " outside (0, " + std::to_string(kMaxFrameBytes) + "]");
  }
  std::string payload(len, '\0');
  const std::size_t body = read_exact(fd_, payload.data(), len);
  if (body < len) {
    throw ProtocolError("serve protocol: truncated frame (" +
                        std::to_string(body) + " of " + std::to_string(len) +
                        " payload bytes)");
  }
  return payload;
}

void Socket::shutdown_both() {
  if (valid()) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::shutdown_read() {
  if (valid()) ::shutdown(fd_, SHUT_RD);
}

void Socket::close() {
  if (valid()) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket Socket::connect_to(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) io_fail("socket(AF_UNIX) failed");
    Socket sock(fd);
    const sockaddr_un addr = unix_address(endpoint.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      io_fail("connect to '" + endpoint.describe() + "' failed");
    }
    return sock;
  }

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &found);
  if (rc != 0) {
    throw IoError("serve socket: cannot resolve '" + endpoint.describe() +
                  "': " + ::gai_strerror(rc));
  }
  Socket sock;
  std::string last_error = "no addresses";
  for (const addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      sock = Socket(fd);
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(found);
  if (!sock.valid()) {
    throw IoError("serve socket: connect to '" + endpoint.describe() +
                  "' failed: " + last_error);
  }
  return sock;
}

std::pair<Socket, Socket> Socket::pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    io_fail("socketpair failed");
  }
  return {Socket(fds[0]), Socket(fds[1])};
}

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_), endpoint_(std::move(other.endpoint_)) {
  other.fd_ = -1;
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    endpoint_ = std::move(other.endpoint_);
    other.fd_ = -1;
  }
  return *this;
}

Listener::~Listener() { close(); }

Listener Listener::listen_on(const Endpoint& endpoint) {
  Listener listener;
  listener.endpoint_ = endpoint;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    const sockaddr_un addr = unix_address(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) io_fail("socket(AF_UNIX) failed");
    listener.fd_ = fd;
    // A previous daemon that crashed leaves its socket file behind; a
    // *live* daemon would hold the bind, so unlink-then-bind is safe for
    // the single-daemon-per-path deployment this serves.
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      io_fail("bind '" + endpoint.describe() + "' failed");
    }
  } else {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) io_fail("socket(AF_INET) failed");
    listener.fd_ = fd;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port =
        htons(static_cast<std::uint16_t>(endpoint.port));
    if (listener.endpoint_.host.empty()) {
      listener.endpoint_.host = "127.0.0.1";
    }
    const std::string& host = listener.endpoint_.host;
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      throw ConfigError("serve socket: listen host must be an IPv4 "
                        "address, got '" + host + "'");
    }
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      io_fail("bind '" + endpoint.describe() + "' failed");
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) ==
        0) {
      listener.endpoint_.port = ntohs(addr.sin_port);
    }
  }
  if (::listen(listener.fd_, 64) != 0) {
    io_fail("listen on '" + endpoint.describe() + "' failed");
  }
  return listener;
}

std::optional<Socket> Listener::accept_once(double timeout_s) {
  if (fd_ < 0) return std::nullopt;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms =
      timeout_s < 0.0 ? -1 : static_cast<int>(timeout_s * 1000.0);
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return std::nullopt;
    io_fail("poll failed");
  }
  if (ready == 0) return std::nullopt;
  const int fd = ::accept(fd_, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
      return std::nullopt;
    }
    io_fail("accept failed");
  }
  return Socket(fd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    if (endpoint_.kind == Endpoint::Kind::kUnix) {
      ::unlink(endpoint_.path.c_str());
    }
  }
}

#else  // !BTMF_SERVE_POSIX

namespace {
[[noreturn]] void unsupported() {
  throw ConfigError(
      "the serve subsystem requires POSIX sockets, which this platform "
      "lacks");
}
}  // namespace

Socket& Socket::operator=(Socket&&) noexcept { return *this; }
void Socket::write_frame(std::string_view) { unsupported(); }
std::optional<std::string> Socket::read_frame() { unsupported(); }
void Socket::shutdown_both() {}
void Socket::shutdown_read() {}
void Socket::close() { fd_ = -1; }
Socket Socket::connect_to(const Endpoint&) { unsupported(); }
std::pair<Socket, Socket> Socket::pair() { unsupported(); }

Listener::Listener(Listener&&) noexcept {}
Listener& Listener::operator=(Listener&&) noexcept { return *this; }
Listener::~Listener() {}
Listener Listener::listen_on(const Endpoint&) { unsupported(); }
std::optional<Socket> Listener::accept_once(double) { return std::nullopt; }
void Listener::close() {}

#endif  // BTMF_SERVE_POSIX

}  // namespace btmf::serve
