#include "btmf/obs/sink.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "btmf/util/error.h"

namespace btmf::obs {

void ObsSink::validate() const {
  if (sample_dt < 0.0) {
    throw ConfigError("obs: sample_dt must be >= 0 (0 = auto)");
  }
  if (trace_batch == 0) {
    throw ConfigError("obs: trace_batch must be >= 1");
  }
}

void require_writable_path(const std::string& path) {
  if (path.empty()) throw IoError("output path must not be empty");
  const bool existed = static_cast<bool>(std::ifstream(path));
  {
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
      throw IoError("cannot write to '" + path +
                    "': check that the directory exists and is writable");
    }
  }
  if (!existed) std::remove(path.c_str());
}

std::string combined_json(const MetricsSnapshot* snapshot,
                          const TimeSeriesRecorder* recorder) {
  std::ostringstream os;
  if (snapshot != nullptr) {
    const std::string metrics = snapshot->to_json();
    // Splice the series object into the snapshot document: drop the
    // closing "\n}" and append a fourth top-level key.
    os << metrics.substr(0, metrics.size() - 2) << ",\n  \"series\": ";
  } else {
    os << "{\n  \"series\": ";
  }
  if (recorder != nullptr) {
    os << recorder->to_json();
  } else {
    os << "{}";
  }
  os << "\n}\n";
  return os.str();
}

void write_combined_json(const std::string& path,
                         const MetricsSnapshot* snapshot,
                         const TimeSeriesRecorder* recorder) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw IoError("cannot open metrics output '" + path + "' for writing");
  }
  out << combined_json(snapshot, recorder);
  if (!out.good()) {
    throw IoError("failed while writing metrics output '" + path + "'");
  }
}

}  // namespace btmf::obs
