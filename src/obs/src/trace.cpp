#include "btmf/obs/trace.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "btmf/util/error.h"

namespace btmf::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Dense per-writer thread lanes: a thread resolves its tid once per
// writer via this TLS cache (writer address -> tid). Writer addresses
// can recycle, but a stale hit only mislabels a lane, never corrupts.
struct TlsTidCache {
  const void* writer = nullptr;
  std::uint64_t tid = 0;
};
thread_local TlsTidCache tls_tid;

}  // namespace

TraceWriter::TraceWriter(std::string process_name)
    : process_name_(std::move(process_name)), t0_ns_(steady_ns()) {}

std::uint64_t TraceWriter::now_us() const {
  return (steady_ns() - t0_ns_) / 1000;
}

std::uint64_t TraceWriter::local_tid() {
  if (tls_tid.writer == this) return tls_tid.tid;
  std::uint64_t tid = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tid = next_tid_++;
  }
  tls_tid.writer = this;
  tls_tid.tid = tid;
  return tid;
}

TraceWriter::Span::Span(TraceWriter* writer, std::string name,
                        std::uint64_t start_us)
    : writer_(writer), name_(std::move(name)), start_us_(start_us) {}

TraceWriter::Span::Span(Span&& other) noexcept
    : writer_(other.writer_),
      name_(std::move(other.name_)),
      args_(std::move(other.args_)),
      start_us_(other.start_us_) {
  other.writer_ = nullptr;
}

void TraceWriter::Span::set_args(std::string json_object) {
  args_ = std::move(json_object);
}

void TraceWriter::Span::end() {
  if (writer_ == nullptr) return;
  const std::uint64_t end_us = writer_->now_us();
  writer_->complete_event(name_, start_us_,
                          end_us > start_us_ ? end_us - start_us_ : 0, args_);
  writer_ = nullptr;
}

TraceWriter::Span::~Span() { end(); }

TraceWriter::Span TraceWriter::span(std::string name) {
  return Span(this, std::move(name), now_us());
}

void TraceWriter::complete_event(const std::string& name,
                                 std::uint64_t start_us, std::uint64_t dur_us,
                                 const std::string& args_json) {
  std::ostringstream os;
  os << "{\"name\": \"" << escape_json(name)
     << "\", \"cat\": \"btmf\", \"ph\": \"X\", \"ts\": " << start_us
     << ", \"dur\": " << dur_us << ", \"pid\": 1, \"tid\": " << local_tid();
  if (!args_json.empty()) os << ", \"args\": " << args_json;
  os << "}";
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(os.str());
}

void TraceWriter::instant(const std::string& name,
                          const std::string& args_json) {
  std::ostringstream os;
  os << "{\"name\": \"" << escape_json(name)
     << "\", \"cat\": \"btmf\", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
     << now_us() << ", \"pid\": 1, \"tid\": " << local_tid();
  if (!args_json.empty()) os << ", \"args\": " << args_json;
  os << "}";
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(os.str());
}

void TraceWriter::counter(const std::string& name, double value) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"name\": \"" << escape_json(name)
     << "\", \"cat\": \"btmf\", \"ph\": \"C\", \"ts\": " << now_us()
     << ", \"pid\": 1, \"tid\": " << local_tid() << ", \"args\": {\"value\": "
     << value << "}}";
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(os.str());
}

std::size_t TraceWriter::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string TraceWriter::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  // Process-name metadata event lets Perfetto label the lane group.
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
     << "\"args\": {\"name\": \"" << escape_json(process_name_) << "\"}}";
  for (const std::string& event : events_) {
    os << ",\n" << event;
  }
  os << "\n]}\n";
  return os.str();
}

void TraceWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw IoError("cannot open trace output '" + path + "' for writing");
  }
  out << to_json();
  if (!out.good()) {
    throw IoError("failed while writing trace output '" + path + "'");
  }
}

}  // namespace btmf::obs
