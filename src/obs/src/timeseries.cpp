#include "btmf/obs/timeseries.h"

#include <sstream>
#include <utility>

#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::obs {

TimeSeriesRecorder::TimeSeriesRecorder(std::size_t default_budget)
    : default_budget_(default_budget) {}

SeriesId TimeSeriesRecorder::series(const std::string& name) {
  return series(name, default_budget_);
}

SeriesId TimeSeriesRecorder::series(const std::string& name,
                                    std::size_t budget) {
  BTMF_CHECK_MSG(!name.empty(), "series name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const SeriesId id = series_.size();
  auto s = std::make_unique<Series>();
  s->name = name;
  s->budget = budget == 0 ? 0 : std::max<std::size_t>(budget, 2);
  series_.push_back(std::move(s));
  by_name_.emplace(name, id);
  return id;
}

void TimeSeriesRecorder::append(SeriesId id, double t, double v) {
  const std::lock_guard<std::mutex> lock(mutex_);
  BTMF_CHECK_MSG(id < series_.size(), "unknown series id");
  Series& s = *series_[id];
  if (!s.t.empty() && t < s.t.back()) {
    throw ConfigError("series '" + s.name +
                      "': timestamps must be non-decreasing");
  }
  if (s.budget != 0 && s.t.size() >= s.budget) decimate(s);
  s.t.push_back(t);
  s.v.push_back(v);
}

void TimeSeriesRecorder::decimate(Series& s) {
  // Keep even indices: index 0 (the first sample) survives, and the
  // sample about to be pushed becomes the new last — so first/last
  // coverage of the recorded interval is preserved.
  std::size_t w = 0;
  for (std::size_t r = 0; r < s.t.size(); r += 2, ++w) {
    s.t[w] = s.t[r];
    s.v[w] = s.v[r];
  }
  s.t.resize(w);
  s.v.resize(w);
  ++s.decimations;
}

void TimeSeriesRecorder::import_series(const std::string& name,
                                       const std::vector<double>& t,
                                       const std::vector<double>& v) {
  BTMF_CHECK_MSG(t.size() == v.size(),
                 "import_series: t and v must have equal length");
  const SeriesId id = series(name, 0);  // imported series keep every sample
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& s = *series_[id];
  s.t = t;
  s.v = v;
  s.decimations = 0;
}

SeriesData TimeSeriesRecorder::data(SeriesId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  BTMF_CHECK_MSG(id < series_.size(), "unknown series id");
  const Series& s = *series_[id];
  return SeriesData{s.t, s.v, s.decimations};
}

std::map<std::string, SeriesData> TimeSeriesRecorder::all() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, SeriesData> out;
  for (const auto& [name, id] : by_name_) {
    const Series& s = *series_[id];
    out.emplace(name, SeriesData{s.t, s.v, s.decimations});
  }
  return out;
}

std::string TimeSeriesRecorder::to_json() const {
  const auto series = all();
  std::ostringstream os;
  os.precision(17);
  os << "{";
  bool first = true;
  for (const auto& [name, data] : series) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"t\": [";
    for (std::size_t i = 0; i < data.t.size(); ++i) {
      os << (i > 0 ? ", " : "") << data.t[i];
    }
    os << "], \"v\": [";
    for (std::size_t i = 0; i < data.v.size(); ++i) {
      os << (i > 0 ? ", " : "") << data.v[i];
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";
  return os.str();
}

}  // namespace btmf::obs
