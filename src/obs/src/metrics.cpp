#include "btmf/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::obs {

namespace {

std::uint64_t next_registry_serial() {
  static std::atomic<std::uint64_t> serial{1};
  return serial.fetch_add(1, std::memory_order_relaxed);
}

/// One thread's cached (registry serial -> shard) bindings. The common
/// case — one registry per process — hits the one-entry inline cache;
/// shared_ptr keeps shards alive past either the thread or the registry.
struct TlsShardCache {
  std::uint64_t hot_serial = 0;
  void* hot_shard = nullptr;
  std::vector<std::pair<std::uint64_t, std::shared_ptr<void>>> all;
};

thread_local TlsShardCache tls_shards;

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";  // JSON has no inf/nan
  }
}

}  // namespace

// ---- bucket geometry ------------------------------------------------------

std::size_t MetricsRegistry::bucket_index(double value) {
  if (!(value > 0.0)) return 0;  // <= 0 and NaN underflow
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  const int octave = exp - kMinExp;
  if (octave < 0) return 0;
  if (octave >= kNumOctaves) return kNumBuckets - 1;
  // frac in [0.5, 1): (frac - 0.5) * 2 * kSubBuckets in [0, kSubBuckets).
  const int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  return 1 + static_cast<std::size_t>(octave) * kSubBuckets +
         static_cast<std::size_t>(std::min(sub, kSubBuckets - 1));
}

double MetricsRegistry::bucket_upper(std::size_t b) {
  if (b == 0) return std::ldexp(1.0, kMinExp - 1);  // top of the underflow
  if (b >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  const std::size_t rel = b - 1;
  const auto octave = static_cast<int>(rel / kSubBuckets);
  const auto sub = static_cast<int>(rel % kSubBuckets);
  const double frac = 0.5 + static_cast<double>(sub + 1) / (2.0 * kSubBuckets);
  return std::ldexp(frac, kMinExp + octave);
}

double MetricsRegistry::bucket_lower(std::size_t b) {
  if (b == 0) return 0.0;
  if (b >= kNumBuckets - 1) return std::ldexp(1.0, kMinExp + kNumOctaves - 1);
  const std::size_t rel = b - 1;
  const auto octave = static_cast<int>(rel / kSubBuckets);
  const auto sub = static_cast<int>(rel % kSubBuckets);
  const double frac = 0.5 + static_cast<double>(sub) / (2.0 * kSubBuckets);
  return std::ldexp(frac, kMinExp + octave);
}

// ---- chunked storage ------------------------------------------------------

MetricsRegistry::HistChunk::~HistChunk() {
  for (auto& cell : cells) delete cell.load(std::memory_order_relaxed);
}

MetricsRegistry::Shard::~Shard() {
  for (auto& chunk : counters) delete chunk.load(std::memory_order_relaxed);
  for (auto& chunk : histograms) delete chunk.load(std::memory_order_relaxed);
}

std::atomic<std::uint64_t>& MetricsRegistry::Shard::counter_cell(MetricId id) {
  const std::size_t c = id / kChunkSize;
  BTMF_ASSERT(c < kMaxChunks);
  CounterChunk* chunk = counters[c].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // Single writer per shard: no allocation race within the shard, and
    // the release store publishes the zeroed chunk to snapshot readers.
    chunk = new CounterChunk();
    counters[c].store(chunk, std::memory_order_release);
  }
  return chunk->cells[id % kChunkSize];
}

MetricsRegistry::HistCell& MetricsRegistry::Shard::hist_cell(MetricId id) {
  const std::size_t c = id / kChunkSize;
  BTMF_ASSERT(c < kMaxChunks);
  HistChunk* chunk = histograms[c].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    chunk = new HistChunk();
    histograms[c].store(chunk, std::memory_order_release);
  }
  std::atomic<HistCell*>& slot = chunk->cells[id % kChunkSize];
  HistCell* cell = slot.load(std::memory_order_acquire);
  if (cell == nullptr) {
    cell = new HistCell();
    cell->min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    cell->max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    slot.store(cell, std::memory_order_release);
  }
  return *cell;
}

std::atomic<double>& MetricsRegistry::gauge_cell(MetricId id) const {
  const std::size_t c = id / kChunkSize;
  BTMF_ASSERT(c < kMaxChunks);
  GaugeChunk* chunk = gauges_[c].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // Gauges are registered under the mutex before they are set, so the
    // chunk is created there too — see intern().
    BTMF_ASSERT(false && "gauge cell accessed before registration");
  }
  return chunk->cells[id % kChunkSize];
}

// ---- registry -------------------------------------------------------------

MetricsRegistry::MetricsRegistry() : serial_(next_registry_serial()) {}

MetricsRegistry::~MetricsRegistry() {
  for (auto& chunk : gauges_) delete chunk.load(std::memory_order_relaxed);
}

MetricId MetricsRegistry::intern(const std::string& name, Kind kind) {
  BTMF_CHECK_MSG(!name.empty(), "metric name must not be empty");
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (it->second.first != kind) {
      throw ConfigError("metric '" + name +
                        "' already registered with a different kind");
    }
    return it->second.second;
  }
  std::vector<std::string>* names = nullptr;
  switch (kind) {
    case Kind::kCounter: names = &counter_names_; break;
    case Kind::kGauge: names = &gauge_names_; break;
    case Kind::kHistogram: names = &histogram_names_; break;
  }
  const MetricId id = names->size();
  BTMF_CHECK_MSG(id < kChunkSize * kMaxChunks,
                 "metric registry is full for this kind");
  names->push_back(name);
  by_name_.emplace(name, std::make_pair(kind, id));
  if (kind == Kind::kGauge) {
    const std::size_t c = id / kChunkSize;
    if (gauges_[c].load(std::memory_order_acquire) == nullptr) {
      gauges_[c].store(new GaugeChunk(), std::memory_order_release);
    }
  }
  return id;
}

MetricId MetricsRegistry::counter(const std::string& name) {
  return intern(name, Kind::kCounter);
}
MetricId MetricsRegistry::gauge(const std::string& name) {
  return intern(name, Kind::kGauge);
}
MetricId MetricsRegistry::histogram(const std::string& name) {
  return intern(name, Kind::kHistogram);
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  TlsShardCache& cache = tls_shards;
  if (cache.hot_serial == serial_) {
    return *static_cast<Shard*>(cache.hot_shard);  // lock-free fast path
  }
  for (const auto& [serial, shard] : cache.all) {
    if (serial == serial_) {
      cache.hot_serial = serial_;
      cache.hot_shard = shard.get();
      return *static_cast<Shard*>(shard.get());
    }
  }
  auto shard = std::make_shared<Shard>();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(shard);
  }
  cache.all.emplace_back(serial_, shard);
  cache.hot_serial = serial_;
  cache.hot_shard = shard.get();
  return *shard;
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  local_shard().counter_cell(id).fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(MetricId id, double value) {
  gauge_cell(id).store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, double value) {
  HistCell& cell = local_shard().hist_cell(id);
  // Single-writer cells: plain load + store is a race-free increment for
  // the owner thread, and relaxed atomics keep concurrent snapshot reads
  // tear-free.
  cell.buckets[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum.store(cell.sum.load(std::memory_order_relaxed) + value,
                 std::memory_order_relaxed);
  if (value < cell.min.load(std::memory_order_relaxed)) {
    cell.min.store(value, std::memory_order_relaxed);
  }
  if (value > cell.max.load(std::memory_order_relaxed)) {
    cell.max.store(value, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards = shards_;
    counter_names = counter_names_;
    gauge_names = gauge_names_;
    histogram_names = histogram_names_;
  }

  MetricsSnapshot snap;
  for (MetricId id = 0; id < counter_names.size(); ++id) {
    std::uint64_t total = 0;
    for (const auto& shard : shards) {
      const std::size_t c = id / kChunkSize;
      const CounterChunk* chunk =
          shard->counters[c].load(std::memory_order_acquire);
      if (chunk != nullptr) {
        total += chunk->cells[id % kChunkSize].load(std::memory_order_relaxed);
      }
    }
    snap.counters.emplace(counter_names[id], total);
  }
  for (MetricId id = 0; id < gauge_names.size(); ++id) {
    snap.gauges.emplace(gauge_names[id],
                        gauge_cell(id).load(std::memory_order_relaxed));
  }
  for (MetricId id = 0; id < histogram_names.size(); ++id) {
    HistogramSnapshot h;
    std::vector<std::uint64_t> buckets(kNumBuckets, 0);
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
    for (const auto& shard : shards) {
      const std::size_t c = id / kChunkSize;
      const HistChunk* chunk =
          shard->histograms[c].load(std::memory_order_acquire);
      if (chunk == nullptr) continue;
      const HistCell* cell =
          chunk->cells[id % kChunkSize].load(std::memory_order_acquire);
      if (cell == nullptr) continue;
      for (std::size_t b = 0; b < kNumBuckets; ++b) {
        buckets[b] += cell->buckets[b].load(std::memory_order_relaxed);
      }
      h.count += cell->count.load(std::memory_order_relaxed);
      h.sum += cell->sum.load(std::memory_order_relaxed);
      min = std::min(min, cell->min.load(std::memory_order_relaxed));
      max = std::max(max, cell->max.load(std::memory_order_relaxed));
    }
    if (h.count > 0) {
      h.min = min;
      h.max = max;
    }
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      if (buckets[b] > 0) {
        h.bucket_bounds.push_back(bucket_upper(b));
        h.bucket_counts.push_back(buckets[b]);
      }
    }
    snap.histograms.emplace(histogram_names[id], std::move(h));
  }
  return snap;
}

// ---- snapshot views -------------------------------------------------------

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const std::uint64_t next = seen + bucket_counts[i];
    if (static_cast<double>(next) >= target) {
      // Interpolate inside the bucket; the snapshot stores upper edges,
      // recover the lower edge from the previous non-empty bucket when the
      // geometric neighbour is unknown.
      double lo = i > 0 ? bucket_bounds[i - 1] : 0.0;
      double hi = bucket_bounds[i];
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (!(hi > lo)) return std::clamp(hi, min, max);
      const double inside =
          (target - static_cast<double>(seen)) /
          static_cast<double>(bucket_counts[i]);
      return std::clamp(lo + inside * (hi - lo), min, max);
    }
    seen = next;
  }
  return max;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": ";
    json_number(os, value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
       << h.count << ", \"sum\": ";
    json_number(os, h.sum);
    os << ", \"min\": ";
    json_number(os, h.min);
    os << ", \"max\": ";
    json_number(os, h.max);
    os << ", \"mean\": ";
    json_number(os, h.mean());
    os << ", \"p50\": ";
    json_number(os, h.quantile(0.5));
    os << ", \"p90\": ";
    json_number(os, h.quantile(0.9));
    os << ", \"p99\": ";
    json_number(os, h.quantile(0.99));
    os << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}";
  return os.str();
}

}  // namespace btmf::obs
