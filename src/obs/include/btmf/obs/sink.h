// ObsSink: the one handle instrumented code carries.
//
// A sink is a bundle of three optional, non-owning pointers (metrics,
// recorder, tracer) plus sampling knobs. Instrumented code guards every
// probe with a pointer check — `if (sink.metrics) ...` — so a
// default-constructed sink costs one predictable branch per probe site
// and records nothing. Observation never draws randomness and never
// changes event times: results with and without a sink attached are
// bit-identical (enforced by ObsSim.InertByDefault).
//
// Ownership stays with the caller (btmf_tool, a test, a bench); sinks
// are freely copyable and a copy observes into the same backends.
#pragma once

#include <cstddef>
#include <string>

#include "btmf/obs/metrics.h"
#include "btmf/obs/timeseries.h"
#include "btmf/obs/trace.h"

namespace btmf::obs {

struct ObsSink {
  MetricsRegistry* metrics = nullptr;
  TimeSeriesRecorder* recorder = nullptr;
  TraceWriter* trace = nullptr;

  /// Cadence (sim-time) for population sampling when `recorder` is set;
  /// 0 picks a per-component default (horizon / 512 in the kernel).
  double sample_dt = 0.0;

  /// Kernel dispatch rounds folded into one trace span (bounds event
  /// volume; ~events/trace_batch spans per run).
  std::size_t trace_batch = 1024;

  [[nodiscard]] bool attached() const {
    return metrics != nullptr || recorder != nullptr || trace != nullptr;
  }

  /// Throws btmf::ConfigError on nonsensical knobs (negative sample_dt,
  /// zero trace_batch).
  void validate() const;
};

/// Verifies `path` can be created/written by opening it for append, then
/// removes the probe if the file did not previously exist. Throws
/// btmf::IoError with a friendly message otherwise. Used by CLI tools to
/// fail fast before a long run.
void require_writable_path(const std::string& path);

/// Serialises a combined document: the snapshot's counters/gauges/
/// histograms plus the recorder's series (either part optional).
std::string combined_json(const MetricsSnapshot* snapshot,
                          const TimeSeriesRecorder* recorder);

/// Writes combined_json to `path`; throws btmf::IoError on failure.
void write_combined_json(const std::string& path,
                         const MetricsSnapshot* snapshot,
                         const TimeSeriesRecorder* recorder);

}  // namespace btmf::obs
