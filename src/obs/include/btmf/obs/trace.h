// Chrome trace_event writer: spans and instants loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Events buffer in memory as finished JSON fragments and flush on
// write()/write_file(). Timestamps are wall-clock microseconds from a
// steady clock anchored at writer construction; simulation time, when
// relevant, goes into an event's args instead. Each recording thread
// gets a small dense tid so traces from run_replications separate into
// lanes. The writer is mutex-protected — tracing instruments control
// flow (dispatch batches, solver rungs), not per-event hot paths.
//
// Span usage:
//   { auto span = tracer.span("kernel.dispatch"); ... }   // timed scope
//   span.set_args("{\"rounds\": 1024}");                  // optional JSON
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace btmf::obs {

class TraceWriter {
 public:
  TraceWriter() : TraceWriter(std::string("btmf")) {}
  explicit TraceWriter(std::string process_name);
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// RAII scope emitting one complete ("ph":"X") event on destruction.
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span();

    /// Attaches an args payload; `json_object` must be a JSON object
    /// literal, e.g. R"({"epoch": 12})".
    void set_args(std::string json_object);
    /// Ends the span now instead of at scope exit.
    void end();

   private:
    friend class TraceWriter;
    Span(TraceWriter* writer, std::string name, std::uint64_t start_us);
    TraceWriter* writer_;  // null once ended/moved-from
    std::string name_;
    std::string args_;
    std::uint64_t start_us_;
  };

  /// Starts a timed scope named `name` (category "btmf").
  [[nodiscard]] Span span(std::string name);

  /// Emits an instant event ("ph":"i", thread scope).
  void instant(const std::string& name, const std::string& args_json = "");

  /// Emits a counter event ("ph":"C") — Perfetto renders these as a
  /// stacked track named `name`.
  void counter(const std::string& name, double value);

  /// Microseconds since writer construction (steady clock).
  [[nodiscard]] std::uint64_t now_us() const;

  /// Number of buffered events (spans still open are not counted).
  [[nodiscard]] std::size_t event_count() const;

  /// Serialises {"traceEvents": [...]} with the buffered events.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; throws btmf::IoError on failure.
  void write_file(const std::string& path) const;

 private:
  void complete_event(const std::string& name, std::uint64_t start_us,
                      std::uint64_t dur_us, const std::string& args_json);
  std::uint64_t local_tid();

  std::string process_name_;
  std::uint64_t t0_ns_;
  mutable std::mutex mutex_;
  std::vector<std::string> events_;  // finished JSON object fragments
  std::uint64_t next_tid_ = 1;
};

}  // namespace btmf::obs
