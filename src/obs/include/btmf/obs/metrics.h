// Metrics registry: named counters, gauges and log-linear histograms.
//
// The registry is built for the simulator's concurrency model: many
// replication workers record into the same registry at once, and a
// snapshot may be taken from yet another thread. The hot path
// (add/observe) is lock-free — each recording thread owns a private
// shard of relaxed-atomic cells, created on first touch, and snapshot()
// merges the shards. Counter merges are integer-exact, so snapshots of
// a deterministic workload are themselves deterministic; histogram
// `sum` is a float reduction whose shard order follows thread creation,
// so it is exact only for single-threaded recording.
//
// Metric ids are registry-local dense indices resolved once up front
// (get-or-create by name under a mutex); record sites then carry the id,
// never the name. Naming convention: lower-case dotted paths,
// `component.metric` with an optional `.cN` class suffix — see
// docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace btmf::obs {

/// Dense per-registry index of one counter, gauge, or histogram.
using MetricId = std::size_t;

/// Merged view of one histogram. Buckets are log-linear: each power-of-two
/// octave is split into kSubBuckets linear sub-buckets, so relative bucket
/// width is bounded (~12%) across the full range; values <= 0 or outside
/// the covered range land in the under/overflow buckets.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;
  /// Non-empty buckets only: bucket_bounds[i] is the upper edge of the
  /// bucket holding bucket_counts[i] samples (lower edge = previous bound).
  std::vector<double> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Quantile estimate by linear interpolation inside the owning bucket,
  /// clamped to the observed [min, max]. q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
  /// sum, min, max, mean, p50, p90, p99}}} — stable key order (std::map).
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name (mutex-guarded; resolve ids up front, not on
  // the hot path). Throws btmf::ConfigError if the name already exists
  // with a different kind.
  MetricId counter(const std::string& name);
  MetricId gauge(const std::string& name);
  MetricId histogram(const std::string& name);

  /// Lock-free: bumps the calling thread's shard cell.
  void add(MetricId id, std::uint64_t delta = 1);
  /// Gauges are registry-global, last write wins (relaxed atomic store).
  void set(MetricId id, double value);
  /// Lock-free: records `value` into the thread-shard histogram.
  void observe(MetricId id, double value);

  /// Merges every thread shard. Safe to call concurrently with recording;
  /// concurrent increments may or may not be included.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Log-linear bucket geometry (shared with the snapshot math).
  static constexpr int kSubBuckets = 4;    ///< linear slices per octave
  static constexpr int kMinExp = -20;      ///< smallest octave: [2^-21, 2^-20)
  static constexpr int kNumOctaves = 64;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kSubBuckets) * kNumOctaves + 2;  ///< + under/over

  /// Bucket index of a sample (0 = underflow, kNumBuckets-1 = overflow).
  static std::size_t bucket_index(double value);
  /// Upper edge of bucket b (inf for the overflow bucket).
  static double bucket_upper(std::size_t b);
  /// Lower edge of bucket b (0 for the underflow bucket).
  static double bucket_lower(std::size_t b);

 private:
  // Cells live in chunks with stable addresses so a recording thread can
  // publish a freshly allocated chunk with one release store while other
  // threads (snapshot) read concurrently — no resize races, no locks.
  static constexpr std::size_t kChunkSize = 256;
  static constexpr std::size_t kMaxChunks = 64;  ///< 16384 metrics per kind

  struct HistCell {
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
  };
  struct CounterChunk {
    std::array<std::atomic<std::uint64_t>, kChunkSize> cells{};
  };
  struct HistChunk {
    std::array<std::atomic<HistCell*>, kChunkSize> cells{};
    ~HistChunk();
  };
  struct GaugeChunk {
    std::array<std::atomic<double>, kChunkSize> cells{};
  };

  /// One thread's private recording surface; the registry keeps shared
  /// ownership so snapshots survive thread exit.
  struct Shard {
    std::array<std::atomic<CounterChunk*>, kMaxChunks> counters{};
    std::array<std::atomic<HistChunk*>, kMaxChunks> histograms{};
    ~Shard();

    std::atomic<std::uint64_t>& counter_cell(MetricId id);
    HistCell& hist_cell(MetricId id);
  };

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  MetricId intern(const std::string& name, Kind kind);
  Shard& local_shard() const;
  std::atomic<double>& gauge_cell(MetricId id) const;

  const std::uint64_t serial_;  ///< process-unique; keys the TLS cache

  mutable std::mutex mutex_;
  std::map<std::string, std::pair<Kind, MetricId>> by_name_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  mutable std::vector<std::shared_ptr<Shard>> shards_;
  mutable std::array<std::atomic<GaugeChunk*>, kMaxChunks> gauges_{};
};

}  // namespace btmf::obs
