// Time-series recorder: named (t, v) series under a fixed sample budget.
//
// Producers append strictly-forward-in-time samples on a cadence they
// control (the kernel samples piecewise-constant populations every
// `ObsSink::sample_dt`). When a series outgrows its budget the recorder
// decimates it in place — keeps every other sample — so long horizons
// degrade resolution gracefully instead of growing without bound. The
// first recorded sample is always preserved and the most recent sample
// is always present, so a series spans the full recorded interval at
// any budget >= 2.
//
// The recorder is mutex-protected, not hot-path lock-free like the
// metrics registry: appends happen on a sampling cadence (thousands per
// run, not millions), and one recorder may be shared by concurrent
// replication workers.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace btmf::obs {

/// Dense per-recorder index of one series.
using SeriesId = std::size_t;

/// Copy of one series' samples.
struct SeriesData {
  std::vector<double> t;
  std::vector<double> v;
  /// Number of decimation passes applied; effective cadence is the
  /// producer's cadence * 2^decimations.
  std::size_t decimations = 0;
};

class TimeSeriesRecorder {
 public:
  /// `default_budget` caps samples per series; 0 means unbounded.
  explicit TimeSeriesRecorder(std::size_t default_budget = 4096);

  /// Get-or-create by name. A budget given on first creation overrides
  /// the recorder default for that series (0 = unbounded); on subsequent
  /// calls the budget argument is ignored.
  SeriesId series(const std::string& name);
  SeriesId series(const std::string& name, std::size_t budget);

  /// Appends one sample. Timestamps must be non-decreasing per series;
  /// a backwards timestamp throws btmf::ConfigError.
  void append(SeriesId id, double t, double v);

  /// Replaces the named series' samples wholesale (used to publish a
  /// per-run internal recorder into a shared sink; last import wins).
  void import_series(const std::string& name, const std::vector<double>& t,
                     const std::vector<double>& v);

  [[nodiscard]] SeriesData data(SeriesId id) const;
  [[nodiscard]] std::map<std::string, SeriesData> all() const;

  /// {"series": {name: {"t": [...], "v": [...]}}} fragment — the inner
  /// object only, composable into a larger JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  struct Series {
    std::string name;
    std::size_t budget;
    std::size_t decimations = 0;
    std::vector<double> t;
    std::vector<double> v;
  };

  void decimate(Series& s);

  const std::size_t default_budget_;
  mutable std::mutex mutex_;
  std::map<std::string, SeriesId> by_name_;
  std::vector<std::unique_ptr<Series>> series_;
};

}  // namespace btmf::obs
