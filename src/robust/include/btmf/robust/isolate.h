// Crash isolation: run one evaluation in a forked worker subprocess.
//
// The only way to survive a segfault, an OOM kill, or a hard-hung solver
// is a process boundary. run_isolated forks, runs the supervised function
// in the child, and streams the result back over a pipe in the same
// line-oriented escaped format the checkpoint journal uses. The parent
// polls the pipe against the deadline; on expiry the child is SIGKILLed —
// this is *hard* preemption, unlike the cooperative in-process watchdog.
// A child that dies on a signal (WIFSIGNALED) is reported as kCrash with
// the signal name; crashes are contained, reported, and retryable instead
// of fatal to the sweep.
//
// Cost: one fork + pipe round trip per evaluation, and the child recomputes
// from a cold start (no result memory is shared back except the pipe
// payload). That is why isolation is opt-in (--isolate) rather than the
// default. Fork is unavailable on non-POSIX hosts; isolation_supported()
// gates it and callers fall back to the in-process watchdog.
#pragma once

#include <functional>

#include "btmf/robust/failure.h"

namespace btmf::robust {

struct IsolatedOutcome {
  Failure failure;   ///< kNone, or kCrash / kTimeout / kError / ...
  Values values;     ///< the payload when failure.ok()
};

/// Whether fork-based isolation works on this platform/build.
[[nodiscard]] bool isolation_supported();

/// Runs `fn` in a forked child. timeout_s <= 0 means no deadline.
/// Returns kCrash when the child dies on a signal or exits without a
/// parseable report, kTimeout when the deadline passes (child SIGKILLed),
/// otherwise the child's own classified failure or its values.
/// Throws btmf::IoError only for parent-side plumbing failures (pipe or
/// fork exhaustion), never for child misbehaviour.
[[nodiscard]] IsolatedOutcome run_isolated(const std::function<Values()>& fn,
                                           double timeout_s);

}  // namespace btmf::robust
