// Crash isolation: run one evaluation in a forked worker subprocess.
//
// The only way to survive a segfault, an OOM kill, or a hard-hung solver
// is a process boundary. run_isolated forks, runs the supervised function
// in the child, and streams the result back over a pipe in the same
// line-oriented escaped format the checkpoint journal uses. The parent
// polls the pipe against the deadline; on expiry the child is SIGKILLed —
// this is *hard* preemption, unlike the cooperative in-process watchdog.
// A child that dies on a signal (WIFSIGNALED) is reported as kCrash with
// the signal name; crashes are contained, reported, and retryable instead
// of fatal to the sweep.
//
// Cost: one fork + pipe round trip per evaluation, and the child recomputes
// from a cold start (no result memory is shared back except the pipe
// payload). That is why isolation is opt-in (--isolate) rather than the
// default. Fork is unavailable on non-POSIX hosts; isolation_supported()
// reports that, and run_isolated there returns a typed kUnsupported
// failure — it never degrades silently to the in-process watchdog.
//
// POSIX caveat: sweeps fork from thread-pool workers while sibling threads
// run arbitrary compute, and after a multithreaded fork() the child may
// formally only call async-signal-safe functions — yet the child runs a
// full evaluation (malloc, locks, iostreams). glibc, the supported
// toolchain, registers atfork handlers that make its allocator usable in
// the child, and run_isolated serializes its pipe/fork window so
// concurrent workers cannot leak pipe fds into each other's children. On
// libcs without such handlers (musl, macOS system libraries) a child can
// deadlock if a sibling thread held the heap or locale lock at fork time:
// there, combine --isolate with --jobs 1. See docs/ROBUSTNESS.md.
#pragma once

#include <functional>

#include "btmf/robust/failure.h"

namespace btmf::robust {

struct IsolatedOutcome {
  Failure failure;   ///< kNone, or kCrash / kTimeout / kError / ...
  Values values;     ///< the payload when failure.ok()
};

/// Whether fork-based isolation works on this platform/build.
[[nodiscard]] bool isolation_supported();

/// Runs `fn` in a forked child. timeout_s <= 0 means no deadline.
/// Returns kCrash when the child dies on a signal or exits without a
/// parseable report, kTimeout when the deadline passes (child SIGKILLed),
/// otherwise the child's own classified failure or its values.
/// Throws btmf::IoError only for parent-side plumbing failures (pipe or
/// fork exhaustion), never for child misbehaviour.
[[nodiscard]] IsolatedOutcome run_isolated(const std::function<Values()>& fn,
                                           double timeout_s);

}  // namespace btmf::robust
