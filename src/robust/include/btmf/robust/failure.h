// Typed failure taxonomy of the execution supervisor.
//
// Every way a supervised evaluation can go wrong gets one enumerator, so
// callers (the sweep engine, the reproduce registry, the CLI) can react by
// *kind* — retry a timeout, quarantine a corrupt cache entry, give up on a
// typed capability refusal — instead of string-matching exception text.
// The taxonomy extends the model layer's OutcomeStatus (kOk / kUnsupported
// / kFailed) with the failure modes that only exist once evaluations run
// under deadlines, in worker subprocesses, and against an on-disk cache.
// See docs/ROBUSTNESS.md.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "btmf/util/error.h"

namespace btmf::robust {

enum class FailureKind {
  kNone,          ///< no failure — the attempt produced a result
  kError,         ///< evaluation threw (solver divergence, ...); retryable
  kTimeout,       ///< wall-clock deadline exceeded; retryable
  kCrash,         ///< worker subprocess died on a signal; retryable
  kNonFinite,     ///< the result contained NaN/Inf; retryable
  kUnsupported,   ///< typed capability/configuration refusal; permanent
  kCacheCorrupt,  ///< cache entry failed verification and was quarantined
};

/// Stable lower-case strings ("timeout", "crash", ...) for journals,
/// tables and logs; round-trips through failure_kind_from_string.
[[nodiscard]] const char* to_string(FailureKind kind);

/// Inverse of to_string; throws btmf::ConfigError on an unknown token.
[[nodiscard]] FailureKind failure_kind_from_string(std::string_view token);

/// Whether another attempt could plausibly succeed. Deterministic misuse
/// (kUnsupported) never benefits from a retry; everything transient —
/// timeouts, crashes, solver failures (an escalation hook may tighten
/// tolerances), non-finite results — does.
[[nodiscard]] bool retryable(FailureKind kind);

/// One supervised computation's payload: named doubles. Mirrors
/// sweep::PointResult::values without depending on btmf::sweep (the
/// supervisor sits *below* the sweep engine in the layering).
using Values = std::map<std::string, double>;

struct Failure {
  FailureKind kind = FailureKind::kNone;
  std::string message;

  [[nodiscard]] bool ok() const { return kind == FailureKind::kNone; }
};

/// Thrown by cooperative cancellation points (CancelToken::checkpoint)
/// when the watchdog has expired an attempt's deadline; the supervisor
/// maps it to kTimeout.
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

/// Maps the in-flight exception to a Failure. Call from inside a catch
/// block (or any context where `throw;` rethrows): CancelledError ->
/// kTimeout, ConfigError -> kUnsupported (bad inputs stay bad on retry),
/// any other btmf::Error or std::exception -> kError.
[[nodiscard]] Failure classify_active_exception();

/// One-line escaping for messages embedded in line-oriented formats (the
/// checkpoint journal, the isolation pipe protocol): backslash and
/// newline are escaped so any message survives a round trip verbatim.
[[nodiscard]] std::string escape_line(std::string_view text);
[[nodiscard]] std::string unescape_line(std::string_view line);

}  // namespace btmf::robust
