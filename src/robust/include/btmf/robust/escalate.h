// Retry escalation: make later attempts *try harder*, not just again.
//
// A deterministic solver that failed once will fail identically on a
// blind retry — retrying only helps transient failures (crashes,
// timeouts from machine load). For solver failures and non-finite
// results the useful lever is the solver configuration itself, so the
// supervisor exposes the attempt number and this hook maps it onto the
// ScenarioSpec: each retry climbs one rung of a ladder that tightens the
// ODE tolerances and gives the equilibrium finder more transient chunks —
// the same shape as find_equilibrium's *internal* escalation ladder
// (math/equilibrium.h), extended to the failures that ladder cannot see
// (it never reruns the ODE integration itself with tighter tolerances).
//
// Determinism note: escalated specs produce *different* (better) numbers
// than the base spec would. The sweep engine therefore only uses this
// hook through SweepSpec::compute_retry, which the caller opts into, and
// the cache stores whatever attempt finally succeeded — identically on
// every rerun, because attempt progression is itself deterministic.
#pragma once

#include "btmf/model/spec.h"

namespace btmf::robust {

/// Returns `spec` hardened for retry `attempt` (0 = unchanged). Each rung
/// divides the ODE rtol/atol by 100 (floored at 1e-13/1e-14 — below that
/// RK45 step sizes underflow in double) and adds equilibrium transient
/// budget: +50% max_chunks, +1 allowed escalation via longer chunk_time.
/// Idempotent in the sense that rung r is a pure function of (spec, r).
[[nodiscard]] model::ScenarioSpec escalate_spec(
    const model::ScenarioSpec& spec, unsigned attempt);

}  // namespace btmf::robust
