// Wall-clock deadline enforcement for in-process evaluations.
//
// C++ offers no safe way to preempt a running thread, so the in-process
// watchdog is *cooperative*: the supervised function runs on a worker
// thread holding a CancelToken; a monitor wakes at the deadline, trips the
// token, and long-running solvers that call CancelToken::checkpoint() (or
// poll cancelled()) unwind with CancelledError. A function that never
// checks the token cannot be stopped — after a grace period the worker
// thread is detached and the attempt reported as timed out + abandoned
// (the thread keeps burning a core until it returns; its result is
// discarded). Hard preemption needs a process boundary: that is what
// isolate.h provides, and why --isolate exists. See docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "btmf/robust/failure.h"

namespace btmf::robust {

/// Shared cancellation flag. The supervised function receives it via the
/// thread-local accessor below so deep call stacks (ODE loops, the event
/// kernel) can poll without plumbing a parameter through every layer.
class CancelToken {
 public:
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Throws CancelledError when cancelled; cheap enough for inner loops.
  void checkpoint(const char* where) const;

 private:
  std::atomic<bool> cancelled_{false};
};

/// The token of the innermost run_with_deadline on this thread, or nullptr
/// outside one. Library code that wants to be deadline-aware calls
/// `if (auto* t = active_cancel_token()) t->checkpoint("ode.step");`.
[[nodiscard]] CancelToken* active_cancel_token();

/// Installs `token` as this thread's active token for the lifetime of the
/// guard (restores the previous one on destruction). run_with_deadline
/// does this on its worker thread; tests and custom runners can too.
class ScopedCancelToken {
 public:
  explicit ScopedCancelToken(CancelToken* token);
  ~ScopedCancelToken();
  ScopedCancelToken(const ScopedCancelToken&) = delete;
  ScopedCancelToken& operator=(const ScopedCancelToken&) = delete;

 private:
  CancelToken* previous_;
};

struct WatchdogResult {
  Failure failure;      ///< kNone on success, kTimeout/kError/... otherwise
  Values values;        ///< the payload when failure.ok()
  /// True when the deadline passed AND the worker ignored cancellation for
  /// the whole grace period, so its thread was detached. The process keeps
  /// the runaway thread until the function eventually returns.
  bool abandoned = false;
};

/// Runs `fn` with a wall-clock deadline. timeout_s <= 0 disables the
/// watchdog entirely: `fn` runs inline on the calling thread (no worker
/// thread, no token — zero overhead, identical to unsupervised code).
/// With a deadline, `fn` runs on a worker thread with a CancelToken
/// installed; on expiry the token is cancelled and the worker given
/// `grace_s` to unwind before being abandoned. Exceptions from `fn` are
/// classified via classify_active_exception().
///
/// OWNERSHIP: with a deadline, `fn` must be self-contained — capture by
/// value, or reference only process-lifetime objects. The worker runs a
/// *copy* of `fn`, and an abandoned worker keeps executing that copy
/// after run_with_deadline (and the caller's whole frame, transitively)
/// has returned; a closure holding references to caller locals is a
/// use-after-free in exactly the uncooperative-timeout scenario the
/// watchdog exists for.
[[nodiscard]] WatchdogResult run_with_deadline(
    const std::function<Values()>& fn, double timeout_s,
    double grace_s = 1.0);

}  // namespace btmf::robust
