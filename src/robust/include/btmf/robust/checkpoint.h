// Write-ahead checkpoint journal for resumable batch runs.
//
// The journal records, one line per *computed* point, what happened: ok
// (the result itself lives in the content-addressed cache — the cache IS
// the checkpoint for successes) or a failure kind + attempts + exact
// message. A resumed run replays journaled failures verbatim instead of
// recomputing them, and picks up successes from the cache, so the final
// result is bit-identical to an uninterrupted run — including the failure
// table of the report, message for message.
//
// Crash safety: every entry is a single buffered write + flush of one
// '\n'-terminated line to an append-only stream. A SIGKILL can tear at
// most the final line; load() discards any line not terminated by '\n'
// and any line that fails to parse, so a torn journal never poisons a
// resume — the torn point is simply recomputed.
//
// The header binds the journal to one (sweep name, spec fingerprint,
// grid) identity, hashed by the caller. A journal whose identity does not
// match is ignored on load and truncated on open: resuming a *different*
// sweep in the same cache directory never replays stale entries.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "btmf/robust/failure.h"

namespace btmf::robust {

class CheckpointJournal {
 public:
  struct Entry {
    std::size_t index = 0;      ///< flat point index within the sweep grid
    FailureKind kind = FailureKind::kNone;  ///< kNone = computed ok
    unsigned attempts = 1;
    std::string message;        ///< failure message; empty when ok
  };

  /// Parses the journal at `path`. Returns no entries when the file is
  /// missing, has a foreign identity, or a corrupt header; tolerates and
  /// discards a torn tail.
  [[nodiscard]] static std::vector<Entry> load(const std::string& path,
                                               std::uint64_t identity);

  /// Opens `path` for appending. `fresh` (non-resume runs, or an identity
  /// mismatch) truncates any existing journal; the header is (re)written
  /// whenever the file starts empty. Throws btmf::IoError if the file
  /// cannot be opened.
  CheckpointJournal(std::string path, std::uint64_t identity, bool fresh);

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  /// Appends one entry and flushes. Thread-safe.
  void append(const Entry& entry);

  /// Entries appended through *this object* (not pre-existing ones).
  [[nodiscard]] std::uint64_t appended() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::uint64_t appended_ = 0;
  std::ofstream out_;
};

}  // namespace btmf::robust
