// Retry policy: how many attempts, how long to wait between them.
//
// Backoff is exponential with deterministic jitter: the jitter fraction is
// derived from a splitmix64 hash of (task key, attempt), so two runs of the
// same sweep sleep the same amounts — timing is reproducible, and (more
// importantly) *results* never depend on it. Delays only spread load when
// many workers hammer a shared resource (the disk cache, a future service
// daemon); they never change what gets computed.
#pragma once

#include <cstdint>

namespace btmf::robust {

struct RetryPolicy {
  /// Attempts after the first (0 = never retry). Total tries = retries + 1.
  unsigned retries = 0;
  double base_delay_s = 0.1;    ///< delay before the first retry
  double growth = 2.0;          ///< exponential factor per further retry
  double max_delay_s = 5.0;     ///< cap on any single delay
  double jitter = 0.25;         ///< +/- fraction of the delay, deterministic
};

/// splitmix64: the standard 64-bit finalizing mixer. Used for jitter only,
/// never for simulation randomness.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Delay in seconds before retry attempt `attempt` (1-based: attempt 1 is
/// the first retry). `key` identifies the task so concurrent tasks desync.
[[nodiscard]] double backoff_delay_s(const RetryPolicy& policy,
                                     std::uint64_t key, unsigned attempt);

}  // namespace btmf::robust
