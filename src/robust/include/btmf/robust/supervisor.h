// The supervisor: deadline + isolation + retry around one computation.
//
// supervise() is the single entry point the sweep engine (and any future
// daemon) uses per task: it runs the attempt under the configured watchdog
// or in a forked worker, classifies what went wrong, consults the retry
// policy, sleeps the deterministic backoff, and invokes the escalation
// hook so later attempts can tighten solver tolerances. Results are NEVER
// a function of timing: the same task with the same options either
// succeeds with identical values or fails with the same kind.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "btmf/robust/failure.h"
#include "btmf/robust/retry.h"

namespace btmf::obs {
class MetricsRegistry;
}  // namespace btmf::obs

namespace btmf::robust {

struct SupervisorOptions {
  /// Per-attempt wall-clock deadline in seconds; <= 0 disables it. With
  /// isolate the child is SIGKILLed at the deadline (hard preemption);
  /// in-process the cooperative watchdog cancels and, failing that,
  /// abandons the worker thread.
  double timeout_s = 0.0;
  /// Grace period after an in-process cancellation before abandonment.
  double grace_s = 1.0;
  /// Run every attempt in a forked worker subprocess (--isolate): crashes
  /// are contained and reported as kCrash instead of killing the sweep.
  /// On platforms without fork() an isolate request fails typed as
  /// kUnsupported — never a silent fallback to the in-process watchdog.
  bool isolate = false;
  RetryPolicy retry{};
  /// Scale factor on backoff sleeps; tests set 0 to make retries instant.
  /// Affects wall-clock only, never results.
  double backoff_scale = 1.0;
  /// Reject results containing NaN/Inf as kNonFinite (retryable: the
  /// escalation hook may tighten tolerances enough to recover). Off by
  /// default: some models legitimately report infinities (e.g. a download
  /// time at an instability boundary), so rejecting is an opt-in policy.
  bool reject_non_finite = false;

  /// Optional metrics sink (non-owning; nullptr = inert): increments
  /// robust.retries / robust.timeouts / robust.crashes.
  obs::MetricsRegistry* metrics = nullptr;

  [[nodiscard]] bool active() const {
    return timeout_s > 0.0 || isolate || retry.retries > 0 ||
           reject_non_finite;
  }
};

/// Identity + attempt number handed to the task so the compute function
/// can escalate (tighter tolerances, alternate strategy) on retries.
struct TaskContext {
  std::uint64_t key = 0;   ///< stable task identity (for jitter + logs)
  unsigned attempt = 0;    ///< 0 = first try, 1 = first retry, ...
};

/// The supervised computation: must be deterministic per (task, attempt)
/// and self-contained — capture by value, or reference only
/// process-lifetime objects. An isolated attempt runs it in a forked
/// child, and a watchdogged attempt runs a *copy* on a worker thread that,
/// if abandoned, outlives every caller frame; references to caller locals
/// become use-after-free the moment a deadline is ignored.
using Task = std::function<Values(const TaskContext&)>;

struct SuperviseOutcome {
  Failure failure;         ///< kNone on success
  Values values;
  unsigned attempts = 1;   ///< total tries made (>= 1)
  unsigned timeouts = 0;   ///< attempts lost to the deadline
  unsigned crashes = 0;    ///< attempts lost to a worker crash

  [[nodiscard]] bool ok() const { return failure.ok(); }
};

/// Runs `task` under `options`. Retries everything retryable() up to
/// retry.retries times with exponential backoff; permanent failures
/// (kUnsupported) return immediately. When options.active() is false this
/// is a zero-overhead inline call with exception classification only.
[[nodiscard]] SuperviseOutcome supervise(const Task& task,
                                         const SupervisorOptions& options,
                                         std::uint64_t key);

}  // namespace btmf::robust
