#include "btmf/robust/failure.h"

#include <exception>

namespace btmf::robust {

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kError: return "error";
    case FailureKind::kTimeout: return "timeout";
    case FailureKind::kCrash: return "crash";
    case FailureKind::kNonFinite: return "non-finite";
    case FailureKind::kUnsupported: return "unsupported";
    case FailureKind::kCacheCorrupt: return "cache-corrupt";
  }
  return "error";
}

FailureKind failure_kind_from_string(std::string_view token) {
  for (FailureKind kind : {FailureKind::kNone, FailureKind::kError,
                           FailureKind::kTimeout, FailureKind::kCrash,
                           FailureKind::kNonFinite, FailureKind::kUnsupported,
                           FailureKind::kCacheCorrupt}) {
    if (token == to_string(kind)) return kind;
  }
  throw ConfigError("unknown failure kind: '" + std::string(token) + "'");
}

bool retryable(FailureKind kind) {
  switch (kind) {
    case FailureKind::kError:
    case FailureKind::kTimeout:
    case FailureKind::kCrash:
    case FailureKind::kNonFinite:
    case FailureKind::kCacheCorrupt:
      return true;
    case FailureKind::kNone:
    case FailureKind::kUnsupported:
      return false;
  }
  return false;
}

Failure classify_active_exception() {
  try {
    throw;
  } catch (const CancelledError& e) {
    return {FailureKind::kTimeout, e.what()};
  } catch (const ConfigError& e) {
    return {FailureKind::kUnsupported, e.what()};
  } catch (const std::exception& e) {
    return {FailureKind::kError, e.what()};
  } catch (...) {
    return {FailureKind::kError, "unknown exception"};
  }
}

std::string escape_line(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string unescape_line(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '\\' || i + 1 == line.size()) {
      out += line[i];
      continue;
    }
    ++i;
    switch (line[i]) {
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case '\\': out += '\\'; break;
      default: out += line[i]; break;
    }
  }
  return out;
}

}  // namespace btmf::robust
