#include "btmf/robust/watchdog.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "btmf/util/strings.h"

namespace btmf::robust {
namespace {

thread_local CancelToken* t_active_token = nullptr;

/// State shared between the caller and the worker thread. Heap-allocated
/// and shared_ptr-owned so an abandoned (detached) worker can still write
/// its result and destroy the state safely after the caller has given up.
struct SharedRun {
  std::mutex mutex;
  std::condition_variable done_cv;
  bool done = false;
  CancelToken token;
  Failure failure;
  Values values;
};

}  // namespace

void CancelToken::checkpoint(const char* where) const {
  if (cancelled()) {
    throw CancelledError(std::string("cancelled at ") + where);
  }
}

CancelToken* active_cancel_token() { return t_active_token; }

ScopedCancelToken::ScopedCancelToken(CancelToken* token)
    : previous_(t_active_token) {
  t_active_token = token;
}

ScopedCancelToken::~ScopedCancelToken() { t_active_token = previous_; }

WatchdogResult run_with_deadline(const std::function<Values()>& fn,
                                 double timeout_s, double grace_s) {
  WatchdogResult result;
  if (timeout_s <= 0.0) {
    // No deadline: run inline, bit-for-bit the unsupervised path.
    try {
      result.values = fn();
    } catch (...) {
      result.failure = classify_active_exception();
    }
    return result;
  }

  auto state = std::make_shared<SharedRun>();
  // The worker owns a copy of `fn`. Together with the header's ownership
  // contract (self-contained closures all the way down the task chain),
  // this means an abandoned worker only ever touches memory it owns.
  std::thread worker([state, fn] {
    Failure failure;
    Values values;
    try {
      ScopedCancelToken scope(&state->token);
      values = fn();
    } catch (...) {
      failure = classify_active_exception();
    }
    std::lock_guard<std::mutex> lock(state->mutex);
    state->failure = std::move(failure);
    state->values = std::move(values);
    state->done = true;
    state->done_cv.notify_all();
  });

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(state->mutex);
  if (!state->done_cv.wait_until(lock, deadline,
                                 [&] { return state->done; })) {
    // Deadline passed: trip the token and give the worker a grace period
    // to reach a cancellation checkpoint and unwind.
    state->token.cancel();
    const auto grace_end = std::chrono::steady_clock::now() +
                           std::chrono::duration<double>(grace_s);
    if (!state->done_cv.wait_until(lock, grace_end,
                                   [&] { return state->done; })) {
      // The worker ignored cancellation. Abandon it: the detached thread
      // owns a shared_ptr to `state` (captured by value) so its eventual
      // writes land on live memory, but its result is discarded.
      lock.unlock();
      worker.detach();
      result.failure = {FailureKind::kTimeout,
                        "evaluation exceeded " +
                            util::format_double(timeout_s) +
                            "s deadline and ignored cancellation "
                            "(abandoned)"};
      result.abandoned = true;
      return result;
    }
  }
  lock.unlock();
  worker.join();

  if (state->failure.ok()) {
    result.values = std::move(state->values);
  } else if (state->failure.kind == FailureKind::kTimeout) {
    result.failure = {FailureKind::kTimeout,
                      "evaluation exceeded " +
                          util::format_double(timeout_s) + "s deadline (" +
                          state->failure.message + ")"};
  } else {
    result.failure = std::move(state->failure);
  }
  return result;
}

}  // namespace btmf::robust
