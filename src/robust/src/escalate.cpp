#include "btmf/robust/escalate.h"

#include <algorithm>

namespace btmf::robust {

model::ScenarioSpec escalate_spec(const model::ScenarioSpec& spec,
                                  unsigned attempt) {
  model::ScenarioSpec hardened = spec;
  for (unsigned rung = 0; rung < attempt; ++rung) {
    math::EquilibriumOptions& solver = hardened.solver;
    solver.ode.rtol = std::max(solver.ode.rtol / 100.0, 1e-13);
    solver.ode.atol = std::max(solver.ode.atol / 100.0, 1e-14);
    solver.ode.max_steps += solver.ode.max_steps / 2;
    solver.max_chunks += solver.max_chunks / 2;
    solver.chunk_time *= 1.5;
  }
  return hardened;
}

}  // namespace btmf::robust
