#include "btmf/robust/checkpoint.h"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::robust {
namespace {

constexpr std::string_view kMagic = "btmf-sweep-journal";
constexpr int kVersion = 1;

std::string header_line(std::uint64_t identity) {
  std::ostringstream out;
  out << kMagic << " v" << kVersion << " " << std::hex << identity;
  return out.str();
}

std::string entry_line(const CheckpointJournal::Entry& entry) {
  std::string line = "point ";
  line += std::to_string(entry.index);
  line += ' ';
  line += to_string(entry.kind);
  line += ' ';
  line += std::to_string(entry.attempts);
  if (entry.kind != FailureKind::kNone) {
    line += ' ';
    line += escape_line(entry.message);
  }
  line += '\n';
  return line;
}

/// Parses "point <index> <kind> <attempts> [<message>]"; false on any
/// malformation (the caller drops the line).
bool parse_entry(std::string_view line, CheckpointJournal::Entry* entry) {
  if (!util::starts_with(line, "point ")) return false;
  std::string_view rest = line.substr(6);
  const auto take_field = [&rest]() -> std::string_view {
    const std::size_t space = rest.find(' ');
    std::string_view field =
        space == std::string_view::npos ? rest : rest.substr(0, space);
    rest = space == std::string_view::npos ? std::string_view{}
                                           : rest.substr(space + 1);
    return field;
  };
  try {
    entry->index =
        static_cast<std::size_t>(util::parse_int(take_field(), "journal"));
    entry->kind = failure_kind_from_string(take_field());
    entry->attempts =
        static_cast<unsigned>(util::parse_int(take_field(), "journal"));
  } catch (const ConfigError&) {
    return false;
  }
  entry->message = unescape_line(rest);
  if (entry->kind == FailureKind::kNone && !entry->message.empty()) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<CheckpointJournal::Entry> CheckpointJournal::load(
    const std::string& path, std::uint64_t identity) {
  std::vector<Entry> entries;
  std::ifstream in(path, std::ios::binary);
  if (!in) return entries;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // Only '\n'-terminated lines are durable: a SIGKILL mid-append can tear
  // the final line, so anything after the last newline is discarded.
  const std::size_t last_newline = text.rfind('\n');
  if (last_newline == std::string::npos) return entries;
  text.resize(last_newline);

  const std::vector<std::string> lines = util::split(text, '\n');
  if (lines.empty() || lines.front() != header_line(identity)) {
    return entries;  // foreign or corrupt journal: ignore entirely
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    Entry entry;
    if (parse_entry(lines[i], &entry)) entries.push_back(std::move(entry));
  }
  return entries;
}

CheckpointJournal::CheckpointJournal(std::string path, std::uint64_t identity,
                                     bool fresh)
    : path_(std::move(path)) {
  namespace fs = std::filesystem;
  // An existing journal with a foreign identity is stale regardless of the
  // resume flag — never append entries of one sweep to another's journal.
  bool truncate = fresh;
  if (!truncate) {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      std::string first;
      std::getline(in, first);
      if (first != header_line(identity)) truncate = true;
    }
  }
  std::error_code ec;
  const bool exists = fs::exists(path_, ec) && !ec;
  if (exists && !truncate) {
    // A SIGKILL mid-append can leave a torn final line with no trailing
    // '\n'. load() already discards it, but appending after it would merge
    // the torn tail and the first new entry into one unparseable line —
    // which a later load() would then drop, silently recomputing a
    // journaled failure. Trim back to the last newline before appending.
    std::ifstream in(path_, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    if (!text.empty() && text.back() != '\n') {
      const std::size_t last_newline = text.rfind('\n');
      const std::uintmax_t keep =
          last_newline == std::string::npos
              ? 0
              : static_cast<std::uintmax_t>(last_newline) + 1;
      fs::resize_file(path_, keep, ec);
      if (ec) {
        throw IoError("cannot trim torn tail of checkpoint journal '" +
                      path_ + "': " + ec.message());
      }
    }
  }
  const bool empty = !exists || truncate ||
                     (fs::file_size(path_, ec) == 0 && !ec);
  auto mode = std::ios::binary | std::ios::out;
  mode |= truncate ? std::ios::trunc : std::ios::app;
  out_.open(path_, mode);
  if (!out_) {
    throw IoError("cannot open checkpoint journal '" + path_ + "'");
  }
  if (empty) {
    out_ << header_line(identity) << "\n";
    out_.flush();
  }
}

void CheckpointJournal::append(const Entry& entry) {
  const std::string line = entry_line(entry);
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  out_.flush();
  if (!out_) {
    throw IoError("write to checkpoint journal '" + path_ + "' failed");
  }
  ++appended_;
}

std::uint64_t CheckpointJournal::appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return appended_;
}

}  // namespace btmf::robust
