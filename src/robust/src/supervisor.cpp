#include "btmf/robust/supervisor.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "btmf/obs/metrics.h"
#include "btmf/robust/isolate.h"
#include "btmf/robust/watchdog.h"

namespace btmf::robust {
namespace {

[[nodiscard]] bool all_finite(const Values& values) {
  for (const auto& [name, value] : values) {
    if (!std::isfinite(value)) return false;
  }
  return true;
}

/// One attempt: inline, watchdogged, or isolated, per the options.
IsolatedOutcome run_attempt(const Task& task, const TaskContext& context,
                            const SupervisorOptions& options) {
  IsolatedOutcome outcome;
  if (options.isolate) {
    // Always route an isolate request through run_isolated: on a platform
    // without fork() it returns a typed kUnsupported failure instead of
    // silently degrading to the in-process watchdog the user explicitly
    // asked to avoid. The child shares this address space, so capturing
    // the task by reference is safe here.
    outcome = run_isolated([&task, context] { return task(context); },
                           options.timeout_s);
  } else {
    // The watchdog worker can be abandoned (detached) and outlive every
    // caller frame, so the closure it runs must own the Task by value —
    // a runaway thread then executes a private copy of the whole task
    // chain, never freed caller memory.
    const WatchdogResult watched =
        run_with_deadline([task, context] { return task(context); },
                          options.timeout_s, options.grace_s);
    outcome.failure = watched.failure;
    outcome.values = watched.values;
  }
  if (outcome.failure.ok() && options.reject_non_finite &&
      !all_finite(outcome.values)) {
    outcome.values.clear();
    outcome.failure = {FailureKind::kNonFinite,
                       "result contains non-finite values"};
  }
  return outcome;
}

}  // namespace

SuperviseOutcome supervise(const Task& task, const SupervisorOptions& options,
                           std::uint64_t key) {
  SuperviseOutcome result;
  result.attempts = 0;

  obs::MetricId retries_id{}, timeouts_id{}, crashes_id{};
  if (options.metrics != nullptr) {
    retries_id = options.metrics->counter("robust.retries");
    timeouts_id = options.metrics->counter("robust.timeouts");
    crashes_id = options.metrics->counter("robust.crashes");
  }

  const unsigned max_attempts = options.retry.retries + 1;
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      if (options.metrics != nullptr) options.metrics->add(retries_id);
      const double delay =
          backoff_delay_s(options.retry, key, attempt) *
          options.backoff_scale;
      if (delay > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      }
    }
    ++result.attempts;
    const TaskContext context{key, attempt};
    const IsolatedOutcome outcome = run_attempt(task, context, options);
    if (outcome.failure.kind == FailureKind::kTimeout) {
      ++result.timeouts;
      if (options.metrics != nullptr) options.metrics->add(timeouts_id);
    } else if (outcome.failure.kind == FailureKind::kCrash) {
      ++result.crashes;
      if (options.metrics != nullptr) options.metrics->add(crashes_id);
    }
    if (outcome.failure.ok()) {
      result.failure = {};
      result.values = outcome.values;
      return result;
    }
    result.failure = outcome.failure;
    if (!retryable(outcome.failure.kind)) return result;
  }
  return result;
}

}  // namespace btmf::robust
