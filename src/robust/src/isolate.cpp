#include "btmf/robust/isolate.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#define BTMF_HAS_FORK 1
#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define BTMF_HAS_FORK 0
#endif

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::robust {

#if BTMF_HAS_FORK

namespace {

// Child -> parent report, one escaped line per record:
//   ok
//   value <name> <exact-double>   (repeated)
//   end
// or
//   fail <kind> <escaped message>
//   end
// The trailing "end" lets the parent distinguish a complete report from a
// child that died mid-write (treated as kCrash).

void write_all(int fd, const std::string& text) {
  const char* data = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful the child can do
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
}

[[noreturn]] void child_main(int write_fd, const std::function<Values()>& fn) {
  std::string report;
  try {
    const Values values = fn();
    report = "ok\n";
    for (const auto& [name, value] : values) {
      report += "value " + name + " " + util::format_double_exact(value) +
                "\n";
    }
  } catch (...) {
    const Failure failure = classify_active_exception();
    report = std::string("fail ") + to_string(failure.kind) + " " +
             escape_line(failure.message) + "\n";
  }
  report += "end\n";
  write_all(write_fd, report);
  ::close(write_fd);
  // _exit, not exit: skip atexit handlers and static destructors that
  // belong to the parent's lifecycle (flushing its streams twice, ...).
  ::_exit(0);
}

/// Reads until EOF or deadline. Returns false on deadline expiry.
bool read_until_eof(int fd, double timeout_s, std::string* out) {
  char buffer[4096];
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  for (;;) {
    if (timeout_s > 0.0) {
      struct pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLIN;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return false;
      const int timeout_ms = static_cast<int>(left.count()) + 1;  // round up
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw IoError(std::string("poll on isolation pipe failed: ") +
                      std::strerror(errno));
      }
      if (ready == 0) return false;  // deadline
    }
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("read from isolation pipe failed: ") +
                    std::strerror(errno));
    }
    if (n == 0) return true;  // EOF: child closed its end
    out->append(buffer, static_cast<std::size_t>(n));
  }
}

/// Parses the child's report. Returns false when it is incomplete or
/// malformed (the caller reports kCrash).
bool parse_report(const std::string& report, IsolatedOutcome* outcome) {
  const std::vector<std::string> lines = util::split(report, '\n');
  bool saw_header = false;
  bool saw_end = false;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    if (!saw_header) {
      if (line == "ok") {
        saw_header = true;
        continue;
      }
      if (util::starts_with(line, "fail ")) {
        const std::string rest = line.substr(5);
        const std::size_t space = rest.find(' ');
        const std::string kind_token =
            space == std::string::npos ? rest : rest.substr(0, space);
        try {
          outcome->failure.kind = failure_kind_from_string(kind_token);
        } catch (const ConfigError&) {
          return false;
        }
        outcome->failure.message =
            space == std::string::npos
                ? std::string()
                : unescape_line(rest.substr(space + 1));
        saw_header = true;
        continue;
      }
      return false;
    }
    if (util::starts_with(line, "value ")) {
      const std::string rest = line.substr(6);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos) return false;
      outcome->values[rest.substr(0, space)] = util::parse_double(
          rest.substr(space + 1), "isolation report value");
      continue;
    }
    return false;
  }
  return saw_header && saw_end;
}

void reap(pid_t pid, int* status) {
  for (;;) {
    if (::waitpid(pid, status, 0) >= 0) return;
    if (errno != EINTR) {
      *status = 0;
      return;
    }
  }
}

}  // namespace

bool isolation_supported() { return true; }

IsolatedOutcome run_isolated(const std::function<Values()>& fn,
                             double timeout_s) {
  // pipe() -> fork() -> close(write end) is one critical section: if two
  // pool threads interleave here, thread A's child inherits — and holds
  // open for its whole evaluation — thread B's pipe write end, so B's
  // parent never sees EOF and reports a spurious timeout. Serializing the
  // window guarantees the only stray write end at fork time is the
  // child's own, and keeps the multithreaded-fork surface minimal (see
  // the header note on POSIX fork semantics).
  static std::mutex fork_mutex;
  int fds[2];
  pid_t pid;
  {
    const std::lock_guard<std::mutex> lock(fork_mutex);
    if (::pipe(fds) != 0) {
      throw IoError(std::string("pipe for isolation worker failed: ") +
                    std::strerror(errno));
    }
    pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw IoError(std::string("fork for isolation worker failed: ") +
                    std::strerror(errno));
    }
    if (pid == 0) {
      ::close(fds[0]);
      child_main(fds[1], fn);  // never returns
    }
    ::close(fds[1]);
  }

  IsolatedOutcome outcome;
  std::string report;
  bool timed_out = false;
  try {
    timed_out = !read_until_eof(fds[0], timeout_s, &report);
  } catch (...) {
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    reap(pid, &status);
    throw;
  }
  ::close(fds[0]);

  if (timed_out) {
    ::kill(pid, SIGKILL);
    int status = 0;
    reap(pid, &status);
    outcome.failure = {FailureKind::kTimeout,
                       "isolated worker exceeded " +
                           util::format_double(timeout_s) +
                           "s deadline (killed)"};
    return outcome;
  }

  int status = 0;
  reap(pid, &status);

  if (WIFSIGNALED(status)) {
    outcome.failure = {FailureKind::kCrash,
                       std::string("isolated worker died on signal ") +
                           std::to_string(WTERMSIG(status)) + " (" +
                           strsignal(WTERMSIG(status)) + ")"};
    return outcome;
  }
  if (parse_report(report, &outcome)) return outcome;
  // Exited (possibly with 0) without a complete report: something killed
  // the run before the protocol finished — e.g. a sanitizer aborting on a
  // caught SIGSEGV, or exit() from deep inside a library. Classify as a
  // crash so it is contained and retried like one.
  outcome.values.clear();
  outcome.failure = {FailureKind::kCrash,
                     "isolated worker exited (status " +
                         std::to_string(WEXITSTATUS(status)) +
                         ") without a complete report"};
  return outcome;
}

#else  // !BTMF_HAS_FORK

bool isolation_supported() { return false; }

IsolatedOutcome run_isolated(const std::function<Values()>&, double) {
  IsolatedOutcome outcome;
  outcome.failure = {FailureKind::kUnsupported,
                     "crash isolation requires fork(); unavailable on this "
                     "platform"};
  return outcome;
}

#endif

}  // namespace btmf::robust
