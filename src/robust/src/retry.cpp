#include "btmf/robust/retry.h"

#include <algorithm>

namespace btmf::robust {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double backoff_delay_s(const RetryPolicy& policy, std::uint64_t key,
                       unsigned attempt) {
  if (attempt == 0) return 0.0;
  double delay = policy.base_delay_s;
  for (unsigned i = 1; i < attempt; ++i) delay *= policy.growth;
  delay = std::min(delay, policy.max_delay_s);
  if (policy.jitter > 0.0) {
    const std::uint64_t h = splitmix64(key ^ (0x5bf0'3635ULL + attempt));
    // Uniform in [-jitter, +jitter] from the top 53 bits of the hash.
    const double unit =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    delay *= 1.0 + policy.jitter * (2.0 * unit - 1.0);
  }
  return std::max(delay, 0.0);
}

}  // namespace btmf::robust
