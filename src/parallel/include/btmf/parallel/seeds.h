// Deterministic RNG stream splitting.
//
// Monte-Carlo replications run concurrently; each replication derives its
// seed from (master_seed, replication_index) via SplitMix64 so results do
// not depend on scheduling order or thread count.
#pragma once

#include <cmath>
#include <cstdint>

namespace btmf::parallel {

/// One SplitMix64 step — a strong 64-bit mix (Steele et al., 2014).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives an independent stream seed for `stream_index` from `master`.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t stream_index) noexcept {
  // Two rounds keep adjacent stream indices statistically unrelated.
  return splitmix64(splitmix64(master) ^ splitmix64(stream_index * 2 + 1));
}

/// Domain tag for the sharded kernel's per-slot counter streams, so slot
/// draws never collide with the replication streams derived from the same
/// master seed.
inline constexpr std::uint64_t kSlotStreamDomain = 0x736c6f747374726dULL;

/// n-th uniform in (0, 1) of the counter stream keyed by `key`.
///
/// Counter-based (stateless) generation: the value depends only on
/// (key, n), never on which thread or shard issues the draw — the basis
/// of the sharded kernel's determinism contract. The top 53 bits of the
/// mix give a uniform double in [2^-53, 1 - 2^-53] shifted open at both
/// ends, safe for -log1p.
constexpr double counter_uniform(std::uint64_t key, std::uint64_t n) noexcept {
  const std::uint64_t x = splitmix64(key + n);
  return (static_cast<double>(x >> 11) + 0.5) * 0x1.0p-53;
}

/// n-th exponential variate (mean 1/rate) of the counter stream `key`.
inline double counter_exponential(std::uint64_t key, std::uint64_t n,
                                  double rate) noexcept {
  return -std::log1p(-counter_uniform(key, n)) / rate;
}

}  // namespace btmf::parallel
