// Deterministic RNG stream splitting.
//
// Monte-Carlo replications run concurrently; each replication derives its
// seed from (master_seed, replication_index) via SplitMix64 so results do
// not depend on scheduling order or thread count.
#pragma once

#include <cstdint>

namespace btmf::parallel {

/// One SplitMix64 step — a strong 64-bit mix (Steele et al., 2014).
constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derives an independent stream seed for `stream_index` from `master`.
constexpr std::uint64_t derive_seed(std::uint64_t master,
                                    std::uint64_t stream_index) noexcept {
  // Two rounds keep adjacent stream indices statistically unrelated.
  return splitmix64(splitmix64(master) ^ splitmix64(stream_index * 2 + 1));
}

}  // namespace btmf::parallel
