// Blocked parallel-for built on ThreadPool.
//
// The body receives the element index, so results are written to
// pre-allocated slots and the output is bitwise identical regardless of
// thread count — a requirement for reproducible experiment tables.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <vector>

#include "btmf/parallel/thread_pool.h"

namespace btmf::parallel {

/// Runs body(i) for i in [begin, end) across `pool`, split into exactly
/// `num_shards` contiguous blocks (clamped to [1, n]) of roughly equal
/// size — one pool task per shard. Rethrows the first exception any body
/// raised. Callers that must prove shard-count independence (the sweep
/// engine's determinism tests) pin `num_shards` explicitly; everyone else
/// should use parallel_for, which picks a load-balancing default.
template <typename Body>
void parallel_for_sharded(ThreadPool& pool, std::size_t begin,
                          std::size_t end, std::size_t num_shards,
                          const Body& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t num_blocks =
      std::min(n, std::max<std::size_t>(1, num_shards));
  const std::size_t block = (n + num_blocks - 1) / num_blocks;

  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  for (std::size_t b = begin; b < end; b += block) {
    const std::size_t lo = b;
    const std::size_t hi = std::min(end, b + block);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs body(i) for i in [begin, end) across `pool`, in blocks of
/// roughly equal size (4 shards per worker, for load balancing).
/// Rethrows the first exception any body raised.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const Body& body) {
  parallel_for_sharded(pool, begin, end, pool.num_threads() * 4, body);
}

/// Convenience overload using the process-global pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body) {
  parallel_for(global_pool(), begin, end, body);
}

/// Maps fn over [0, n) into a vector, in parallel, preserving order.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t n, const Fn& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

template <typename Fn>
auto parallel_map(std::size_t n, const Fn& fn) {
  return parallel_map(global_pool(), n, fn);
}

}  // namespace btmf::parallel
