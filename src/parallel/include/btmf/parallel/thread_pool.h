// Fixed-size work-queue thread pool.
//
// Parameter sweeps over the (p, rho) grid and Monte-Carlo simulation
// replications are embarrassingly parallel; this pool keeps every sweep
// deterministic (work items carry their own index / RNG stream) while
// saturating the available cores.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "btmf/obs/metrics.h"

namespace btmf::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  /// Enqueues `task`; the returned future reports its result or exception.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      queue_.emplace([packaged] { (*packaged)(); });
    }
    if (metrics_ != nullptr) metrics_->add(submitted_id_);
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }

  /// Attaches a metrics registry (non-owning; nullptr detaches): every
  /// submit bumps pool.tasks_submitted, every finished task
  /// pool.tasks_completed. Attach before submitting — counters are read
  /// by workers without further synchronisation (registry adds are
  /// lock-free, but swapping registries mid-flight races the workers).
  void attach_metrics(obs::MetricsRegistry* metrics);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::MetricId submitted_id_ = 0;
  obs::MetricId completed_id_ = 0;
};

/// Process-wide default pool, created on first use with one worker per core.
ThreadPool& global_pool();

}  // namespace btmf::parallel
