#include "btmf/parallel/thread_pool.h"

#include <algorithm>

namespace btmf::parallel {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
    if (metrics_ != nullptr) metrics_->add(completed_id_);
  }
}

void ThreadPool::attach_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    submitted_id_ = metrics->counter("pool.tasks_submitted");
    completed_id_ = metrics->counter("pool.tasks_completed");
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace btmf::parallel
