// Declarative parameter grids for batch evaluation.
//
// A Grid is an ordered set of named axes; its points are the cartesian
// product, enumerated row-major (the first axis varies slowest). Every
// point renders to a canonical string built from exact round-trip double
// formatting, so a point's identity — and therefore its cache key — is a
// pure function of its coordinates, independent of shard count, thread
// count, or enumeration order.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace btmf::sweep {

/// One grid dimension: a parameter name and the values it takes.
struct Axis {
  std::string name;
  std::vector<double> values;
};

/// One cartesian-product point: (axis name, value) pairs in axis order.
struct GridPoint {
  std::vector<std::pair<std::string, double>> coords;

  /// Value of the named coordinate; throws btmf::ConfigError if absent.
  [[nodiscard]] double at(std::string_view name) const;

  /// "name=value;name=value" with exact round-trip doubles — the point's
  /// identity in cache keys and failure reports.
  [[nodiscard]] std::string canonical() const;
};

class Grid {
 public:
  Grid() = default;

  /// Appends an axis (chainable). Throws btmf::ConfigError on an empty
  /// name, empty value list, or duplicate axis name.
  Grid& axis(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t num_axes() const { return axes_.size(); }
  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }

  /// Number of cartesian-product points (0 for a grid with no axes).
  [[nodiscard]] std::size_t size() const;

  /// Point `index` in row-major order (first axis slowest); throws
  /// btmf::ConfigError when out of range.
  [[nodiscard]] GridPoint point(std::size_t index) const;

 private:
  std::vector<Axis> axes_;
};

/// `n` evenly spaced values from `lo` to `hi` inclusive (n >= 2), or
/// {lo} when n == 1. Throws btmf::ConfigError when n == 0.
std::vector<double> linspace(double lo, double hi, std::size_t n);

}  // namespace btmf::sweep
