// The sweep engine: shard a parameter grid across the thread pool,
// cache each point's result on disk, tolerate per-point failures.
//
// Fluid sweeps over (p, rho, lambda, gamma, ...) grids are embarrassingly
// parallel, and the per-point solves are pure functions of their inputs —
// so the engine treats every point as an independent, content-addressed
// unit of work: look it up in the cache, compute on miss, store, move on.
// Results land in pre-allocated slots indexed by grid position, making
// the output bit-identical for any shard count, thread count, or cache
// state (cold, warm, or partially warm after an interrupted run).
//
// A point whose compute function throws is recorded as failed (with the
// exception message) without killing the sweep or poisoning the cache;
// callers decide whether a partial sweep is usable. Progress streams
// through an optional obs::MetricsRegistry (`sweep.*` counters — see
// docs/OBSERVABILITY.md and docs/SWEEP.md).
//
// Every computed point runs under the execution supervisor (btmf::robust):
// SweepOptions::robust adds per-point deadlines, retry-with-backoff, and
// forked crash isolation; failures carry a typed FailureKind. A
// write-ahead journal next to the cache records each computed point, so
// an interrupted sweep rerun with SweepOptions::resume replays journaled
// failures verbatim and serves successes from the cache — the resumed
// SweepResult is bit-identical to an uninterrupted run's. Corrupt cache
// entries are quarantined and recomputed, never fatal. All of it is
// inert by default: a default-constructed SweepOptions behaves exactly
// as before the supervisor existed. See docs/ROBUSTNESS.md.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "btmf/obs/metrics.h"
#include "btmf/robust/failure.h"
#include "btmf/robust/supervisor.h"
#include "btmf/sweep/cache.h"
#include "btmf/sweep/grid.h"

namespace btmf::sweep {

/// Computes one grid point. Must be a pure function of the point (plus
/// the configuration captured in SweepSpec::fingerprint — anything that
/// changes the output MUST be folded into the fingerprint, or the cache
/// will serve stale results). Thread-safe: called concurrently from pool
/// workers. Must not submit work to the pool the sweep itself runs on.
using PointFn = std::function<PointResult(const GridPoint&)>;

/// Escalated recompute for supervisor retries: called instead of
/// `compute` on attempts >= 1 so each retry can try *harder* (tighter
/// solver tolerances, robust::escalate_spec). Must obey the same purity
/// contract as PointFn per (point, attempt).
using PointRetryFn =
    std::function<PointResult(const GridPoint&, unsigned attempt)>;

struct SweepSpec {
  std::string name;         ///< cache namespace; one subdirectory per sweep
  Grid grid;
  /// Canonical description of everything the compute function depends on
  /// besides the point itself: scheme config, solver options, seeds, ...
  /// Folded into every point's cache key.
  std::string fingerprint;
  PointFn compute;
  /// Optional; when absent, retries rerun `compute` unchanged (useful
  /// only against transient failures — crashes, machine-load timeouts).
  PointRetryFn compute_retry;
};

struct SweepOptions {
  /// Cache root directory; empty disables caching entirely.
  std::string cache_dir;
  /// Worker threads: 0 = run on the process-global pool, N > 0 = a
  /// dedicated pool of N workers for this sweep.
  std::size_t jobs = 0;
  /// Task granularity: the grid is split into this many contiguous
  /// shards (one pool task each). 0 = four shards per worker. Results
  /// are identical for every value; this knob only shapes scheduling.
  std::size_t shards = 0;
  /// Optional progress/metrics sink (non-owning): sweep.points_total,
  /// sweep.points_done, sweep.cache_hits, sweep.cache_misses,
  /// sweep.failures, the sweep.point_seconds histogram, and — when the
  /// supervisor is active — robust.retries / robust.timeouts /
  /// robust.crashes / robust.quarantined.
  obs::MetricsRegistry* metrics = nullptr;
  /// Execution supervision for computed points: per-point deadline,
  /// retry policy, crash isolation. Inert by default.
  robust::SupervisorOptions robust{};
  /// Replay journaled failures from an interrupted earlier run instead
  /// of recomputing them (successes always resume via the cache). Only
  /// meaningful with a cache_dir; the result is bit-identical to an
  /// uninterrupted run's.
  bool resume = false;
};

enum class PointStatus { kOk, kFailed };

struct PointOutcome {
  std::size_t index = 0;      ///< grid position (row-major)
  GridPoint point;
  PointResult result;         ///< empty when status == kFailed
  PointStatus status = PointStatus::kOk;
  bool from_cache = false;
  std::string error;          ///< exception message when failed
  /// Typed reason when status == kFailed (kError for a plain exception;
  /// kTimeout / kCrash / ... once the supervisor is configured).
  robust::FailureKind failure = robust::FailureKind::kNone;
  /// Compute attempts made for this point (0 when served from cache or
  /// replayed from the journal).
  unsigned attempts = 0;
  /// True when a resumed run replayed this failure from the journal.
  bool from_journal = false;
};

struct SweepResult {
  std::vector<PointOutcome> points;  ///< grid order, one per point
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;      ///< points actually computed
  std::size_t failures = 0;
  std::size_t retries = 0;           ///< supervisor retry attempts
  std::size_t timeouts = 0;          ///< attempts lost to the deadline
  std::size_t crashes = 0;           ///< attempts lost to a worker crash
  std::size_t quarantined = 0;       ///< corrupt cache entries healed
  std::size_t resumed_failures = 0;  ///< failures replayed from journal
  double wall_seconds = 0.0;         ///< not deterministic

  [[nodiscard]] std::size_t num_points() const { return points.size(); }
  [[nodiscard]] bool all_ok() const { return failures == 0; }
  /// Outcome of the point at `index`; throws btmf::ConfigError if the
  /// point failed (callers that tolerate failures check status first).
  [[nodiscard]] const PointResult& result_at(std::size_t index) const;
};

/// Runs the sweep. Throws btmf::ConfigError on a malformed spec (empty
/// name/grid, missing compute) and btmf::IoError when the cache
/// directory cannot be used; per-point compute failures are *recorded*,
/// never thrown.
SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options = {});

/// Path of the write-ahead checkpoint journal run_sweep keeps for `spec`
/// under `cache_dir` (next to the sweep's cache entries). Exposed for
/// tests and tooling; empty when `cache_dir` is empty.
[[nodiscard]] std::string sweep_journal_path(const SweepSpec& spec,
                                             const std::string& cache_dir);

}  // namespace btmf::sweep
