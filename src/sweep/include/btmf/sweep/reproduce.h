// The paper-reproduction registry: every figure of the paper's Sec. 4
// evaluation as a registered sweep, its headline claims as explicit
// tolerance checks, and a machine-written paper-vs-measured report.
//
// Each FigureSpec runs one or more cached sweeps (the same grids the
// bench/fig* binaries print), derives the figure's data tables, and
// checks the paper's claims — MTCD(p=1) online/file = 98 +- 0.1, MTSD
// flat at 80, CMFSD argmin over rho at 0 for every p, ... — returning
// per-claim PASS/FAIL. `btmf_tool reproduce` drives the registry and
// writes docs/REPRODUCTION.md, the repository's source of truth for
// measured numbers; a failing claim fails the tool (and CI).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "btmf/obs/metrics.h"
#include "btmf/sweep/sweep.h"
#include "btmf/util/table.h"

namespace btmf::sweep {

enum class Relation {
  kWithin,   ///< |measured - expected| <= tolerance
  kAtMost,   ///< measured <= expected + tolerance
  kAtLeast,  ///< measured >= expected - tolerance
};

/// One checked paper claim. `pass` is derived at construction; NaN
/// measurements fail every relation.
struct Claim {
  std::string id;           ///< stable dotted id, e.g. "fig2.mtcd_p1"
  std::string description;  ///< the claim in words, incl. the paper hook
  Relation relation = Relation::kWithin;
  double expected = 0.0;
  double measured = 0.0;
  double tolerance = 0.0;
  bool pass = false;
  /// The claim could not be *evaluated* because its sweep had failed
  /// points (the figure degrades gracefully instead of dying). Renders as
  /// SKIP; counts as not-passed, so the figure and the overall report
  /// still read FAIL.
  bool skipped = false;
};

Claim claim_within(std::string id, std::string description, double measured,
                   double expected, double tolerance);
Claim claim_at_most(std::string id, std::string description, double measured,
                    double bound, double slack = 0.0);
Claim claim_at_least(std::string id, std::string description, double measured,
                     double bound, double slack = 0.0);
/// A claim that was not evaluated (see Claim::skipped).
Claim claim_skipped(std::string id);

/// Cache/effort accounting for one figure (summed over its sweeps).
struct FigureStats {
  std::size_t points = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t failures = 0;
  double seconds = 0.0;  ///< wall time; excluded from the written report

  void absorb(const SweepResult& sweep);
};

struct FigureReport {
  std::string name;   ///< registry key: fig2, fig3, fig4a, fig4bc, adapt
  std::string title;
  std::string paper_ref;    ///< short locator, e.g. "Fig. 2, Sec. 4.2.1"
  std::string description;  ///< what the figure shows and what the paper claims
  std::vector<std::pair<std::string, util::Table>> tables;  ///< (label, data)
  std::vector<Claim> claims;
  FigureStats stats;

  [[nodiscard]] std::size_t num_passed() const;
  [[nodiscard]] bool all_pass() const {
    return num_passed() == claims.size();
  }
};

struct ReproduceOptions {
  std::string cache_dir;  ///< empty = uncached
  std::size_t jobs = 0;   ///< 0 = process-global pool
  obs::MetricsRegistry* metrics = nullptr;
  /// Sharding of the kernel-sim points. The sharded kernel is
  /// bit-identical for any value and the spec fingerprint excludes it, so
  /// the generated report (and the sweep cache) must not change with this
  /// knob — CI diffs a --shards 2 run against the committed report.
  unsigned shards = 1;
  // --- execution supervision (forwarded to SweepOptions::robust) --------
  // None of these may change the *numbers*: deadlines/retries/isolation
  // decide whether a point computes, never what it computes, and a
  // resumed run is bit-identical to an uninterrupted one.
  double timeout_s = 0.0;  ///< per-point deadline; 0 = none
  unsigned retries = 0;    ///< supervisor retries per point
  bool isolate = false;    ///< forked crash-isolated workers
  bool resume = false;     ///< replay journaled failures after a crash
};

struct FigureSpec {
  std::string name;
  std::string title;
  std::string paper_ref;
  FigureReport (*run)(const ReproduceOptions& options);
};

/// All registered figures, in paper order: fig2, fig3, fig4a, fig4bc,
/// adapt.
const std::vector<FigureSpec>& figure_registry();

/// Lookup by name; nullptr when unknown ("all" is the caller's job).
const FigureSpec* find_figure(std::string_view name);

/// The full docs/REPRODUCTION.md document: generation banner, per-figure
/// claim tables with PASS/FAIL, the data tables, and cache accounting.
/// Deterministic for deterministic reports (no timestamps, no wall
/// times), so regenerating into a committed file yields stable diffs.
std::string reproduction_markdown(const std::vector<FigureReport>& reports);

/// Writes reproduction_markdown to `path`, creating parent directories;
/// throws btmf::IoError on failure.
void write_reproduction_report(const std::string& path,
                               const std::vector<FigureReport>& reports);

}  // namespace btmf::sweep
