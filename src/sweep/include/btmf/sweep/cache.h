// Content-addressed disk cache for sweep point results.
//
// Each grid point's result is one small text file keyed by a 64-bit
// FNV-1a hash of the full key material: cache-format salt + library
// version + sweep name + spec fingerprint (scheme config, solver
// options — whatever the registration folds in) + the point's canonical
// coordinate string. Any change to any ingredient therefore misses
// instead of serving a stale hit, and the stored key material is
// re-verified on load so even a hash collision cannot alias two points.
//
// Values round-trip bit-identically (util::format_double_exact), so a
// sweep served from cache is indistinguishable from a recomputed one —
// the property the Sweep* tier-1 determinism tests pin down. Writes go
// through a temp file + rename, so an interrupted run leaves either a
// complete entry or a malformed one (treated as a miss), never a torn
// read — this is what makes resume-after-interrupt safe.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace btmf::sweep {

/// One point's computed values, keyed by metric name. std::map keeps the
/// serialised form canonical (sorted) independent of insertion order.
struct PointResult {
  std::map<std::string, double> values;

  [[nodiscard]] double at(std::string_view name) const;

  bool operator==(const PointResult&) const = default;
};

/// 64-bit FNV-1a of `s` (the cache's content hash; also reusable for any
/// deterministic string fingerprinting).
std::uint64_t fnv1a64(std::string_view s);

/// Identity of one cache entry. `material()` is the hashed string; the
/// cache stores it verbatim alongside the values and rejects entries
/// whose stored material mismatches (collision / hand-edited files).
struct CacheKey {
  std::string sweep;  ///< sweep (namespace) name — also the subdirectory
  std::string spec;   ///< configuration fingerprint of the whole sweep
  std::string point;  ///< GridPoint::canonical()

  [[nodiscard]] std::string material() const;
  [[nodiscard]] std::uint64_t hash() const { return fnv1a64(material()); }
};

/// Bumped whenever the on-disk format or key derivation changes; part of
/// the key material, so old caches simply miss instead of misparsing.
inline constexpr int kCacheFormatVersion = 1;

/// The cache's code salt "v<format>/<library-version>" — the first line of
/// every entry's key material. Two processes with equal salts derive equal
/// keys for equal specs, which is exactly what the serve protocol's
/// version handshake needs to check (docs/SERVE.md): a salt mismatch means
/// daemon and client would disagree on every cache key, so the connection
/// is refused up front instead of silently recomputing everything.
[[nodiscard]] std::string cache_format_salt();

/// Writers publish entries via "<entry>.tmp.<pid>.<counter>" + rename; a
/// writer that dies between create and rename leaves the temp file behind
/// forever. This sweeps such orphans out of `root` (recursively): any
/// "*.tmp.*" file whose mtime is older than `max_age_seconds` is removed.
/// The age threshold keeps live writers safe — a concurrent process's
/// in-flight temp file is at most seconds old. Best-effort and never
/// throws (runs on every cache open); returns the number removed.
std::size_t sweep_stale_temporaries(const std::string& root,
                                    double max_age_seconds);

/// Age threshold DiskCache's constructor passes to
/// sweep_stale_temporaries: generous enough that no live writer — even one
/// stalled behind a watchdog deadline — can lose its temp file.
inline constexpr double kStaleTempMaxAgeSeconds = 3600.0;

/// What lookup() found. The distinction drives self-healing: a kMiss is
/// normal (absent entry, or a hash-collision file whose stored material
/// belongs to another key — recompute and move on), while kCorrupt means
/// an entry that *claims* to be this key's but fails verification (bad
/// magic, truncated, unparseable values, tampered bytes) and should be
/// quarantined so the recompute can publish a clean replacement.
enum class CacheLookup { kHit, kMiss, kCorrupt };

class DiskCache {
 public:
  /// Opens (creating if needed) the cache rooted at `root`, sweeping
  /// orphaned temp files older than kStaleTempMaxAgeSeconds. Throws
  /// btmf::IoError when the directory cannot be created.
  explicit DiskCache(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }

  /// Returns the stored result, or nullopt on absence, key-material
  /// mismatch, or a malformed/truncated file (all treated as misses).
  /// Equivalent to lookup() with the hit/miss/corrupt detail collapsed.
  [[nodiscard]] std::optional<PointResult> load(const CacheKey& key) const;

  /// As load(), but reports *why* there was no hit. On kHit the result is
  /// written to `*result` (which must be non-null); otherwise `*result`
  /// is left untouched.
  [[nodiscard]] CacheLookup lookup(const CacheKey& key,
                                   PointResult* result) const;

  /// Moves a corrupt entry aside to "<entry>.quarantined" (overwriting any
  /// previous quarantine of the same entry) so the bad bytes stay
  /// available for inspection while the slot becomes a clean miss. Absent
  /// entries are a no-op. Never throws: quarantine runs on the failure
  /// path, where the recompute matters more than the rename.
  void quarantine(const CacheKey& key) const;

  /// Atomically persists `result` under `key` (temp file + rename).
  /// Throws btmf::IoError on filesystem failure.
  void store(const CacheKey& key, const PointResult& result) const;

  /// Path of the entry file for `key` (whether or not it exists).
  [[nodiscard]] std::string entry_path(const CacheKey& key) const;

 private:
  std::string root_;
};

}  // namespace btmf::sweep
