#include "btmf/sweep/grid.h"

#include <limits>

#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::sweep {

double GridPoint::at(std::string_view name) const {
  for (const auto& [axis, value] : coords) {
    if (axis == name) return value;
  }
  throw ConfigError("grid point has no coordinate named '" +
                    std::string(name) + "' (point: " + canonical() + ")");
}

std::string GridPoint::canonical() const {
  std::string out;
  for (const auto& [axis, value] : coords) {
    if (!out.empty()) out += ';';
    out += axis;
    out += '=';
    out += util::format_double_exact(value);
  }
  return out;
}

Grid& Grid::axis(std::string name, std::vector<double> values) {
  if (name.empty()) throw ConfigError("grid axis needs a non-empty name");
  if (values.empty()) {
    throw ConfigError("grid axis '" + name + "' needs at least one value");
  }
  for (const Axis& existing : axes_) {
    if (existing.name == name) {
      throw ConfigError("duplicate grid axis '" + name + "'");
    }
  }
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

std::size_t Grid::size() const {
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& axis : axes_) {
    const std::size_t m = axis.values.size();
    if (n > std::numeric_limits<std::size_t>::max() / m) {
      throw ConfigError("grid size overflows std::size_t");
    }
    n *= m;
  }
  return n;
}

GridPoint Grid::point(std::size_t index) const {
  const std::size_t n = size();
  if (index >= n) {
    throw ConfigError("grid point index " + std::to_string(index) +
                      " out of range (grid has " + std::to_string(n) +
                      " points)");
  }
  // Row-major: the last axis cycles fastest.
  GridPoint point;
  point.coords.resize(axes_.size());
  std::size_t remainder = index;
  for (std::size_t a = axes_.size(); a-- > 0;) {
    const Axis& axis = axes_[a];
    point.coords[a] = {axis.name, axis.values[remainder % axis.values.size()]};
    remainder /= axis.values.size();
  }
  return point;
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n == 0) throw ConfigError("linspace needs at least one sample");
  if (n == 1) return {lo};
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(lo + (hi - lo) * static_cast<double>(i) /
                           static_cast<double>(n - 1));
  }
  return out;
}

}  // namespace btmf::sweep
