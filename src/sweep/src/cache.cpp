#include "btmf/sweep/cache.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "btmf/core/version.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::sweep {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kMagic = "btmf-sweep-cache";

/// The writing process's id, for cross-process-unique temp names.
long process_id() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<long>(::getpid());
#else
  return 0;
#endif
}

std::string hash_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

/// Key material and stored lines are newline-delimited; a name containing
/// a newline (or a sweep name acting as a path) would corrupt the format.
void check_token(std::string_view token, std::string_view what) {
  if (token.empty()) {
    throw ConfigError("sweep cache: " + std::string(what) +
                      " must be non-empty");
  }
  if (token.find('\n') != std::string_view::npos) {
    throw ConfigError("sweep cache: " + std::string(what) +
                      " must not contain newlines");
  }
}

}  // namespace

double PointResult::at(std::string_view name) const {
  const auto it = values.find(std::string(name));
  if (it == values.end()) {
    throw ConfigError("point result has no value named '" +
                      std::string(name) + "'");
  }
  return it->second;
}

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string cache_format_salt() {
  std::string salt = "v";
  salt += std::to_string(kCacheFormatVersion);
  salt += '/';
  salt += kVersionString;
  return salt;
}

std::size_t sweep_stale_temporaries(const std::string& root,
                                    double max_age_seconds) {
  std::size_t removed = 0;
  std::error_code ec;
  const auto now = fs::file_time_type::clock::now();
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  if (ec) return removed;
  while (it != fs::recursive_directory_iterator()) {
    const fs::directory_entry entry = *it;
    it.increment(ec);
    if (ec) break;  // unreadable directory mid-walk: stop, stay silent
    if (!entry.is_regular_file(ec) || ec) continue;
    if (entry.path().filename().string().find(".tmp.") ==
        std::string::npos) {
      continue;
    }
    const fs::file_time_type mtime = entry.last_write_time(ec);
    if (ec) continue;
    const double age =
        std::chrono::duration<double>(now - mtime).count();
    if (age < max_age_seconds) continue;  // a live writer may own it
    if (fs::remove(entry.path(), ec) && !ec) ++removed;
  }
  return removed;
}

std::string CacheKey::material() const {
  // Library version + format version are the "code salt": a release that
  // changes any model output invalidates every entry wholesale.
  std::string out = cache_format_salt();
  out += "\nsweep ";
  out += sweep;
  out += "\nspec ";
  out += spec;
  out += "\npoint ";
  out += point;
  return out;
}

DiskCache::DiskCache(std::string root) : root_(std::move(root)) {
  if (root_.empty()) throw ConfigError("sweep cache root must be non-empty");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) {
    throw IoError("cannot create sweep cache directory '" + root_ +
                  "': " + ec.message());
  }
  // Writers that crashed between temp-file create and rename leave
  // orphans; reclaim them here so a long-lived cache directory cannot
  // accumulate garbage. The age threshold protects concurrent writers.
  (void)sweep_stale_temporaries(root_, kStaleTempMaxAgeSeconds);
}

std::string DiskCache::entry_path(const CacheKey& key) const {
  check_token(key.sweep, "sweep name");
  // The sweep name becomes a subdirectory; keep it a single path level.
  if (key.sweep.find('/') != std::string::npos ||
      key.sweep.find('\\') != std::string::npos) {
    throw ConfigError("sweep name '" + key.sweep +
                      "' must not contain path separators");
  }
  return root_ + "/" + key.sweep + "/" + hash_hex(key.hash()) + ".point";
}

std::optional<PointResult> DiskCache::load(const CacheKey& key) const {
  PointResult result;
  if (lookup(key, &result) != CacheLookup::kHit) return std::nullopt;
  return result;
}

CacheLookup DiskCache::lookup(const CacheKey& key,
                              PointResult* result) const {
  std::ifstream file(entry_path(key));
  if (!file) return CacheLookup::kMiss;

  // From here on the file exists: any verification failure is corruption
  // (torn write, bit rot, tampering), with one exception — stored key
  // material that parses but belongs to a *different* key, which is a
  // benign hash collision and therefore a plain miss.
  std::string line;
  if (!std::getline(file, line) || line != kMagic) {
    return CacheLookup::kCorrupt;
  }

  // The stored key material spans several lines; re-read it verbatim and
  // compare against the expected material (guards hash collisions and
  // stale formats alike).
  const std::string expected = key.material();
  std::string stored;
  const std::size_t material_lines =
      1 + static_cast<std::size_t>(
              std::count(expected.begin(), expected.end(), '\n'));
  for (std::size_t i = 0; i < material_lines; ++i) {
    if (!std::getline(file, line)) return CacheLookup::kCorrupt;
    if (i != 0) stored += '\n';
    stored += line;
  }
  if (stored != expected) return CacheLookup::kMiss;

  PointResult parsed;
  bool complete = false;
  while (std::getline(file, line)) {
    if (line == "end") {
      complete = true;
      break;
    }
    // "value <name> <exact double>"; name cannot contain spaces.
    if (!util::starts_with(line, "value ")) return CacheLookup::kCorrupt;
    const std::string_view rest = std::string_view(line).substr(6);
    const std::size_t sep = rest.rfind(' ');
    if (sep == std::string_view::npos || sep == 0) {
      return CacheLookup::kCorrupt;
    }
    const std::string name(rest.substr(0, sep));
    double value = 0.0;
    try {
      value = util::parse_double(rest.substr(sep + 1), "cache value");
    } catch (const ConfigError&) {
      return CacheLookup::kCorrupt;
    }
    if (!parsed.values.emplace(name, value).second) {
      return CacheLookup::kCorrupt;
    }
  }
  if (!complete) return CacheLookup::kCorrupt;  // truncated — recompute
  *result = std::move(parsed);
  return CacheLookup::kHit;
}

void DiskCache::quarantine(const CacheKey& key) const {
  const std::string path = entry_path(key);
  std::error_code ec;
  fs::rename(path, path + ".quarantined", ec);
  if (ec) fs::remove(path, ec);  // fallback: at least clear the slot
}

void DiskCache::store(const CacheKey& key, const PointResult& result) const {
  for (const auto& [name, value] : result.values) {
    check_token(name, "value name");
    if (name.find(' ') != std::string::npos) {
      throw ConfigError("sweep value name '" + name +
                        "' must not contain spaces");
    }
    (void)value;
  }

  const std::string path = entry_path(key);
  const fs::path dir = fs::path(path).parent_path();
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    throw IoError("cannot create sweep cache directory '" + dir.string() +
                  "': " + ec.message());
  }

  // Unique temp name per (process, write): the pid separates concurrent
  // *processes* sharing one cache directory (thread ids are only unique
  // within a process, so two processes could previously interleave partial
  // writes into the same temp file) and the counter separates concurrent
  // threads and successive writes within this process. rename() then
  // publishes the entry atomically, so concurrent writers of the same key
  // are benign (last rename wins with identical content) and an interrupt
  // never leaves a half-written entry under the final name.
  static std::atomic<std::uint64_t> write_counter{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << process_id() << "."
           << write_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp = tmp_name.str();
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) throw IoError("cannot open '" + tmp + "' for writing");
    file << kMagic << '\n' << key.material() << '\n';
    for (const auto& [name, value] : result.values) {
      file << "value " << name << ' ' << util::format_double_exact(value)
           << '\n';
    }
    file << "end\n";
    file.flush();
    if (!file) throw IoError("write to '" + tmp + "' failed");
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw IoError("cannot publish sweep cache entry '" + path + "'");
  }
}

}  // namespace btmf::sweep
