#include "btmf/sweep/reproduce.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <limits>
#include <map>
#include <sstream>

#include "btmf/core/experiments.h"
#include "btmf/model/backend.h"
#include "btmf/sim/stats.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::sweep {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

bool holds(Relation relation, double measured, double expected,
           double tolerance) {
  // NaN fails every comparison, which is the behaviour we want: a claim
  // whose measurement could not be formed must read FAIL, not PASS.
  switch (relation) {
    case Relation::kWithin:
      return std::abs(measured - expected) <= tolerance;
    case Relation::kAtMost:
      return measured <= expected + tolerance;
    case Relation::kAtLeast:
      return measured >= expected - tolerance;
  }
  return false;
}

Claim make_claim(std::string id, std::string description, Relation relation,
                 double measured, double expected, double tolerance) {
  Claim claim;
  claim.id = std::move(id);
  claim.description = std::move(description);
  claim.relation = relation;
  claim.expected = expected;
  claim.measured = measured;
  claim.tolerance = tolerance;
  claim.pass = holds(relation, measured, expected, tolerance);
  return claim;
}

SweepOptions engine_options(const ReproduceOptions& options) {
  SweepOptions out;
  out.cache_dir = options.cache_dir;
  out.jobs = options.jobs;
  out.metrics = options.metrics;
  out.robust.timeout_s = options.timeout_s;
  out.robust.retry.retries = options.retries;
  out.robust.isolate = options.isolate;
  out.resume = options.resume;
  return out;
}

/// The scenario part of a figure's spec (scheme/rho/seed vary per point).
model::ScenarioSpec spec_of(const core::ScenarioConfig& base) {
  model::ScenarioSpec spec;
  spec.num_files = base.num_files;
  spec.correlation = base.correlation;
  spec.visit_rate = base.visit_rate;
  spec.fluid = base.fluid;
  return spec;
}

/// Every figure keys its disk cache on (backend name, canonical spec
/// fingerprint) — the one fingerprint scheme of the whole repository
/// (see docs/SWEEP.md). Grid-axis values are hashed separately per point.
std::string cache_key(std::string_view backend,
                      const model::ScenarioSpec& spec) {
  return "backend=" + std::string(backend) + "|" + spec.fingerprint();
}

const model::Backend& fluid_backend() {
  return model::require_backend("fluid-equilibrium");
}

/// The "did every point solve" claim every figure leads with; when it
/// fails the value claims are not evaluated (they would dereference
/// failed points) and the failures are tabulated instead.
Claim completeness_claim(const std::string& fig, std::size_t failures,
                         std::size_t points) {
  return claim_at_most(
      fig + ".complete",
      "all " + std::to_string(points) + " grid points solved without error",
      static_cast<double>(failures), 0.0);
}

void append_failure_table(FigureReport& report, const SweepResult& sweep) {
  util::Table table({"point", "kind", "error"});
  for (const PointOutcome& outcome : sweep.points) {
    if (outcome.status == PointStatus::kFailed) {
      table.add_row({outcome.point.canonical(),
                     std::string(robust::to_string(outcome.failure)),
                     outcome.error});
    }
  }
  report.tables.emplace_back("Failed points", std::move(table));
}

/// Graceful degradation: the value claims that could not be evaluated are
/// listed as SKIP instead of silently vanishing from the report, so a
/// degraded docs/REPRODUCTION.md still names every claim it was supposed
/// to check. (The leading completeness claim already reads FAIL.)
void mark_skipped(FigureReport& report,
                  std::initializer_list<const char*> claim_ids) {
  for (const char* id : claim_ids) {
    report.claims.push_back(claim_skipped(id));
  }
}

// ---------------------------------------------------------------------------
// Fig. 2 — system-average online time per file vs correlation p.

SweepSpec fig2_spec() {
  const core::ScenarioConfig base;
  SweepSpec spec;
  spec.name = "fig2";
  spec.grid.axis("p", linspace(0.0, 1.0, 21));
  spec.fingerprint = cache_key("fluid-equilibrium", spec_of(base));
  spec.compute = [base](const GridPoint& point) {
    const core::Fig2Point sample = core::fig2_point(base, point.at("p"));
    PointResult result;
    result.values["mtcd_online_per_file"] = sample.mtcd_online_per_file;
    result.values["mtsd_online_per_file"] = sample.mtsd_online_per_file;
    return result;
  };
  return spec;
}

FigureReport run_fig2(const ReproduceOptions& options) {
  FigureReport report;
  report.name = "fig2";
  report.title = "MTCD vs MTSD: average online time per file vs p";
  report.paper_ref = "Fig. 2, Sec. 4.2.1";
  report.description =
      "Paper Fig. 2 (Sec. 4.2.1): under the paper's constants the MTSD "
      "curve is flat at 80 time units while MTCD rises with the file "
      "correlation p, reaching 98 at p = 1 — concurrent downloading "
      "stretches per-file completion times, so peers linger.";

  const SweepSpec spec = fig2_spec();
  const SweepResult sweep = run_sweep(spec, engine_options(options));
  report.stats.absorb(sweep);
  report.claims.push_back(
      completeness_claim("fig2", sweep.failures, sweep.num_points()));
  if (sweep.failures > 0) {
    append_failure_table(report, sweep);
    mark_skipped(report, {"fig2.mtsd_flat", "fig2.mtcd_p0", "fig2.mtcd_p1",
                          "fig2.mtcd_monotone"});
    return report;
  }

  util::Table table(
      {"p", "MTCD online/file", "MTSD online/file", "MTCD/MTSD"});
  double mtcd_first = 0.0;
  double mtcd_last = 0.0;
  double max_mtsd_dev = 0.0;
  double min_mtcd_step = kInf;
  double prev_mtcd = 0.0;
  for (std::size_t i = 0; i < sweep.num_points(); ++i) {
    const double p = sweep.points[i].point.at("p");
    const PointResult& point = sweep.result_at(i);
    const double mtcd = point.at("mtcd_online_per_file");
    const double mtsd = point.at("mtsd_online_per_file");
    table.add_row({p, mtcd, mtsd, mtcd / mtsd});
    max_mtsd_dev = std::max(max_mtsd_dev, std::abs(mtsd - 80.0));
    if (i == 0) mtcd_first = mtcd;
    if (i + 1 == sweep.num_points()) mtcd_last = mtcd;
    if (i > 0) min_mtcd_step = std::min(min_mtcd_step, mtcd - prev_mtcd);
    prev_mtcd = mtcd;
  }
  report.tables.emplace_back(
      "Average online time per file vs correlation p (21-point grid)",
      std::move(table));

  report.claims.push_back(claim_within(
      "fig2.mtsd_flat",
      "MTSD is insensitive to p: max_p |online/file - 80| over the grid",
      max_mtsd_dev, 0.0, 0.1));
  report.claims.push_back(claim_within(
      "fig2.mtcd_p0", "MTCD online/file at p = 0 (single-torrent limit, 80)",
      mtcd_first, 80.0, 0.1));
  report.claims.push_back(claim_within(
      "fig2.mtcd_p1", "MTCD online/file at p = 1 (the paper's headline 98)",
      mtcd_last, 98.0, 0.1));
  report.claims.push_back(claim_at_least(
      "fig2.mtcd_monotone",
      "MTCD degrades monotonically with p: min consecutive increment",
      min_mtcd_step, 0.0, 1e-9));
  return report;
}

// ---------------------------------------------------------------------------
// Fig. 3 — per-class online/download times under MTCD and MTSD.

SweepSpec fig3_spec() {
  const core::ScenarioConfig base;
  SweepSpec spec;
  spec.name = "fig3";
  spec.grid.axis("p", {0.1, 1.0});
  spec.fingerprint = cache_key("fluid-equilibrium", spec_of(base));
  spec.compute = [base](const GridPoint& point) {
    const core::Fig3Point sample = core::fig3_point(base, point.at("p"));
    PointResult result;
    result.values["mtcd_factor_a"] = sample.mtcd_factor_a;
    for (unsigned i = 1; i <= base.num_files; ++i) {
      const std::string suffix = ".c" + std::to_string(i);
      result.values["mtsd_online" + suffix] =
          sample.mtsd_online_per_file[i - 1];
      result.values["mtsd_dl" + suffix] = sample.mtsd_download_per_file[i - 1];
    }
    return result;
  };
  return spec;
}

FigureReport run_fig3(const ReproduceOptions& options) {
  const core::ScenarioConfig base;
  FigureReport report;
  report.name = "fig3";
  report.title = "Per-class times: MTCD's light users pay, heavy users gain";
  report.paper_ref = "Fig. 3, Sec. 4.2.1";
  report.description =
      "Paper Fig. 3 (Sec. 4.2.1): MTCD's per-class online time is "
      "T_i/i = A + 1/(i gamma), so single-file users (class 1) wait far "
      "longer than under MTSD while many-file users amortise the seeding "
      "residence and beat MTSD; MTSD itself is flat across classes (80 "
      "online, 60 download per file).";

  const SweepSpec spec = fig3_spec();
  const SweepResult sweep = run_sweep(spec, engine_options(options));
  report.stats.absorb(sweep);
  report.claims.push_back(
      completeness_claim("fig3", sweep.failures, sweep.num_points()));
  if (sweep.failures > 0) {
    append_failure_table(report, sweep);
    mark_skipped(report,
                 {"fig3.mtsd_online_flat", "fig3.mtsd_dl_flat",
                  "fig3.p01_class1", "fig3.p01_class10", "fig3.p1_class10",
                  "fig3.light_users_pay", "fig3.heavy_users_gain"});
    return report;
  }

  const double gamma = base.fluid.gamma;
  const unsigned k = base.num_files;
  util::Table table({"p", "class", "MTCD online/file", "MTSD online/file",
                     "MTCD dl/file", "MTSD dl/file"});
  double max_online_dev = 0.0;  // MTSD online vs the flat 80
  double max_dl_dev = 0.0;      // MTSD download vs the flat 60
  std::map<double, const PointResult*> by_p;
  for (std::size_t idx = 0; idx < sweep.num_points(); ++idx) {
    const double p = sweep.points[idx].point.at("p");
    const PointResult& point = sweep.result_at(idx);
    by_p[p] = &point;
    const double factor_a = point.at("mtcd_factor_a");
    for (unsigned i = 1; i <= k; ++i) {
      const std::string suffix = ".c" + std::to_string(i);
      const double mtsd_online = point.at("mtsd_online" + suffix);
      const double mtsd_dl = point.at("mtsd_dl" + suffix);
      table.add_row({p, static_cast<double>(i),
                     factor_a + 1.0 / (i * gamma), mtsd_online, factor_a,
                     mtsd_dl});
      max_online_dev = std::max(max_online_dev, std::abs(mtsd_online - 80.0));
      max_dl_dev = std::max(max_dl_dev, std::abs(mtsd_dl - 60.0));
    }
  }
  report.tables.emplace_back(
      "Per-class per-file times at p = 0.1 and p = 1.0", std::move(table));

  const auto mtcd_online = [&](double p, unsigned cls) {
    return by_p.at(p)->at("mtcd_factor_a") + 1.0 / (cls * gamma);
  };
  const auto mtsd_online = [&](double p, unsigned cls) {
    return by_p.at(p)->at("mtsd_online.c" + std::to_string(cls));
  };

  report.claims.push_back(claim_within(
      "fig3.mtsd_online_flat",
      "MTSD online/file is class- and p-independent: max |value - 80|",
      max_online_dev, 0.0, 0.1));
  report.claims.push_back(claim_within(
      "fig3.mtsd_dl_flat",
      "MTSD download/file is class- and p-independent: max |value - 60|",
      max_dl_dev, 0.0, 0.1));
  report.claims.push_back(claim_within(
      "fig3.p01_class1",
      "MTCD online/file, class 1 at p = 0.1 (A(0.1) + 1/gamma = 93.95)",
      mtcd_online(0.1, 1), 93.95, 0.1));
  report.claims.push_back(claim_within(
      "fig3.p01_class10",
      "MTCD online/file, class 10 at p = 0.1 (A(0.1) + 1/(10 gamma) = 75.95)",
      mtcd_online(0.1, k), 75.95, 0.1));
  report.claims.push_back(claim_within(
      "fig3.p1_class10",
      "MTCD online/file, class 10 at p = 1 (A(1) + 2 = 98, Fig. 2's p = 1 "
      "value: at p = 1 everyone is class K)",
      mtcd_online(1.0, k), 98.0, 0.1));
  report.claims.push_back(claim_at_least(
      "fig3.light_users_pay",
      "at p = 0.1 MTCD is worse than MTSD for class 1 (online/file gap)",
      mtcd_online(0.1, 1) - mtsd_online(0.1, 1), 0.0));
  report.claims.push_back(claim_at_most(
      "fig3.heavy_users_gain",
      "at p = 0.1 MTCD beats MTSD for class 10 (online/file gap)",
      mtcd_online(0.1, k) - mtsd_online(0.1, k), 0.0));
  return report;
}

// ---------------------------------------------------------------------------
// Fig. 4(a) — CMFSD average online time over the (p, rho) grid.

SweepSpec fig4a_spec() {
  const core::ScenarioConfig base;
  SweepSpec spec;
  spec.name = "fig4a";
  // CMFSD is undefined at p = 0 (nobody requests any file), so the grid
  // starts at 0.1 exactly as the paper's sweep does.
  spec.grid.axis("p", linspace(0.1, 1.0, 10))
      .axis("rho", linspace(0.0, 1.0, 11));
  spec.fingerprint = cache_key("fluid-equilibrium", spec_of(base));
  spec.compute = [base](const GridPoint& point) {
    model::ScenarioSpec scenario = spec_of(base);
    scenario.scheme = fluid::SchemeKind::kCmfsd;
    scenario.correlation = point.at("p");
    scenario.rho = point.at("rho");
    const model::Outcome outcome = fluid_backend().evaluate_or_throw(scenario);
    PointResult result;
    result.values["online"] = outcome.avg_online_per_file;
    result.values["dl"] = outcome.avg_download_per_file;
    return result;
  };
  return spec;
}

FigureReport run_fig4a(const ReproduceOptions& options) {
  const core::ScenarioConfig base;
  FigureReport report;
  report.name = "fig4a";
  report.title = "CMFSD: rho = 0 is optimal at every correlation";
  report.paper_ref = "Fig. 4(a), Sec. 4.2.2";
  report.description =
      "Paper Fig. 4(a) (Sec. 4.2.2): the average online time per file "
      "under CMFSD is minimised at rho = 0 (donate the whole virtual-seed "
      "bandwidth) for every p, grows monotonically with rho, and at "
      "rho = 1 collapses onto MFCD; the rho = 0 advantage widens as p "
      "grows (about 27% at p = 0.1, 47% at p = 1).";

  const SweepSpec spec = fig4a_spec();
  const SweepResult sweep = run_sweep(spec, engine_options(options));
  report.stats.absorb(sweep);
  report.claims.push_back(
      completeness_claim("fig4a", sweep.failures, sweep.num_points()));
  if (sweep.failures > 0) {
    append_failure_table(report, sweep);
    mark_skipped(report,
                 {"fig4a.argmin_rho0", "fig4a.monotone_in_rho",
                  "fig4a.rho1_is_mfcd", "fig4a.p09_rho0",
                  "fig4a.improvement_grows"});
    return report;
  }

  const std::vector<double>& p_values = spec.grid.axes()[0].values;
  const std::vector<double>& rho_values = spec.grid.axes()[1].values;
  const std::size_t nr = rho_values.size();
  const auto online_at = [&](std::size_t pi, std::size_t ri) {
    return sweep.result_at(pi * nr + ri).at("online");
  };

  std::vector<std::string> headers{"p"};
  for (const double rho : rho_values) {
    headers.push_back("rho=" + util::format_double(rho, 3));
  }
  util::Table table(std::move(headers));

  std::size_t argmin_not_zero = 0;
  double min_rho_step = kInf;        // monotonicity in rho, every p row
  double max_mfcd_gap = 0.0;         // |online(p, 1) - MFCD online(p)|
  double min_improvement_step = kInf;
  double online_p09_rho0 = 0.0;
  double prev_improvement = 0.0;
  for (std::size_t pi = 0; pi < p_values.size(); ++pi) {
    std::vector<util::Cell> row{p_values[pi]};
    std::size_t argmin = 0;
    for (std::size_t ri = 0; ri < nr; ++ri) {
      const double online = online_at(pi, ri);
      row.emplace_back(online);
      if (online < online_at(pi, argmin)) argmin = ri;
      if (ri > 0) {
        min_rho_step =
            std::min(min_rho_step, online - online_at(pi, ri - 1));
      }
    }
    table.add_row(std::move(row));
    if (argmin != 0) ++argmin_not_zero;

    model::ScenarioSpec scenario = spec_of(base);
    scenario.scheme = fluid::SchemeKind::kMfcd;
    scenario.correlation = p_values[pi];
    const double mfcd_online =
        fluid_backend().evaluate_or_throw(scenario).avg_online_per_file;
    max_mfcd_gap = std::max(
        max_mfcd_gap, std::abs(online_at(pi, nr - 1) - mfcd_online));

    const double improvement =
        1.0 - online_at(pi, 0) / online_at(pi, nr - 1);
    if (pi > 0) {
      min_improvement_step =
          std::min(min_improvement_step, improvement - prev_improvement);
    }
    prev_improvement = improvement;
    if (std::abs(p_values[pi] - 0.9) < 1e-12) {
      online_p09_rho0 = online_at(pi, 0);
    }
  }
  report.tables.emplace_back(
      "CMFSD average online time per file over the (p, rho) grid",
      std::move(table));

  report.claims.push_back(claim_at_most(
      "fig4a.argmin_rho0",
      "rho = 0 minimises the online time in every p row (rows violating)",
      static_cast<double>(argmin_not_zero), 0.0));
  report.claims.push_back(claim_at_least(
      "fig4a.monotone_in_rho",
      "online time grows monotonically with rho in every p row: min "
      "consecutive increment",
      min_rho_step, 0.0, 1e-9));
  report.claims.push_back(claim_within(
      "fig4a.rho1_is_mfcd",
      "the rho = 1 column reproduces MFCD: max_p |CMFSD(p, 1) - MFCD(p)|",
      max_mfcd_gap, 0.0, 1e-6));
  report.claims.push_back(claim_within(
      "fig4a.p09_rho0", "CMFSD online/file at p = 0.9, rho = 0",
      online_p09_rho0, 51.89, 0.1));
  report.claims.push_back(claim_at_least(
      "fig4a.improvement_grows",
      "the rho = 0 advantage over rho = 1 widens with p: min consecutive "
      "increment of 1 - online(p, 0)/online(p, 1)",
      min_improvement_step, 0.0, 1e-9));
  return report;
}

// ---------------------------------------------------------------------------
// Fig. 4(b)/(c) — CMFSD per-class times vs MFCD at p = 0.9 and p = 0.1.

SweepSpec fig4bc_spec() {
  const core::ScenarioConfig base;
  SweepSpec spec;
  spec.name = "fig4bc";
  spec.grid.axis("p", {0.9, 0.1}).axis("rho", {0.1, 0.9});
  spec.fingerprint = cache_key("fluid-equilibrium", spec_of(base));
  spec.compute = [base](const GridPoint& point) {
    model::ScenarioSpec scenario = spec_of(base);
    scenario.scheme = fluid::SchemeKind::kCmfsd;
    scenario.correlation = point.at("p");
    scenario.rho = point.at("rho");
    const model::Outcome outcome = fluid_backend().evaluate_or_throw(scenario);
    PointResult result;
    for (unsigned i = 1; i <= base.num_files; ++i) {
      const std::string suffix = ".c" + std::to_string(i);
      result.values["online" + suffix] =
          outcome.per_class.online_per_file[i - 1];
      result.values["dl" + suffix] =
          outcome.per_class.download_per_file[i - 1];
    }
    return result;
  };
  return spec;
}

FigureReport run_fig4bc(const ReproduceOptions& options) {
  const core::ScenarioConfig base;
  const unsigned k = base.num_files;
  FigureReport report;
  report.name = "fig4bc";
  report.title = "CMFSD per class: everyone beats MFCD, mild unfairness";
  report.paper_ref = "Fig. 4(b)/(c), Sec. 4.2.2";
  report.description =
      "Paper Fig. 4(b)/(c) (Sec. 4.2.2): at small rho every class's "
      "online time beats MFCD's by a wide margin; the price is mild "
      "unfairness — per-file download time grows with the class index "
      "(single-file users finish a file fastest), most visibly at low p.";

  const SweepSpec spec = fig4bc_spec();
  const SweepResult sweep = run_sweep(spec, engine_options(options));
  report.stats.absorb(sweep);
  report.claims.push_back(
      completeness_claim("fig4bc", sweep.failures, sweep.num_points()));
  if (sweep.failures > 0) {
    append_failure_table(report, sweep);
    mark_skipped(report,
                 {"fig4b.every_class_beats_mfcd", "fig4c.class1_dl",
                  "fig4c.class10_dl", "fig4bc.class1_fastest"});
    return report;
  }

  const std::vector<double>& p_values = spec.grid.axes()[0].values;
  const std::vector<double>& rho_values = spec.grid.axes()[1].values;
  const auto result_at = [&](std::size_t pi, std::size_t ri) -> const
      PointResult& { return sweep.result_at(pi * rho_values.size() + ri); };

  double min_dl_gap_to_class1 = kInf;  // dl.ci - dl.c1 over every cell
  double fig4b_max_online = 0.0;       // worst class, p = 0.9, rho = 0.1
  double fig4c_dl_c1 = 0.0;
  double fig4c_dl_ck = 0.0;
  for (std::size_t pi = 0; pi < p_values.size(); ++pi) {
    const double p = p_values[pi];
    model::ScenarioSpec scenario = spec_of(base);
    scenario.scheme = fluid::SchemeKind::kMfcd;
    scenario.correlation = p;
    const model::Outcome mfcd = fluid_backend().evaluate_or_throw(scenario);

    std::vector<std::string> headers{"class"};
    for (const double rho : rho_values) {
      const std::string tag = "CMFSD rho=" + util::format_double(rho, 3);
      headers.push_back(tag + " online/file");
      headers.push_back(tag + " dl/file");
    }
    headers.push_back("MFCD online/file");
    headers.push_back("MFCD dl/file");
    util::Table table(std::move(headers));

    for (unsigned i = 1; i <= k; ++i) {
      const std::string suffix = ".c" + std::to_string(i);
      std::vector<util::Cell> row{static_cast<double>(i)};
      for (std::size_t ri = 0; ri < rho_values.size(); ++ri) {
        const PointResult& cell = result_at(pi, ri);
        const double online = cell.at("online" + suffix);
        const double dl = cell.at("dl" + suffix);
        row.emplace_back(online);
        row.emplace_back(dl);
        min_dl_gap_to_class1 =
            std::min(min_dl_gap_to_class1, dl - cell.at("dl.c1"));
      }
      row.emplace_back(mfcd.per_class.online_per_file[i - 1]);
      row.emplace_back(mfcd.per_class.download_per_file[i - 1]);
      table.add_row(std::move(row));
    }
    report.tables.emplace_back(
        "Per-class per-file times at p = " + util::format_double(p, 3),
        std::move(table));
  }

  // Headline cells. Grid is row-major with p the slow axis, so
  // (p = 0.9, rho = 0.1) is point 0 and (p = 0.1, rho = 0.1) is point 2.
  const PointResult& fig4b_cell = result_at(0, 0);
  const PointResult& fig4c_cell = result_at(1, 0);
  model::ScenarioSpec fig4b_scenario = spec_of(base);
  fig4b_scenario.scheme = fluid::SchemeKind::kMfcd;
  fig4b_scenario.correlation = 0.9;
  const model::Outcome fig4b_mfcd =
      fluid_backend().evaluate_or_throw(fig4b_scenario);
  double fig4b_min_mfcd_online = kInf;
  for (unsigned i = 1; i <= k; ++i) {
    fig4b_max_online = std::max(
        fig4b_max_online, fig4b_cell.at("online.c" + std::to_string(i)));
    fig4b_min_mfcd_online = std::min(fig4b_min_mfcd_online,
                                     fig4b_mfcd.per_class.online_per_file[i - 1]);
  }
  fig4c_dl_c1 = fig4c_cell.at("dl.c1");
  fig4c_dl_ck = fig4c_cell.at("dl.c" + std::to_string(k));

  report.claims.push_back(claim_at_most(
      "fig4b.every_class_beats_mfcd",
      "at p = 0.9, rho = 0.1 the WORST CMFSD class is still faster online "
      "than the BEST MFCD class (gap)",
      fig4b_max_online - fig4b_min_mfcd_online, 0.0));
  report.claims.push_back(claim_within(
      "fig4c.class1_dl", "download/file, class 1 at p = 0.1, rho = 0.1",
      fig4c_dl_c1, 42.8, 0.5));
  report.claims.push_back(claim_within(
      "fig4c.class10_dl", "download/file, class 10 at p = 0.1, rho = 0.1",
      fig4c_dl_ck, 66.9, 0.5));
  report.claims.push_back(claim_at_least(
      "fig4bc.class1_fastest",
      "single-file users have the smallest per-file download time in every "
      "cell: min over cells and classes of dl(class i) - dl(class 1)",
      min_dl_gap_to_class1, 0.0, 1e-9));
  return report;
}

// ---------------------------------------------------------------------------
// Adapt — the paper's Sec. 4.3 mechanism, exercised in the discrete-event
// simulator with a cheater-fraction sweep.

model::ScenarioSpec adapt_base_spec() {
  model::ScenarioSpec spec;
  spec.num_files = 5;
  spec.correlation = 0.9;
  spec.visit_rate = 1.0;
  spec.scheme = fluid::SchemeKind::kCmfsd;
  spec.rho = 0.0;
  spec.horizon = 2500.0;
  spec.warmup = 750.0;
  return spec;
}

/// Mean departure rho over the multi-file classes that completed users
/// (class 1 has no virtual seed, so no rho to adapt).
double mean_multi_file_rho(const sim::SimResult& result) {
  double weighted = 0.0;
  double users = 0.0;
  for (std::size_t c = 1; c < result.classes.size(); ++c) {
    const sim::PerClassResult& cls = result.classes[c];
    weighted +=
        cls.mean_final_rho * static_cast<double>(cls.completed_users);
    users += static_cast<double>(cls.completed_users);
  }
  return users > 0.0 ? weighted / users
                     : std::numeric_limits<double>::quiet_NaN();
}

SweepSpec adapt_spec(bool adapt_enabled, unsigned shards) {
  model::ScenarioSpec base = adapt_base_spec();
  base.adapt.enabled = adapt_enabled;
  base.shards = shards;  // no effect on results or the cache fingerprint
  SweepSpec spec;
  spec.name = adapt_enabled ? "adapt-on" : "adapt-off";
  spec.grid
      .axis("cheaters", adapt_enabled
                            ? std::vector<double>{0.0, 0.5, 0.8}
                            : std::vector<double>{0.0})
      .axis("rep", {0.0, 1.0});
  spec.fingerprint = cache_key("kernel-sim", base);
  // NOTE: one single-replication backend call per point (the replication
  // index is a grid axis) rather than run_replications, which fans out on
  // the global pool — a compute function must never submit to the pool
  // its sweep runs on.
  spec.compute = [base](const GridPoint& point) {
    model::ScenarioSpec scenario = base;
    scenario.cheater_fraction = point.at("cheaters");
    scenario.seed = 20'060 + static_cast<std::uint64_t>(point.at("rep"));
    const model::Outcome outcome =
        model::require_backend("kernel-sim").evaluate_or_throw(scenario);
    PointResult result;
    result.values["online_per_file"] = outcome.avg_online_per_file;
    result.values["mean_final_rho"] = mean_multi_file_rho(*outcome.sim);
    return result;
  };
  return spec;
}

FigureReport run_adapt(const ReproduceOptions& options) {
  FigureReport report;
  report.name = "adapt";
  report.title = "Adapt: generous without cheaters, protective with them";
  report.paper_ref = "Sec. 4.3";
  report.description =
      "Paper Sec. 4.3: the Adapt controller starts at rho = 0 and only "
      "raises rho when a peer's virtual-seed balance shows it is being "
      "exploited. With no cheaters the population should stay near the "
      "rho = 0 optimum of Fig. 4(a); as the cheater fraction grows, "
      "obedient peers raise rho in self-defence and system performance "
      "degrades. (The paper proposes Adapt without evaluating it; these "
      "measurements are this repository's discrete-event check of the "
      "claimed behaviour, averaged over 2 seeds.)";

  const SweepSpec on_spec = adapt_spec(true, options.shards);
  const SweepSpec off_spec = adapt_spec(false, options.shards);
  const SweepResult on = run_sweep(on_spec, engine_options(options));
  const SweepResult off = run_sweep(off_spec, engine_options(options));
  report.stats.absorb(on);
  report.stats.absorb(off);
  report.claims.push_back(completeness_claim(
      "adapt", on.failures + off.failures, on.num_points() + off.num_points()));
  if (on.failures + off.failures > 0) {
    append_failure_table(report, on.failures > 0 ? on : off);
    mark_skipped(report,
                 {"adapt.stays_generous", "adapt.matches_rho0_optimum",
                  "adapt.reacts_to_cheating", "adapt.rho_monotone",
                  "adapt.cheating_hurts"});
    return report;
  }

  // Average the two replications per cheater fraction.
  const std::vector<double>& cheater_values = on_spec.grid.axes()[0].values;
  const std::size_t reps = on_spec.grid.axes()[1].values.size();
  std::vector<double> online(cheater_values.size(), 0.0);
  std::vector<double> rho(cheater_values.size(), 0.0);
  for (std::size_t ci = 0; ci < cheater_values.size(); ++ci) {
    for (std::size_t r = 0; r < reps; ++r) {
      const PointResult& point = on.result_at(ci * reps + r);
      online[ci] += point.at("online_per_file") / static_cast<double>(reps);
      rho[ci] += point.at("mean_final_rho") / static_cast<double>(reps);
    }
  }
  double off_online = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    off_online +=
        off.result_at(r).at("online_per_file") / static_cast<double>(reps);
  }

  util::Table table({"cheater fraction", "Adapt online/file",
                     "Adapt mean departure rho"});
  for (std::size_t ci = 0; ci < cheater_values.size(); ++ci) {
    table.add_row({cheater_values[ci], online[ci], rho[ci]});
  }
  report.tables.emplace_back(
      "Adapt vs cheater fraction (K = 5, p = 0.9, CMFSD, 2 seeds); the "
      "fixed rho = 0 baseline with no cheaters averages " +
          util::format_double(off_online, 6) + " online/file",
      std::move(table));

  report.claims.push_back(claim_at_most(
      "adapt.stays_generous",
      "with no cheaters the mean departure rho stays near the recommended "
      "starting point 0",
      rho[0], 0.05));
  report.claims.push_back(claim_within(
      "adapt.matches_rho0_optimum",
      "with no cheaters Adapt matches the fixed rho = 0 system: relative "
      "online/file gap |adapt - fixed| / fixed",
      std::abs(online[0] - off_online) / off_online, 0.0, 0.05));
  report.claims.push_back(claim_at_least(
      "adapt.reacts_to_cheating",
      "obedient peers protect themselves: mean departure rho rise from 0% "
      "to 80% cheaters",
      rho[2] - rho[0], 0.05));
  report.claims.push_back(claim_at_least(
      "adapt.rho_monotone",
      "protection grows with the cheater fraction: min consecutive rho "
      "increment over 0% -> 50% -> 80%",
      std::min(rho[1] - rho[0], rho[2] - rho[1]), 0.0, 0.02));
  report.claims.push_back(claim_at_least(
      "adapt.cheating_hurts",
      "cheating degrades the system: online/file rise from 0% to 80% "
      "cheaters",
      online[2] - online[0], 0.0));
  return report;
}

}  // namespace

// ---------------------------------------------------------------------------

Claim claim_within(std::string id, std::string description, double measured,
                   double expected, double tolerance) {
  return make_claim(std::move(id), std::move(description), Relation::kWithin,
                    measured, expected, tolerance);
}

Claim claim_at_most(std::string id, std::string description, double measured,
                    double bound, double slack) {
  return make_claim(std::move(id), std::move(description), Relation::kAtMost,
                    measured, bound, slack);
}

Claim claim_at_least(std::string id, std::string description, double measured,
                     double bound, double slack) {
  return make_claim(std::move(id), std::move(description), Relation::kAtLeast,
                    measured, bound, slack);
}

Claim claim_skipped(std::string id) {
  Claim claim;
  claim.id = std::move(id);
  claim.description =
      "not evaluated: the figure's sweep had permanently failed points";
  claim.pass = false;
  claim.skipped = true;
  return claim;
}

void FigureStats::absorb(const SweepResult& sweep) {
  points += sweep.num_points();
  cache_hits += sweep.cache_hits;
  cache_misses += sweep.cache_misses;
  failures += sweep.failures;
  seconds += sweep.wall_seconds;
}

std::size_t FigureReport::num_passed() const {
  return static_cast<std::size_t>(
      std::count_if(claims.begin(), claims.end(),
                    [](const Claim& claim) { return claim.pass; }));
}

const std::vector<FigureSpec>& figure_registry() {
  static const std::vector<FigureSpec> registry{
      {"fig2", "MTCD vs MTSD: average online time per file vs p",
       "Fig. 2, Sec. 4.2.1", &run_fig2},
      {"fig3", "Per-class times under MTCD and MTSD", "Fig. 3, Sec. 4.2.1",
       &run_fig3},
      {"fig4a", "CMFSD online time over the (p, rho) grid",
       "Fig. 4(a), Sec. 4.2.2", &run_fig4a},
      {"fig4bc", "CMFSD per-class times vs MFCD", "Fig. 4(b)/(c), Sec. 4.2.2",
       &run_fig4bc},
      {"adapt", "The Adapt mechanism under cheating", "Sec. 4.3", &run_adapt},
  };
  return registry;
}

const FigureSpec* find_figure(std::string_view name) {
  for (const FigureSpec& spec : figure_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

namespace {

const char* relation_text(Relation relation) {
  switch (relation) {
    case Relation::kWithin:
      return "within +-tol of";
    case Relation::kAtMost:
      return "at most";
    case Relation::kAtLeast:
      return "at least";
  }
  return "?";
}

util::Table claims_table(const std::vector<Claim>& claims) {
  util::Table table(
      {"claim", "check", "expected", "tolerance", "measured", "status"});
  for (const Claim& claim : claims) {
    if (claim.skipped) {
      table.add_row({claim.id, std::string("-"), std::string("-"),
                     std::string("-"), std::string("-"),
                     std::string("SKIP")});
      continue;
    }
    table.add_row({claim.id, std::string(relation_text(claim.relation)),
                   claim.expected, claim.tolerance, claim.measured,
                   std::string(claim.pass ? "PASS" : "FAIL")});
  }
  return table;
}

}  // namespace

std::string reproduction_markdown(const std::vector<FigureReport>& reports) {
  std::size_t total_claims = 0;
  std::size_t total_passed = 0;
  for (const FigureReport& report : reports) {
    total_claims += report.claims.size();
    total_passed += report.num_passed();
  }
  const bool all_pass = total_passed == total_claims;

  std::ostringstream os;
  os << "# Reproduction report: paper vs measured\n\n";
  os << "> **Machine-written file — do not edit.** Generated by "
        "`btmf_tool reproduce`\n"
        "> from the figure registry in `src/sweep/src/reproduce.cpp`; "
        "regenerate with\n"
        "> `btmf_tool reproduce --report docs/REPRODUCTION.md`. Claim "
        "tolerances live in\n"
        "> the registry; the sweep/cache machinery behind the numbers is "
        "described in\n"
        "> [docs/SWEEP.md](SWEEP.md), and "
        "[EXPERIMENTS.md](../EXPERIMENTS.md) gives the\n"
        "> narrative tour of what each figure means.\n\n";
  os << "Source paper: *Analyzing Multiple File Downloading in BitTorrent* "
        "(ICPP 2006).\n"
        "Every headline figure of the paper's evaluation is regenerated "
        "from this\n"
        "repository's models and checked against the paper's claims with "
        "explicit\n"
        "tolerances.\n\n";

  os << "## Summary\n\n";
  util::Table summary({"figure", "paper reference", "claims", "status"});
  for (const FigureReport& report : reports) {
    summary.add_row({report.name + " — " + report.title, report.paper_ref,
                     std::to_string(report.num_passed()) + "/" +
                         std::to_string(report.claims.size()),
                     std::string(report.all_pass() ? "PASS" : "FAIL")});
  }
  os << summary.to_string() << '\n';
  os << "**Overall: " << (all_pass ? "PASS" : "FAIL") << "** ("
     << total_passed << "/" << total_claims << " claims).\n";

  for (const FigureReport& report : reports) {
    os << "\n## `" << report.name << "` — " << report.title << "\n\n";
    os << report.description << "\n\n";
    os << "### Claims\n\n" << claims_table(report.claims).to_string();
    for (const auto& [label, table] : report.tables) {
      os << "\n**" << label << "**\n\n" << table.to_string();
    }
    // Cache hit/miss accounting is deliberately omitted: it varies between
    // cold and warm runs, and this file must regenerate byte-identically.
    os << "\nSweep size: " << report.stats.points << " grid points ("
       << report.stats.failures << " failed).\n";
  }
  return os.str();
}

void write_reproduction_report(const std::string& path,
                               const std::vector<FigureReport>& reports) {
  const std::filesystem::path target(path);
  std::error_code ec;
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
  }
  std::ofstream file(target);
  if (!file) throw IoError("cannot open '" + path + "' for writing");
  file << reproduction_markdown(reports);
  if (!file) throw IoError("write to '" + path + "' failed");
}

}  // namespace btmf::sweep
