#include "btmf/sweep/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "btmf/parallel/parallel_for.h"
#include "btmf/parallel/thread_pool.h"
#include "btmf/robust/checkpoint.h"
#include "btmf/util/error.h"
#include "btmf/util/stopwatch.h"
#include "btmf/util/strings.h"

namespace btmf::sweep {

namespace {

/// Resolved-up-front metric ids (the registry hot path carries ids, not
/// names); all-zero and unused when no registry is attached.
struct SweepMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::MetricId total = 0;
  obs::MetricId done = 0;
  obs::MetricId hits = 0;
  obs::MetricId misses = 0;
  obs::MetricId failures = 0;
  obs::MetricId seconds = 0;
  obs::MetricId quarantined = 0;

  explicit SweepMetrics(obs::MetricsRegistry* r) : registry(r) {
    if (registry == nullptr) return;
    total = registry->gauge("sweep.points_total");
    done = registry->counter("sweep.points_done");
    hits = registry->counter("sweep.cache_hits");
    misses = registry->counter("sweep.cache_misses");
    failures = registry->counter("sweep.failures");
    seconds = registry->histogram("sweep.point_seconds");
    quarantined = registry->counter("robust.quarantined");
  }
};

/// Identity binding a journal to one (sweep, fingerprint, grid): resuming
/// after the spec or the grid changed must ignore the stale journal.
std::uint64_t journal_identity(const SweepSpec& spec) {
  std::string material = "journal\nsweep ";
  material += spec.name;
  material += "\nspec ";
  material += spec.fingerprint;
  for (const Axis& axis : spec.grid.axes()) {
    material += "\naxis ";
    material += axis.name;
    for (const double v : axis.values) {
      material += ' ';
      material += util::format_double_exact(v);
    }
  }
  return fnv1a64(material);
}

/// Chaos hook for the crash-resume tests and the CI chaos smoke job:
/// BTMF_CHAOS_KILL_AFTER=<n> hard-kills this process (SIGKILL — no
/// unwinding, exactly like an OOM kill or a power cut) once the journal
/// has recorded its n-th computed point. 0/unset = disabled.
std::uint64_t chaos_kill_after() {
  const char* env = std::getenv("BTMF_CHAOS_KILL_AFTER");
  if (env == nullptr || *env == '\0') return 0;
  return static_cast<std::uint64_t>(
      util::parse_int(env, "BTMF_CHAOS_KILL_AFTER"));
}

[[maybe_unused]] void chaos_kill_self() {
#if defined(__unix__) || defined(__APPLE__)
  ::raise(SIGKILL);
#else
  std::abort();
#endif
}

}  // namespace

const PointResult& SweepResult::result_at(std::size_t index) const {
  if (index >= points.size()) {
    throw ConfigError("sweep result index " + std::to_string(index) +
                      " out of range");
  }
  const PointOutcome& outcome = points[index];
  if (outcome.status != PointStatus::kOk) {
    throw ConfigError("sweep point " + outcome.point.canonical() +
                      " failed: " + outcome.error);
  }
  return outcome.result;
}

std::string sweep_journal_path(const SweepSpec& spec,
                               const std::string& cache_dir) {
  if (cache_dir.empty()) return {};
  return cache_dir + "/" + spec.name + "/journal.wal";
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  if (spec.name.empty()) throw ConfigError("sweep spec needs a name");
  if (!spec.compute) {
    throw ConfigError("sweep '" + spec.name + "' has no compute function");
  }
  const std::size_t n = spec.grid.size();
  if (n == 0) {
    throw ConfigError("sweep '" + spec.name + "' has an empty grid");
  }

  std::optional<DiskCache> cache;
  if (!options.cache_dir.empty()) cache.emplace(options.cache_dir);

  SweepMetrics metrics(options.metrics);
  if (metrics.registry != nullptr) {
    metrics.registry->set(metrics.total, static_cast<double>(n));
  }

  // Supervisor configuration for computed points. The sweep's metrics
  // registry doubles as the supervisor's sink, so robust.* counters land
  // next to the sweep.* ones.
  robust::SupervisorOptions supervisor = options.robust;
  supervisor.metrics = options.metrics;

  // The write-ahead journal lives next to the sweep's cache entries. Only
  // *computed* points are journaled — the cache is the checkpoint for
  // successes, so a fully warm rerun appends nothing and pays nothing.
  std::unique_ptr<robust::CheckpointJournal> journal;
  std::vector<const robust::CheckpointJournal::Entry*> replay(n, nullptr);
  std::vector<robust::CheckpointJournal::Entry> journaled;
  if (cache.has_value()) {
    const std::string journal_file =
        sweep_journal_path(spec, options.cache_dir);
    const std::uint64_t identity = journal_identity(spec);
    if (options.resume) {
      journaled = robust::CheckpointJournal::load(journal_file, identity);
      for (const auto& entry : journaled) {
        // Only failures replay from the journal (successes replay from
        // the cache); last write wins if an index somehow repeats.
        if (entry.index < n && entry.kind != robust::FailureKind::kNone) {
          replay[entry.index] = &entry;
        }
      }
    }
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(journal_file).parent_path(), ec);
    if (ec) {
      throw IoError("cannot create sweep journal directory for '" +
                    journal_file + "': " + ec.message());
    }
    journal = std::make_unique<robust::CheckpointJournal>(
        journal_file, identity, /*fresh=*/!options.resume);
  }
  const std::uint64_t kill_after = chaos_kill_after();

  util::Stopwatch timer;
  SweepResult sweep;
  sweep.points.resize(n);

  // Aggregate counters are relaxed atomics: per-point order is irrelevant
  // and the parallel_for join below is the synchronisation point.
  std::atomic<std::size_t> hits{0}, misses{0}, failures{0};
  std::atomic<std::size_t> retries{0}, timeouts{0}, crashes{0};
  std::atomic<std::size_t> quarantined{0}, resumed{0};

  const auto run_point = [&](std::size_t i) {
    PointOutcome& outcome = sweep.points[i];
    outcome.index = i;
    outcome.point = spec.grid.point(i);

    CacheKey key;
    std::optional<PointResult> cached;
    if (cache.has_value()) {
      key = CacheKey{spec.name, spec.fingerprint, outcome.point.canonical()};
      PointResult stored;
      switch (cache->lookup(key, &stored)) {
        case CacheLookup::kHit:
          cached = std::move(stored);
          break;
        case CacheLookup::kMiss:
          break;
        case CacheLookup::kCorrupt:
          // Self-healing: move the bad entry aside and recompute into a
          // clean slot. The *result* is unaffected — only the corruption
          // counter and the quarantined file betray that it happened.
          cache->quarantine(key);
          quarantined.fetch_add(1, std::memory_order_relaxed);
          if (metrics.registry != nullptr) {
            metrics.registry->add(metrics.quarantined);
          }
          break;
      }
    }
    if (cached.has_value()) {
      outcome.result = *std::move(cached);
      outcome.from_cache = true;
      hits.fetch_add(1, std::memory_order_relaxed);
      if (metrics.registry != nullptr) metrics.registry->add(metrics.hits);
    } else if (const robust::CheckpointJournal::Entry* entry = replay[i]) {
      // A resumed run replays the journaled failure verbatim: same kind,
      // same message, no recompute — the failure table of a resumed
      // report is byte-identical to the uninterrupted run's.
      outcome.status = PointStatus::kFailed;
      outcome.failure = entry->kind;
      outcome.error = entry->message;
      outcome.attempts = 0;
      outcome.from_journal = true;
      failures.fetch_add(1, std::memory_order_relaxed);
      resumed.fetch_add(1, std::memory_order_relaxed);
      if (metrics.registry != nullptr) {
        metrics.registry->add(metrics.failures);
      }
    } else {
      util::Stopwatch point_timer;
      // The task owns everything it touches (point and compute functions
      // by value): a watchdog worker that ignores cancellation is detached
      // and can outlive this frame — and run_sweep itself — so it must
      // never hold references into `spec` or `outcome`.
      const robust::Task task =
          [point = outcome.point, compute = spec.compute,
           compute_retry =
               spec.compute_retry](const robust::TaskContext& context) {
            PointResult result = context.attempt > 0 && compute_retry
                                     ? compute_retry(point, context.attempt)
                                     : compute(point);
            return std::move(result.values);
          };
      const std::uint64_t task_key =
          cache.has_value()
              ? key.hash()
              : fnv1a64(spec.name + "|" + outcome.point.canonical());
      robust::SuperviseOutcome supervised =
          robust::supervise(task, supervisor, task_key);
      outcome.attempts = supervised.attempts;
      retries.fetch_add(supervised.attempts > 0
                            ? supervised.attempts - 1
                            : 0,
                        std::memory_order_relaxed);
      timeouts.fetch_add(supervised.timeouts, std::memory_order_relaxed);
      crashes.fetch_add(supervised.crashes, std::memory_order_relaxed);
      if (supervised.ok()) {
        outcome.result.values = std::move(supervised.values);
        if (cache.has_value()) cache->store(key, outcome.result);
      } else {
        outcome.status = PointStatus::kFailed;
        outcome.failure = supervised.failure.kind;
        outcome.error = supervised.failure.message;
        outcome.result = PointResult{};
        failures.fetch_add(1, std::memory_order_relaxed);
        if (metrics.registry != nullptr) {
          metrics.registry->add(metrics.failures);
        }
      }
      misses.fetch_add(1, std::memory_order_relaxed);
      if (metrics.registry != nullptr) {
        metrics.registry->add(metrics.misses);
        metrics.registry->observe(metrics.seconds, point_timer.seconds());
      }
      if (journal != nullptr) {
        journal->append({i, outcome.failure, outcome.attempts,
                         outcome.error});
        if (kill_after > 0 && journal->appended() >= kill_after) {
          chaos_kill_self();
        }
      }
    }
    if (metrics.registry != nullptr) metrics.registry->add(metrics.done);
  };

  // A dedicated pool when the caller pinned a job count; the process
  // pool otherwise. The shard count bounds tasks in flight — results are
  // slot-indexed, so any sharding yields the same SweepResult.
  std::unique_ptr<parallel::ThreadPool> own_pool;
  if (options.jobs > 0) {
    own_pool = std::make_unique<parallel::ThreadPool>(options.jobs);
  }
  parallel::ThreadPool& pool =
      own_pool != nullptr ? *own_pool : parallel::global_pool();
  const std::size_t shards =
      options.shards > 0 ? options.shards : pool.num_threads() * 4;
  parallel::parallel_for_sharded(pool, 0, n, shards, run_point);

  sweep.cache_hits = hits.load();
  sweep.cache_misses = misses.load();
  sweep.failures = failures.load();
  sweep.retries = retries.load();
  sweep.timeouts = timeouts.load();
  sweep.crashes = crashes.load();
  sweep.quarantined = quarantined.load();
  sweep.resumed_failures = resumed.load();
  sweep.wall_seconds = timer.seconds();
  return sweep;
}

}  // namespace btmf::sweep
