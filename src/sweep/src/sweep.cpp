#include "btmf/sweep/sweep.h"

#include <atomic>
#include <exception>
#include <memory>
#include <optional>

#include "btmf/parallel/parallel_for.h"
#include "btmf/parallel/thread_pool.h"
#include "btmf/util/error.h"
#include "btmf/util/stopwatch.h"

namespace btmf::sweep {

namespace {

/// Resolved-up-front metric ids (the registry hot path carries ids, not
/// names); all-zero and unused when no registry is attached.
struct SweepMetrics {
  obs::MetricsRegistry* registry = nullptr;
  obs::MetricId total = 0;
  obs::MetricId done = 0;
  obs::MetricId hits = 0;
  obs::MetricId misses = 0;
  obs::MetricId failures = 0;
  obs::MetricId seconds = 0;

  explicit SweepMetrics(obs::MetricsRegistry* r) : registry(r) {
    if (registry == nullptr) return;
    total = registry->gauge("sweep.points_total");
    done = registry->counter("sweep.points_done");
    hits = registry->counter("sweep.cache_hits");
    misses = registry->counter("sweep.cache_misses");
    failures = registry->counter("sweep.failures");
    seconds = registry->histogram("sweep.point_seconds");
  }
};

}  // namespace

const PointResult& SweepResult::result_at(std::size_t index) const {
  if (index >= points.size()) {
    throw ConfigError("sweep result index " + std::to_string(index) +
                      " out of range");
  }
  const PointOutcome& outcome = points[index];
  if (outcome.status != PointStatus::kOk) {
    throw ConfigError("sweep point " + outcome.point.canonical() +
                      " failed: " + outcome.error);
  }
  return outcome.result;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  if (spec.name.empty()) throw ConfigError("sweep spec needs a name");
  if (!spec.compute) {
    throw ConfigError("sweep '" + spec.name + "' has no compute function");
  }
  const std::size_t n = spec.grid.size();
  if (n == 0) {
    throw ConfigError("sweep '" + spec.name + "' has an empty grid");
  }

  std::optional<DiskCache> cache;
  if (!options.cache_dir.empty()) cache.emplace(options.cache_dir);

  SweepMetrics metrics(options.metrics);
  if (metrics.registry != nullptr) {
    metrics.registry->set(metrics.total, static_cast<double>(n));
  }

  util::Stopwatch timer;
  SweepResult sweep;
  sweep.points.resize(n);

  // Aggregate counters are relaxed atomics: per-point order is irrelevant
  // and the parallel_for join below is the synchronisation point.
  std::atomic<std::size_t> hits{0}, misses{0}, failures{0};

  const auto run_point = [&](std::size_t i) {
    PointOutcome& outcome = sweep.points[i];
    outcome.index = i;
    outcome.point = spec.grid.point(i);

    CacheKey key;
    std::optional<PointResult> cached;
    if (cache.has_value()) {
      key = CacheKey{spec.name, spec.fingerprint, outcome.point.canonical()};
      cached = cache->load(key);
    }
    if (cached.has_value()) {
      outcome.result = *std::move(cached);
      outcome.from_cache = true;
      hits.fetch_add(1, std::memory_order_relaxed);
      if (metrics.registry != nullptr) metrics.registry->add(metrics.hits);
    } else {
      util::Stopwatch point_timer;
      try {
        outcome.result = spec.compute(outcome.point);
        if (cache.has_value()) cache->store(key, outcome.result);
      } catch (const std::exception& error) {
        outcome.status = PointStatus::kFailed;
        outcome.error = error.what();
        outcome.result = PointResult{};
        failures.fetch_add(1, std::memory_order_relaxed);
        if (metrics.registry != nullptr) {
          metrics.registry->add(metrics.failures);
        }
      }
      misses.fetch_add(1, std::memory_order_relaxed);
      if (metrics.registry != nullptr) {
        metrics.registry->add(metrics.misses);
        metrics.registry->observe(metrics.seconds, point_timer.seconds());
      }
    }
    if (metrics.registry != nullptr) metrics.registry->add(metrics.done);
  };

  // A dedicated pool when the caller pinned a job count; the process
  // pool otherwise. The shard count bounds tasks in flight — results are
  // slot-indexed, so any sharding yields the same SweepResult.
  std::unique_ptr<parallel::ThreadPool> own_pool;
  if (options.jobs > 0) {
    own_pool = std::make_unique<parallel::ThreadPool>(options.jobs);
  }
  parallel::ThreadPool& pool =
      own_pool != nullptr ? *own_pool : parallel::global_pool();
  const std::size_t shards =
      options.shards > 0 ? options.shards : pool.num_threads() * 4;
  parallel::parallel_for_sharded(pool, 0, n, shards, run_point);

  sweep.cache_hits = hits.load();
  sweep.cache_misses = misses.load();
  sweep.failures = failures.load();
  sweep.wall_seconds = timer.seconds();
  return sweep;
}

}  // namespace btmf::sweep
