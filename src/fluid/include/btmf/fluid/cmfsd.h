// Collaborative Multi-File torrent Sequential Downloading — the paper's
// proposed scheme (Sec. 3.5, fluid model (5)).
//
// K interest-correlated files live in one torrent with K subtorrents. A
// class-i peer downloads its i files *sequentially* (full download
// bandwidth in the current subtorrent). Once it has finished at least one
// file it becomes a *partial seed*: a fraction (1 - P(i,j)) of its upload
// bandwidth serves a completed file as a "virtual seed", while the
// remaining P(i,j) mu plays tit-for-tat in the subtorrent it is currently
// downloading from, with
//     P(i,j) = 1    if i == 1 or j == 1 (nothing finished yet)
//     P(i,j) = rho  otherwise, rho in [0, 1].
//
// State: x^{i,j} = class-i peers downloading their j-th file (j <= i),
// y^i = class-i (real) seeds. With
//     S^{i,j} = mu x^{i,j} (sum_{l,m} (1 - P(l,m)) x^{l,m} + sum_l y^l)
//               / sum_{l,m} x^{l,m}
// (the virtual-seed + real-seed service pool shared in proportion to
// download capability, all downloaders having full bandwidth here), the
// fluid model is
//     dx^{i,1}/dt = lambda_i            - out(i,1)
//     dx^{i,j}/dt = out(i,j-1)          - out(i,j)         (1 < j <= i)
//     dy^{i}/dt   = out(i,i)            - gamma y^i
// where out(i,j) = mu eta P(i,j) x^{i,j} + S^{i,j}.
//
// There is no closed form; the steady state is found numerically
// (transient RK45 integration + Newton polish). Two analytic anchors are
// still available and used as test oracles:
//  * y^i = lambda_i / gamma and per-stage throughput = lambda_i at any
//    steady state (flow conservation);
//  * at rho = 1 the steady state download time per file equals the MFCD
//    factor A exactly: with Lambda_tot = sum_i i lambda_i and
//    Lambda_1 = sum_i lambda_i, every stage population is
//    x* = lambda_i / (mu eta + mu Y / X), giving
//    d = (gamma Lambda_tot - mu Lambda_1) / (gamma mu eta Lambda_tot),
//    which under the binomial rates reduces to the same expression as
//    mfcd_download_time_per_file (Lambda_tot = lambda0 K p,
//    Lambda_1 = lambda0 (1 - (1-p)^K)).
//
// The per-class-rho constructor generalises P(i,j) = rho_i, which is what
// the Adapt analysis (Sec. 4.3) needs: obedient classes run their own rho
// while cheater classes pin rho = 1.
#pragma once

#include <span>
#include <vector>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/metrics.h"
#include "btmf/fluid/params.h"
#include "btmf/math/equilibrium.h"
#include "btmf/math/ode.h"

namespace btmf::fluid {

struct CmfsdEquilibrium {
  std::vector<double> state;        ///< packed {x^{i,j}}, then {y^i}
  PerClassMetrics metrics;          ///< per-class T_i, D_i
  double residual_inf = 0.0;        ///< steady-state residual achieved
  double total_downloaders = 0.0;   ///< sum x^{i,j}
  double total_seeds = 0.0;         ///< sum y^i
  double virtual_seed_bandwidth = 0.0;  ///< sum (1-P) mu x^{i,j}
};

class CmfsdModel {
 public:
  /// Uniform bandwidth-allocation ratio rho for every class.
  CmfsdModel(const FluidParams& params,
             std::vector<double> class_entry_rates, double rho);

  /// Per-class rho (rho_per_class[k] applies to class k+1). Class-1 peers
  /// never have a finished file, so their entry is ignored by P(1, j).
  CmfsdModel(const FluidParams& params,
             std::vector<double> class_entry_rates,
             std::vector<double> rho_per_class);

  [[nodiscard]] unsigned num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t state_size() const;

  /// Index of x^{i,j} in the packed state (1-based i in [1,K], j in [1,i]).
  [[nodiscard]] std::size_t x_index(unsigned i, unsigned j) const;
  /// Index of y^i in the packed state.
  [[nodiscard]] std::size_t y_index(unsigned i) const;

  /// P(i,j): the TFT share of upload bandwidth for an (i,j) downloader.
  [[nodiscard]] double bandwidth_split(unsigned i, unsigned j) const;

  /// The autonomous ODE right-hand side over the packed state.
  [[nodiscard]] math::OdeRhs rhs() const;

  /// As rhs(), but with every class entry rate modulated in time by an
  /// ArrivalProcess: lambda_i(t) = arrival.rate_at(lambda_i, t). With a
  /// homogeneous process this returns exactly the autonomous RHS.
  [[nodiscard]] math::OdeRhs rhs(const ArrivalProcess& arrival) const;

  /// Solves for the steady state from an empty torrent. Throws
  /// btmf::SolverError if no equilibrium is reached (infeasible rates).
  [[nodiscard]] CmfsdEquilibrium solve(
      const math::EquilibriumOptions& options = default_solve_options())
      const;

  /// Per-class metrics evaluated at an arbitrary state (used both by
  /// solve() and by tests that integrate the transient by hand).
  [[nodiscard]] PerClassMetrics metrics_from_state(
      std::span<const double> state) const;

  [[nodiscard]] const std::vector<double>& class_entry_rates() const {
    return rates_;
  }

  [[nodiscard]] const FluidParams& params() const { return params_; }

  [[nodiscard]] static math::EquilibriumOptions default_solve_options();

 private:
  FluidParams params_;
  std::vector<double> rates_;   ///< lambda_i, index 0 = class 1
  std::vector<double> rho_;     ///< per-class rho, index 0 = class 1
  unsigned num_classes_ = 0;
};

}  // namespace btmf::fluid
