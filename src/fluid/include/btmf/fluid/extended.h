// The general Qiu–Srikant single-torrent model, with the two features the
// paper's Sec. 2 simplifies away: a finite download bandwidth c and a
// downloader abort rate theta.
//
//     dx/dt = lambda - theta x - min{ c x, mu (eta x + y) }
//     dy/dt =                    min{ c x, mu (eta x + y) } - gamma y
//
// Steady state has two regimes:
//  * upload-constrained (the paper's case): per-peer completion rate
//    mu (eta x + y)/x = gamma mu eta/(gamma - mu), so T = (gamma - mu)/
//    (gamma mu eta); holds when gamma > mu and c >= c* where
//        c* = gamma mu eta / (gamma - mu)
//    (with the paper's constants c* ~ 0.0167 = 0.83 mu — the "download
//    bandwidth much larger than upload" assumption is in fact mild);
//  * download-constrained (c < c*, or gamma <= mu where seeds pile up):
//    every peer downloads at c, so T = 1/c, x = lambda/(theta + c),
//    y = c x / gamma.
//
// The abort rate theta drains downloaders without producing seeds; it
// never changes T (rates are per peer) but reduces the completing
// fraction to  completion_throughput / lambda.
#pragma once

#include <limits>

#include "btmf/fluid/params.h"
#include "btmf/math/ode.h"

namespace btmf::fluid {

struct ExtendedParams {
  FluidParams base{};
  /// Per-peer download bandwidth c; infinity = the paper's assumption.
  double download_bw = std::numeric_limits<double>::infinity();
  /// Abort rate theta >= 0: downloaders leaving before completion.
  double abort_rate = 0.0;

  void validate() const;
};

struct ExtendedEquilibrium {
  double downloaders = 0.0;       ///< x*
  double seeds = 0.0;             ///< y*
  double download_time = 0.0;     ///< per completing peer
  double online_time = 0.0;       ///< download + 1/gamma
  bool download_constrained = false;
  /// Fraction of arrivals that finish (the rest abort): 1 - theta x / l.
  double completion_fraction = 1.0;
};

/// The bandwidth c* below which the swarm is download-constrained
/// (gamma mu eta / (gamma - mu)); throws btmf::ConfigError if gamma <= mu
/// (then every finite c is download-constrained and no threshold exists).
double critical_download_bandwidth(const FluidParams& params);

/// Closed-form steady state of the extended model.
ExtendedEquilibrium extended_single_torrent_equilibrium(
    const ExtendedParams& params, double entry_rate);

/// The 2-state ODE, state = {x, y}; used to cross-check the closed form.
math::OdeRhs extended_single_torrent_rhs(const ExtendedParams& params,
                                         double entry_rate);

/// The *abort-aware* steady state (not in the paper or in Qiu–Srikant).
///
/// The theta-extension above inherits the fluid idealisation that all
/// delivered service becomes completions — the partial progress of peers
/// who later abort is silently transferred to others. An agent-level
/// swarm wastes that work, and settles at a different fixed point: with
/// every downloader receiving the same rate r, a download is a race
/// between the deterministic service time 1/r and an Exp(theta) abort
/// clock, so the completing fraction is q = exp(-theta / r) and
///     r = mu eta + (mu theta / gamma) q / (1 - q)      (upload regime)
/// (for theta -> 0 this recovers r = gamma mu eta/(gamma - mu)). The
/// discrete-event simulator matches THIS equilibrium to three digits and
/// sits strictly below the transferable-progress one — see
/// tests/sim/abort_bandwidth_test.cpp and bench/constrained_ablation.
ExtendedEquilibrium abort_aware_single_torrent_equilibrium(
    const ExtendedParams& params, double entry_rate);

}  // namespace btmf::fluid
