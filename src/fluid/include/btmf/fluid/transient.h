// Transient (time-domain) analysis of the fluid models.
//
// The paper evaluates only steady states; the fluid models themselves are
// dynamic, and the regime they are most often quoted for — flash crowds —
// is a transient question: a burst of x0 peers arrives at t = 0 and the
// torrent must drain it. This module samples trajectories of any scheme's
// ODE on a uniform grid and measures settling metrics (peak population,
// time to reach the steady state within a tolerance, crowd drain time).
#pragma once

#include <functional>
#include <vector>

#include "btmf/math/ode.h"

namespace btmf::fluid {

struct TransientOptions {
  double t_end = 2000.0;       ///< trajectory horizon
  std::size_t samples = 200;   ///< uniform sample count (incl. t = 0)
  math::AdaptiveOptions ode{}; ///< integrator tolerances
};

/// A sampled trajectory: `states[s]` is the full state at `times[s]`.
struct TransientSeries {
  std::vector<double> times;
  std::vector<std::vector<double>> states;

  /// Applies `reduce` to every sample, e.g. total downloaders.
  [[nodiscard]] std::vector<double> map(
      const std::function<double(std::span<const double>)>& reduce) const;
};

/// Integrates y' = f(y) from `y0` and samples on a uniform grid. Sample
/// times are hit exactly (integration is split at each grid point).
TransientSeries sample_trajectory(const math::OdeRhs& rhs,
                                  std::vector<double> y0,
                                  const TransientOptions& options = {});

/// First grid time at which ||y(t) - target||_inf <= tol * (1 +
/// ||target||_inf), or +inf if never within the horizon.
double settling_time(const TransientSeries& series,
                     std::span<const double> target, double tol = 0.01);

/// Peak of a reduced scalar (e.g. max total downloader population).
double peak_value(const TransientSeries& series,
                  const std::function<double(std::span<const double>)>&
                      reduce);

}  // namespace btmf::fluid
