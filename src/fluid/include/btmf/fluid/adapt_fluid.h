// Deterministic (fluid) model of the Adapt mechanism — the paper proposes
// Adapt in Sec. 4.3 and leaves its evaluation to future work; here the
// per-peer rule is lifted to a class-level ODE coupled to the CMFSD fluid
// model, giving the mechanism's fixed points analytically.
//
// Population: each class i splits into an *obedient* cohort (arrival rate
// (1 - f) lambda_i) whose bandwidth ratio rho_i(t) adapts, and a *cheater*
// cohort (rate f lambda_i) pinned at rho = 1 (never virtual-seeds) — the
// paper's selfish peer that "quits and rejoins with a new ID".
//
// Per-peer imbalance of an obedient class-i partial seed:
//     Delta_i = (1 - rho_i) mu  -  mu (D + Y) / X
// (uploaded through its virtual seed minus its share of the virtual-seed
// pool; D = donated mass, Y = seeds, X = downloaders — the same pool the
// CMFSD S^{i,j} term shares out; the received term uses the
// virtual-seed fraction of the pool only).
//
// The discrete rule "rho += v1 after Delta > phi_hi for n periods" becomes
// a rate: with T the Adapt period,
//     d rho_i/dt = (v1 / (n T)) s((Delta_i - phi_hi)/w) (1 - rho_i)
//                - (v2 / (n T)) s((phi_lo - Delta_i)/w) rho_i
// where s is a piecewise-linear unit step smoothed over width w and the
// (1 - rho_i) / rho_i factors implement the [0, 1] clamp smoothly.
//
// Fixed points: either Delta_i inside the dead band [phi_lo, phi_hi]
// (interior equilibrium) or rho_i stuck at a boundary. The bench
// `adapt_fixed_point` compares rho*(f) against the agent-level simulator.
#pragma once

#include <span>
#include <vector>

#include "btmf/fluid/metrics.h"
#include "btmf/fluid/params.h"
#include "btmf/math/equilibrium.h"
#include "btmf/math/ode.h"

namespace btmf::fluid {

struct AdaptFluidParams {
  double phi_lo = -0.005;   ///< donate more below this imbalance
  double phi_hi = 0.005;    ///< self-protect above this imbalance
  double rate_up = 0.005;   ///< v1 / (n T): rho units per time
  double rate_down = 0.005; ///< v2 / (n T)
  double smoothing = 1e-3;  ///< switch width w (imbalance units)
  /// Newly arriving obedient peers start at this rho (the paper
  /// recommends 0). Because rho_i is the class's *population average*,
  /// peer turnover continuously pulls it back toward this value at rate
  /// lambda_i / X_i — without the term the dead band would freeze rho
  /// wherever the initial filling transient left it, which an agent-level
  /// population does not do (departing peers take their adapted rho away).
  double initial_rho = 0.0;

  void validate() const;
};

struct AdaptFluidEquilibrium {
  std::vector<double> state;        ///< packed model state
  std::vector<double> rho;          ///< equilibrium rho_i (index 0 = class 1)
  PerClassMetrics obedient;         ///< obedient-cohort per-class metrics
  PerClassMetrics cheater;          ///< cheater-cohort per-class metrics
  double avg_online_per_file = 0.0; ///< across both cohorts
  double obedient_avg_online_per_file = 0.0;
  double residual_inf = 0.0;
};

class AdaptFluidModel {
 public:
  /// `class_entry_rates` are the total (obedient + cheater) system rates
  /// L_i; `cheater_fraction` in [0, 1) is applied to classes >= 2
  /// (single-file users have nothing to cheat with).
  AdaptFluidModel(const FluidParams& params,
                  std::vector<double> class_entry_rates,
                  double cheater_fraction,
                  const AdaptFluidParams& adapt = {});

  [[nodiscard]] unsigned num_classes() const { return num_classes_; }
  [[nodiscard]] std::size_t state_size() const;

  // Packed layout: obedient x^{i,j}, cheater x^{i,j}, obedient y^i,
  // cheater y^i, rho_i.
  [[nodiscard]] std::size_t x_index(bool cheater, unsigned i,
                                    unsigned j) const;
  [[nodiscard]] std::size_t y_index(bool cheater, unsigned i) const;
  [[nodiscard]] std::size_t rho_index(unsigned i) const;

  [[nodiscard]] math::OdeRhs rhs() const;

  /// Integrates to the coupled (populations, rho) equilibrium starting
  /// from an empty torrent with rho_i = adapt.initial_rho.
  [[nodiscard]] AdaptFluidEquilibrium solve() const;

 private:
  FluidParams params_;
  std::vector<double> rates_;
  double cheater_fraction_;
  AdaptFluidParams adapt_;
  unsigned num_classes_ = 0;

  [[nodiscard]] double obedient_rate(unsigned i) const;
  [[nodiscard]] double cheater_rate(unsigned i) const;
};

}  // namespace btmf::fluid
