// Typed demand model: how peers arrive over time and what bandwidth they
// bring. The paper (and every layer built on it through PR 9) assumed a
// single homogeneous Poisson visit rate lambda0 and one bandwidth class;
// this header makes both assumptions explicit, typed, and overridable.
//
// ArrivalProcess describes the *time shape* of the visit rate. The base
// rate stays wherever it always lived (ScenarioSpec::visit_rate,
// SimConfig::visit_rate, the rates handed to the fluid RHS): an
// ArrivalProcess is a pure modulation of that base, so rate_at(base, t)
// with a default-constructed (homogeneous Poisson) process is exactly
// `base` for all t and every consumer degenerates to today's behaviour.
//
// BandwidthClass describes a *population* of peers sharing the same
// upload scale and download cap. An empty class vector means "one
// homogeneous class at the fluid parameters", again degenerating to the
// pre-demand-model behaviour bit for bit.
//
// Both types travel inside ScenarioSpec: they are fingerprinted
// canonically (omitted entirely when at their homogeneous defaults, so
// existing cache keys survive byte-identically) and validated up front.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace btmf::fluid {

/// The time shape of the arrival (visit) rate.
enum class ArrivalKind : std::uint8_t {
  kPoisson = 0,     ///< homogeneous: lambda(t) = base for all t
  kDiurnal = 1,     ///< sinusoid: base * (1 + amplitude*sin(2*pi*(t-phase)/period))
  kFlashCrowd = 2,  ///< pulse train: base * boost inside each pulse, base outside
};

[[nodiscard]] std::string_view to_string(ArrivalKind kind);

/// A time-varying modulation of the scalar visit rate. Default-constructed
/// it is the homogeneous Poisson process every layer assumed before the
/// demand model existed, and all consumers treat that case as "no new
/// randomness, no new arithmetic" so results stay bit-identical.
struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kPoisson;

  // kDiurnal: lambda(t) = base * (1 + amplitude * sin(2*pi*(t - phase)/period)).
  double amplitude = 0.0;  ///< relative swing, in [0, 1] so lambda(t) >= 0
  double period = 0.0;     ///< cycle length in model time units (> 0)
  double phase = 0.0;      ///< time offset of the cycle start

  // kFlashCrowd: lambda(t) = base * boost while t lies inside one of
  // `pulses` windows [t0 + n*interval, t0 + n*interval + width), else base.
  double t0 = 0.0;       ///< start of the first pulse (>= 0)
  double width = 0.0;    ///< pulse duration (> 0)
  double boost = 1.0;    ///< rate multiplier inside a pulse (>= 1)
  double interval = 0.0; ///< pulse spacing; 0 with pulses == 1 means one pulse
  unsigned pulses = 1;   ///< number of pulses (>= 1)

  /// True when this is the plain homogeneous Poisson process (the
  /// pre-demand-model default). Consumers gate every new code path —
  /// especially new RNG draws — behind !homogeneous().
  [[nodiscard]] bool homogeneous() const { return kind == ArrivalKind::kPoisson; }

  /// Instantaneous arrival rate lambda(t) for a given base rate.
  [[nodiscard]] double rate_at(double base, double t) const;

  /// A tight upper envelope max_t lambda(t), used by thinning samplers.
  [[nodiscard]] double peak_rate(double base) const;

  /// Analytic time average of lambda over [a, b] (a < b), used by
  /// Little's-law readouts on time-varying scenarios.
  [[nodiscard]] double mean_rate(double base, double a, double b) const;

  /// Throws btmf::ConfigError on out-of-domain parameters (NaN, negative
  /// rates, amplitude > 1, boost < 1, pulses == 0, ...).
  void validate() const;
};

/// One bandwidth class: a fraction of the arriving population whose
/// upload rate is `upload_scale * mu` and whose download rate is capped
/// at `download_cap` (0 = uncapped). Weights are relative and need not
/// sum to 1; they are normalised at the point of use.
struct BandwidthClass {
  double weight = 1.0;        ///< relative population share (> 0)
  double upload_scale = 1.0;  ///< multiplier on the fluid mu (> 0)
  double download_cap = 0.0;  ///< absolute download rate cap; 0 = unlimited
};

/// Validates a class vector (possibly empty = homogeneous).
void validate_classes(const std::vector<BandwidthClass>& classes);

/// Sum of class weights (0 for an empty vector).
[[nodiscard]] double total_weight(const std::vector<BandwidthClass>& classes);

// Canonical text forms, shared by the spec fingerprint, the wire codec,
// and the CLI so all three agree on one grammar:
//   arrival: "poisson" | "diurnal,<amp>,<period>,<phase>"
//            | "flash,<t0>,<width>,<boost>,<interval>,<pulses>"
//   classes: "<weight>,<upload_scale>,<download_cap>|..." ('|'-separated)
// Doubles use util::format_double_exact so the round trip is exact.
[[nodiscard]] std::string format_arrival(const ArrivalProcess& arrival);
[[nodiscard]] std::string format_classes(const std::vector<BandwidthClass>& classes);

/// Parses format_arrival's grammar. Throws btmf::ConfigError on unknown
/// kinds, wrong arity, or non-numeric fields; the result is validated.
[[nodiscard]] ArrivalProcess parse_arrival(std::string_view text);

/// Parses format_classes's grammar ("" = empty / homogeneous). Throws
/// btmf::ConfigError on malformed entries; the result is validated.
[[nodiscard]] std::vector<BandwidthClass> parse_classes(std::string_view text);

}  // namespace btmf::fluid
