// Multi-File torrent Concurrent Downloading — paper Sec. 3.4.
//
// A peer that selected i of the K files inside one torrent behaves as i
// virtual peers, each with bandwidth mu/i, one per subtorrent. The paper
// shows this is equivalent to MTCD in the fluid model (the only behavioural
// difference — virtual peers departing together — does not change the mean
// seed residence 1/gamma), so MFCD reuses the MTCD closed form with the
// per-subtorrent entry rates of the correlation model.
#pragma once

#include "btmf/fluid/correlation.h"
#include "btmf/fluid/mtcd.h"

namespace btmf::fluid {

/// Steady state of one subtorrent under MFCD; metrics are per class.
MtcdEquilibrium mfcd_equilibrium(const FluidParams& params,
                                 const CorrelationModel& correlation);

/// The MFCD download time per file (the factor A of eq. (2) with
/// binomial per-subtorrent rates), in closed form:
///   A = (gamma - (mu / (K p)) (1 - (1-p)^K)) / (gamma mu eta).
double mfcd_download_time_per_file(const FluidParams& params,
                                   const CorrelationModel& correlation);

}  // namespace btmf::fluid
