// Multi-Torrent Sequential Downloading — paper Sec. 3.3, eqs. (3)/(4).
//
// A user requesting i files enters one torrent at a time with its full
// bandwidth, so every torrent behaves as an independent Qiu–Srikant system
// and the per-torrent download time T = (gamma - mu)/(gamma mu eta) does
// not depend on the arrival rate at all. A class-i user pays i complete
// download-and-seed cycles:  T_i = i (T + 1/gamma).
//
// (The paper has each sequential download followed by a seeding residence
// of mean 1/gamma before the next file starts — eq. (4) multiplies the
// whole cycle by i.)
#pragma once

#include "btmf/fluid/metrics.h"
#include "btmf/fluid/params.h"

namespace btmf::fluid {

struct MtsdResult {
  double download_time_per_file = 0.0;  ///< T, identical for every class
  double online_time_per_file = 0.0;    ///< T + 1/gamma, identical too
  PerClassMetrics metrics;              ///< T_i = i (T + 1/gamma)
};

/// Closed-form MTSD metrics for classes 1..K. Throws btmf::ConfigError
/// when gamma <= mu (no stable upload-constrained equilibrium).
MtsdResult mtsd_metrics(const FluidParams& params, unsigned num_classes);

}  // namespace btmf::fluid
