// The paper's binomial file-correlation model (Sec. 4.1).
//
// A visitor to the indexing web server (rate lambda0) requests each of the
// K published files independently with probability p. Users requesting
// exactly i files therefore enter the *system* at rate
//     L_i = lambda0 * C(K, i) * p^i * (1-p)^(K-i),
// and, by symmetry, class-i peers enter a *particular* torrent j at rate
//     lambda_j^i = lambda0 * C(K-1, i-1) * p^i * (1-p)^(K-i)
// (each class-i user joins torrent j with probability i/K, and
// C(K,i) * i / K = C(K-1, i-1)).
//
// Two closed-form identities drive the MTCD/MFCD formulas and are verified
// by tests:
//     sum_l lambda_j^l        = lambda0 * p
//     sum_l lambda_j^l / l    = (lambda0 / K) * (1 - (1-p)^K)
#pragma once

#include <vector>

namespace btmf::fluid {

class CorrelationModel {
 public:
  /// K >= 1 files, correlation p in [0, 1], server visit rate lambda0 > 0.
  CorrelationModel(unsigned num_files, double correlation, double visit_rate);

  [[nodiscard]] unsigned num_files() const { return num_files_; }
  [[nodiscard]] double correlation() const { return p_; }
  [[nodiscard]] double visit_rate() const { return lambda0_; }

  /// L_i — system-wide entry rate of users requesting exactly i files
  /// (i in [1, K]; i = 0 visitors never enter any torrent).
  [[nodiscard]] double system_entry_rate(unsigned i) const;

  /// lambda_j^i — entry rate of class-i peers into one given torrent.
  [[nodiscard]] double per_torrent_entry_rate(unsigned i) const;

  /// {L_1, ..., L_K} as a vector (index 0 holds class 1).
  [[nodiscard]] std::vector<double> system_entry_rates() const;

  /// {lambda_j^1, ..., lambda_j^K} as a vector (index 0 holds class 1).
  [[nodiscard]] std::vector<double> per_torrent_entry_rates() const;

  /// sum_l lambda_j^l = lambda0 * p (total peer arrival rate per torrent).
  [[nodiscard]] double per_torrent_total_rate() const;

  /// sum_l lambda_j^l / l = (lambda0/K) (1 - (1-p)^K).
  [[nodiscard]] double per_torrent_weighted_rate() const;

  /// sum_i L_i = lambda0 (1 - (1-p)^K) — rate of users entering anything.
  [[nodiscard]] double system_user_rate() const;

  /// sum_i i L_i = lambda0 * K * p — total file-request rate.
  [[nodiscard]] double system_file_request_rate() const;

 private:
  unsigned num_files_;
  double p_;
  double lambda0_;
};

}  // namespace btmf::fluid
