// Fluid-model parameters (Table 1 of the paper).
//
// All rates are "files per unit time": a peer's upload bandwidth mu is the
// rate at which a seed can push one full file; the seed departure rate
// gamma gives a mean seeding residence of 1/gamma. The paper's evaluation
// constants are mu = 0.02, eta = 0.5, gamma = 0.05 (Sec. 4), which make
// the single-torrent download time (gamma - mu) / (gamma * mu * eta) = 60.
#pragma once

namespace btmf::fluid {

struct FluidParams {
  double mu = 0.02;    ///< peer upload bandwidth (file/unit time)
  double eta = 0.5;    ///< downloader-to-downloader sharing efficiency
  double gamma = 0.05; ///< seed departure rate (1/mean seeding time)

  /// Throws btmf::ConfigError unless 0 < mu, 0 < eta <= 1, 0 < gamma.
  void validate() const;

  /// True when the upload-constrained single-torrent model has a
  /// non-negative downloader population (requires gamma > mu; see the
  /// derivation of T = (gamma - mu)/(gamma mu eta) in Sec. 3.3).
  [[nodiscard]] bool single_torrent_stable() const { return gamma > mu; }
};

/// The exact constants used throughout the paper's Section 4 evaluation.
inline constexpr FluidParams kPaperParams{0.02, 0.5, 0.05};

/// The number of files/torrents used in every figure of the paper.
inline constexpr unsigned kPaperNumFiles = 10;

}  // namespace btmf::fluid
