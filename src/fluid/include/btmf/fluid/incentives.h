// Incentive analysis of CMFSD (extension).
//
// Sec. 4.3 of the paper observes that a peer can gain by pretending to be
// a single-file peer (equivalently pinning rho = 1) and that this
// "recursively aggravates" once others notice. This module makes the
// incentive quantitative with a tagged-peer (measure-zero deviator)
// calculation:
//
// Fix the population at a common bandwidth ratio rho_bar and solve the
// CMFSD steady state, which determines the pool rate
//     PR = mu (D + Y) / X
// every downloader receives. A single deviating class-i peer with its
// own ratio rho_d does not perturb the pool, so its expected download
// time is the sum of its stage times:
//     D_dev(i; rho_d) = 1/(eta mu + PR) + (i - 1)/(eta mu rho_d + PR)
// (stage 1 always plays full TFT; later stages trade TFT for donation).
// dD_dev/d rho_d < 0, so rho_d = 1 is a *dominant strategy* — CMFSD is a
// social dilemma: the social optimum rho_bar = 0 maximises everyone's
// welfare, but each peer privately gains by defecting. The functions
// below expose the temptation (obedient vs defector download time), the
// social cost of universal defection, and the per-class gap table the
// incentive bench prints; the Adapt mechanism is the paper's proposed
// mitigation, evaluated in adapt_ablation / adapt_fixed_point.
#pragma once

#include <vector>

#include "btmf/fluid/cmfsd.h"
#include "btmf/fluid/params.h"

namespace btmf::fluid {

struct IncentiveReport {
  double population_rho = 0.0;   ///< rho_bar everyone else plays
  double pool_rate = 0.0;        ///< PR at the population equilibrium

  /// Download time of a class-(index+1) peer that *conforms* (rho_bar).
  std::vector<double> conforming_download;
  /// Download time of a class-(index+1) deviator playing rho_d = 1.
  std::vector<double> defecting_download;
  /// Relative gain from defection, (conforming - defecting)/conforming.
  std::vector<double> temptation;
};

/// Tagged-peer download time for an arbitrary own rho against a
/// population equilibrium `eq` of `model`. `peer_class` is 1-based.
double tagged_peer_download_time(const CmfsdModel& model,
                                 const CmfsdEquilibrium& eq,
                                 unsigned peer_class, double own_rho);

/// Full conform-vs-defect table at population ratio rho_bar.
IncentiveReport cmfsd_incentives(const FluidParams& params,
                                 const std::vector<double>& class_rates,
                                 double population_rho);

}  // namespace btmf::fluid
