// Per-class performance metrics shared by all scheme models.
//
// The paper's headline metric is the *average online time per file*
// (Sec. 4.2.1): total online time accumulated by all peers per unit time,
// divided by the total number of files requested per unit time. With
// class-i users arriving at rate L_i and spending T_i online, that is
//     sum_i L_i T_i / sum_i i L_i.
#pragma once

#include <span>
#include <vector>

namespace btmf::fluid {

/// Index convention: element k describes class k+1 (users requesting k+1
/// files). A class with zero entry rate carries quiet-NaN metrics and is
/// excluded from the weighted averages.
struct PerClassMetrics {
  std::vector<double> online_time;        ///< T_i
  std::vector<double> download_time;      ///< D_i = T_i - seeding time
  std::vector<double> online_per_file;    ///< T_i / i
  std::vector<double> download_per_file;  ///< D_i / i

  [[nodiscard]] std::size_t num_classes() const { return online_time.size(); }
};

/// Builds the per-file columns from T_i and D_i.
PerClassMetrics make_per_class_metrics(std::vector<double> online_time,
                                       std::vector<double> download_time);

/// sum_i L_i T_i / sum_i i L_i; NaN entries (zero-rate classes) skipped.
double average_online_time_per_file(const PerClassMetrics& metrics,
                                    std::span<const double> class_rates);

/// sum_i L_i D_i / sum_i i L_i.
double average_download_time_per_file(const PerClassMetrics& metrics,
                                      std::span<const double> class_rates);

/// sum_i L_i T_i / sum_i L_i — mean online time per *user*.
double average_online_time_per_user(const PerClassMetrics& metrics,
                                    std::span<const double> class_rates);

}  // namespace btmf::fluid
