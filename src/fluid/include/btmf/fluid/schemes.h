// Taxonomy of the paper's four downloading schemes.
#pragma once

#include <string_view>

namespace btmf::fluid {

enum class SchemeKind {
  kMtcd,   ///< multi-torrent concurrent downloading (Sec. 3.2)
  kMtsd,   ///< multi-torrent sequential downloading (Sec. 3.3)
  kMfcd,   ///< multi-file torrent concurrent downloading (Sec. 3.4)
  kCmfsd,  ///< collaborative multi-file torrent sequential dl. (Sec. 3.5)
};

constexpr std::string_view to_string(SchemeKind scheme) {
  switch (scheme) {
    case SchemeKind::kMtcd:
      return "MTCD";
    case SchemeKind::kMtsd:
      return "MTSD";
    case SchemeKind::kMfcd:
      return "MFCD";
    case SchemeKind::kCmfsd:
      return "CMFSD";
  }
  return "?";
}

/// Inverse of to_string, case-insensitive ("mtcd" == "MTCD"). Throws
/// btmf::ConfigError naming the accepted spellings on anything else.
SchemeKind scheme_from_string(std::string_view name);

}  // namespace btmf::fluid
