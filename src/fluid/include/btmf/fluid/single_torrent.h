// The Qiu–Srikant single-torrent fluid model (Sec. 2, eqs. on p.2),
// restricted as in the paper to the upload-constrained regime:
//     dx/dt = lambda - mu (eta x + y)
//     dy/dt = mu (eta x + y) - gamma y
//
// Steady state: y* = lambda / gamma, x* = lambda (gamma - mu) / (gamma mu
// eta), download time T = x*/lambda = (gamma - mu)/(gamma mu eta), valid
// for gamma > mu. This is both the MTSD building block and the K = 1
// degenerate case every multi-file model must reduce to (Sec. 3.3).
#pragma once

#include "btmf/fluid/demand.h"
#include "btmf/fluid/params.h"
#include "btmf/math/ode.h"

namespace btmf::fluid {

struct SingleTorrentEquilibrium {
  double downloaders = 0.0;   ///< x*
  double seeds = 0.0;         ///< y*
  double download_time = 0.0; ///< T = x*/lambda (Little's law)
  double online_time = 0.0;   ///< T + 1/gamma
};

/// Closed-form steady state; throws btmf::ConfigError when gamma <= mu
/// (the upload-constrained model has no meaningful equilibrium there).
SingleTorrentEquilibrium single_torrent_equilibrium(const FluidParams& params,
                                                    double entry_rate);

/// The 2-state ODE right-hand side, state = {x, y}. Used by tests to show
/// the transient converges to the closed form.
math::OdeRhs single_torrent_rhs(const FluidParams& params, double entry_rate);

/// As above, but with the entry rate modulated in time by an
/// ArrivalProcess: lambda(t) = arrival.rate_at(entry_rate, t). With a
/// homogeneous process this returns exactly the autonomous RHS.
math::OdeRhs single_torrent_rhs(const FluidParams& params, double entry_rate,
                                const ArrivalProcess& arrival);

/// Download time T = (gamma - mu)/(gamma mu eta); the rate-independent core
/// of the MTSD analysis. Throws btmf::ConfigError when gamma <= mu.
double single_torrent_download_time(const FluidParams& params);

}  // namespace btmf::fluid
