// Heterogeneous file popularity (extension).
//
// The paper's correlation model gives every file the same request
// probability p; real catalogues are skewed (a pilot episode is hotter
// than a finale, one movie in a franchise dominates). The paper lists
// "measure in what scale the files are correlated" as future work; this
// module supplies the analysis side: each file f has its own request
// probability p_f, a visitor requests file f independently with p_f, and
// the class populations follow the Poisson-binomial law.
//
// Rates:
//   L_i        = lambda0 * PB(p_1..p_K)[i]                 (system class i)
//   lambda_j^i = lambda0 * p_j * PB(p without j)[i-1]      (torrent j)
//
// Under MTCD/MFCD the per-torrent factor A_j of eq. (2) now differs per
// torrent; the system download time per file is the popularity-weighted
// mean of A_j, and the average online time per file keeps the paper's
// structure D + (1/gamma) * (sum L_i / sum i L_i). Under CMFSD (global
// pool) only the class rates matter, so CmfsdModel works unchanged with
// the Poisson-binomial rates.
#pragma once

#include <span>
#include <vector>

#include "btmf/fluid/params.h"

namespace btmf::fluid {

class HeterogeneousCatalog {
 public:
  /// `request_probs[f]` is file f's request probability; visit_rate is
  /// the indexing-server arrival rate lambda0.
  HeterogeneousCatalog(std::vector<double> request_probs, double visit_rate);

  [[nodiscard]] unsigned num_files() const {
    return static_cast<unsigned>(probs_.size());
  }
  [[nodiscard]] const std::vector<double>& request_probs() const {
    return probs_;
  }
  [[nodiscard]] double visit_rate() const { return lambda0_; }

  /// {L_1, ..., L_K} (index 0 = class 1).
  [[nodiscard]] std::vector<double> system_class_rates() const;

  /// {lambda_j^1, ..., lambda_j^K} for torrent j (0-based file index).
  [[nodiscard]] std::vector<double> torrent_class_rates(unsigned file) const;

  /// A Zipf(s) popularity profile scaled to the given mean request
  /// probability (so different skews carry the same total demand
  /// lambda0 * K * mean_p); probabilities are clamped to <= 1.
  static std::vector<double> zipf_profile(unsigned num_files, double skew,
                                          double mean_p);

 private:
  std::vector<double> probs_;
  double lambda0_;
};

/// Per-torrent MTCD/MFCD equilibrium factors under a skewed catalogue.
struct HeteroMtcdReport {
  std::vector<double> per_torrent_factor;  ///< A_j for each torrent
  double avg_download_per_file = 0.0;  ///< popularity-weighted mean A_j
  double avg_online_per_file = 0.0;    ///< + (1/gamma) sum L_i / sum i L_i
};

HeteroMtcdReport hetero_mtcd_report(const FluidParams& params,
                                    const HeterogeneousCatalog& catalog);

}  // namespace btmf::fluid
