// Multi-Torrent Concurrent Downloading — the paper's fluid model (1) and
// closed form (2), Sec. 3.2.
//
// A user requesting i files runs one peer in each of its i torrents and
// splits bandwidth evenly, so its per-torrent upload is mu/i. Within one
// torrent the class-i downloader population x^i and seed population y^i
// evolve as
//   dx_i/dt = lambda_i - eta (mu/i) x_i - share_i * sum_l (mu/l) y_l
//   dy_i/dt = eta (mu/i) x_i + share_i * sum_l (mu/l) y_l - gamma y_i
// with share_i = (x_i/i) / sum_l (x_l/l) — seeds serve downloaders in
// proportion to their (bandwidth-split) download capability.
//
// Closed-form steady state (paper eq. (2)):
//   y_i = lambda_i / gamma,   x_i = i * lambda_i * A,
//   A = (gamma sum_l lambda_l - mu sum_l lambda_l / l)
//       / (gamma mu eta sum_l lambda_l)
// so T_i = i A + 1/gamma: online time grows linearly in the number of
// files requested, with the same per-file factor A for every class.
#pragma once

#include <span>
#include <vector>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/metrics.h"
#include "btmf/fluid/params.h"
#include "btmf/math/ode.h"

namespace btmf::fluid {

struct MtcdEquilibrium {
  std::vector<double> downloaders;  ///< x^i in one torrent (index 0 = class 1)
  std::vector<double> seeds;        ///< y^i in one torrent
  double per_file_factor = 0.0;     ///< A — download time per file
  PerClassMetrics metrics;          ///< T_i = iA + 1/gamma, D_i = iA
};

/// Closed-form steady state for one torrent given per-torrent class entry
/// rates {lambda^1, ..., lambda^K} (index 0 = class 1). Throws
/// btmf::ConfigError if all rates are zero or if the equilibrium would
/// have a negative downloader population (infeasible parameters).
MtcdEquilibrium mtcd_equilibrium(const FluidParams& params,
                                 std::span<const double> class_entry_rates);

/// The 2K-state ODE right-hand side for one torrent; state layout is
/// {x^1..x^K, y^1..y^K}. The seed-service share is defined as 0 when no
/// downloaders are present (the 0/0 limit of the share expression).
math::OdeRhs mtcd_rhs(const FluidParams& params,
                      std::vector<double> class_entry_rates);

/// As above, but with the class entry rates modulated in time by an
/// ArrivalProcess: lambda_i(t) = arrival.rate_at(lambda_i, t). With a
/// homogeneous process this returns exactly the autonomous RHS.
math::OdeRhs mtcd_rhs(const FluidParams& params,
                      std::vector<double> class_entry_rates,
                      const ArrivalProcess& arrival);

/// Just the per-file factor A of eq. (2).
double mtcd_per_file_factor(const FluidParams& params,
                            std::span<const double> class_entry_rates);

}  // namespace btmf::fluid
