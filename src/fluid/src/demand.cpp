#include "btmf/fluid/demand.h"

#include <algorithm>
#include <cmath>

#include "btmf/util/check.h"
#include "btmf/util/strings.h"

namespace btmf::fluid {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

bool finite(double v) { return std::isfinite(v); }

}  // namespace

std::string_view to_string(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kFlashCrowd:
      return "flash";
  }
  return "?";
}

double ArrivalProcess::rate_at(double base, double t) const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base;
    case ArrivalKind::kDiurnal:
      return base * (1.0 + amplitude * std::sin(kTwoPi * (t - phase) / period));
    case ArrivalKind::kFlashCrowd: {
      if (t < t0) return base;
      const double since = t - t0;
      // Pulse n covers [n*interval, n*interval + width) relative to t0.
      const double step = interval > 0.0 ? interval : width;
      const double n = std::floor(since / step);
      if (n >= static_cast<double>(pulses)) return base;
      return since - n * step < width ? base * boost : base;
    }
  }
  return base;
}

double ArrivalProcess::peak_rate(double base) const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base;
    case ArrivalKind::kDiurnal:
      return base * (1.0 + amplitude);
    case ArrivalKind::kFlashCrowd:
      return base * boost;
  }
  return base;
}

double ArrivalProcess::mean_rate(double base, double a, double b) const {
  BTMF_CHECK_MSG(b > a, "mean_rate needs a window with b > a");
  switch (kind) {
    case ArrivalKind::kPoisson:
      return base;
    case ArrivalKind::kDiurnal: {
      // Integral of sin(w(t - phase)) over [a, b] is
      // (cos(w(a - phase)) - cos(w(b - phase))) / w.
      const double w = kTwoPi / period;
      const double integral =
          (std::cos(w * (a - phase)) - std::cos(w * (b - phase))) / w;
      return base * (1.0 + amplitude * integral / (b - a));
    }
    case ArrivalKind::kFlashCrowd: {
      // Sum the overlap of [a, b] with each pulse window exactly.
      const double step = interval > 0.0 ? interval : width;
      double boosted = 0.0;
      for (unsigned n = 0; n < pulses; ++n) {
        const double lo = t0 + static_cast<double>(n) * step;
        const double hi = lo + width;
        if (lo >= b) break;
        boosted += std::max(0.0, std::min(b, hi) - std::max(a, lo));
      }
      return base * (1.0 + (boost - 1.0) * boosted / (b - a));
    }
  }
  return base;
}

void ArrivalProcess::validate() const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return;
    case ArrivalKind::kDiurnal:
      BTMF_CHECK_MSG(finite(amplitude) && amplitude >= 0.0 && amplitude <= 1.0,
                     "diurnal amplitude must lie in [0, 1]");
      BTMF_CHECK_MSG(finite(period) && period > 0.0,
                     "diurnal period must be positive");
      BTMF_CHECK_MSG(finite(phase), "diurnal phase must be finite");
      return;
    case ArrivalKind::kFlashCrowd:
      BTMF_CHECK_MSG(finite(t0) && t0 >= 0.0, "flash t0 must be >= 0");
      BTMF_CHECK_MSG(finite(width) && width > 0.0,
                     "flash pulse width must be positive");
      BTMF_CHECK_MSG(finite(boost) && boost >= 1.0, "flash boost must be >= 1");
      BTMF_CHECK_MSG(pulses >= 1, "flash pulse count must be >= 1");
      BTMF_CHECK_MSG(finite(interval) && interval >= 0.0,
                     "flash interval must be >= 0");
      BTMF_CHECK_MSG(pulses == 1 || interval >= width,
                     "flash interval must be >= width when pulses > 1");
      return;
  }
  BTMF_CHECK_MSG(false, "unknown arrival kind");
}

void validate_classes(const std::vector<BandwidthClass>& classes) {
  for (const BandwidthClass& cls : classes) {
    BTMF_CHECK_MSG(finite(cls.weight) && cls.weight > 0.0,
                   "bandwidth class weight must be positive");
    BTMF_CHECK_MSG(finite(cls.upload_scale) && cls.upload_scale > 0.0,
                   "bandwidth class upload scale must be positive");
    BTMF_CHECK_MSG(finite(cls.download_cap) && cls.download_cap >= 0.0,
                   "bandwidth class download cap must be >= 0 (0 = unlimited)");
  }
}

double total_weight(const std::vector<BandwidthClass>& classes) {
  double sum = 0.0;
  for (const BandwidthClass& cls : classes) sum += cls.weight;
  return sum;
}

std::string format_arrival(const ArrivalProcess& arrival) {
  const auto exact = util::format_double_exact;
  switch (arrival.kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal," + exact(arrival.amplitude) + "," +
             exact(arrival.period) + "," + exact(arrival.phase);
    case ArrivalKind::kFlashCrowd:
      return "flash," + exact(arrival.t0) + "," + exact(arrival.width) + "," +
             exact(arrival.boost) + "," + exact(arrival.interval) + "," +
             std::to_string(arrival.pulses);
  }
  return "poisson";
}

std::string format_classes(const std::vector<BandwidthClass>& classes) {
  const auto exact = util::format_double_exact;
  std::string out;
  for (const BandwidthClass& cls : classes) {
    if (!out.empty()) out += '|';
    out += exact(cls.weight) + "," + exact(cls.upload_scale) + "," +
           exact(cls.download_cap);
  }
  return out;
}

ArrivalProcess parse_arrival(std::string_view text) {
  const std::vector<std::string> parts = util::split(text, ',');
  BTMF_CHECK_MSG(!parts.empty() && !parts[0].empty(),
                 "arrival process must name a kind");
  ArrivalProcess arrival;
  const std::string& kind = parts[0];
  if (kind == "poisson") {
    BTMF_CHECK_MSG(parts.size() == 1, "arrival 'poisson' takes no parameters");
    arrival.kind = ArrivalKind::kPoisson;
  } else if (kind == "diurnal") {
    BTMF_CHECK_MSG(parts.size() == 4,
                   "arrival 'diurnal' needs amplitude,period,phase");
    arrival.kind = ArrivalKind::kDiurnal;
    arrival.amplitude = util::parse_double(parts[1], "diurnal amplitude");
    arrival.period = util::parse_double(parts[2], "diurnal period");
    arrival.phase = util::parse_double(parts[3], "diurnal phase");
  } else if (kind == "flash") {
    BTMF_CHECK_MSG(parts.size() == 6,
                   "arrival 'flash' needs t0,width,boost,interval,pulses");
    arrival.kind = ArrivalKind::kFlashCrowd;
    arrival.t0 = util::parse_double(parts[1], "flash t0");
    arrival.width = util::parse_double(parts[2], "flash width");
    arrival.boost = util::parse_double(parts[3], "flash boost");
    arrival.interval = util::parse_double(parts[4], "flash interval");
    const long long pulses = util::parse_int(parts[5], "flash pulses");
    BTMF_CHECK_MSG(pulses >= 1 && pulses <= 1000000,
                   "flash pulses must lie in [1, 1e6]");
    arrival.pulses = static_cast<unsigned>(pulses);
  } else {
    BTMF_CHECK_MSG(false, "unknown arrival kind '" + kind +
                              "' (want poisson|diurnal|flash)");
  }
  arrival.validate();
  return arrival;
}

std::vector<BandwidthClass> parse_classes(std::string_view text) {
  std::vector<BandwidthClass> classes;
  if (text.empty()) return classes;
  for (const std::string& entry : util::split(text, '|')) {
    const std::vector<std::string> parts = util::split(entry, ',');
    BTMF_CHECK_MSG(parts.size() == 3,
                   "bandwidth class needs weight,upload_scale,download_cap");
    BandwidthClass cls;
    cls.weight = util::parse_double(parts[0], "class weight");
    cls.upload_scale = util::parse_double(parts[1], "class upload scale");
    cls.download_cap = util::parse_double(parts[2], "class download cap");
    classes.push_back(cls);
  }
  validate_classes(classes);
  return classes;
}

}  // namespace btmf::fluid
