#include "btmf/fluid/metrics.h"

#include <cmath>
#include <limits>

#include "btmf/util/check.h"

namespace btmf::fluid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

double weighted_ratio(const std::vector<double>& values,
                      std::span<const double> class_rates,
                      bool per_file_denominator) {
  BTMF_CHECK_MSG(values.size() == class_rates.size(),
                 "metrics/class-rate size mismatch");
  double numerator = 0.0;
  double denominator = 0.0;
  for (std::size_t k = 0; k < values.size(); ++k) {
    const double rate = class_rates[k];
    if (rate <= 0.0 || std::isnan(values[k])) continue;
    const double files = static_cast<double>(k + 1);
    numerator += rate * values[k];
    denominator += per_file_denominator ? rate * files : rate;
  }
  return denominator > 0.0 ? numerator / denominator : kNaN;
}

}  // namespace

PerClassMetrics make_per_class_metrics(std::vector<double> online_time,
                                       std::vector<double> download_time) {
  BTMF_CHECK_MSG(online_time.size() == download_time.size(),
                 "online/download metric size mismatch");
  PerClassMetrics m;
  m.online_time = std::move(online_time);
  m.download_time = std::move(download_time);
  m.online_per_file.resize(m.online_time.size());
  m.download_per_file.resize(m.online_time.size());
  for (std::size_t k = 0; k < m.online_time.size(); ++k) {
    const double files = static_cast<double>(k + 1);
    m.online_per_file[k] = m.online_time[k] / files;
    m.download_per_file[k] = m.download_time[k] / files;
  }
  return m;
}

double average_online_time_per_file(const PerClassMetrics& metrics,
                                    std::span<const double> class_rates) {
  return weighted_ratio(metrics.online_time, class_rates,
                        /*per_file_denominator=*/true);
}

double average_download_time_per_file(const PerClassMetrics& metrics,
                                      std::span<const double> class_rates) {
  return weighted_ratio(metrics.download_time, class_rates,
                        /*per_file_denominator=*/true);
}

double average_online_time_per_user(const PerClassMetrics& metrics,
                                    std::span<const double> class_rates) {
  return weighted_ratio(metrics.online_time, class_rates,
                        /*per_file_denominator=*/false);
}

}  // namespace btmf::fluid
