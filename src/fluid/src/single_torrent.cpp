#include "btmf/fluid/single_torrent.h"

#include "btmf/util/check.h"

namespace btmf::fluid {

double single_torrent_download_time(const FluidParams& params) {
  params.validate();
  BTMF_CHECK_MSG(params.single_torrent_stable(),
                 "single-torrent model requires gamma > mu (otherwise the "
                 "seeds alone satisfy all demand and the upload-constrained "
                 "closed form does not apply)");
  return (params.gamma - params.mu) / (params.gamma * params.mu * params.eta);
}

SingleTorrentEquilibrium single_torrent_equilibrium(const FluidParams& params,
                                                    double entry_rate) {
  BTMF_CHECK_MSG(entry_rate > 0.0, "entry rate must be positive");
  const double t_download = single_torrent_download_time(params);
  SingleTorrentEquilibrium eq;
  eq.seeds = entry_rate / params.gamma;
  eq.downloaders = entry_rate * t_download;
  eq.download_time = t_download;
  eq.online_time = t_download + 1.0 / params.gamma;
  return eq;
}

math::OdeRhs single_torrent_rhs(const FluidParams& params, double entry_rate) {
  params.validate();
  BTMF_CHECK_MSG(entry_rate >= 0.0, "entry rate must be non-negative");
  return [params, entry_rate](double /*t*/, std::span<const double> y,
                              std::span<double> dydt) {
    BTMF_ASSERT(y.size() == 2 && dydt.size() == 2);
    const double x = y[0];
    const double s = y[1];
    const double service = params.mu * (params.eta * x + s);
    dydt[0] = entry_rate - service;
    dydt[1] = service - params.gamma * s;
  };
}

math::OdeRhs single_torrent_rhs(const FluidParams& params, double entry_rate,
                                const ArrivalProcess& arrival) {
  arrival.validate();
  math::OdeRhs base = single_torrent_rhs(params, entry_rate);
  if (arrival.homogeneous()) return base;
  return [base = std::move(base), entry_rate, arrival](
             double t, std::span<const double> y, std::span<double> dydt) {
    base(t, y, dydt);
    dydt[0] += (arrival.rate_at(1.0, t) - 1.0) * entry_rate;
  };
}

}  // namespace btmf::fluid
