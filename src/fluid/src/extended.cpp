#include "btmf/fluid/extended.h"

#include <algorithm>
#include <cmath>

#include "btmf/math/roots.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::fluid {

void ExtendedParams::validate() const {
  base.validate();
  BTMF_CHECK_MSG(download_bw > 0.0, "download bandwidth must be positive");
  BTMF_CHECK_MSG(abort_rate >= 0.0, "abort rate must be non-negative");
}

double critical_download_bandwidth(const FluidParams& params) {
  params.validate();
  BTMF_CHECK_MSG(params.single_torrent_stable(),
                 "c* exists only for gamma > mu; for gamma <= mu the swarm "
                 "is download-constrained at every finite c");
  return params.gamma * params.mu * params.eta / (params.gamma - params.mu);
}

ExtendedEquilibrium extended_single_torrent_equilibrium(
    const ExtendedParams& params, double entry_rate) {
  params.validate();
  BTMF_CHECK_MSG(entry_rate > 0.0, "entry rate must be positive");
  const FluidParams& fp = params.base;
  const double theta = params.abort_rate;
  const double c = params.download_bw;

  const bool gamma_stable = fp.single_torrent_stable();
  const bool upload_constrained =
      gamma_stable && (std::isinf(c) || c >= critical_download_bandwidth(fp));

  ExtendedEquilibrium eq;
  if (upload_constrained) {
    // Per-peer completion rate r = gamma mu eta / (gamma - mu).
    const double r = fp.gamma * fp.mu * fp.eta / (fp.gamma - fp.mu);
    eq.download_time = 1.0 / r;
    // Balance: lambda = theta x + r x  (completion throughput r x), and
    // y = (mu eta / (gamma - mu)) x.
    eq.downloaders = entry_rate / (theta + r);
    eq.seeds = fp.mu * fp.eta / (fp.gamma - fp.mu) * eq.downloaders;
    eq.download_constrained = false;
  } else {
    BTMF_CHECK_MSG(std::isfinite(c),
                   "gamma <= mu with unbounded download bandwidth has no "
                   "meaningful upload-constrained equilibrium");
    eq.download_time = 1.0 / c;
    eq.downloaders = entry_rate / (theta + c);
    eq.seeds = c * eq.downloaders / fp.gamma;
    eq.download_constrained = true;
  }
  eq.online_time = eq.download_time + 1.0 / fp.gamma;
  eq.completion_fraction =
      1.0 - theta * eq.downloaders / entry_rate;
  return eq;
}

ExtendedEquilibrium abort_aware_single_torrent_equilibrium(
    const ExtendedParams& params, double entry_rate) {
  params.validate();
  BTMF_CHECK_MSG(entry_rate > 0.0, "entry rate must be positive");
  const FluidParams& fp = params.base;
  const double theta = params.abort_rate;
  if (theta == 0.0) {
    // No wasted work without aborts; the regimes coincide.
    return extended_single_torrent_equilibrium(params, entry_rate);
  }

  // Self-consistent per-peer rate in the upload-constrained regime:
  //   r = mu eta + (mu theta / gamma) q / (1 - q),  q = exp(-theta / r).
  const auto residual = [&](double r) {
    const double q = std::exp(-theta / r);
    return fp.mu * fp.eta + fp.mu * theta / fp.gamma * q / (1.0 - q) - r;
  };

  double r = 0.0;
  bool download_constrained = false;
  if (!fp.single_torrent_stable()) {
    // gamma <= mu: seeds pile up and only a finite download bandwidth
    // pins the rate.
    BTMF_CHECK_MSG(std::isfinite(params.download_bw),
                   "gamma <= mu with unbounded download bandwidth has no "
                   "meaningful abort-aware equilibrium");
    r = params.download_bw;
    download_constrained = true;
  } else {
    // r is at least the pure-TFT rate and at most the
    // transferable-progress rate (wasted work can only slow things down).
    const double r_lo = fp.mu * fp.eta * (1.0 + 1e-12);
    double r_hi = fp.gamma * fp.mu * fp.eta / (fp.gamma - fp.mu);
    while (residual(r_hi) > 0.0) r_hi *= 2.0;  // safety margin
    r = math::brent_root(residual, r_lo, r_hi);
    if (std::isfinite(params.download_bw) && params.download_bw < r) {
      r = params.download_bw;
      download_constrained = true;
    }
  }

  const double q = std::exp(-theta / r);
  ExtendedEquilibrium eq;
  eq.download_time = 1.0 / r;
  eq.completion_fraction = q;
  eq.downloaders = entry_rate * (1.0 - q) / theta;
  eq.seeds = entry_rate * q / fp.gamma;
  eq.online_time = eq.download_time + 1.0 / fp.gamma;
  eq.download_constrained = download_constrained;
  return eq;
}

math::OdeRhs extended_single_torrent_rhs(const ExtendedParams& params,
                                         double entry_rate) {
  params.validate();
  BTMF_CHECK_MSG(entry_rate >= 0.0, "entry rate must be non-negative");
  return [params, entry_rate](double /*t*/, std::span<const double> y,
                              std::span<double> dydt) {
    BTMF_ASSERT(y.size() == 2 && dydt.size() == 2);
    const FluidParams& fp = params.base;
    const double x = y[0];
    const double s = y[1];
    const double upload_capacity = fp.mu * (fp.eta * x + s);
    const double download_capacity =
        std::isinf(params.download_bw)
            ? upload_capacity
            : params.download_bw * x;
    const double service = std::min(download_capacity, upload_capacity);
    dydt[0] = entry_rate - params.abort_rate * x - service;
    dydt[1] = service - fp.gamma * s;
  };
}

}  // namespace btmf::fluid
