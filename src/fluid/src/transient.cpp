#include "btmf/fluid/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "btmf/math/vec.h"
#include "btmf/util/check.h"

namespace btmf::fluid {

std::vector<double> TransientSeries::map(
    const std::function<double(std::span<const double>)>& reduce) const {
  std::vector<double> out;
  out.reserve(states.size());
  for (const std::vector<double>& state : states) {
    out.push_back(reduce(state));
  }
  return out;
}

TransientSeries sample_trajectory(const math::OdeRhs& rhs,
                                  std::vector<double> y0,
                                  const TransientOptions& options) {
  BTMF_CHECK_MSG(options.t_end > 0.0, "t_end must be positive");
  BTMF_CHECK_MSG(options.samples >= 2, "need at least two samples");
  BTMF_CHECK_MSG(!y0.empty(), "empty initial state");

  TransientSeries series;
  series.times.reserve(options.samples);
  series.states.reserve(options.samples);
  series.times.push_back(0.0);
  series.states.push_back(y0);

  math::AdaptiveOptions ode = options.ode;
  ode.clamp_nonnegative = true;

  const double dt =
      options.t_end / static_cast<double>(options.samples - 1);
  std::vector<double> y = std::move(y0);
  for (std::size_t s = 1; s < options.samples; ++s) {
    const double t0 = dt * static_cast<double>(s - 1);
    const double t1 = dt * static_cast<double>(s);
    math::AdaptiveResult step =
        math::integrate_dopri5(rhs, std::move(y), t0, t1, ode);
    y = std::move(step.y);
    series.times.push_back(t1);
    series.states.push_back(y);
  }
  return series;
}

double settling_time(const TransientSeries& series,
                     std::span<const double> target, double tol) {
  BTMF_CHECK_MSG(!series.states.empty(), "empty trajectory");
  BTMF_CHECK_MSG(series.states.front().size() == target.size(),
                 "target size mismatch");
  const double scale = 1.0 + math::norm_inf(target);
  for (std::size_t s = 0; s < series.states.size(); ++s) {
    double deviation = 0.0;
    for (std::size_t i = 0; i < target.size(); ++i) {
      deviation =
          std::max(deviation, std::abs(series.states[s][i] - target[i]));
    }
    if (deviation <= tol * scale) return series.times[s];
  }
  return std::numeric_limits<double>::infinity();
}

double peak_value(const TransientSeries& series,
                  const std::function<double(std::span<const double>)>&
                      reduce) {
  BTMF_CHECK_MSG(!series.states.empty(), "empty trajectory");
  double peak = -std::numeric_limits<double>::infinity();
  for (const std::vector<double>& state : series.states) {
    peak = std::max(peak, reduce(state));
  }
  return peak;
}

}  // namespace btmf::fluid
