#include "btmf/fluid/correlation.h"

#include <cmath>

#include "btmf/math/special.h"
#include "btmf/util/check.h"

namespace btmf::fluid {

CorrelationModel::CorrelationModel(unsigned num_files, double correlation,
                                   double visit_rate)
    : num_files_(num_files), p_(correlation), lambda0_(visit_rate) {
  BTMF_CHECK_MSG(num_files >= 1, "correlation model needs at least one file");
  BTMF_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "file correlation p must lie in [0, 1]");
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit rate lambda0 must be positive");
}

double CorrelationModel::system_entry_rate(unsigned i) const {
  BTMF_CHECK_MSG(i >= 1 && i <= num_files_,
                 "class index must lie in [1, K]");
  return lambda0_ * math::binomial_pmf(num_files_, i, p_);
}

double CorrelationModel::per_torrent_entry_rate(unsigned i) const {
  BTMF_CHECK_MSG(i >= 1 && i <= num_files_,
                 "class index must lie in [1, K]");
  // lambda_j^i = L_i * i / K; computed through the Bin(K-1) pmf for
  // numerical robustness at extreme p.
  if (p_ == 0.0) return 0.0;
  return lambda0_ * p_ * math::binomial_pmf(num_files_ - 1, i - 1, p_);
}

std::vector<double> CorrelationModel::system_entry_rates() const {
  std::vector<double> rates(num_files_);
  for (unsigned i = 1; i <= num_files_; ++i)
    rates[i - 1] = system_entry_rate(i);
  return rates;
}

std::vector<double> CorrelationModel::per_torrent_entry_rates() const {
  std::vector<double> rates(num_files_);
  for (unsigned i = 1; i <= num_files_; ++i)
    rates[i - 1] = per_torrent_entry_rate(i);
  return rates;
}

double CorrelationModel::per_torrent_total_rate() const {
  return lambda0_ * p_;
}

double CorrelationModel::per_torrent_weighted_rate() const {
  const double miss_all = std::pow(1.0 - p_, static_cast<double>(num_files_));
  return lambda0_ / static_cast<double>(num_files_) * (1.0 - miss_all);
}

double CorrelationModel::system_user_rate() const {
  const double miss_all = std::pow(1.0 - p_, static_cast<double>(num_files_));
  return lambda0_ * (1.0 - miss_all);
}

double CorrelationModel::system_file_request_rate() const {
  return lambda0_ * static_cast<double>(num_files_) * p_;
}

}  // namespace btmf::fluid
