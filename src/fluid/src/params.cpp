#include "btmf/fluid/params.h"

#include "btmf/util/check.h"

namespace btmf::fluid {

void FluidParams::validate() const {
  BTMF_CHECK_MSG(mu > 0.0, "upload bandwidth mu must be positive");
  BTMF_CHECK_MSG(eta > 0.0 && eta <= 1.0,
                 "sharing efficiency eta must lie in (0, 1]");
  BTMF_CHECK_MSG(gamma > 0.0, "seed departure rate gamma must be positive");
}

}  // namespace btmf::fluid
