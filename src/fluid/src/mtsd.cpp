#include "btmf/fluid/mtsd.h"

#include "btmf/fluid/single_torrent.h"
#include "btmf/util/check.h"

namespace btmf::fluid {

MtsdResult mtsd_metrics(const FluidParams& params, unsigned num_classes) {
  BTMF_CHECK_MSG(num_classes >= 1, "need at least one peer class");
  const double t_download = single_torrent_download_time(params);
  const double cycle = t_download + 1.0 / params.gamma;

  MtsdResult result;
  result.download_time_per_file = t_download;
  result.online_time_per_file = cycle;
  std::vector<double> online(num_classes), download(num_classes);
  for (unsigned i = 1; i <= num_classes; ++i) {
    online[i - 1] = static_cast<double>(i) * cycle;
    download[i - 1] = static_cast<double>(i) * t_download;
  }
  result.metrics =
      make_per_class_metrics(std::move(online), std::move(download));
  return result;
}

}  // namespace btmf::fluid
