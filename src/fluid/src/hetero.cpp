#include "btmf/fluid/hetero.h"

#include <algorithm>
#include <cmath>

#include "btmf/fluid/mtcd.h"
#include "btmf/math/special.h"
#include "btmf/util/check.h"

namespace btmf::fluid {

HeterogeneousCatalog::HeterogeneousCatalog(std::vector<double> request_probs,
                                           double visit_rate)
    : probs_(std::move(request_probs)), lambda0_(visit_rate) {
  BTMF_CHECK_MSG(!probs_.empty(), "catalogue needs at least one file");
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit rate lambda0 must be positive");
  double total = 0.0;
  for (const double p : probs_) {
    BTMF_CHECK_MSG(p >= 0.0 && p <= 1.0,
                   "request probabilities must lie in [0, 1]");
    total += p;
  }
  BTMF_CHECK_MSG(total > 0.0, "at least one file must be requestable");
}

std::vector<double> HeterogeneousCatalog::system_class_rates() const {
  const std::vector<double> pmf = math::poisson_binomial_pmf_vector(probs_);
  std::vector<double> rates(probs_.size());
  for (std::size_t i = 1; i <= probs_.size(); ++i) {
    rates[i - 1] = lambda0_ * pmf[i];
  }
  return rates;
}

std::vector<double> HeterogeneousCatalog::torrent_class_rates(
    unsigned file) const {
  BTMF_CHECK_MSG(file < probs_.size(), "file index out of range");
  // Class of a peer in torrent j = 1 + (requests among the other files).
  std::vector<double> others;
  others.reserve(probs_.size() - 1);
  for (std::size_t f = 0; f < probs_.size(); ++f) {
    if (f != file) others.push_back(probs_[f]);
  }
  const std::vector<double> pmf =
      math::poisson_binomial_pmf_vector(others);
  std::vector<double> rates(probs_.size(), 0.0);
  for (std::size_t i = 1; i <= probs_.size(); ++i) {
    rates[i - 1] = lambda0_ * probs_[file] * pmf[i - 1];
  }
  return rates;
}

std::vector<double> HeterogeneousCatalog::zipf_profile(unsigned num_files,
                                                       double skew,
                                                       double mean_p) {
  BTMF_CHECK_MSG(num_files >= 1, "need at least one file");
  BTMF_CHECK_MSG(skew >= 0.0, "Zipf skew must be non-negative");
  BTMF_CHECK_MSG(mean_p > 0.0 && mean_p <= 1.0,
                 "mean request probability must lie in (0, 1]");
  std::vector<double> weights(num_files);
  double weight_sum = 0.0;
  for (unsigned f = 0; f < num_files; ++f) {
    weights[f] = 1.0 / std::pow(static_cast<double>(f + 1), skew);
    weight_sum += weights[f];
  }
  // Scale so the mean is mean_p, then clamp to [0, 1]. Clamping loses a
  // little demand at extreme skews; that is the physically meaningful
  // behaviour (a probability cannot exceed 1).
  const double scale =
      mean_p * static_cast<double>(num_files) / weight_sum;
  for (double& w : weights) w = std::min(1.0, w * scale);
  return weights;
}

HeteroMtcdReport hetero_mtcd_report(const FluidParams& params,
                                    const HeterogeneousCatalog& catalog) {
  params.validate();
  HeteroMtcdReport report;
  const unsigned k = catalog.num_files();
  report.per_torrent_factor.resize(k, 0.0);

  double weighted_factor = 0.0;
  double prob_sum = 0.0;
  for (unsigned j = 0; j < k; ++j) {
    const double pj = catalog.request_probs()[j];
    if (pj <= 0.0) continue;  // empty torrent: no factor
    report.per_torrent_factor[j] =
        mtcd_per_file_factor(params, catalog.torrent_class_rates(j));
    weighted_factor += pj * report.per_torrent_factor[j];
    prob_sum += pj;
  }
  BTMF_CHECK_MSG(prob_sum > 0.0, "catalogue has no requestable file");
  report.avg_download_per_file = weighted_factor / prob_sum;

  // Seeding residence amortised over a user's files, as in the uniform
  // model: avg online/file = D + (1/gamma) sum_i L_i / sum_i i L_i.
  const std::vector<double> class_rates = catalog.system_class_rates();
  double users = 0.0;
  double files = 0.0;
  for (std::size_t i = 1; i <= class_rates.size(); ++i) {
    users += class_rates[i - 1];
    files += static_cast<double>(i) * class_rates[i - 1];
  }
  report.avg_online_per_file =
      report.avg_download_per_file + users / files / params.gamma;
  return report;
}

}  // namespace btmf::fluid
