#include "btmf/fluid/mfcd.h"

#include "btmf/util/check.h"

namespace btmf::fluid {

MtcdEquilibrium mfcd_equilibrium(const FluidParams& params,
                                 const CorrelationModel& correlation) {
  BTMF_CHECK_MSG(correlation.correlation() > 0.0,
                 "MFCD needs p > 0 (no peer requests any file at p = 0)");
  const std::vector<double> rates = correlation.per_torrent_entry_rates();
  return mtcd_equilibrium(params, rates);
}

double mfcd_download_time_per_file(const FluidParams& params,
                                   const CorrelationModel& correlation) {
  BTMF_CHECK_MSG(correlation.correlation() > 0.0,
                 "MFCD needs p > 0 (no peer requests any file at p = 0)");
  // A = (gamma L - mu W) / (gamma mu eta L) with L = lambda0 p and
  // W = (lambda0/K)(1 - (1-p)^K); the lambda0 factors cancel.
  const double total = correlation.per_torrent_total_rate();
  const double weighted = correlation.per_torrent_weighted_rate();
  const double a = (params.gamma * total - params.mu * weighted) /
                   (params.gamma * params.mu * params.eta * total);
  BTMF_CHECK_MSG(a > 0.0, "MFCD equilibrium infeasible for these parameters");
  return a;
}

}  // namespace btmf::fluid
