#include "btmf/fluid/mtcd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "btmf/util/check.h"

namespace btmf::fluid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void validate_rates(std::span<const double> rates) {
  BTMF_CHECK_MSG(!rates.empty(), "need at least one peer class");
  double total = 0.0;
  for (const double r : rates) {
    BTMF_CHECK_MSG(r >= 0.0, "class entry rates must be non-negative");
    total += r;
  }
  BTMF_CHECK_MSG(total > 0.0, "at least one class entry rate must be positive");
}

}  // namespace

double mtcd_per_file_factor(const FluidParams& params,
                            std::span<const double> class_entry_rates) {
  params.validate();
  validate_rates(class_entry_rates);
  double sum = 0.0;
  double weighted_sum = 0.0;
  for (std::size_t k = 0; k < class_entry_rates.size(); ++k) {
    sum += class_entry_rates[k];
    weighted_sum += class_entry_rates[k] / static_cast<double>(k + 1);
  }
  const double a = (params.gamma * sum - params.mu * weighted_sum) /
                   (params.gamma * params.mu * params.eta * sum);
  BTMF_CHECK_MSG(a > 0.0,
                 "MTCD equilibrium infeasible: seed capacity alone exceeds "
                 "demand (gamma * sum lambda <= mu * sum lambda/l)");
  return a;
}

MtcdEquilibrium mtcd_equilibrium(const FluidParams& params,
                                 std::span<const double> class_entry_rates) {
  const double a = mtcd_per_file_factor(params, class_entry_rates);
  const std::size_t num_classes = class_entry_rates.size();

  MtcdEquilibrium eq;
  eq.per_file_factor = a;
  eq.downloaders.resize(num_classes);
  eq.seeds.resize(num_classes);
  std::vector<double> online(num_classes), download(num_classes);
  for (std::size_t k = 0; k < num_classes; ++k) {
    const double files = static_cast<double>(k + 1);
    const double rate = class_entry_rates[k];
    eq.downloaders[k] = files * rate * a;
    eq.seeds[k] = rate / params.gamma;
    if (rate > 0.0) {
      download[k] = files * a;
      online[k] = files * a + 1.0 / params.gamma;
    } else {
      download[k] = kNaN;
      online[k] = kNaN;
    }
  }
  eq.metrics = make_per_class_metrics(std::move(online), std::move(download));
  return eq;
}

math::OdeRhs mtcd_rhs(const FluidParams& params,
                      std::vector<double> class_entry_rates) {
  params.validate();
  validate_rates(class_entry_rates);
  const std::size_t num_classes = class_entry_rates.size();
  return [params, rates = std::move(class_entry_rates), num_classes](
             double /*t*/, std::span<const double> state,
             std::span<double> dstate) {
    BTMF_ASSERT(state.size() == 2 * num_classes);
    BTMF_ASSERT(dstate.size() == 2 * num_classes);
    const auto x = state.first(num_classes);
    const auto y = state.subspan(num_classes);

    // Total seed service sum_l (mu/l) y_l and the share denominator
    // sum_l x_l / l.
    double seed_service = 0.0;
    double share_denominator = 0.0;
    for (std::size_t k = 0; k < num_classes; ++k) {
      const double files = static_cast<double>(k + 1);
      seed_service += params.mu / files * y[k];
      share_denominator += x[k] / files;
    }

    for (std::size_t k = 0; k < num_classes; ++k) {
      const double files = static_cast<double>(k + 1);
      const double tft_service = params.eta * params.mu / files * x[k];
      const double share =
          share_denominator > 0.0 ? (x[k] / files) / share_denominator : 0.0;
      const double from_seeds = share * seed_service;
      const double completion = tft_service + from_seeds;
      dstate[k] = rates[k] - completion;
      dstate[num_classes + k] = completion - params.gamma * y[k];
    }
  };
}

math::OdeRhs mtcd_rhs(const FluidParams& params,
                      std::vector<double> class_entry_rates,
                      const ArrivalProcess& arrival) {
  arrival.validate();
  math::OdeRhs base = mtcd_rhs(params, class_entry_rates);
  if (arrival.homogeneous()) return base;
  // The entry rates enter dx_i linearly, so the time-varying RHS is the
  // autonomous one plus (m(t) - 1) lambda_i on the downloader rows.
  const std::size_t num_classes = class_entry_rates.size();
  return [base = std::move(base), rates = std::move(class_entry_rates),
          arrival, num_classes](double t, std::span<const double> state,
                                std::span<double> dstate) {
    base(t, state, dstate);
    const double extra = arrival.rate_at(1.0, t) - 1.0;
    for (std::size_t k = 0; k < num_classes; ++k) {
      dstate[k] += extra * rates[k];
    }
  };
}

}  // namespace btmf::fluid
