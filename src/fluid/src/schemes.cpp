#include "btmf/fluid/schemes.h"

#include <cctype>
#include <string>

#include "btmf/util/error.h"

namespace btmf::fluid {

SchemeKind scheme_from_string(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper += static_cast<char>(
        std::toupper(static_cast<unsigned char>(c)));
  }
  for (const SchemeKind scheme :
       {SchemeKind::kMtcd, SchemeKind::kMtsd, SchemeKind::kMfcd,
        SchemeKind::kCmfsd}) {
    if (upper == to_string(scheme)) return scheme;
  }
  throw ConfigError("unknown scheme '" + std::string(name) +
                    "' (expected MTCD|MTSD|MFCD|CMFSD)");
}

}  // namespace btmf::fluid
