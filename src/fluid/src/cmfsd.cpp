#include "btmf/fluid/cmfsd.h"

#include <cmath>
#include <limits>

#include "btmf/util/check.h"

namespace btmf::fluid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void validate_rho(double rho) {
  BTMF_CHECK_MSG(rho >= 0.0 && rho <= 1.0,
                 "bandwidth allocation ratio rho must lie in [0, 1]");
}

}  // namespace

CmfsdModel::CmfsdModel(const FluidParams& params,
                       std::vector<double> class_entry_rates, double rho)
    : CmfsdModel(params, std::move(class_entry_rates),
                 std::vector<double>{}) {
  validate_rho(rho);
  rho_.assign(num_classes_, rho);
}

CmfsdModel::CmfsdModel(const FluidParams& params,
                       std::vector<double> class_entry_rates,
                       std::vector<double> rho_per_class)
    : params_(params), rates_(std::move(class_entry_rates)),
      rho_(std::move(rho_per_class)) {
  params_.validate();
  BTMF_CHECK_MSG(!rates_.empty(), "need at least one peer class");
  num_classes_ = static_cast<unsigned>(rates_.size());
  double total = 0.0;
  for (const double r : rates_) {
    BTMF_CHECK_MSG(r >= 0.0, "class entry rates must be non-negative");
    total += r;
  }
  BTMF_CHECK_MSG(total > 0.0, "at least one class entry rate must be positive");
  if (rho_.empty()) {
    // An empty vector means "no virtual seeding anywhere" (rho = 1), the
    // MFCD-like default; the uniform-rho constructor overwrites this.
    rho_.assign(rates_.size(), 1.0);
  } else {
    BTMF_CHECK_MSG(rho_.size() == rates_.size(),
                   "per-class rho size must match the number of classes");
    for (const double r : rho_) validate_rho(r);
  }
}

std::size_t CmfsdModel::state_size() const {
  const std::size_t k = num_classes_;
  return k * (k + 1) / 2 + k;
}

std::size_t CmfsdModel::x_index(unsigned i, unsigned j) const {
  BTMF_ASSERT(i >= 1 && i <= num_classes_);
  BTMF_ASSERT(j >= 1 && j <= i);
  // Stages of class i start after the 1 + 2 + ... + (i-1) stages of the
  // lower classes.
  return static_cast<std::size_t>(i - 1) * i / 2 + (j - 1);
}

std::size_t CmfsdModel::y_index(unsigned i) const {
  BTMF_ASSERT(i >= 1 && i <= num_classes_);
  const std::size_t k = num_classes_;
  return k * (k + 1) / 2 + (i - 1);
}

double CmfsdModel::bandwidth_split(unsigned i, unsigned j) const {
  BTMF_CHECK_MSG(i >= 1 && i <= num_classes_ && j >= 1 && j <= i,
                 "bandwidth_split: class/stage out of range");
  if (i == 1 || j == 1) return 1.0;  // nothing finished yet
  return rho_[i - 1];
}

math::OdeRhs CmfsdModel::rhs() const {
  // Copy model data into the closure so it is self-contained.
  return [model = *this](double /*t*/, std::span<const double> state,
                         std::span<double> dstate) {
    const unsigned k = model.num_classes_;
    BTMF_ASSERT(state.size() == model.state_size());
    BTMF_ASSERT(dstate.size() == model.state_size());
    const double mu = model.params_.mu;
    const double eta = model.params_.eta;
    const double gamma = model.params_.gamma;

    // Pool totals: all downloaders, virtual-seed bandwidth donors, seeds.
    double x_total = 0.0;
    double donated = 0.0;  // sum (1 - P(l,m)) x^{l,m}
    for (unsigned i = 1; i <= k; ++i) {
      for (unsigned j = 1; j <= i; ++j) {
        const double x = state[model.x_index(i, j)];
        x_total += x;
        donated += (1.0 - model.bandwidth_split(i, j)) * x;
      }
    }
    double y_total = 0.0;
    for (unsigned i = 1; i <= k; ++i) y_total += state[model.y_index(i)];

    // Seed-pool service rate per unit of downloader mass:
    // S^{i,j} = x^{i,j} * mu (donated + y_total) / x_total, defined as 0
    // in the empty-torrent limit.
    const double pool_rate =
        x_total > 0.0 ? mu * (donated + y_total) / x_total : 0.0;

    for (unsigned i = 1; i <= k; ++i) {
      double inflow = model.rates_[i - 1];
      for (unsigned j = 1; j <= i; ++j) {
        const std::size_t idx = model.x_index(i, j);
        const double x = state[idx];
        const double outflow =
            mu * eta * model.bandwidth_split(i, j) * x + pool_rate * x;
        dstate[idx] = inflow - outflow;
        inflow = outflow;  // completion of file j feeds stage j + 1
      }
      const std::size_t yi = model.y_index(i);
      dstate[yi] = inflow - gamma * state[yi];
    }
  };
}

math::OdeRhs CmfsdModel::rhs(const ArrivalProcess& arrival) const {
  arrival.validate();
  math::OdeRhs base = rhs();
  if (arrival.homogeneous()) return base;
  // Entry rates only feed the first download stage x^{i,1}, linearly, so
  // the time-varying RHS is the autonomous one plus (m(t) - 1) lambda_i
  // on those rows.
  return [base = std::move(base), model = *this, arrival](
             double t, std::span<const double> state,
             std::span<double> dstate) {
    base(t, state, dstate);
    const double extra = arrival.rate_at(1.0, t) - 1.0;
    for (unsigned i = 1; i <= model.num_classes(); ++i) {
      dstate[model.x_index(i, 1)] += extra * model.rates_[i - 1];
    }
  };
}

math::EquilibriumOptions CmfsdModel::default_solve_options() {
  math::EquilibriumOptions options;
  options.residual_tol = 1e-9;
  options.chunk_time = 2000.0;  // several seeding residences (1/gamma = 20)
  options.chunk_growth = 1.5;
  options.max_chunks = 40;
  options.ode.rtol = 1e-9;
  options.ode.atol = 1e-12;
  return options;
}

CmfsdEquilibrium CmfsdModel::solve(
    const math::EquilibriumOptions& options) const {
  const math::EquilibriumResult eq = math::find_equilibrium(
      rhs(), std::vector<double>(state_size(), 0.0), options);

  CmfsdEquilibrium result;
  result.state = eq.y;
  result.residual_inf = eq.residual_inf;
  result.metrics = metrics_from_state(result.state);
  for (unsigned i = 1; i <= num_classes_; ++i) {
    for (unsigned j = 1; j <= i; ++j) {
      const double x = result.state[x_index(i, j)];
      result.total_downloaders += x;
      result.virtual_seed_bandwidth +=
          (1.0 - bandwidth_split(i, j)) * params_.mu * x;
    }
    result.total_seeds += result.state[y_index(i)];
  }
  return result;
}

PerClassMetrics CmfsdModel::metrics_from_state(
    std::span<const double> state) const {
  BTMF_CHECK_MSG(state.size() == state_size(),
                 "metrics_from_state: state size mismatch");
  std::vector<double> online(num_classes_), download(num_classes_);
  for (unsigned i = 1; i <= num_classes_; ++i) {
    const double rate = rates_[i - 1];
    if (rate <= 0.0) {
      online[i - 1] = kNaN;
      download[i - 1] = kNaN;
      continue;
    }
    double downloaders = 0.0;
    for (unsigned j = 1; j <= i; ++j) downloaders += state[x_index(i, j)];
    // Little's law through the download stages, then one seeding residence.
    download[i - 1] = downloaders / rate;
    online[i - 1] = download[i - 1] + 1.0 / params_.gamma;
  }
  return make_per_class_metrics(std::move(online), std::move(download));
}

}  // namespace btmf::fluid
