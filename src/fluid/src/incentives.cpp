#include "btmf/fluid/incentives.h"

#include <cmath>
#include <limits>

#include "btmf/util/check.h"

namespace btmf::fluid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The pool rate PR = mu (D + Y) / X at an equilibrium state.
double pool_rate_at(const CmfsdModel& model, const CmfsdEquilibrium& eq,
                    const FluidParams& params) {
  double x_total = 0.0;
  double donated = 0.0;
  for (unsigned i = 1; i <= model.num_classes(); ++i) {
    for (unsigned j = 1; j <= i; ++j) {
      const double x = eq.state[model.x_index(i, j)];
      x_total += x;
      donated += (1.0 - model.bandwidth_split(i, j)) * x;
    }
  }
  double y_total = 0.0;
  for (unsigned i = 1; i <= model.num_classes(); ++i) {
    y_total += eq.state[model.y_index(i)];
  }
  BTMF_CHECK_MSG(x_total > 0.0,
                 "incentive analysis needs a populated equilibrium");
  return params.mu * (donated + y_total) / x_total;
}

}  // namespace

double tagged_peer_download_time(const CmfsdModel& model,
                                 const CmfsdEquilibrium& eq,
                                 unsigned peer_class, double own_rho) {
  BTMF_CHECK_MSG(peer_class >= 1 && peer_class <= model.num_classes(),
                 "peer class out of range");
  BTMF_CHECK_MSG(own_rho >= 0.0 && own_rho <= 1.0,
                 "own rho must lie in [0, 1]");
  const FluidParams& params = model.params();
  const double pr = pool_rate_at(model, eq, params);
  const double first = 1.0 / (params.eta * params.mu + pr);
  if (peer_class == 1) return first;
  const double later_rate = params.eta * params.mu * own_rho + pr;
  BTMF_CHECK_MSG(later_rate > 0.0,
                 "tagged peer would never finish (no TFT, empty pool)");
  return first + static_cast<double>(peer_class - 1) / later_rate;
}

IncentiveReport cmfsd_incentives(const FluidParams& params,
                                 const std::vector<double>& class_rates,
                                 double population_rho) {
  params.validate();
  BTMF_CHECK_MSG(population_rho >= 0.0 && population_rho <= 1.0,
                 "population rho must lie in [0, 1]");
  const CmfsdModel model(params, class_rates, population_rho);
  const CmfsdEquilibrium eq = model.solve();
  IncentiveReport report;
  report.population_rho = population_rho;
  report.pool_rate = pool_rate_at(model, eq, params);
  const unsigned k = model.num_classes();
  report.conforming_download.resize(k, kNaN);
  report.defecting_download.resize(k, kNaN);
  report.temptation.resize(k, kNaN);
  for (unsigned i = 1; i <= k; ++i) {
    const double conform =
        tagged_peer_download_time(model, eq, i, population_rho);
    const double defect = tagged_peer_download_time(model, eq, i, 1.0);
    report.conforming_download[i - 1] = conform;
    report.defecting_download[i - 1] = defect;
    report.temptation[i - 1] = (conform - defect) / conform;
  }
  return report;
}

}  // namespace btmf::fluid
