#include "btmf/fluid/adapt_fluid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "btmf/util/check.h"

namespace btmf::fluid {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Piecewise-linear unit step: 0 below 0, z in [0, 1], 1 above.
double smooth_step(double z) { return std::clamp(z, 0.0, 1.0); }

}  // namespace

void AdaptFluidParams::validate() const {
  BTMF_CHECK_MSG(phi_lo <= phi_hi, "adapt fluid needs phi_lo <= phi_hi");
  BTMF_CHECK_MSG(rate_up >= 0.0 && rate_down >= 0.0,
                 "adapt rates must be non-negative");
  BTMF_CHECK_MSG(smoothing > 0.0, "smoothing width must be positive");
  BTMF_CHECK_MSG(initial_rho >= 0.0 && initial_rho <= 1.0,
                 "initial rho must lie in [0, 1]");
}

AdaptFluidModel::AdaptFluidModel(const FluidParams& params,
                                 std::vector<double> class_entry_rates,
                                 double cheater_fraction,
                                 const AdaptFluidParams& adapt)
    : params_(params), rates_(std::move(class_entry_rates)),
      cheater_fraction_(cheater_fraction), adapt_(adapt) {
  params_.validate();
  adapt_.validate();
  BTMF_CHECK_MSG(!rates_.empty(), "need at least one peer class");
  BTMF_CHECK_MSG(cheater_fraction_ >= 0.0 && cheater_fraction_ < 1.0,
                 "cheater fraction must lie in [0, 1)");
  num_classes_ = static_cast<unsigned>(rates_.size());
  double total = 0.0;
  for (const double r : rates_) {
    BTMF_CHECK_MSG(r >= 0.0, "class entry rates must be non-negative");
    total += r;
  }
  BTMF_CHECK_MSG(total > 0.0, "at least one class entry rate must be positive");
}

double AdaptFluidModel::obedient_rate(unsigned i) const {
  // Class 1 has no virtual seed to withhold; cheating is meaningless.
  const double f = i >= 2 ? cheater_fraction_ : 0.0;
  return (1.0 - f) * rates_[i - 1];
}

double AdaptFluidModel::cheater_rate(unsigned i) const {
  const double f = i >= 2 ? cheater_fraction_ : 0.0;
  return f * rates_[i - 1];
}

std::size_t AdaptFluidModel::state_size() const {
  const std::size_t k = num_classes_;
  const std::size_t stages = k * (k + 1) / 2;
  return 2 * stages + 2 * k + k;  // two cohorts of x, two of y, rho
}

std::size_t AdaptFluidModel::x_index(bool cheater, unsigned i,
                                     unsigned j) const {
  BTMF_ASSERT(i >= 1 && i <= num_classes_ && j >= 1 && j <= i);
  const std::size_t stages =
      static_cast<std::size_t>(num_classes_) * (num_classes_ + 1) / 2;
  const std::size_t base = cheater ? stages : 0;
  return base + static_cast<std::size_t>(i - 1) * i / 2 + (j - 1);
}

std::size_t AdaptFluidModel::y_index(bool cheater, unsigned i) const {
  BTMF_ASSERT(i >= 1 && i <= num_classes_);
  const std::size_t stages =
      static_cast<std::size_t>(num_classes_) * (num_classes_ + 1) / 2;
  return 2 * stages + (cheater ? num_classes_ : 0) + (i - 1);
}

std::size_t AdaptFluidModel::rho_index(unsigned i) const {
  BTMF_ASSERT(i >= 1 && i <= num_classes_);
  const std::size_t stages =
      static_cast<std::size_t>(num_classes_) * (num_classes_ + 1) / 2;
  return 2 * stages + 2 * static_cast<std::size_t>(num_classes_) + (i - 1);
}

math::OdeRhs AdaptFluidModel::rhs() const {
  return [model = *this](double /*t*/, std::span<const double> state,
                         std::span<double> dstate) {
    const unsigned k = model.num_classes_;
    BTMF_ASSERT(state.size() == model.state_size());
    const double mu = model.params_.mu;
    const double eta = model.params_.eta;
    const double gamma = model.params_.gamma;

    const auto split = [&](bool cheater, unsigned i, unsigned j) {
      if (i == 1 || j == 1) return 1.0;
      if (cheater) return 1.0;
      return std::clamp(state[model.rho_index(i)], 0.0, 1.0);
    };

    // Pool totals over both cohorts.
    double x_total = 0.0;
    double donated = 0.0;
    double y_total = 0.0;
    for (const bool cheater : {false, true}) {
      for (unsigned i = 1; i <= k; ++i) {
        for (unsigned j = 1; j <= i; ++j) {
          const double x = state[model.x_index(cheater, i, j)];
          x_total += x;
          donated += (1.0 - split(cheater, i, j)) * x;
        }
        y_total += state[model.y_index(cheater, i)];
      }
    }
    const double pool_rate =
        x_total > 0.0 ? mu * (donated + y_total) / x_total : 0.0;
    const double virtual_rate =
        x_total > 0.0 ? mu * donated / x_total : 0.0;

    // Population chains, per cohort.
    for (const bool cheater : {false, true}) {
      for (unsigned i = 1; i <= k; ++i) {
        double inflow =
            cheater ? model.cheater_rate(i) : model.obedient_rate(i);
        for (unsigned j = 1; j <= i; ++j) {
          const std::size_t idx = model.x_index(cheater, i, j);
          const double x = state[idx];
          const double outflow =
              mu * eta * split(cheater, i, j) * x + pool_rate * x;
          dstate[idx] = inflow - outflow;
          inflow = outflow;
        }
        const std::size_t yi = model.y_index(cheater, i);
        dstate[yi] = inflow - gamma * state[yi];
      }
    }

    // rho dynamics for obedient multi-file classes.
    dstate[model.rho_index(1)] = 0.0;
    for (unsigned i = 2; i <= k; ++i) {
      const std::size_t ri = model.rho_index(i);
      const double rho = std::clamp(state[ri], 0.0, 1.0);
      if (x_total <= 0.0 || model.obedient_rate(i) <= 0.0) {
        dstate[ri] = 0.0;
        continue;
      }
      const double delta = (1.0 - rho) * mu - virtual_rate;
      const double up = model.adapt_.rate_up *
                        smooth_step((delta - model.adapt_.phi_hi) /
                                    model.adapt_.smoothing);
      const double down = model.adapt_.rate_down *
                          smooth_step((model.adapt_.phi_lo - delta) /
                                      model.adapt_.smoothing);
      // Population turnover: departing peers take their adapted rho with
      // them and newcomers arrive at initial_rho, pulling the class
      // average back at the relative arrival rate (capped for stiffness
      // while the class population is still tiny).
      double class_downloaders = 0.0;
      for (unsigned j = 1; j <= i; ++j) {
        class_downloaders += state[model.x_index(false, i, j)];
      }
      const double turnover =
          std::min(model.obedient_rate(i) /
                       std::max(class_downloaders, 1e-9),
                   1.0);
      // The (1 - rho) / rho factors keep rho inside [0, 1] and make the
      // boundaries genuine equilibria of the adaptation part.
      dstate[ri] = up * (1.0 - rho) - down * rho +
                   turnover * (model.adapt_.initial_rho - rho);
    }
  };
}

AdaptFluidEquilibrium AdaptFluidModel::solve() const {
  std::vector<double> y0(state_size(), 0.0);
  for (unsigned i = 1; i <= num_classes_; ++i) {
    y0[rho_index(i)] = adapt_.initial_rho;
  }

  math::EquilibriumOptions options;
  options.residual_tol = 1e-7;
  options.chunk_time = 4000.0;
  options.chunk_growth = 1.5;
  options.max_chunks = 30;
  options.ode.rtol = 1e-8;
  options.ode.atol = 1e-11;
  // The rho switching law is only piecewise smooth; skip the Newton
  // polish and accept the transient-integration residual.
  options.polish_with_newton = false;

  const math::EquilibriumResult eq =
      math::find_equilibrium(rhs(), std::move(y0), options);

  AdaptFluidEquilibrium result;
  result.state = eq.y;
  result.residual_inf = eq.residual_inf;
  result.rho.resize(num_classes_);
  for (unsigned i = 1; i <= num_classes_; ++i) {
    result.rho[i - 1] = std::clamp(result.state[rho_index(i)], 0.0, 1.0);
  }

  const auto cohort_metrics = [&](bool cheater) {
    std::vector<double> online(num_classes_), download(num_classes_);
    for (unsigned i = 1; i <= num_classes_; ++i) {
      const double rate = cheater ? cheater_rate(i) : obedient_rate(i);
      if (rate <= 0.0) {
        online[i - 1] = kNaN;
        download[i - 1] = kNaN;
        continue;
      }
      double downloaders = 0.0;
      for (unsigned j = 1; j <= i; ++j) {
        downloaders += result.state[x_index(cheater, i, j)];
      }
      download[i - 1] = downloaders / rate;
      online[i - 1] = download[i - 1] + 1.0 / params_.gamma;
    }
    return make_per_class_metrics(std::move(online), std::move(download));
  };
  result.obedient = cohort_metrics(false);
  result.cheater = cohort_metrics(true);

  double online_sum = 0.0;
  double obedient_online_sum = 0.0;
  double obedient_files = 0.0;
  double files_sum = 0.0;
  for (unsigned i = 1; i <= num_classes_; ++i) {
    const double ro = obedient_rate(i);
    const double rc = cheater_rate(i);
    if (ro > 0.0) {
      online_sum += ro * result.obedient.online_time[i - 1];
      obedient_online_sum += ro * result.obedient.online_time[i - 1];
      obedient_files += ro * i;
    }
    if (rc > 0.0) online_sum += rc * result.cheater.online_time[i - 1];
    files_sum += (ro + rc) * i;
  }
  result.avg_online_per_file =
      files_sum > 0.0 ? online_sum / files_sum : kNaN;
  result.obedient_avg_online_per_file =
      obedient_files > 0.0 ? obedient_online_sum / obedient_files : kNaN;
  return result;
}

}  // namespace btmf::fluid
