// Tiny command-line argument parser for benches and examples.
//
// Supports `--key value`, `--key=value`, and boolean `--flag` forms.
// Options must be declared up front so `--help` output is complete and
// unknown arguments are rejected instead of silently ignored.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace btmf::util {

class ArgParser {
 public:
  /// `program` and `summary` appear in the --help text.
  ArgParser(std::string program, std::string summary);

  /// Declares a value option with a default (shown in --help).
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declares a boolean flag (false unless present).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. Returns false if --help was requested (help text is
  /// written to stdout). Throws btmf::ConfigError on unknown options,
  /// missing values, or repeated arguments.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Renders the --help text.
  [[nodiscard]] std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;

  const Option& find_option(const std::string& name) const;
};

}  // namespace btmf::util
