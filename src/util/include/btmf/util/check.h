// Precondition-checking helpers.
//
// BTMF_CHECK / BTMF_CHECK_MSG throw btmf::ConfigError on violation and are
// always active (they guard the public API against invalid parameters, not
// internal invariants). BTMF_ASSERT compiles away in release builds and is
// reserved for internal invariants that indicate a bug in btmf itself.
#pragma once

#include <cassert>
#include <sstream>
#include <string>

#include "btmf/util/error.h"

namespace btmf::detail {

[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ConfigError(os.str());
}

}  // namespace btmf::detail

#define BTMF_CHECK(expr)                                                   \
  do {                                                                     \
    if (!(expr))                                                           \
      ::btmf::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define BTMF_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr))                                                         \
      ::btmf::detail::throw_check_failure(#expr, __FILE__, __LINE__,    \
                                          (msg));                        \
  } while (false)

#define BTMF_ASSERT(expr) assert(expr)
