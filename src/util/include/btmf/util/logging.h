// Minimal thread-safe leveled logger.
//
// The benches and examples use this for progress reporting; the library
// itself stays silent below LogLevel::kWarn so it can be embedded quietly.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace btmf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Returns the process-wide minimum level; messages below it are dropped.
LogLevel log_threshold() noexcept;

/// Sets the process-wide minimum level (thread-safe).
void set_log_threshold(LogLevel level) noexcept;

/// Writes one formatted line ("[level] message") to stderr under a lock.
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { log_line(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace btmf::util

#define BTMF_LOG(level)                                      \
  if (::btmf::util::log_threshold() <= (level))              \
  ::btmf::util::detail::LogMessage(level)

#define BTMF_LOG_DEBUG BTMF_LOG(::btmf::util::LogLevel::kDebug)
#define BTMF_LOG_INFO BTMF_LOG(::btmf::util::LogLevel::kInfo)
#define BTMF_LOG_WARN BTMF_LOG(::btmf::util::LogLevel::kWarn)
#define BTMF_LOG_ERROR BTMF_LOG(::btmf::util::LogLevel::kError)
