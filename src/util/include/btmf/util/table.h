// Column-oriented result tables.
//
// Every bench binary emits its figure/table data through this type so the
// output is available both as an aligned human-readable table and as CSV
// (for replotting against the paper's figures).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace btmf::util {

/// A table cell: text or a double rendered with the table's precision.
using Cell = std::variant<std::string, double>;

class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Number of significant digits used when rendering double cells.
  void set_precision(int digits);

  /// Appends one row; the number of cells must match the header count.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }

  /// Returns the cell at (row, col) rendered as a string.
  [[nodiscard]] std::string cell_text(std::size_t row, std::size_t col) const;

  /// Writes an aligned, pipe-separated table (markdown-compatible).
  void write_pretty(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Writes CSV to `path`, throwing btmf::IoError on failure.
  void save_csv(const std::string& path) const;

  /// Convenience: render write_pretty() into a string.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 6;
};

}  // namespace btmf::util
