// Small string utilities used by the CLI parser and table writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace btmf::util {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `precision` significant digits, trimming the
/// noise a raw std::to_string would produce ("0.500000").
std::string format_double(double v, int precision = 6);

/// Shortest decimal string that parses back to exactly `v` (std::to_chars
/// round-trip guarantee). Used wherever doubles must survive a
/// serialise/parse cycle bit-identically — sweep cache files, config
/// fingerprints. Non-finite values render as "inf"/"-inf"/"nan".
std::string format_double_exact(double v);

/// Lower-cases ASCII characters in place and returns the result.
std::string to_lower(std::string_view s);

/// Parses a double, throwing btmf::ConfigError with `context` on failure.
double parse_double(std::string_view s, std::string_view context);

/// Parses a non-negative integer, throwing btmf::ConfigError on failure.
long long parse_int(std::string_view s, std::string_view context);

}  // namespace btmf::util
