// Exception hierarchy for the btmf library.
//
// All btmf components signal unrecoverable misuse (bad configuration,
// numerical failure, I/O trouble) through these types so callers can
// distinguish "your parameters are outside the model's validity domain"
// from "the solver failed to converge" without string matching.
#pragma once

#include <stdexcept>
#include <string>

namespace btmf {

/// Base class of every exception thrown by btmf.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A configuration or parameter value is invalid or outside the model's
/// validity domain (e.g. gamma <= mu in the upload-constrained fluid model).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or was asked to operate on
/// ill-conditioned input (singular matrix, step-size underflow, ...).
class SolverError : public Error {
 public:
  explicit SolverError(const std::string& what) : Error(what) {}
};

/// Filesystem or stream failure while writing result tables.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// An internal consistency audit failed: a data structure invariant of the
/// simulator (service-group integrals, heap cross-references, population
/// bookkeeping) was violated. Always indicates a bug in btmf itself, never
/// bad user input; thrown by the paranoid auditor so corruption is caught
/// at the event that caused it.
class AuditError : public Error {
 public:
  explicit AuditError(const std::string& what) : Error(what) {}
};

}  // namespace btmf
