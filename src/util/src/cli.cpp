#include "btmf/util/cli.h"

#include <iostream>
#include <sstream>

#include "btmf/util/check.h"
#include "btmf/util/strings.h"

namespace btmf::util {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  BTMF_CHECK_MSG(!options_.contains(name), "duplicate option --" + name);
  options_[name] = Option{default_value, help, /*is_flag=*/false};
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  BTMF_CHECK_MSG(!options_.contains(name), "duplicate flag --" + name);
  options_[name] = Option{"", help, /*is_flag=*/true};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << help_text();
      return false;
    }
    BTMF_CHECK_MSG(starts_with(arg, "--"),
                   "unexpected positional argument '" + arg + "'");
    arg.erase(0, 2);

    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const std::size_t eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    const auto it = options_.find(name);
    BTMF_CHECK_MSG(it != options_.end(), "unknown option --" + name);
    BTMF_CHECK_MSG(!values_.contains(name), "option --" + name + " repeated");

    if (it->second.is_flag) {
      BTMF_CHECK_MSG(!inline_value.has_value(),
                     "flag --" + name + " does not take a value");
      values_.insert_or_assign(name, std::string("1"));
    } else if (inline_value.has_value()) {
      values_.insert_or_assign(name, *inline_value);
    } else {
      BTMF_CHECK_MSG(i + 1 < argc, "option --" + name + " needs a value");
      values_.insert_or_assign(name, std::string(argv[++i]));
    }
  }
  return true;
}

const ArgParser::Option& ArgParser::find_option(const std::string& name) const {
  const auto it = options_.find(name);
  BTMF_CHECK_MSG(it != options_.end(), "undeclared option --" + name);
  return it->second;
}

std::string ArgParser::get(const std::string& name) const {
  const Option& opt = find_option(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt.default_value;
}

double ArgParser::get_double(const std::string& name) const {
  return parse_double(get(name), "--" + name);
}

long long ArgParser::get_int(const std::string& name) const {
  return parse_int(get(name), "--" + name);
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option& opt = find_option(name);
  BTMF_CHECK_MSG(opt.is_flag, "--" + name + " is not a flag");
  return values_.contains(name);
}

std::string ArgParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\noptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value> (default: " << opt.default_value << ')';
    os << "\n      " << opt.help << '\n';
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace btmf::util
