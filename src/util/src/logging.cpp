#include "btmf/util/logging.h"

#include <atomic>
#include <iostream>

namespace btmf::util {

namespace {

std::atomic<int> g_threshold{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_log_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace btmf::util
