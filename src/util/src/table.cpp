#include "btmf/util/table.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "btmf/util/check.h"
#include "btmf/util/error.h"
#include "btmf/util/strings.h"

namespace btmf::util {

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BTMF_CHECK_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::set_precision(int digits) {
  BTMF_CHECK(digits >= 1 && digits <= 17);
  precision_ = digits;
}

void Table::add_row(std::vector<Cell> cells) {
  BTMF_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::cell_text(std::size_t row, std::size_t col) const {
  BTMF_CHECK(row < rows_.size() && col < headers_.size());
  const Cell& cell = rows_[row][col];
  if (std::holds_alternative<double>(cell)) {
    return format_double(std::get<double>(cell), precision_);
  }
  return std::get<std::string>(cell);
}

void Table::write_pretty(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (std::size_t r = 0; r < rows_.size(); ++r)
    for (std::size_t c = 0; c < headers_.size(); ++c)
      widths[c] = std::max(widths[c], cell_text(r, c).size());

  const auto write_row = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c]
         << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  write_row(headers_);
  os << '|';
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::vector<std::string> cells;
    cells.reserve(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      cells.push_back(cell_text(r, c));
    write_row(cells);
  }
}

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << ',';
    os << csv_escape(headers_[c]);
  }
  os << '\n';
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(cell_text(r, c));
    }
    os << '\n';
  }
}

void Table::save_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw IoError("cannot open '" + path + "' for writing");
  write_csv(file);
  if (!file) throw IoError("write to '" + path + "' failed");
}

std::string Table::to_string() const {
  std::ostringstream os;
  write_pretty(os);
  return os.str();
}

}  // namespace btmf::util
