#include "btmf/util/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>

#include "btmf/util/error.h"

namespace btmf::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

std::string format_double_exact(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) throw Error("format_double_exact: to_chars failed");
  return std::string(buf, ptr);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

double parse_double(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("cannot parse '" + std::string(s) + "' as a number (" +
                      std::string(context) + ")");
  }
  return value;
}

long long parse_int(std::string_view s, std::string_view context) {
  s = trim(s);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ConfigError("cannot parse '" + std::string(s) + "' as an integer (" +
                      std::string(context) + ")");
  }
  return value;
}

}  // namespace btmf::util
