// Unified discrete-event kernel of the flow-level simulator.
//
// One kernel drives all four downloading schemes (MTCD, MTSD, MFCD,
// CMFSD). The kernel owns the machinery every scheme shares — Poisson
// arrivals, binomial file-set sampling, user lifecycle, the seed-departure
// queue, abort clocks, warmup-aware population integrals and SimResult
// accumulation — while a SchemePolicy supplies only the scheme-specific
// rules: how arrivals start downloads, how service rates are allocated,
// and what happens when a download completes or a seed departs.
//
// User state lives in a struct-of-arrays UserPool (user_pool.h): dense
// user ids over columnar storage, slot state in arena-backed spans, rows
// recycled through a free list once a user retires. Queue entries carry
// the user's admission sequence number and are invalidated by comparing
// it first, so recycled rows can never be confused with their previous
// tenants.
//
// Incremental rate scheduling
// ---------------------------
// In a flow-level model a peer's download rate changes only when its
// torrent's population or pooled seed bandwidth changes — not per event.
// The kernel therefore never rescans live peers. Downloads that share a
// rate are grouped into a ServiceGroup g that accumulates service
//
//     S_g(t) = integral of rate_g over time,
//
// advanced lazily (acc/last_t) whenever the group is touched. A download
// with `work` units of service entering at t0 completes when S_g reaches
// S_g(t0) + work; that target is pushed onto the group's min-heap and the
// group's earliest candidate *time* lives in an indexed priority queue
// across groups. A rate change ("rate epoch") syncs S_g, swaps the slope
// and re-keys one heap entry — O(log G) instead of O(live peers). Stale
// heap entries (download ended, moved groups, or was re-targeted) are
// invalidated by per-slot generation counters and skipped lazily.
//
// Invariant: between rate epochs, S_g is linear in t, so the candidate
// completion time of the group's smallest pending target is exact; a due
// test in *service* space (target - acc <= eps) rather than time space
// makes completions immune to float residue in recomputed candidates.
//
// Sharded (decomposed) execution
// ------------------------------
// A policy whose dynamics decompose per torrent (MtcdPolicy: every file
// of a user is an independent virtual peer) can run *decomposed*: the
// kernel is constructed with a ShardSpec and only materialises the slots
// of torrents it owns (torrent f belongs to shard f % count). Every
// shard replays the identical arrival process from cfg.seed — arrival
// times, file sets and the global admission sequence are bitwise equal
// across shards — while slot-level randomness (seed residences, abort
// deadlines) comes from counter-based streams keyed by (admission seq,
// file id), so a draw's value depends only on *which* download it is,
// never on shard layout or scheduling. Shards therefore produce the
// same per-torrent event sequence for any shard count, and ShardedKernel
// (sharded_kernel.h) merges their ShardOutputs into a SimResult that is
// bit-identical for any shards x threads configuration. See
// docs/SCALE.md for the full determinism contract.
//
// Fault injection
// ---------------
// A SimConfig::faults plan compiles into a sorted timeline of fault
// *edges* (outage start/end, seed failure/recovery, churn instant,
// degradation start/end) that participate in the next-event race like any
// other clock. Tracker outages gate the arrival path inside the kernel;
// seed failures drain the seed-departure queue and clamp new residences
// to "depart immediately" while the window is open; churn bursts crash a
// random subset of downloading users through the policy's on_fault_crash
// hook and queue their re-arrivals; bandwidth windows reach the policies
// through on_fault_bandwidth. An empty plan leaves the kernel bit-
// identical to the pre-fault-layer behaviour.
//
// The paranoid auditor (SimConfig::paranoid, forced by -DBTMF_PARANOID)
// re-walks the service-group integrals, both indexed heaps, the live-list
// cross-references and the policy's own pool bookkeeping after every
// dispatch round, throwing btmf::AuditError at the event that corrupted
// state instead of 10^6 events later.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "btmf/obs/sink.h"
#include "btmf/sim/config.h"
#include "btmf/sim/indexed_heap.h"
#include "btmf/sim/rng.h"
#include "btmf/sim/stats.h"
#include "btmf/sim/user_pool.h"
#include "btmf/util/error.h"

namespace btmf::sim {

class EventKernel;

/// Placement of one kernel instance in a sharded run. The default spec
/// (one shard, not decomposed) is the classic serial kernel, bit-for-bit.
struct ShardSpec {
  unsigned index = 0;       ///< this shard's id in [0, count)
  unsigned count = 1;       ///< total shards
  bool decomposed = false;  ///< torrent-decomposed execution mode
};

/// One retired (or horizon-censored) user as reported by a decomposed
/// shard. A user whose files span shards yields one closure per shard;
/// ShardedKernel folds same-seq closures with order-insensitive rules
/// (any-censored, any-aborted, max-online, max-download), so the merge
/// is invariant to shard layout.
struct ShardClosure {
  std::uint64_t seq = 0;   ///< admission sequence (global, shard-invariant)
  unsigned cls = 0;        ///< logical class (files the user requested)
  std::uint8_t aborted = 0;
  std::uint8_t censored = 0;
  double online = 0.0;     ///< retire time - arrival time
  double download = 0.0;   ///< scheme-defined download span
};

/// Raw per-shard output of a decomposed run, merged by ShardedKernel.
/// Population integrals are per (torrent, class) cell so the merge can
/// sum them in ascending torrent order — a float-deterministic order
/// that does not depend on how torrents were distributed over shards.
struct ShardOutput {
  std::vector<double> down_integral;  ///< K*K cells, torrent*K + (cls-1)
  std::vector<double> seed_integral;
  std::vector<ShardClosure> closures;
  std::vector<std::size_t> arrivals_by_class;  ///< sampled admissions
  std::size_t total_arrivals = 0;
  std::size_t prim_events = 0;  ///< events dispatched, owner-counted
  std::size_t rate_epochs = 0;

  // Population sample grid (identical across shards) and the series
  // recorded on it; per-class series merge by elementwise sum.
  std::vector<double> sample_time;
  std::vector<std::vector<double>> down_series;  ///< per class
  std::vector<std::vector<double>> seed_series;  ///< per class
  std::vector<double> live_series;
  std::vector<double> queue_series;
  std::vector<double> recovering_series;

  // Fault/recovery counters. Fault plans force a single shard, so these
  // are only ever nonzero on shard 0.
  std::size_t faults_injected = 0;
  std::size_t downloads_killed = 0;
  std::size_t arrivals_dropped = 0;
  std::size_t arrivals_queued = 0;
  std::size_t readmissions = 0;
  std::size_t readmission_queue_peak = 0;
  std::size_t faults_unrecovered = 0;
  double time_to_recover = 0.0;
};

/// Scheme-specific rules plugged into the kernel. Implementations live in
/// policy_multi_torrent.cpp / policy_cmfsd.cpp; see docs/MODELS.md for the
/// recipe for adding a new one.
class SchemePolicy {
 public:
  virtual ~SchemePolicy() = default;

  /// Called once before the run; store the kernel and size pool state.
  virtual void attach(EventKernel& kernel) { kernel_ = &kernel; }

  /// A user with a non-empty file set arrived (already in the live list);
  /// draw scheme-specific randomness, start downloads, update populations.
  virtual void on_arrival(std::size_t ui, double t) = 0;

  /// Re-derive the rates of groups whose pools changed since the last
  /// call. Runs once per loop iteration, before the next event time is
  /// chosen; must be a no-op when nothing is dirty.
  virtual void refresh_rates(double t) = 0;

  /// The download in `slot` reached its service target (the kernel has
  /// already unscheduled it).
  virtual void on_complete(std::size_t ui, unsigned slot, double t) = 0;

  /// The abort clock of `slot` fired before the download finished.
  virtual void on_abort(std::size_t ui, unsigned slot, double t) = 0;

  /// A seed residence ended. `file_idx` is the slot that was seeding, or
  /// EventKernel::kAllFiles for MFCD's joint departure.
  virtual void on_seed_departure(std::size_t ui, unsigned file_idx,
                                 double t) = 0;

  // ---- fault hooks ------------------------------------------------------
  /// A churn burst crashed this user. The policy must tear down every
  /// download/seeding slot: unschedule services, release pool
  /// contributions, fix populations and the active-peer count, and leave
  /// every slot kIdle. It must NOT retire the user or draw randomness —
  /// the kernel removes the user from the live list and schedules the
  /// re-arrival itself (using SimUser::done to decide what survives).
  virtual void on_fault_crash(std::size_t /*ui*/, double /*t*/) {
    throw ConfigError(
        "this scheme policy does not implement churn-burst faults");
  }

  /// A bandwidth-degradation window opened (scale < 1) or closed
  /// (scale = 1): every peer's mu and c are multiplied by `scale` from
  /// time t on. The policy re-derives all service rates accordingly.
  virtual void on_fault_bandwidth(double /*scale*/, double /*t*/) {
    throw ConfigError(
        "this scheme policy does not implement bandwidth faults");
  }

  /// Paranoid auditor: recount the policy's pool bookkeeping (per-torrent
  /// weights, seed bandwidth, populations) from first principles and
  /// throw btmf::AuditError on any mismatch. Default: no policy state.
  virtual void audit(double /*t*/) {}

  /// False for policies that bypass the kernel's service groups and run
  /// their own completion scheduler (MFCD); the kernel auditor then skips
  /// the per-slot group cross-checks.
  [[nodiscard]] virtual bool kernel_scheduled() const { return true; }

  /// True when the scheme's dynamics decompose per torrent — no state is
  /// shared between torrents beyond the arrival process — so the policy
  /// can run under ShardedKernel's decomposed mode. Policies that opt in
  /// must take slot-level randomness from EventKernel::slot_exponential
  /// and keep populations through note_download/note_seed.
  [[nodiscard]] virtual bool shardable() const { return false; }

  /// Next scheme-driven event (CMFSD's Adapt tick); +inf when none.
  [[nodiscard]] virtual double next_policy_event_time() const {
    return std::numeric_limits<double>::infinity();
  }
  virtual void on_policy_event(double /*t*/) {}

  /// Populations are counted in virtual peers for the concurrent schemes
  /// and users for the sequential ones; this is the divisor turning the
  /// class-k Little's-law sojourn into a per-file time.
  [[nodiscard]] virtual double little_divisor(double files) const = 0;

 protected:
  EventKernel* kernel_ = nullptr;
};

/// The shared event loop. Construct with a validated config and a policy,
/// then either call run() exactly once, or — for a decomposed shard —
/// start() / run_until(epoch boundaries) / shard_finish().
class EventKernel {
 public:
  static constexpr unsigned kAllFiles = std::numeric_limits<unsigned>::max();

  EventKernel(const SimConfig& config, SchemePolicy& policy,
              ShardSpec shard = {});

  SimResult run();

  // ---- sharded execution -------------------------------------------------
  /// Arms the arrival process; call once before the first run_until.
  void start();
  /// Advances the event loop to min(t_end, horizon) and pauses exactly at
  /// t_end (the epoch barrier). run() is start() + run_until(horizon).
  void run_until(double t_end);
  /// Collects the decomposed shard's raw output (closures, population
  /// integrals, sample series, counters) after run_until(horizon).
  [[nodiscard]] ShardOutput shard_finish();
  /// Simulation clock after the last run_until — equals the epoch
  /// boundary at a barrier (checked by the sharded paranoid auditor).
  [[nodiscard]] double current_time() const { return cur_t_; }

  // ---- services for policies --------------------------------------------
  [[nodiscard]] const SimConfig& cfg() const { return cfg_; }
  /// Telemetry sinks (copied from cfg.obs). Probe sites must pointer-check
  /// each pillar: `if (kernel.obs().metrics) ...` — observation never
  /// draws RNG and never changes event times (inert-by-default contract).
  [[nodiscard]] const obs::ObsSink& obs() const { return obs_; }
  RandomStream& rng() { return rng_; }
  StatsCollector& stats() { return stats_; }
  /// View of one user's pooled state (cheap reference bundle, return by
  /// value). Spans stay valid across policy callbacks; they are refreshed
  /// by fetching a new view after any admission.
  SimUser user(std::size_t ui) { return pool_.view(ui); }
  [[nodiscard]] const std::vector<std::size_t>& live() const { return live_; }
  std::vector<double>& down_pop() { return down_pop_; }
  std::vector<double>& seed_pop() { return seed_pop_; }
  /// The bandwidth class user `ui` drew at admission (index into
  /// cfg().bandwidth_classes; always 0 when the class list is empty, i.e.
  /// the homogeneous single class). Drawn from the shared arrival stream
  /// before the decomposed ownership filter, so every shard assigns the
  /// same class to the same admission sequence.
  [[nodiscard]] unsigned bandwidth_class(std::size_t ui) const {
    return bclass_.empty() ? 0 : bclass_[ui];
  }

  // ---- sharding services ------------------------------------------------
  [[nodiscard]] bool decomposed() const { return shard_.decomposed; }
  [[nodiscard]] unsigned shard_index() const { return shard_.index; }
  [[nodiscard]] unsigned shard_count() const { return shard_.count; }
  /// True when torrent `f`'s events belong to this kernel instance.
  [[nodiscard]] bool owns_torrent(unsigned f) const {
    return !shard_.decomposed || shard_.count <= 1 ||
           f % shard_.count == shard_.index;
  }
  /// Exp(rate) variate for (ui, slot). Decomposed kernels draw from the
  /// counter stream keyed by (admission seq, file id) — the value depends
  /// only on which download is drawing and how many draws it made, never
  /// on shard layout. Legacy kernels fall back to the shared stream.
  double slot_exponential(std::size_t ui, unsigned slot, double rate);
  /// Decomposed population bookkeeping: a class-`cls` user's virtual peer
  /// on `torrent` started (+1) or stopped (-1) downloading / seeding at t.
  /// Maintains the warmup-clamped per-(torrent, class) time integrals and
  /// the instantaneous per-class counts behind the sample series.
  void note_download(unsigned torrent, unsigned cls, int delta, double t);
  void note_seed(unsigned torrent, unsigned cls, int delta, double t);
  /// Instantaneous decomposed per-class counts (k is 0-based).
  [[nodiscard]] std::int64_t down_count(unsigned k) const {
    return down_cnt_[k];
  }
  [[nodiscard]] std::int64_t seed_count(unsigned k) const {
    return seed_cnt_[k];
  }

  /// Creates an empty service group (rate 0) whose integral starts at `t`.
  std::size_t new_group(double t);
  /// Sets a group's rate, advancing its service integral to `t` first.
  void set_group_rate(std::size_t gid, double rate, double t);
  /// Adds `delta` to a group's rate, for policies that maintain a summed
  /// rate by increments.
  void add_group_rate(std::size_t gid, double delta, double t);
  [[nodiscard]] double group_rate(std::size_t gid) const {
    return groups_[gid].rate;
  }

  /// Schedules `work` units of service for (ui, slot) in group `gid` and
  /// marks the slot downloading. Starts a fresh download instance: any
  /// previous abort clock of the slot is invalidated.
  void begin_service(std::size_t ui, unsigned slot, std::size_t gid,
                     double work, double t);
  /// Moves an in-flight download to another group, preserving its abort
  /// clock (CMFSD re-grouping when rho changes).
  void move_service(std::size_t ui, unsigned slot, std::size_t gid,
                    double work, double t);
  /// Forgets the scheduled completion and abort clock of (ui, slot).
  /// The caller updates SlotState itself.
  void end_service(std::size_t ui, unsigned slot);
  /// Service still owed to (ui, slot) at time `t` (>= 0).
  [[nodiscard]] double remaining_work(std::size_t ui, unsigned slot, double t);

  /// Draws an Exp(abort_rate) deadline for the slot's current download
  /// instance; no-op (and no RNG draw) when abort_rate == 0.
  void arm_abort(std::size_t ui, unsigned slot, double t);

  /// Queues a seed residence ending at `when`. During a seed-failure
  /// window the residence is cut short: it fires at the current time
  /// instead (seeding is impossible while the infrastructure is down).
  void schedule_seed_departure(std::size_t ui, unsigned file_idx, double when);

  /// Policies that run their own incremental scheduler (MFCD's kinetic
  /// per-user wakes) report their rate epochs through this.
  void add_rate_epochs(std::size_t n) { rate_epochs_ += n; }

  /// Tracks the concurrent peer count (virtual peers for the concurrent
  /// schemes, users for the sequential ones) and throws SolverError when
  /// it exceeds cfg.max_active_peers. Decomposed shards each count the
  /// virtual peers they own, so the guard applies per shard.
  void add_active_peers(std::size_t n);
  void remove_active_peers(std::size_t n) { active_peer_count_ -= n; }

  /// Removes the user from the live list and records its visit: aborted
  /// users are only counted, completed ones feed the sample statistics.
  /// A decomposed kernel records a ShardClosure instead and recycles the
  /// user's pool row.
  void retire_user(std::size_t ui, double t, double download,
                   double final_rho, bool adaptive);

  /// Paranoid invariant audit of the kernel structures and the policy's
  /// pools; throws btmf::AuditError with a diagnosis on violation. Runs
  /// automatically after every dispatch round when cfg.paranoid is set
  /// (or the library was built with -DBTMF_PARANOID).
  void audit(double t);

 private:
  struct PendingEntry {
    double target = 0.0;
    std::uint64_t seq = 0;
    std::size_t ui = 0;
    unsigned slot = 0;
    std::uint32_t gen = 0;
    /// (target, seq, slot) lexicographic order keeps simultaneous
    /// completions deterministic; admission order (seq) is stable under
    /// user-row recycling where raw pool ids are not.
    bool operator>(const PendingEntry& o) const {
      if (target != o.target) return target > o.target;
      if (seq != o.seq) return seq > o.seq;
      return slot > o.slot;
    }
  };

  /// `pending` is a std::greater min-heap maintained with the <algorithm>
  /// heap primitives (identical pop order to std::priority_queue) so the
  /// paranoid auditor can walk the entries in place.
  struct ServiceGroup {
    double rate = 0.0;
    double acc = 0.0;     ///< S_g at last_t
    double last_t = 0.0;
    std::vector<PendingEntry> pending;
  };

  struct AbortEntry {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::size_t ui = 0;
    unsigned slot = 0;
    std::uint32_t inst = 0;
    bool operator>(const AbortEntry& o) const {
      if (time != o.time) return time > o.time;
      if (seq != o.seq) return seq > o.seq;
      return slot > o.slot;
    }
  };

  struct SeedDeparture {
    double time = 0.0;
    std::uint64_t seq = 0;
    std::size_t ui = 0;
    unsigned file_idx = 0;
    bool operator>(const SeedDeparture& o) const {
      if (time != o.time) return time > o.time;
      if (seq != o.seq) return seq > o.seq;
      return file_idx > o.file_idx;
    }
  };

  /// One endpoint of a scheduled fault: the timeline below is the plan
  /// compiled to sorted edges. Kind order breaks time ties so "outage
  /// ends" dispatches before "next outage begins" at the same instant.
  struct FaultEdge {
    double time = 0.0;
    enum class Kind : std::uint8_t {
      kTrackerUp,
      kTrackerDown,
      kSeedUp,
      kSeedDown,
      kBandwidthUp,
      kBandwidthDown,
      kChurn,
    } kind = Kind::kChurn;
    std::size_t idx = 0;  ///< index into the plan's vector for this kind
    bool operator<(const FaultEdge& o) const {
      if (time != o.time) return time < o.time;
      if (kind != o.kind) return kind < o.kind;
      return idx < o.idx;
    }
  };

  /// A user waiting to (re-)enter the swarm: a tracker-outage visitor
  /// retrying after the outage (empty `files` — the file set is drawn at
  /// admission) or a crashed peer re-arriving with its unfinished files.
  struct Readmission {
    double time = 0.0;
    std::uint64_t seq = 0;  ///< injection order; breaks time ties
    std::vector<unsigned> files;
    bool operator>(const Readmission& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  /// Lazy warmup-clamped integral of one decomposed (torrent, class)
  /// population cell: cnt held constant since mark.
  struct PopCell {
    double integ = 0.0;
    double mark = 0.0;
    std::int64_t cnt = 0;
  };

  void sync_group(ServiceGroup& g, double t) {
    if (t > g.last_t) {
      g.acc += g.rate * (t - g.last_t);
      g.last_t = t;
    }
  }
  /// Due test in service space; immune to float residue in candidate
  /// times recomputed across rate epochs.
  [[nodiscard]] static bool due(double target, double acc) {
    return target - acc <= 1e-9 * std::max(1.0, std::abs(target));
  }
  void drop_stale_pending(ServiceGroup& g);
  /// Re-derives the group's earliest candidate completion time and
  /// re-keys it in the cross-group queue.
  void update_candidate(std::size_t gid);

  /// Next visit time strictly after `t`. Homogeneous arrivals draw one
  /// Exp(visit_rate) gap — exactly the pre-demand-model stream, bit for
  /// bit. Time-varying processes sample by thinning against the peak
  /// rate; every extra draw lives on this gated path only.
  double next_arrival_after(double t);
  void process_arrival(double t);
  /// Creates a user requesting `files` at time t and hands it to the
  /// policy; shared by organic arrivals and fault re-admissions. A
  /// decomposed kernel advances the global admission sequence for every
  /// arrival but only materialises users with at least one owned file.
  void admit_user(std::span<const unsigned> files, double t);
  void drain_completions(double t);
  void drain_aborts(double t);
  /// Earliest valid abort deadline; pops stale entries.
  double peek_abort();

  void flush_cell(PopCell& c, double t) {
    if (t > c.mark) {
      const double lo = std::max(c.mark, cfg_.warmup);
      if (t > lo) c.integ += static_cast<double>(c.cnt) * (t - lo);
      c.mark = t;
    }
  }

  // ---- fault machinery --------------------------------------------------
  void build_fault_timeline();
  [[nodiscard]] double next_fault_time() const {
    return fault_cursor_ < fault_timeline_.size()
               ? fault_timeline_[fault_cursor_].time
               : std::numeric_limits<double>::infinity();
  }
  void process_fault_edges(double t);
  void apply_tracker_down(const TrackerOutageFault& f);
  void apply_tracker_up(const TrackerOutageFault& f, double t);
  void apply_seed_down(double t);
  void apply_churn(const ChurnBurstFault& f, double t);
  [[nodiscard]] double next_readmission_time() const {
    return readmissions_.empty()
               ? std::numeric_limits<double>::infinity()
               : readmissions_.front().time;
  }
  void drain_readmissions(double t);
  void push_readmission(double when, std::vector<unsigned> files);
  void note_readmission_peak();
  /// Opens a recovery episode if the fault edge dented the population;
  /// closes it once the live peer count regains the reference level.
  void begin_recovery_watch(std::size_t pre_fault_peers, double t);
  void update_recovery_watch(double t);

  // ---- telemetry --------------------------------------------------------
  /// Appends one sample of every population series at sim-time `when`
  /// (left limits: the piecewise-constant value before the dispatch).
  void record_sample(double when);
  /// Ends the open batched "kernel.dispatch" trace span, stamping the
  /// number of dispatch rounds it covered.
  void flush_dispatch_span();
  /// End-of-run export: counters/gauges/series into the attached sinks
  /// and the population trajectories into `result`.
  void export_observations(SimResult& result);

  /// End of a legacy (non-decomposed) run: census, finalize, export.
  SimResult finish();

  void add_live(std::size_t ui) {
    pool_.live_pos(ui) = live_.size();
    live_.push_back(ui);
  }
  void remove_live(std::size_t ui) {
    const std::size_t pos = pool_.live_pos(ui);
    live_[pos] = live_.back();
    pool_.live_pos(live_[pos]) = pos;
    live_.pop_back();
  }

  SimConfig cfg_;
  SchemePolicy& policy_;
  ShardSpec shard_;
  RandomStream rng_;
  StatsCollector stats_;

  UserPool pool_;
  std::vector<std::size_t> live_;
  std::uint64_t next_seq_ = 0;  ///< global admission sequence

  std::vector<ServiceGroup> groups_;
  IndexedMinHeap candidates_;  ///< group id -> earliest completion time

  /// std::greater min-heaps maintained with the <algorithm> primitives.
  std::vector<AbortEntry> abort_queue_;
  std::vector<SeedDeparture> seed_queue_;

  std::vector<double> down_pop_;
  std::vector<double> seed_pop_;

  std::size_t total_arrivals_ = 0;
  std::size_t active_peer_count_ = 0;
  std::size_t rate_epochs_ = 0;
  std::size_t peak_live_peers_ = 0;

  // ---- event-loop state (persists across run_until epochs) --------------
  bool started_ = false;
  double cur_t_ = 0.0;
  double next_arrival_ = 0.0;
  /// Peak of the (possibly time-varying) arrival rate — the thinning
  /// envelope. Equals cfg_.visit_rate for a homogeneous process.
  double arrival_peak_ = 0.0;
  std::vector<unsigned> scratch_files_;  ///< arrival draw, no per-event alloc
  std::vector<unsigned> scratch_owned_;  ///< decomposed ownership filter
  /// Per-user bandwidth class (parallel to the user pool); empty when
  /// cfg_.bandwidth_classes is empty so the homogeneous path allocates
  /// and draws nothing.
  std::vector<std::uint8_t> bclass_;

  // ---- decomposed-mode state --------------------------------------------
  std::uint64_t slot_root_ = 0;  ///< master key of the slot counter streams
  std::vector<PopCell> down_cells_;  ///< K*K, torrent*K + (cls-1)
  std::vector<PopCell> seed_cells_;
  std::vector<std::int64_t> down_cnt_;  ///< instantaneous, per class
  std::vector<std::int64_t> seed_cnt_;
  std::vector<std::size_t> arrivals_cls_;  ///< sampled admissions per class
  std::vector<ShardClosure> closures_;
  std::size_t prim_events_ = 0;

  // ---- telemetry state --------------------------------------------------
  obs::ObsSink obs_;            ///< cfg.obs copy; null pointers = inert
  /// Internal per-run recorder backing the SimResult population
  /// trajectories — always on (deterministic, a few hundred samples);
  /// exported into obs_.recorder at the end of the run when one is set.
  std::unique_ptr<obs::TimeSeriesRecorder> sampler_;
  std::vector<obs::SeriesId> down_series_;   ///< per class
  std::vector<obs::SeriesId> seed_series_;   ///< per class
  obs::SeriesId live_series_ = 0;
  obs::SeriesId queue_series_ = 0;
  obs::SeriesId recovering_series_ = 0;
  /// The configured lambda(t) sampled on the population cadence — makes
  /// time-varying demand visible next to the populations it drives.
  /// Pure configuration readout: no RNG, no event-time changes.
  obs::SeriesId arrival_series_ = 0;
  double sample_dt_ = 0.0;
  double next_sample_ = 0.0;
  /// Histogram ids, resolved up front when obs_.metrics is attached.
  obs::MetricId hist_online_ = 0;
  obs::MetricId hist_download_ = 0;
  obs::MetricId hist_files_ = 0;
  std::optional<obs::TraceWriter::Span> dispatch_span_;
  std::size_t dispatch_rounds_ = 0;  ///< rounds inside dispatch_span_

  // ---- fault state ------------------------------------------------------
  std::vector<FaultEdge> fault_timeline_;
  std::size_t fault_cursor_ = 0;
  bool paranoid_ = false;
  bool tracker_down_ = false;
  bool tracker_drop_ = false;       ///< drop vs queue during the outage
  std::size_t tracker_queue_ = 0;   ///< visitors waiting for the tracker
  bool seed_down_ = false;
  double now_ = 0.0;                ///< current dispatch time (seed clamp)
  std::vector<Readmission> readmissions_;  ///< std::greater min-heap
  std::uint64_t readmission_seq_ = 0;

  std::size_t faults_injected_ = 0;
  std::size_t downloads_killed_ = 0;
  std::size_t arrivals_dropped_ = 0;
  std::size_t arrivals_queued_ = 0;
  std::size_t readmissions_count_ = 0;
  std::size_t readmission_queue_peak_ = 0;
  bool recovering_ = false;
  std::size_t recover_ref_ = 0;     ///< pre-fault live peer count
  double recovery_start_ = 0.0;
  double time_to_recover_ = 0.0;
  std::size_t faults_unrecovered_ = 0;
};

}  // namespace btmf::sim
