// Unified discrete-event kernel of the flow-level simulator.
//
// One kernel drives all four downloading schemes (MTCD, MTSD, MFCD,
// CMFSD). The kernel owns the machinery every scheme shares — Poisson
// arrivals, binomial file-set sampling, user lifecycle, the seed-departure
// queue, abort clocks, warmup-aware population integrals and SimResult
// accumulation — while a SchemePolicy supplies only the scheme-specific
// rules: how arrivals start downloads, how service rates are allocated,
// and what happens when a download completes or a seed departs.
//
// Incremental rate scheduling
// ---------------------------
// In a flow-level model a peer's download rate changes only when its
// torrent's population or pooled seed bandwidth changes — not per event.
// The kernel therefore never rescans live peers. Downloads that share a
// rate are grouped into a ServiceGroup g that accumulates service
//
//     S_g(t) = integral of rate_g over time,
//
// advanced lazily (acc/last_t) whenever the group is touched. A download
// with `work` units of service entering at t0 completes when S_g reaches
// S_g(t0) + work; that target is pushed onto the group's min-heap and the
// group's earliest candidate *time* lives in an indexed priority queue
// across groups. A rate change ("rate epoch") syncs S_g, swaps the slope
// and re-keys one heap entry — O(log G) instead of O(live peers). Stale
// heap entries (download ended, moved groups, or was re-targeted) are
// invalidated by per-slot generation counters and skipped lazily.
//
// Invariant: between rate epochs, S_g is linear in t, so the candidate
// completion time of the group's smallest pending target is exact; a due
// test in *service* space (target - acc <= eps) rather than time space
// makes completions immune to float residue in recomputed candidates.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "btmf/sim/config.h"
#include "btmf/sim/indexed_heap.h"
#include "btmf/sim/rng.h"
#include "btmf/sim/stats.h"

namespace btmf::sim {

/// Lifecycle of one download slot (one file for the concurrent schemes,
/// the current stage for the sequential ones).
enum class SlotState : std::uint8_t { kIdle, kDownloading, kSeeding };

/// Per-user state. The kernel owns the lifecycle fields and the per-slot
/// scheduling state; the scheme scratch fields below are written by the
/// policies only.
struct SimUser {
  double arrival = 0.0;
  std::vector<unsigned> files;  ///< requested torrent ids
  unsigned cls = 0;             ///< number of files requested
  bool sampled = false;         ///< arrived after warm-up
  bool aborted = false;         ///< abandoned some download

  // Per-slot scheduling state (sized cls).
  std::vector<SlotState> state;
  std::vector<std::uint32_t> sched_gen;  ///< validates group heap entries
  std::vector<std::uint32_t> inst;       ///< validates abort heap entries
  std::vector<std::size_t> gid;          ///< current service group
  std::vector<double> target;            ///< completion target in S_g space

  // Scheme scratch.
  unsigned seq_pos = 0;          ///< sequential schemes: current stage
  unsigned live_parts = 0;       ///< MTCD: virtual peers not yet departed
  double stage_start = 0.0;
  double download_accum = 0.0;   ///< summed stage durations
  double last_completion = 0.0;

  // CMFSD / Adapt scratch.
  double rho = 0.0;
  bool cheater = false;
  bool adaptive = false;
  unsigned vseed_target = 0;     ///< subtorrent served (local pool modes)
  double up_base = 0.0;          ///< uploaded-virtual accumulated at up_mark
  double up_mark = 0.0;          ///< time of last upload sync
  double rv_base = 0.0;          ///< received-virtual accumulated at rv_mark
  double rv_mark = 0.0;          ///< pool integral value at last sync
  unsigned hi_streak = 0;
  unsigned lo_streak = 0;

  std::size_t live_pos = 0;      ///< index into the kernel's live list
};

class EventKernel;

/// Scheme-specific rules plugged into the kernel. Implementations live in
/// policy_multi_torrent.cpp / policy_cmfsd.cpp; see docs/MODELS.md for the
/// recipe for adding a new one.
class SchemePolicy {
 public:
  virtual ~SchemePolicy() = default;

  /// Called once before the run; store the kernel and size pool state.
  virtual void attach(EventKernel& kernel) { kernel_ = &kernel; }

  /// A user with a non-empty file set arrived (already in the live list);
  /// draw scheme-specific randomness, start downloads, update populations.
  virtual void on_arrival(std::size_t ui, double t) = 0;

  /// Re-derive the rates of groups whose pools changed since the last
  /// call. Runs once per loop iteration, before the next event time is
  /// chosen; must be a no-op when nothing is dirty.
  virtual void refresh_rates(double t) = 0;

  /// The download in `slot` reached its service target (the kernel has
  /// already unscheduled it).
  virtual void on_complete(std::size_t ui, unsigned slot, double t) = 0;

  /// The abort clock of `slot` fired before the download finished.
  virtual void on_abort(std::size_t ui, unsigned slot, double t) = 0;

  /// A seed residence ended. `file_idx` is the slot that was seeding, or
  /// EventKernel::kAllFiles for MFCD's joint departure.
  virtual void on_seed_departure(std::size_t ui, unsigned file_idx,
                                 double t) = 0;

  /// Next scheme-driven event (CMFSD's Adapt tick); +inf when none.
  [[nodiscard]] virtual double next_policy_event_time() const {
    return std::numeric_limits<double>::infinity();
  }
  virtual void on_policy_event(double /*t*/) {}

  /// Populations are counted in virtual peers for the concurrent schemes
  /// and users for the sequential ones; this is the divisor turning the
  /// class-k Little's-law sojourn into a per-file time.
  [[nodiscard]] virtual double little_divisor(double files) const = 0;

 protected:
  EventKernel* kernel_ = nullptr;
};

/// The shared event loop. Construct with a validated config and a policy,
/// then call run() exactly once.
class EventKernel {
 public:
  static constexpr unsigned kAllFiles = std::numeric_limits<unsigned>::max();

  EventKernel(const SimConfig& config, SchemePolicy& policy);

  SimResult run();

  // ---- services for policies --------------------------------------------
  [[nodiscard]] const SimConfig& cfg() const { return cfg_; }
  RandomStream& rng() { return rng_; }
  StatsCollector& stats() { return stats_; }
  SimUser& user(std::size_t ui) { return users_[ui]; }
  [[nodiscard]] const std::vector<std::size_t>& live() const { return live_; }
  std::vector<double>& down_pop() { return down_pop_; }
  std::vector<double>& seed_pop() { return seed_pop_; }

  /// Creates an empty service group (rate 0) whose integral starts at `t`.
  std::size_t new_group(double t);
  /// Sets a group's rate, advancing its service integral to `t` first.
  void set_group_rate(std::size_t gid, double rate, double t);
  /// Adds `delta` to a group's rate, for policies that maintain a summed
  /// rate by increments.
  void add_group_rate(std::size_t gid, double delta, double t);
  [[nodiscard]] double group_rate(std::size_t gid) const {
    return groups_[gid].rate;
  }

  /// Schedules `work` units of service for (ui, slot) in group `gid` and
  /// marks the slot downloading. Starts a fresh download instance: any
  /// previous abort clock of the slot is invalidated.
  void begin_service(std::size_t ui, unsigned slot, std::size_t gid,
                     double work, double t);
  /// Moves an in-flight download to another group, preserving its abort
  /// clock (CMFSD re-grouping when rho changes).
  void move_service(std::size_t ui, unsigned slot, std::size_t gid,
                    double work, double t);
  /// Forgets the scheduled completion and abort clock of (ui, slot).
  /// The caller updates SlotState itself.
  void end_service(std::size_t ui, unsigned slot);
  /// Service still owed to (ui, slot) at time `t` (>= 0).
  [[nodiscard]] double remaining_work(std::size_t ui, unsigned slot, double t);

  /// Draws an Exp(abort_rate) deadline for the slot's current download
  /// instance; no-op (and no RNG draw) when abort_rate == 0.
  void arm_abort(std::size_t ui, unsigned slot, double t);

  void schedule_seed_departure(std::size_t ui, unsigned file_idx, double when);

  /// Policies that run their own incremental scheduler (MFCD's kinetic
  /// per-user wakes) report their rate epochs through this.
  void add_rate_epochs(std::size_t n) { rate_epochs_ += n; }

  /// Tracks the concurrent peer count (virtual peers for the concurrent
  /// schemes, users for the sequential ones) and throws SolverError when
  /// it exceeds cfg.max_active_peers.
  void add_active_peers(std::size_t n);
  void remove_active_peers(std::size_t n) { active_peer_count_ -= n; }

  /// Removes the user from the live list and records its visit: aborted
  /// users are only counted, completed ones feed the sample statistics.
  void retire_user(std::size_t ui, double t, double download,
                   double final_rho, bool adaptive);

 private:
  struct PendingEntry {
    double target = 0.0;
    std::size_t ui = 0;
    unsigned slot = 0;
    std::uint32_t gen = 0;
    /// (target, ui, slot) lexicographic order keeps simultaneous
    /// completions deterministic.
    bool operator>(const PendingEntry& o) const {
      if (target != o.target) return target > o.target;
      if (ui != o.ui) return ui > o.ui;
      return slot > o.slot;
    }
  };

  struct ServiceGroup {
    double rate = 0.0;
    double acc = 0.0;     ///< S_g at last_t
    double last_t = 0.0;
    std::priority_queue<PendingEntry, std::vector<PendingEntry>,
                        std::greater<>>
        pending;
  };

  struct AbortEntry {
    double time = 0.0;
    std::size_t ui = 0;
    unsigned slot = 0;
    std::uint32_t inst = 0;
    bool operator>(const AbortEntry& o) const {
      if (time != o.time) return time > o.time;
      if (ui != o.ui) return ui > o.ui;
      return slot > o.slot;
    }
  };

  struct SeedDeparture {
    double time = 0.0;
    std::size_t ui = 0;
    unsigned file_idx = 0;
    bool operator>(const SeedDeparture& o) const {
      if (time != o.time) return time > o.time;
      if (ui != o.ui) return ui > o.ui;
      return file_idx > o.file_idx;
    }
  };

  void sync_group(ServiceGroup& g, double t) {
    if (t > g.last_t) {
      g.acc += g.rate * (t - g.last_t);
      g.last_t = t;
    }
  }
  /// Due test in service space; immune to float residue in candidate
  /// times recomputed across rate epochs.
  [[nodiscard]] static bool due(double target, double acc) {
    return target - acc <= 1e-9 * std::max(1.0, std::abs(target));
  }
  void drop_stale_pending(ServiceGroup& g);
  /// Re-derives the group's earliest candidate completion time and
  /// re-keys it in the cross-group queue.
  void update_candidate(std::size_t gid);

  void process_arrival(double t);
  void drain_completions(double t);
  void drain_aborts(double t);
  /// Earliest valid abort deadline; pops stale entries.
  double peek_abort();

  void add_live(std::size_t ui) {
    users_[ui].live_pos = live_.size();
    live_.push_back(ui);
  }
  void remove_live(std::size_t ui) {
    const std::size_t pos = users_[ui].live_pos;
    live_[pos] = live_.back();
    users_[live_[pos]].live_pos = pos;
    live_.pop_back();
  }

  SimConfig cfg_;
  SchemePolicy& policy_;
  RandomStream rng_;
  StatsCollector stats_;

  std::vector<SimUser> users_;
  std::vector<std::size_t> live_;

  std::vector<ServiceGroup> groups_;
  IndexedMinHeap candidates_;  ///< group id -> earliest completion time

  std::priority_queue<AbortEntry, std::vector<AbortEntry>, std::greater<>>
      abort_queue_;
  std::priority_queue<SeedDeparture, std::vector<SeedDeparture>,
                      std::greater<>>
      seed_queue_;

  std::vector<double> down_pop_;
  std::vector<double> seed_pop_;

  std::size_t total_arrivals_ = 0;
  std::size_t active_peer_count_ = 0;
  std::size_t rate_epochs_ = 0;
  std::size_t peak_live_peers_ = 0;
};

}  // namespace btmf::sim
