// Fault-injection plans for the event kernel.
//
// The fluid models (and the kernel's default configuration) assume an
// idealized swarm: the tracker never blinks, seeds retire on their own
// schedule and arrival rates are stationary. A FaultPlan is a declarative
// schedule of departures from that clean room, replayed deterministically
// by the kernel:
//
//  * TrackerOutageFault — during [start, start+duration) indexing-server
//    visits cannot register. Arrivals are either dropped outright or
//    queued; queued visitors retry after the outage with independent
//    Exp(readmit_rate) backoffs (the re-admission queue and its peak size
//    are reported in SimResult).
//  * SeedFailureFault — at `start` the seeding infrastructure fails: every
//    queued seeding residence ends immediately (the pooled seed bandwidth
//    collapses) and until start+duration newly completed peers cannot
//    stay to seed either. Recovery is organic: once the window closes,
//    completions seed normally and the pool refills.
//  * ChurnBurstFault — at `time` each user with a download in flight
//    crashes independently with probability kill_fraction. A crashed peer
//    re-arrives after an Exp(backoff_rate) backoff re-requesting its
//    unfinished files; each *finished* file is lost (and re-requested)
//    with probability progress_loss.
//  * BandwidthFault — during [start, start+duration) every peer's upload
//    and download bandwidth (mu and c) is multiplied by `scale`; all
//    service rates scale accordingly and restore when the window closes.
//
// An empty plan is guaranteed to leave the kernel bit-identical to a run
// without the fault layer (tested in tests/sim/fault_sim_test.cpp). All
// fault randomness (kill coin flips, backoffs) is drawn from the
// replication's RandomStream, so faulted runs are as deterministic as
// clean ones.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace btmf::sim {

struct TrackerOutageFault {
  double start = 0.0;
  double duration = 0.0;
  /// false: queue arrivals during the outage and re-admit them afterwards;
  /// true: drop them (the visitor never retries).
  bool drop = false;
  /// Rate of the per-visitor Exp backoff applied after the outage ends
  /// (queue mode only).
  double readmit_rate = 1.0;
};

struct SeedFailureFault {
  double start = 0.0;
  /// Seeding stays impossible until start + duration.
  double duration = 0.0;
};

struct ChurnBurstFault {
  double time = 0.0;
  /// Independent crash probability of each user with a live download.
  double kill_fraction = 0.5;
  /// Probability that a *completed* file is lost in the crash and must be
  /// re-downloaded; in-flight progress is always lost.
  double progress_loss = 1.0;
  /// Crashed peers re-arrive after an Exp(backoff_rate) delay.
  double backoff_rate = 1.0;
};

struct BandwidthFault {
  double start = 0.0;
  double duration = 0.0;
  /// mu and c are multiplied by this during the window; must be in (0, 1].
  double scale = 0.5;
};

/// A declarative schedule of fault events, replayed by the kernel.
struct FaultPlan {
  std::vector<TrackerOutageFault> tracker_outages;
  std::vector<SeedFailureFault> seed_failures;
  std::vector<ChurnBurstFault> churn_bursts;
  std::vector<BandwidthFault> bandwidth_faults;

  [[nodiscard]] bool empty() const {
    return tracker_outages.empty() && seed_failures.empty() &&
           churn_bursts.empty() && bandwidth_faults.empty();
  }

  /// Total number of scheduled faults, irrespective of the horizon.
  [[nodiscard]] std::size_t size() const {
    return tracker_outages.size() + seed_failures.size() +
           churn_bursts.size() + bandwidth_faults.size();
  }

  /// Throws btmf::ConfigError on out-of-range values or overlapping
  /// windows of the same fault type.
  void validate() const;
};

/// Parses the btmf_tool `--faults` mini-language: a semicolon-separated
/// list of fault clauses, each a colon-separated tuple,
///
///   tracker:<start>:<duration>[:drop|:queue[:<readmit_rate>]]
///   seed:<start>:<duration>
///   churn:<time>:<kill_fraction>[:<progress_loss>[:<backoff_rate>]]
///   bw:<start>:<duration>:<scale>
///
/// e.g. "tracker:500:200;churn:1200:0.5:1.0:0.2;seed:2000:400".
/// Throws btmf::ConfigError on malformed specs.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

}  // namespace btmf::sim
