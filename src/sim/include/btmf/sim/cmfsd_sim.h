// Flow-level discrete-event engine for CMFSD (Sec. 3.5) including the
// Adapt mechanism (Sec. 4.3) and cheating peers.
//
// One multi-file torrent with K subtorrents. Users arrive Poisson(lambda0),
// draw a file set from the binomial correlation model, shuffle it and
// download sequentially at full download bandwidth. While downloading file
// j >= 2 a peer is a *partial seed*: it plays tit-for-tat with rho x mu in
// its current subtorrent and donates (1 - rho) x mu through a virtual seed
// serving one of its completed files. After the last file it becomes a
// real seed for an Exp(gamma) residence.
//
// Service rates mirror the fluid model (5): each downloader receives
// eta x (its own TFT allocation) from peer exchange plus a share of the
// pooled virtual-seed + real-seed bandwidth. Under SeedPoolMode::kGlobal
// the pool is shared equally by all downloaders of the torrent (exactly
// the S^{i,j} term); under kSubtorrentLocal each virtual seed feeds only
// the one subtorrent it serves and real seeds split bandwidth across
// their files — a stricter reading of the protocol used to probe the
// fluid assumption.
//
// Per-peer rho: cheaters pin rho = 1 forever; obedient peers either use
// the fixed config.rho or run Adapt (start at rho = 0, every `period`
// compare virtual-seed upload vs. virtual-seed download and nudge rho by
// step_up / step_down when the imbalance Delta leaves the
// [phi_lo, phi_hi] dead band for `consecutive` periods).
#pragma once

#include "btmf/sim/config.h"
#include "btmf/sim/stats.h"

namespace btmf::sim {

/// Runs one replication; `config.scheme` must be kCmfsd.
SimResult run_cmfsd_sim(const SimConfig& config);

}  // namespace btmf::sim
