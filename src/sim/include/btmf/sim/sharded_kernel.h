// ShardedKernel: deterministic parallel driver for torrent-decomposed
// schemes.
//
// A shardable policy (SchemePolicy::shardable) has no state coupling
// between torrents beyond the shared arrival process, so the simulation
// splits into min(cfg.shards, num_files) independent EventKernel
// instances — shard s owns the torrents f with f % S == s. Every shard
// replays the identical arrival stream from cfg.seed and takes slot-level
// randomness from counter streams keyed by (admission seq, file id), so
// the union of the shards' event histories is the same set of events for
// ANY shard count, and merging their ShardOutputs (summing per-torrent
// population integrals in ascending torrent order, folding per-user
// closures by admission seq) yields a SimResult that is bit-identical
// across every shards x kernel_threads configuration. See docs/SCALE.md
// for the contract and its proof obligations.
//
// Shards advance in lockstep through kEpochs rate-epoch barriers
// (run_until on each horizon/kEpochs boundary), on a ThreadPool when
// kernel_threads allows, inline otherwise. The barriers exist for
// observability (epoch-wise progress, barrier-wait accounting) and to
// bound the skew between shards; correctness never depends on them
// because the shards share no mutable state.
//
// Non-shardable policies and runs with an active FaultPlan fall back to
// a single kernel: the fault layer's churn/outage machinery is global by
// nature. A shardable policy still runs in decomposed mode then (S = 1),
// exercising the same code path the parallel run uses.
#pragma once

#include <functional>
#include <memory>

#include "btmf/sim/event_kernel.h"

namespace btmf::sim {

/// Builds one fresh policy instance per call; each shard kernel owns its
/// own instance (policies hold per-kernel pool bookkeeping).
using PolicyFactory = std::function<std::unique_ptr<SchemePolicy>()>;

class ShardedKernel {
 public:
  /// Rate-epoch barriers per run; horizon * e / kEpochs are the pause
  /// points. Fixed so the barrier schedule never depends on runtime
  /// conditions (a determinism requirement for the paranoid clock audit).
  static constexpr unsigned kEpochs = 16;

  ShardedKernel(const SimConfig& config, PolicyFactory factory);

  /// Runs the simulation and merges the shards; call exactly once.
  SimResult run();

 private:
  SimResult merge(std::vector<ShardOutput> outs, SchemePolicy& policy,
                  unsigned num_shards, double barrier_wait_s);

  SimConfig cfg_;
  PolicyFactory factory_;
};

}  // namespace btmf::sim
