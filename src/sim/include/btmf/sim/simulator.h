// Public entry points of the discrete-event simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "btmf/sim/config.h"
#include "btmf/sim/stats.h"

namespace btmf::parallel {
class ThreadPool;
}

namespace btmf::sim {

/// Runs one replication of `config`, dispatching to the multi-torrent or
/// CMFSD engine by `config.scheme`.
SimResult run_simulation(const SimConfig& config);

/// One replication that died with an exception instead of producing a
/// SimResult; `seed` is the derived per-replication seed, so the failure
/// reproduces as a single run_simulation call.
struct ReplicationFailure {
  std::size_t index = 0;     ///< replication number in [0, num_replications)
  std::uint64_t seed = 0;    ///< derived seed of the failed run
  std::string message;       ///< what() of the exception
};

/// Aggregate over independent replications (seeds derived from
/// config.seed via SplitMix64 stream splitting; runs execute on the
/// global thread pool).
///
/// A replication that throws (solver divergence, runaway population,
/// audit failure) is isolated: it lands in `failures` instead of taking
/// down its siblings, and the aggregates are computed over the surviving
/// runs. Only when *every* replication fails does run_replications throw.
struct ReplicationSummary {
  std::vector<SimResult> runs;           ///< surviving runs, in seed order
  std::vector<ReplicationFailure> failures;

  double mean_online_per_file = 0.0;     ///< across-run mean
  /// Across-run standard error; exactly 0 when num_replications == 1
  /// (a single run has no across-run variance to estimate).
  double stderr_online_per_file = 0.0;
  double mean_download_per_file = 0.0;
  double stderr_download_per_file = 0.0;

  /// Across-run means of the per-class sample metrics (index 0 = class 1;
  /// classes that completed no users in a run are skipped for that run).
  std::vector<double> class_online_per_file;
  std::vector<double> class_download_per_file;
  std::vector<double> class_little_online;
  std::vector<double> class_little_download;
  std::vector<double> class_mean_final_rho;
};

ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications);

/// As above but scheduling the replications on `pool`. Each run carries
/// its own derived seed and writes to a pre-allocated slot, so the
/// summary is bitwise identical for any pool size.
ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications,
                                    parallel::ThreadPool& pool);

}  // namespace btmf::sim
