// Public entry points of the discrete-event simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "btmf/sim/config.h"
#include "btmf/sim/stats.h"

namespace btmf::parallel {
class ThreadPool;
}

namespace btmf::sim {

/// Runs one replication of `config`, dispatching to the multi-torrent or
/// CMFSD engine by `config.scheme`.
SimResult run_simulation(const SimConfig& config);

/// Aggregate over independent replications (seeds derived from
/// config.seed via SplitMix64 stream splitting; runs execute on the
/// global thread pool).
struct ReplicationSummary {
  std::vector<SimResult> runs;

  double mean_online_per_file = 0.0;     ///< across-run mean
  /// Across-run standard error; exactly 0 when num_replications == 1
  /// (a single run has no across-run variance to estimate).
  double stderr_online_per_file = 0.0;
  double mean_download_per_file = 0.0;
  double stderr_download_per_file = 0.0;

  /// Across-run means of the per-class sample metrics (index 0 = class 1;
  /// classes that completed no users in a run are skipped for that run).
  std::vector<double> class_online_per_file;
  std::vector<double> class_download_per_file;
  std::vector<double> class_little_online;
  std::vector<double> class_little_download;
  std::vector<double> class_mean_final_rho;
};

ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications);

/// As above but scheduling the replications on `pool`. Each run carries
/// its own derived seed and writes to a pre-allocated slot, so the
/// summary is bitwise identical for any pool size.
ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications,
                                    parallel::ThreadPool& pool);

}  // namespace btmf::sim
