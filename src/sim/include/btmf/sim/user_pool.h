// Struct-of-arrays user state for the event kernel.
//
// The kernel's hot dispatch path touches a handful of per-user fields per
// event (a slot state, a generation counter, a completion target) — under
// the old array-of-structs layout every touch dragged a whole SimUser
// (several vectors deep) through the cache. UserPool stores each field in
// its own column instead: scalar columns indexed by a dense user id, and
// per-slot columns (one cell per requested file) indexed through a
// SlotArena offset, so the structures the dispatch loop scans are flat
// arrays of exactly the bytes it needs.
//
// Identity and recycling
// ----------------------
// User ids are dense and stable for the lifetime of a row, and rows can
// be recycled through a LIFO free list (the arena recycles the slot spans
// length-stably). Every row carries the user's admission sequence number
// `seq`; queue entries snapshot it, and a mismatch (the row was released,
// and possibly re-tenanted) marks the entry stale before any slot column
// is dereferenced. Event orderings tie-break on `seq` — admission order —
// which is invariant under recycling, so recycled and non-recycled runs
// dispatch simultaneous events identically.
//
// SimUser is now a *view*: a bundle of references and spans over the
// columns, constructed on demand by UserPool::view. Policies keep the
// familiar `u.state[slot]` / `u.arrival` syntax; the spans stay valid
// across policy callbacks because users are only ever created from the
// kernel's own admission paths, never mid-callback.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "btmf/sim/arena.h"

namespace btmf::sim {

/// Lifecycle of one download slot (one file for the concurrent schemes,
/// the current stage for the sequential ones).
enum class SlotState : std::uint8_t { kIdle, kDownloading, kSeeding };

/// View of one user's row in the pool. The kernel owns the lifecycle
/// fields and the per-slot scheduling state; the scheme scratch fields
/// below are written by the policies only. Boolean flags are uint8_t
/// references (the columns are byte arrays); they assign and test like
/// bools.
struct SimUser {
  double& arrival;
  std::uint64_t& seq;            ///< admission order; staleness guard
  unsigned& cls;                 ///< logical class: files the USER requested
  std::uint8_t& sampled;         ///< arrived after warm-up
  std::uint8_t& aborted;         ///< abandoned some download

  /// Requested torrent ids — in a sharded kernel, only the slots this
  /// shard owns; cls keeps the user's logical class.
  std::span<unsigned> files;

  // Per-slot scheduling state (sized files.size()).
  std::span<SlotState> state;
  std::span<std::uint32_t> sched_gen;  ///< validates group heap entries
  std::span<std::uint32_t> inst;       ///< validates abort heap entries
  std::span<std::size_t> gid;          ///< current service group
  std::span<double> target;            ///< completion target in S_g space
  /// Per-slot "file fully downloaded" flags, set by the policies; the
  /// fault layer uses them to decide what a crashed peer may keep.
  std::span<std::uint8_t> done;

  // Scheme scratch.
  unsigned& seq_pos;             ///< sequential schemes: current stage
  unsigned& live_parts;          ///< MTCD: virtual peers not yet departed
  double& stage_start;
  double& download_accum;        ///< summed stage durations
  double& last_completion;

  // CMFSD / Adapt scratch.
  double& rho;
  std::uint8_t& cheater;
  std::uint8_t& adaptive;
  unsigned& vseed_target;        ///< subtorrent served (local pool modes)
  double& up_base;               ///< uploaded-virtual accumulated at up_mark
  double& up_mark;               ///< time of last upload sync
  double& rv_base;               ///< received-virtual accumulated at rv_mark
  double& rv_mark;               ///< pool integral value at last sync
  unsigned& hi_streak;
  unsigned& lo_streak;

  std::size_t& live_pos;         ///< index into the kernel's live list

  /// Slots materialised for this user (== cls except in sharded kernels).
  [[nodiscard]] unsigned slots() const {
    return static_cast<unsigned>(state.size());
  }
};

class UserPool {
 public:
  /// seq value of a released row; never collides with a real admission
  /// sequence, so stale entries fail the seq check without touching the
  /// (possibly re-tenanted) slot span.
  static constexpr std::uint64_t kDeadSeq = ~std::uint64_t{0};

  /// Creates a user row (recycling a released one when available) with
  /// the given slot files, resetting every column to its default.
  std::size_t create(std::span<const unsigned> files, unsigned logical_cls,
                     double arrival, bool sampled, std::uint64_t seq) {
    std::size_t ui;
    if (!free_rows_.empty()) {
      ui = free_rows_.back();
      free_rows_.pop_back();
    } else {
      ui = arrival_.size();
      grow_row();
    }
    const std::size_t n = files.size();
    const std::size_t off = arena_.allocate(n);
    ensure_slot_capacity(off + n);
    off_[ui] = off;
    nslots_[ui] = static_cast<unsigned>(n);

    arrival_[ui] = arrival;
    seq_[ui] = seq;
    cls_[ui] = logical_cls;
    sampled_[ui] = sampled ? 1 : 0;
    aborted_[ui] = 0;
    seq_pos_[ui] = 0;
    live_parts_[ui] = 0;
    stage_start_[ui] = 0.0;
    download_accum_[ui] = 0.0;
    last_completion_[ui] = 0.0;
    rho_[ui] = 0.0;
    cheater_[ui] = 0;
    adaptive_[ui] = 0;
    vseed_target_[ui] = 0;
    up_base_[ui] = up_mark_[ui] = 0.0;
    rv_base_[ui] = rv_mark_[ui] = 0.0;
    hi_streak_[ui] = lo_streak_[ui] = 0;
    live_pos_[ui] = 0;

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = off + i;
      files_[c] = files[i];
      state_[c] = SlotState::kIdle;
      sched_gen_[c] = 0;
      inst_[c] = 0;
      gid_[c] = 0;
      target_[c] = 0.0;
      done_[c] = 0;
      rng_ctr_[c] = 0;
    }
    return ui;
  }

  /// Returns the row and its slot span to the free lists. The row's seq
  /// becomes kDeadSeq, so every queue entry naming it is stale from here
  /// on; the slot states are cleared defensively for walkers that only
  /// check states.
  void release(std::size_t ui) {
    const std::size_t off = off_[ui];
    const std::size_t n = nslots_[ui];
    for (std::size_t i = 0; i < n; ++i) state_[off + i] = SlotState::kIdle;
    arena_.release(off, n);
    seq_[ui] = kDeadSeq;
    free_rows_.push_back(ui);
  }

  [[nodiscard]] std::size_t size() const { return arrival_.size(); }
  [[nodiscard]] std::size_t free_rows() const { return free_rows_.size(); }
  [[nodiscard]] const SlotArena& arena() const { return arena_; }

  [[nodiscard]] SimUser view(std::size_t ui) {
    const std::size_t off = off_[ui];
    const std::size_t n = nslots_[ui];
    return SimUser{
        arrival_[ui],
        seq_[ui],
        cls_[ui],
        sampled_[ui],
        aborted_[ui],
        {files_.data() + off, n},
        {state_.data() + off, n},
        {sched_gen_.data() + off, n},
        {inst_.data() + off, n},
        {gid_.data() + off, n},
        {target_.data() + off, n},
        {done_.data() + off, n},
        seq_pos_[ui],
        live_parts_[ui],
        stage_start_[ui],
        download_accum_[ui],
        last_completion_[ui],
        rho_[ui],
        cheater_[ui],
        adaptive_[ui],
        vseed_target_[ui],
        up_base_[ui],
        up_mark_[ui],
        rv_base_[ui],
        rv_mark_[ui],
        hi_streak_[ui],
        lo_streak_[ui],
        live_pos_[ui],
    };
  }

  // ---- hot-path column accessors (no view construction) -----------------
  [[nodiscard]] std::uint64_t seq(std::size_t ui) const { return seq_[ui]; }
  [[nodiscard]] unsigned cls(std::size_t ui) const { return cls_[ui]; }
  [[nodiscard]] unsigned slots(std::size_t ui) const { return nslots_[ui]; }
  [[nodiscard]] bool sampled(std::size_t ui) const {
    return sampled_[ui] != 0;
  }
  [[nodiscard]] bool aborted(std::size_t ui) const {
    return aborted_[ui] != 0;
  }
  [[nodiscard]] double arrival(std::size_t ui) const { return arrival_[ui]; }
  [[nodiscard]] std::uint32_t sched_gen(std::size_t ui, unsigned slot) const {
    return sched_gen_[off_[ui] + slot];
  }
  [[nodiscard]] std::uint32_t inst(std::size_t ui, unsigned slot) const {
    return inst_[off_[ui] + slot];
  }
  [[nodiscard]] SlotState state(std::size_t ui, unsigned slot) const {
    return state_[off_[ui] + slot];
  }
  [[nodiscard]] unsigned file(std::size_t ui, unsigned slot) const {
    return files_[off_[ui] + slot];
  }
  [[nodiscard]] std::size_t& live_pos(std::size_t ui) {
    return live_pos_[ui];
  }
  /// Post-incremented per-slot draw counter for the counter-based RNG
  /// streams of a sharded kernel.
  std::uint32_t bump_rng_ctr(std::size_t ui, unsigned slot) {
    return rng_ctr_[off_[ui] + slot]++;
  }

 private:
  void grow_row() {
    arrival_.push_back(0.0);
    seq_.push_back(kDeadSeq);
    cls_.push_back(0);
    sampled_.push_back(0);
    aborted_.push_back(0);
    off_.push_back(0);
    nslots_.push_back(0);
    seq_pos_.push_back(0);
    live_parts_.push_back(0);
    stage_start_.push_back(0.0);
    download_accum_.push_back(0.0);
    last_completion_.push_back(0.0);
    rho_.push_back(0.0);
    cheater_.push_back(0);
    adaptive_.push_back(0);
    vseed_target_.push_back(0);
    up_base_.push_back(0.0);
    up_mark_.push_back(0.0);
    rv_base_.push_back(0.0);
    rv_mark_.push_back(0.0);
    hi_streak_.push_back(0);
    lo_streak_.push_back(0);
    live_pos_.push_back(0);
  }

  void ensure_slot_capacity(std::size_t need) {
    if (state_.size() >= need) return;
    const std::size_t cap =
        std::max(need, state_.size() + state_.size() / 2 + 64);
    files_.resize(cap, 0);
    state_.resize(cap, SlotState::kIdle);
    sched_gen_.resize(cap, 0);
    inst_.resize(cap, 0);
    gid_.resize(cap, 0);
    target_.resize(cap, 0.0);
    done_.resize(cap, 0);
    rng_ctr_.resize(cap, 0);
  }

  SlotArena arena_;
  std::vector<std::size_t> free_rows_;  ///< LIFO recycled user ids

  // Scalar columns (indexed by user id).
  std::vector<double> arrival_;
  std::vector<std::uint64_t> seq_;
  std::vector<unsigned> cls_;
  std::vector<std::uint8_t> sampled_;
  std::vector<std::uint8_t> aborted_;
  std::vector<std::size_t> off_;        ///< slot-span offset
  std::vector<unsigned> nslots_;        ///< slot-span length
  std::vector<unsigned> seq_pos_;
  std::vector<unsigned> live_parts_;
  std::vector<double> stage_start_;
  std::vector<double> download_accum_;
  std::vector<double> last_completion_;
  std::vector<double> rho_;
  std::vector<std::uint8_t> cheater_;
  std::vector<std::uint8_t> adaptive_;
  std::vector<unsigned> vseed_target_;
  std::vector<double> up_base_;
  std::vector<double> up_mark_;
  std::vector<double> rv_base_;
  std::vector<double> rv_mark_;
  std::vector<unsigned> hi_streak_;
  std::vector<unsigned> lo_streak_;
  std::vector<std::size_t> live_pos_;

  // Slot columns (indexed by arena offset + slot).
  std::vector<unsigned> files_;
  std::vector<SlotState> state_;
  std::vector<std::uint32_t> sched_gen_;
  std::vector<std::uint32_t> inst_;
  std::vector<std::size_t> gid_;
  std::vector<double> target_;
  std::vector<std::uint8_t> done_;
  std::vector<std::uint32_t> rng_ctr_;
};

}  // namespace btmf::sim
