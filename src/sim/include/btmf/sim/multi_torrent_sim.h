// Flow-level discrete-event engine for the multi-torrent scenarios:
// MTCD, MTSD and MFCD (Secs. 3.2-3.4).
//
// K torrents run side by side. Users arrive as a Poisson(lambda0) process,
// draw their file set from the binomial correlation model and then follow
// the scheme under test:
//  * MTCD — one virtual peer per requested file, all downloading
//    concurrently with upload/download split 1/i; each virtual peer seeds
//    its torrent for an independent Exp(gamma) residence when done.
//  * MFCD — like MTCD, but chunks are picked randomly across the selected
//    files, so the user's content completes as one aggregate of size i and
//    all files finish together; the user then seeds all i subtorrents for
//    a single Exp(gamma) residence (the "virtual peers depart as a whole"
//    behaviour the paper describes; a config flag can disable the joint
//    completion to make MFCD literally identical to MTCD).
//  * MTSD — files are downloaded one at a time with full bandwidth, each
//    followed by an Exp(gamma) seeding residence in that torrent.
//
// Service rates between events follow the fluid model's allocation
// assumptions exactly: a downloader receives eta x (its own tit-for-tat
// upload allocation) from peer exchange, and each torrent's seed
// bandwidth is shared among its downloaders in proportion to their
// download capability (1/i for concurrent schemes, 1 for sequential).
#pragma once

#include "btmf/sim/config.h"
#include "btmf/sim/stats.h"

namespace btmf::sim {

/// Runs one replication; `config.scheme` must be kMtcd, kMtsd or kMfcd.
SimResult run_multi_torrent_sim(const SimConfig& config);

}  // namespace btmf::sim
