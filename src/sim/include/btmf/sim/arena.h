// Offset arena for the struct-of-arrays user pool.
//
// The pool stores per-slot state (one cell per requested file) in shared
// parallel columns; SlotArena hands out offset ranges into those columns.
// Allocation is a bump pointer with per-length LIFO free lists, so a
// released span is only ever reused for a span of the same length. That
// keeps spans length-stable across recycling: a stale queue entry that
// still names a released row can never index past the end of the reused
// span, and the LIFO order keeps hot cache lines in play under the
// arrive/depart churn of a long run.
#pragma once

#include <cstddef>
#include <vector>

namespace btmf::sim {

class SlotArena {
 public:
  /// Returns the column offset of a fresh span of `len` cells, reusing a
  /// released same-length span when one is available.
  std::size_t allocate(std::size_t len) {
    if (len < free_.size() && !free_[len].empty()) {
      const std::size_t off = free_[len].back();
      free_[len].pop_back();
      return off;
    }
    const std::size_t off = size_;
    size_ += len;
    return off;
  }

  /// Returns a span to the allocator for reuse by a same-length user.
  void release(std::size_t off, std::size_t len) {
    if (free_.size() <= len) free_.resize(len + 1);
    free_[len].push_back(off);
  }

  /// High-water column size every slot column must be able to index.
  [[nodiscard]] std::size_t capacity() const { return size_; }

  /// Spans currently sitting in the free lists (test/diagnostic view).
  [[nodiscard]] std::size_t free_spans() const {
    std::size_t n = 0;
    for (const auto& bucket : free_) n += bucket.size();
    return n;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::vector<std::size_t>> free_;  ///< free_[len] = LIFO offsets
};

}  // namespace btmf::sim
