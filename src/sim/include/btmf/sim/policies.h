// Factories for the scheme policies plugged into the event kernel.
//
// Each policy is self-contained: construct one, hand it to EventKernel
// together with a SimConfig, and call run(). The public entry points
// (run_multi_torrent_sim / run_cmfsd_sim / run_simulation) are thin
// wrappers over exactly this.
#pragma once

#include <memory>

#include "btmf/sim/event_kernel.h"

namespace btmf::sim {

/// Multi-Torrent Concurrent Downloading (paper Sec. 3.2): one virtual
/// peer per requested file, each with 1/i of the user's bandwidth.
std::unique_ptr<SchemePolicy> make_mtcd_policy();

/// Multi-Torrent Sequential Downloading (Sec. 3.3): one file at a time at
/// full bandwidth, seeding each for Exp(gamma) before the next.
std::unique_ptr<SchemePolicy> make_mtsd_policy();

/// Multi-File Concurrent Downloading (Sec. 3.4) with joint completion:
/// one merged content buffer; all files finish together.
std::unique_ptr<SchemePolicy> make_mfcd_policy();

/// Combined Multi-File Sequential Downloading (Sec. 3.5) with partial
/// seeds, cheaters, the Adapt rho controller and the seed-pool modes.
std::unique_ptr<SchemePolicy> make_cmfsd_policy();

}  // namespace btmf::sim
