// Indexed binary min-heap over a dense id space, keyed by double.
//
// The event kernel keeps one entry per service group: the key is the
// group's earliest candidate completion time. Updating a group's key on a
// rate epoch is O(log G) where G is the number of groups — the heart of
// the incremental scheduler that replaced the per-event O(live peers)
// rate rescan. Ties are broken by id so the pop order (and therefore the
// whole simulation) is deterministic.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "btmf/util/check.h"

namespace btmf::sim {

class IndexedMinHeap {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Grows the id space to `n`; new ids start absent from the heap.
  void resize(std::size_t n) {
    BTMF_ASSERT(n >= pos_.size());
    pos_.resize(n, npos);
    key_.resize(n, 0.0);
  }

  [[nodiscard]] std::size_t id_capacity() const { return pos_.size(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] bool contains(std::size_t id) const {
    return pos_[id] != npos;
  }
  [[nodiscard]] double key_of(std::size_t id) const { return key_[id]; }

  [[nodiscard]] std::size_t top_id() const { return heap_.front(); }
  [[nodiscard]] double top_key() const { return key_[heap_.front()]; }

  /// Inserts `id` or changes its key, restoring the heap order.
  void set(std::size_t id, double key) {
    if (pos_[id] == npos) {
      key_[id] = key;
      pos_[id] = heap_.size();
      heap_.push_back(id);
      sift_up(pos_[id]);
    } else {
      const double old = key_[id];
      key_[id] = key;
      if (key < old || (key == old && id < heap_[parent(pos_[id])])) {
        sift_up(pos_[id]);
      } else {
        sift_down(pos_[id]);
      }
    }
  }

  void erase(std::size_t id) {
    const std::size_t at = pos_[id];
    if (at == npos) return;
    const std::size_t last = heap_.size() - 1;
    if (at != last) {
      heap_[at] = heap_[last];
      pos_[heap_[at]] = at;
    }
    heap_.pop_back();
    pos_[id] = npos;
    if (at < heap_.size()) {
      sift_up(at);
      sift_down(at);
    }
  }

  /// Paranoid-auditor hook: verifies the heap property and the pos_/heap_
  /// cross-references. Returns false (with a reason) instead of throwing
  /// so the caller can attach context. O(n).
  [[nodiscard]] bool validate(std::string* reason = nullptr) const {
    const auto fail = [&](const char* why) {
      if (reason != nullptr) *reason = why;
      return false;
    };
    std::size_t present = 0;
    for (std::size_t id = 0; id < pos_.size(); ++id) {
      if (pos_[id] == npos) continue;
      ++present;
      if (pos_[id] >= heap_.size() || heap_[pos_[id]] != id) {
        return fail("pos_/heap_ cross-reference broken");
      }
    }
    if (present != heap_.size()) return fail("heap size != live id count");
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      if (before(heap_[i], heap_[(i - 1) / 2])) {
        return fail("heap order violated");
      }
    }
    return true;
  }

 private:
  [[nodiscard]] static std::size_t parent(std::size_t i) {
    return i == 0 ? 0 : (i - 1) / 2;
  }

  /// (key, id) lexicographic order makes the heap a strict weak order even
  /// when many groups share a candidate time (e.g. +infinity).
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const {
    return key_[a] < key_[b] || (key_[a] == key_[b] && a < b);
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t p = (i - 1) / 2;
      if (!before(heap_[i], heap_[p])) break;
      std::swap(heap_[i], heap_[p]);
      pos_[heap_[i]] = i;
      pos_[heap_[p]] = p;
      i = p;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && before(heap_[l], heap_[best])) best = l;
      if (r < n && before(heap_[r], heap_[best])) best = r;
      if (best == i) break;
      std::swap(heap_[i], heap_[best]);
      pos_[heap_[i]] = i;
      pos_[heap_[best]] = best;
      i = best;
    }
  }

  std::vector<std::size_t> heap_;  ///< heap of ids
  std::vector<std::size_t> pos_;   ///< id -> heap slot, npos when absent
  std::vector<double> key_;        ///< id -> key
};

}  // namespace btmf::sim
