// Statistics collected by the simulator.
//
// Two independent views of the same run:
//  * sample statistics over users/peers that completed after warm-up
//    (online time, download time, per file);
//  * time-averaged populations per class, turned into sojourn times via
//    Little's law — the quantity the fluid ODEs actually predict.
// Agreement between the two is itself a consistency check (tests assert
// it), and each is compared against the fluid equilibrium in the
// sim-vs-fluid bench.
#pragma once

#include <cstddef>
#include <vector>

#include "btmf/math/stats.h"
#include "btmf/obs/timeseries.h"

namespace btmf::sim {

/// Per-class results (index 0 = class 1 = users who requested one file).
struct PerClassResult {
  std::size_t completed_users = 0;   ///< users whose whole visit was sampled
  double arrival_rate = 0.0;         ///< measured post-warm-up arrival rate

  double mean_online_per_file = 0.0;     ///< sample mean of T_user / i
  double ci_online_per_file = 0.0;       ///< 95% CI half-width
  double mean_download_per_file = 0.0;   ///< sample mean of D_user / i
  double ci_download_per_file = 0.0;

  double avg_downloaders = 0.0;      ///< time-averaged population
  double avg_seeds = 0.0;
  double little_download_time = 0.0; ///< avg_downloaders / arrival_rate
  double little_online_time = 0.0;   ///< (downloaders+seeds)/arrival_rate

  double mean_final_rho = 0.0;       ///< Adapt: mean rho at departure
};

struct SimResult {
  std::vector<PerClassResult> classes;

  double avg_online_per_file = 0.0;    ///< paper's headline metric
  double avg_download_per_file = 0.0;
  double avg_online_per_user = 0.0;

  double measured_time = 0.0;        ///< horizon - warmup
  std::size_t total_users = 0;       ///< users sampled (all classes)
  std::size_t total_arrivals = 0;    ///< incl. warm-up and censored users
  std::size_t censored_users = 0;    ///< still active at the horizon
  std::size_t aborted_users = 0;     ///< left before completing (theta > 0)

  // Per-run observability counters (see bench/perf_sim.cpp). Everything
  // except wall_clock_seconds is deterministic for a fixed seed.
  std::size_t events_processed = 0;  ///< kernel dispatch rounds
  std::size_t rate_epochs = 0;       ///< group-rate invalidations
  std::size_t peak_live_peers = 0;   ///< max concurrent peer units
  double wall_clock_seconds = 0.0;   ///< run() wall time (not deterministic)

  // Fault-injection & recovery observability (all zero without a
  // FaultPlan; see docs/FAULTS.md and bench/churn_sweep.cpp).
  std::size_t faults_injected = 0;     ///< fault edges dispatched
  std::size_t downloads_killed = 0;    ///< users crashed by churn bursts
  std::size_t arrivals_dropped = 0;    ///< tracker outage, drop mode
  std::size_t arrivals_queued = 0;     ///< tracker outage, queue mode
  std::size_t readmissions = 0;        ///< users re-admitted after a fault
  std::size_t readmission_queue_peak = 0;  ///< max pending re-admissions
  /// Longest time any fault needed to restore the live peer population to
  /// its pre-fault level (0 when no fault reduced the population).
  double time_to_recover = 0.0;
  /// Faults whose population dent had not healed by the horizon.
  std::size_t faults_unrecovered = 0;

  /// Mean rho across obedient adaptive peers, sampled at Adapt ticks
  /// (time series; empty unless Adapt is enabled). A thin view of the
  /// collector's "adapt.rho_mean" recorder series.
  std::vector<double> rho_trajectory_time;
  std::vector<double> rho_trajectory_mean;

  /// Per-class population trajectories sampled every SimConfig::obs
  /// .sample_dt (0 = horizon / 512) on the kernel's internal recorder —
  /// always recorded, sink or no sink. population_time is shared by all
  /// classes; downloaders/seeds_trajectory[k] is class k+1. The final
  /// sample sits at the horizon, so the series spans the full run.
  std::vector<double> population_time;
  std::vector<std::vector<double>> downloaders_trajectory;
  std::vector<std::vector<double>> seeds_trajectory;
};

/// Accumulators the engines feed during a run; finalise() builds SimResult.
class StatsCollector {
 public:
  explicit StatsCollector(unsigned num_classes);

  /// Piecewise-constant population integration over [t, t+dt).
  void observe_populations(const std::vector<double>& downloaders_per_class,
                           const std::vector<double>& seeds_per_class,
                           double dt);

  void record_arrival(unsigned user_class);

  /// A user (or virtual peer set) completed its whole visit: `online` is
  /// depart - arrival, `download` the summed per-file download durations.
  void record_user(unsigned user_class, unsigned files_requested,
                   double online, double download, double final_rho,
                   bool adaptive);

  void record_censored() { ++censored_; }
  void record_aborted() { ++aborted_; }
  void record_event() { ++events_; }

  /// Bulk accumulators for the sharded driver, which folds per-shard
  /// outputs into one collector instead of replaying individual events.
  void add_arrivals(unsigned user_class, std::size_t n);
  void add_events(std::size_t n) { events_ += n; }
  void record_rho_sample(double t, double mean_rho);

  [[nodiscard]] SimResult finalize(double measured_time,
                                   std::size_t total_arrivals) const;

 private:
  unsigned num_classes_;
  std::vector<math::TimeAverage> downloaders_;
  std::vector<math::TimeAverage> seeds_;
  std::vector<math::RunningStats> online_per_file_;
  std::vector<math::RunningStats> download_per_file_;
  std::vector<math::RunningStats> final_rho_;
  std::vector<std::size_t> arrivals_;
  double online_sum_ = 0.0;
  double download_sum_ = 0.0;
  double files_sum_ = 0.0;
  std::size_t users_ = 0;
  std::size_t censored_ = 0;
  std::size_t aborted_ = 0;
  std::size_t events_ = 0;
  /// Backs record_rho_sample; finalize() copies the "adapt.rho_mean"
  /// series into SimResult::rho_trajectory_time/mean.
  obs::TimeSeriesRecorder rho_recorder_;
  obs::SeriesId rho_series_;
};

}  // namespace btmf::sim
