// Random stream for the discrete-event simulator.
//
// One stream per replication, seeded via btmf::parallel::derive_seed so
// concurrent replications are independent and results never depend on
// thread scheduling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

namespace btmf::sim {

class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed) {}

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// Span overload for pool-backed storage; draws the same variates as
  /// the vector form for equal lengths.
  template <typename T>
  void shuffle(std::span<T> items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace btmf::sim
