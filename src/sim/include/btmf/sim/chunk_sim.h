// Chunk-level single-torrent BitTorrent simulator (protocol substrate).
//
// The fluid models abstract the protocol into one number: the downloader
// sharing efficiency eta. The paper *argues* eta = 0.5 from the Izal et
// al. measurement (seeds contributed twice the downloader traffic) while
// Qiu–Srikant *prove* eta ~ 1 under uniform chunk possession. This
// simulator implements the actual mechanics the paper's Sec. 1 describes
// — files split into chunks, local-rarest-first piece selection,
// tit-for-tat reciprocation with periodic optimistic unchokes, seeds
// uploading altruistically — and measures eta as it emerges:
//
//     eta_hat = (chunk uploads/slot by downloaders) / E[downloaders]
//
// i.e. the realised fraction of downloader upload capacity that moves
// useful data (idle uploaders — nobody interested in their chunks — and
// duplicate-free constraints are what push eta below 1). The bench
// `emergent_eta` closes the loop: plugging eta_hat into the paper's
// closed form T = (gamma - mu)/(gamma mu eta_hat) must predict the
// download time this simulator measures.
//
// Time is slotted at delta = 1/(mu * C) (each peer can ship exactly one
// chunk per slot); arrivals are Poisson(lambda) thinned per slot and
// seeds depart after Exp(gamma) residences, matching the fluid setup.
#pragma once

#include <cstdint>

#include "btmf/fluid/params.h"
#include "btmf/obs/sink.h"

namespace btmf::sim {

struct ChunkSimConfig {
  unsigned num_chunks = 32;     ///< C chunks per file
  double entry_rate = 1.0;      ///< lambda
  fluid::FluidParams fluid{};   ///< mu (upload), gamma (seed departure)
  /// Probability that an uploading downloader ignores its TFT ranking
  /// and serves a random interested peer (optimistic unchoke).
  double optimistic_prob = 0.25;
  /// Exponential decay applied to TFT credit each slot (memory ~ 1/(1-d)).
  double credit_decay = 0.9;
  /// Number of seeds planted at t = 0 so the first chunks exist.
  unsigned initial_seeds = 2;
  double horizon = 4000.0;
  double warmup = 1000.0;
  std::uint64_t seed = 42;
  std::size_t max_peers = 200'000;

  /// Telemetry sinks (all optional; see docs/OBSERVABILITY.md). The
  /// recorder samples chunk.downloaders / chunk.seeds / chunk.availability
  /// every obs.sample_dt (0 = horizon / 512); the tracer gets batched
  /// "chunk.slots" spans of obs.trace_batch slots each.
  obs::ObsSink obs{};

  void validate() const;
};

struct ChunkSimResult {
  std::size_t completed_peers = 0;    ///< sampled completions
  double mean_download_time = 0.0;
  double ci_download_time = 0.0;      ///< 95% half-width

  double avg_downloaders = 0.0;       ///< time-averaged x
  double avg_seeds = 0.0;             ///< time-averaged y

  double emergent_eta = 0.0;          ///< eta_hat defined above
  double downloader_upload_share = 0.0;  ///< fraction of chunks from dls
  double seed_upload_share = 0.0;
  double idle_fraction = 0.0;  ///< uploader-slots with nothing useful to send

  /// The paper's closed form evaluated at the measured eta_hat:
  /// (gamma - mu)/(gamma mu eta_hat) — compare with mean_download_time.
  double fluid_prediction = 0.0;
};

/// Runs one replication of the chunk-level swarm.
ChunkSimResult run_chunk_sim(const ChunkSimConfig& config);

}  // namespace btmf::sim
