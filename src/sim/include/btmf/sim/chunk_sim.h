// Chunk-level multi-file BitTorrent simulator (protocol substrate).
//
// The fluid models abstract the protocol into one number: the downloader
// sharing efficiency eta. The paper *argues* eta = 0.5 from the Izal et
// al. measurement (seeds contributed twice the downloader traffic) while
// Qiu–Srikant *prove* eta ~ 1 under uniform chunk possession. This
// simulator implements the actual mechanics the paper's Sec. 1 describes
// — files split into chunks, local-rarest-first piece selection,
// tit-for-tat reciprocation with periodic optimistic unchokes, seeds
// uploading altruistically — and measures eta as it emerges:
//
//     eta_hat = (chunk uploads/slot by downloaders) / E[downloaders]
//
// i.e. the realised fraction of downloader upload capacity that moves
// useful data (idle uploaders — nobody interested in their chunks — and
// duplicate-free constraints are what push eta below 1). The bench
// `emergent_eta` closes the loop: plugging eta_hat into the paper's
// closed form T = (gamma - mu)/(gamma mu eta_hat) must predict the
// download time this simulator measures.
//
// Beyond the single torrent, the substrate runs the paper's four
// multi-file downloading schemes on the real protocol (num_files = K,
// per-file piece bitmaps, per-arrival wanted sets drawn from the
// binomial correlation model):
//
//   MTCD   K separate torrents downloaded concurrently; each completed
//          file is seeded for its own Exp(gamma) residence.
//   MTSD   the wanted files are visited sequentially, each followed by
//          an Exp(gamma) seeding residence before the next download.
//   MFCD   one merged swarm: every held chunk of every wanted file is
//          offered, completion means the whole bundle.
//   CMFSD  one merged swarm downloaded subtorrent-by-subtorrent; a
//          downloader devotes each upload slot to tit-for-tat on its
//          current file with probability rho and donates it to its
//          already-completed files with probability 1 - rho.
//
// Piece selection is pluggable (PiecePolicy): local rarest-first, blind
// random, or rarest-first with probabilistic mode suppression after
// RFwPMS (arXiv 2211.00213) — with probability suppression_prob the
// modal tier (the pieces every rarest-first peer would herd onto this
// slot) is excluded, spreading a flash crowd across availability tiers.
// The `flash_crowd` knob injects that crowd: N class-K users at t = 0.
//
// Time is slotted at delta = 1/(mu * C) (each peer can ship exactly one
// chunk per slot); arrivals are Poisson(lambda) thinned per slot and
// seeds depart after Exp(gamma) residences, matching the fluid setup.
// With num_files = 1 every scheme reduces to the same single-torrent
// protocol and the engine draws exactly the variates the original K = 1
// substrate drew — results are bit-identical (see docs/PROTOCOL.md).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/params.h"
#include "btmf/fluid/schemes.h"
#include "btmf/obs/sink.h"

namespace btmf::sim {

/// Piece-selection policy for the chunk substrate (docs/PROTOCOL.md).
enum class PiecePolicy : std::uint8_t {
  kRarestFirst = 0,       ///< local rarest-first, random rotation tie-break
  kRandom = 1,            ///< uniform over the candidate set
  kModeSuppression = 2,   ///< rarest-first + probabilistic mode suppression
};

[[nodiscard]] const char* to_string(PiecePolicy policy);
/// Parses "rarest-first" | "random" | "mode-suppression"; throws
/// btmf::ConfigError on anything else.
[[nodiscard]] PiecePolicy piece_policy_from_string(std::string_view name);

struct ChunkSimConfig {
  unsigned num_files = 1;       ///< K files (1..32; bitmask-sized)
  unsigned num_chunks = 32;     ///< C chunks per file
  /// User entry rate: users wanting at least one file. At K = 1 this is
  /// the torrent arrival rate; at K > 1 each arrival draws its wanted
  /// set from the correlation model conditioned on being non-empty.
  double entry_rate = 1.0;
  /// Time-varying arrival modulation of entry_rate: the per-slot Poisson
  /// expectation is arrival.rate_at(entry_rate, t) * slot_dt (exactly
  /// entry_rate for the homogeneous default — same variates, bit-identical
  /// runs).
  fluid::ArrivalProcess arrival{};
  /// Heterogeneous peer bandwidth (empty = homogeneous). Each arrival
  /// draws a class by weight; a class-b peer earns upload_scale_b upload
  /// turns per slot (token bucket, whole turns spent) and receives at
  /// most download_cap_b (0 = uncapped) worth of chunks per slot.
  /// Publisher seeds stay at the base rate.
  std::vector<fluid::BandwidthClass> bandwidth_classes{};
  double correlation = 1.0;     ///< p, per-file want probability (K > 1)
  fluid::FluidParams fluid{};   ///< mu (upload), gamma (seed departure)
  fluid::SchemeKind scheme = fluid::SchemeKind::kMtcd;
  /// CMFSD only: probability an upload slot goes to tit-for-tat on the
  /// current file rather than donation to completed files (the paper's
  /// bandwidth split P(i, j) = rho off the first file/stage).
  double rho = 0.0;
  PiecePolicy policy = PiecePolicy::kRarestFirst;
  /// kModeSuppression only: probability the modal availability tier is
  /// suppressed for one pick.
  double suppression_prob = 0.9;
  /// Probability that an uploading downloader ignores its TFT ranking
  /// and serves a random interested peer (optimistic unchoke).
  double optimistic_prob = 0.25;
  /// Exponential decay applied to TFT credit each slot (memory ~ 1/(1-d)).
  double credit_decay = 0.9;
  /// Number of seeds planted at t = 0 so the first chunks exist.
  unsigned initial_seeds = 2;
  /// Flash-crowd burst: this many class-K users (wanting every file)
  /// injected at t = 0 on top of the Poisson arrivals.
  unsigned flash_crowd = 0;
  double horizon = 4000.0;
  double warmup = 1000.0;
  std::uint64_t seed = 42;
  std::size_t max_peers = 200'000;

  /// Telemetry sinks (all optional; see docs/OBSERVABILITY.md). The
  /// recorder samples chunk.downloaders / chunk.seeds / chunk.availability
  /// every obs.sample_dt (0 = horizon / 512) — plus per-file
  /// chunk.file_<k>.{downloaders,seeds,availability} when K > 1; the
  /// tracer gets batched "chunk.slots" spans of obs.trace_batch slots.
  obs::ObsSink obs{};

  void validate() const;
};

/// Per-file (per-torrent) measurements at K > 1.
struct ChunkFileResult {
  /// Realised sharing efficiency of this torrent: TFT chunk uploads of
  /// this file per slot, divided by the time-averaged downloader
  /// bandwidth share pointed at it (each active downloader contributes
  /// 1/l when concurrently downloading l files).
  double emergent_eta = 0.0;
  double avg_downloaders = 0.0;  ///< time-averaged x_f
  double avg_seeds = 0.0;        ///< time-averaged peers offering the full file
  std::size_t completions = 0;   ///< sampled per-file completions
  /// Mean per-file download duration: arrival (concurrent schemes) or
  /// stage start (sequential schemes) to the file's completion.
  double mean_download_time = 0.0;
};

/// Per-class (class i = users wanting i files) user measurements.
struct ChunkClassResult {
  std::size_t completed_users = 0;
  double mean_download_time = 0.0;  ///< total time spent downloading
  double mean_online_time = 0.0;    ///< arrival to final departure
};

struct ChunkSimResult {
  std::size_t completed_peers = 0;    ///< sampled user completions
  double mean_download_time = 0.0;    ///< per-user total download time
  double ci_download_time = 0.0;      ///< 95% half-width
  double mean_online_time = 0.0;      ///< per-user arrival-to-departure

  double avg_downloaders = 0.0;       ///< time-averaged x
  double avg_seeds = 0.0;             ///< time-averaged y
  double peak_downloaders = 0.0;      ///< max x over the whole run

  double emergent_eta = 0.0;          ///< eta_hat defined above
  double downloader_upload_share = 0.0;  ///< fraction of chunks from dls
  double seed_upload_share = 0.0;
  double idle_fraction = 0.0;  ///< uploader-slots with nothing useful to send

  /// The paper's closed form evaluated at the measured eta_hat:
  /// (gamma - mu)/(gamma mu eta_hat) — compare with mean_download_time.
  /// (The K = 1 single-torrent form; at K > 1 compare through the model
  /// layer's scheme formulas instead.)
  double fluid_prediction = 0.0;

  /// Arrival-weighted per-file averages over sampled users (the paper's
  /// headline estimator: total time / total files wanted).
  double avg_download_per_file = 0.0;
  double avg_online_per_file = 0.0;

  std::vector<ChunkFileResult> files;     ///< size K
  std::vector<ChunkClassResult> classes;  ///< size K, class i at [i-1]
};

/// Runs one replication of the chunk-level swarm.
ChunkSimResult run_chunk_sim(const ChunkSimConfig& config);

}  // namespace btmf::sim
