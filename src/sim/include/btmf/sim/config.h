// Configuration of the flow-level discrete-event BitTorrent simulator.
//
// The simulator is the agent-level counterpart of the fluid models: peers
// arrive as a Poisson process, draw their file set from the binomial
// correlation model, and exchange service at the rates the fluid models
// assume (tit-for-tat returns eta x one's own upload; seed/virtual-seed
// bandwidth is pooled and shared in proportion to download capability).
// It validates the ODE predictions and — because it carries per-peer
// state — can evaluate the Adapt mechanism and cheating behaviour that a
// single-global-rho fluid model cannot express.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "btmf/fluid/demand.h"
#include "btmf/fluid/params.h"
#include "btmf/fluid/schemes.h"
#include "btmf/obs/sink.h"
#include "btmf/sim/faults.h"

namespace btmf::sim {

/// How seed + virtual-seed bandwidth is pooled under CMFSD.
enum class SeedPoolMode {
  /// One pool across all subtorrents, shared by every downloader — exactly
  /// the fluid model's assumption (the S^{i,j} denominator is the total
  /// downloader population of the whole torrent).
  kGlobal,
  /// Each virtual seed serves one *randomly chosen* completed subtorrent
  /// and real seeds split bandwidth across their files; a more literal
  /// reading of the protocol, used to probe the robustness of the fluid
  /// assumption. Demand-blind supply turns out to be unstable at small
  /// rho: per-subtorrent backlogs random-walk into congestion (see
  /// tests/sim/cmfsd_sim_test.cpp and the pool-mode ablation bench).
  kSubtorrentLocal,
  /// Like kSubtorrentLocal, but every donor re-targets its *currently
  /// most backlogged* completed subtorrent each rate epoch — a one-line
  /// protocol refinement that restores the demand feedback the global
  /// pool provides implicitly. Note it cannot rescue rho = 0: a donor
  /// never holds a complete copy of the file it is itself downloading,
  /// so a starved subtorrent full of rho = 0 peers is an absorbing
  /// convoy; with moderate rho (>~ 0.2) this mode matches the global
  /// pool almost exactly (see bench/pool_mode_ablation).
  kSubtorrentDemandAware,
};

/// The paper's Adapt mechanism (Sec. 4.3).
///
/// Every `period` time units an obedient multi-file peer that is currently
/// a partial seed compares the bandwidth it uploaded through its virtual
/// seed with the bandwidth it received from other peers' virtual seeds
/// (both averaged over the period) and forms Delta = uploaded - received.
/// If Delta stays above `phi_hi` for `consecutive` periods the peer
/// protects itself (rho += step_up); if Delta stays below `phi_lo` it
/// donates more (rho -= step_down). rho is clamped to [0, 1].
///
/// NOTE: the paper writes "increase when Delta > phi_1, decrease when
/// Delta < phi_2, with phi_1 <= phi_2", which makes the two regions
/// overlap. We read this as a typo and use a dead band instead:
/// phi_lo <= phi_hi, increase above phi_hi, decrease below phi_lo. The
/// paper's qualitative intent (self-protection when over-contributing,
/// generosity when under-contributing) is preserved.
struct AdaptConfig {
  bool enabled = false;
  double initial_rho = 0.0;  ///< the paper recommends starting at 0
  double period = 20.0;      ///< measurement window (one seeding residence)
  double phi_lo = -0.005;    ///< decrease rho when Delta < phi_lo (v2 rule)
  double phi_hi = 0.005;     ///< increase rho when Delta > phi_hi (v1 rule)
  double step_up = 0.1;      ///< v1
  double step_down = 0.1;    ///< v2
  unsigned consecutive = 2;  ///< periods the condition must hold in a row
};

struct SimConfig {
  unsigned num_files = 10;           ///< K
  double correlation = 0.5;          ///< p
  /// Optional per-file request probabilities (heterogeneous popularity,
  /// e.g. fluid::HeterogeneousCatalog::zipf_profile). Empty = every file
  /// uses `correlation`; otherwise must have exactly num_files entries.
  std::vector<double> file_probs{};
  double visit_rate = 2.0;           ///< lambda0 (indexing-server visits)
  /// Time shape of the visit rate (homogeneous Poisson by default). A
  /// non-homogeneous process is sampled by thinning against its peak
  /// rate; the homogeneous case draws exactly the same exponentials as
  /// before the demand model existed (bit-identity pinned by tests).
  fluid::ArrivalProcess arrival{};
  /// Heterogeneous bandwidth classes: each arriving user draws a class
  /// with probability proportional to weight; its upload runs at
  /// upload_scale * mu and its download is capped at download_cap
  /// (0 = unlimited, on top of download_bw). Empty = homogeneous.
  std::vector<fluid::BandwidthClass> bandwidth_classes{};
  fluid::FluidParams fluid{};        ///< mu, eta, gamma
  fluid::SchemeKind scheme = fluid::SchemeKind::kCmfsd;

  double rho = 0.0;                  ///< CMFSD bandwidth split (fixed mode)
  double cheater_fraction = 0.0;     ///< multi-file users pinning rho = 1
  AdaptConfig adapt{};               ///< per-peer rho controller
  SeedPoolMode seed_pool = SeedPoolMode::kGlobal;

  /// MFCD only: when true (the default, matching random chunk selection),
  /// a peer's files complete together and it then seeds all of them for a
  /// single Exp(gamma) residence; when false, MFCD degenerates to MTCD
  /// semantics with independent per-file completions and departures.
  bool mfcd_joint_completion = true;

  /// Per-user download bandwidth cap c (split 1/i per virtual peer under
  /// the concurrent schemes); infinity reproduces the paper's
  /// upload-constrained assumption. See fluid/extended.h for the c*
  /// threshold below which this cap binds.
  double download_bw = std::numeric_limits<double>::infinity();
  /// Abort rate theta: every download stage races an Exp(theta) clock;
  /// when it fires the peer abandons the download (MTCD: that virtual
  /// peer; the sequential schemes and MFCD: the whole user leaves).
  double abort_rate = 0.0;

  double file_size = 1.0;            ///< files are the fluid model's unit
  double horizon = 6000.0;           ///< simulated end time
  double warmup = 1500.0;            ///< statistics start here
  std::uint64_t seed = 42;
  std::size_t max_active_peers = 1'000'000;  ///< runaway guard (per shard)

  /// Torrent shards for the decomposed schemes (MTCD): the kernel state is
  /// partitioned per torrent into min(shards, num_files) independent
  /// shards synchronized at rate-epoch barriers. Results are bit-identical
  /// for ANY shards x kernel_threads configuration (see docs/SCALE.md);
  /// schemes whose dynamics do not decompose ignore the knob and run the
  /// serial kernel. A non-empty FaultPlan also forces one shard.
  unsigned shards = 1;
  /// Worker threads driving the shards: 0 = one per hardware core,
  /// 1 = run shards inline on the calling thread (the default).
  unsigned kernel_threads = 1;

  /// Declarative fault schedule (tracker outages, seed failure, churn
  /// bursts, bandwidth degradation). An empty plan is bit-identical to a
  /// run without the fault layer. See faults.h and docs/FAULTS.md.
  FaultPlan faults{};

  /// Telemetry sinks (metrics registry, time-series recorder, Chrome-trace
  /// writer — all optional, non-owning). A default sink records nothing
  /// and leaves the run bit-identical to an uninstrumented one; see
  /// docs/OBSERVABILITY.md. obs.sample_dt also sets the cadence of the
  /// SimResult population trajectories (0 = horizon / 512).
  obs::ObsSink obs{};

  /// Runs the paranoid invariant auditor after every dispatched event
  /// round (service-group integrals, indexed-heap cross-references, live
  /// list, policy pool recounts); throws btmf::AuditError at the event
  /// that corrupted state. Expensive — meant for tests and debugging.
  /// Compiling with -DBTMF_PARANOID forces this on for every run.
  bool paranoid = false;

  /// Request probability of file f under this configuration.
  [[nodiscard]] double file_probability(unsigned f) const {
    return file_probs.empty() ? correlation : file_probs[f];
  }

  /// Throws btmf::ConfigError on out-of-range values.
  void validate() const;
};

}  // namespace btmf::sim
