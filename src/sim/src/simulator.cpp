#include "btmf/sim/simulator.h"

#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "btmf/math/stats.h"
#include "btmf/parallel/parallel_for.h"
#include "btmf/parallel/seeds.h"
#include "btmf/sim/cmfsd_sim.h"
#include "btmf/sim/multi_torrent_sim.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::sim {

void SimConfig::validate() const {
  BTMF_CHECK_MSG(num_files >= 1, "num_files must be >= 1");
  BTMF_CHECK_MSG(correlation >= 0.0 && correlation <= 1.0,
                 "correlation p must lie in [0, 1]");
  if (!file_probs.empty()) {
    BTMF_CHECK_MSG(file_probs.size() == num_files,
                   "file_probs must have exactly num_files entries");
    for (const double p : file_probs) {
      BTMF_CHECK_MSG(p >= 0.0 && p <= 1.0,
                     "file request probabilities must lie in [0, 1]");
    }
  }
  BTMF_CHECK_MSG(visit_rate > 0.0, "visit_rate lambda0 must be positive");
  arrival.validate();
  fluid::validate_classes(bandwidth_classes);
  fluid.validate();
  BTMF_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "rho must lie in [0, 1]");
  BTMF_CHECK_MSG(cheater_fraction >= 0.0 && cheater_fraction <= 1.0,
                 "cheater_fraction must lie in [0, 1]");
  BTMF_CHECK_MSG(download_bw > 0.0, "download_bw must be positive");
  BTMF_CHECK_MSG(abort_rate >= 0.0, "abort_rate must be non-negative");
  BTMF_CHECK_MSG(file_size > 0.0, "file_size must be positive");
  BTMF_CHECK_MSG(horizon > 0.0, "horizon must be positive");
  BTMF_CHECK_MSG(warmup >= 0.0 && warmup < horizon,
                 "warmup must lie in [0, horizon)");
  BTMF_CHECK_MSG(max_active_peers > 0, "max_active_peers must be positive");
  BTMF_CHECK_MSG(shards >= 1, "shards must be >= 1");
  // The fault layer is globally coupled — churn bursts pick victims across
  // every torrent and outages gate the shared arrival path — so a faulted
  // run cannot be decomposed per torrent. Requesting shards > 1 with a
  // fault plan used to be silently forced back to one shard; it is now a
  // typed configuration error (surfaced as kUnsupported through the model
  // layer) so callers learn the limitation instead of silently losing
  // their parallelism. ROADMAP open item: shardable fault plans.
  BTMF_CHECK_MSG(faults.empty() || shards == 1,
                 "fault plans are globally coupled (cross-torrent churn and "
                 "outages) and require shards == 1");
  if (adapt.enabled) {
    BTMF_CHECK_MSG(adapt.period > 0.0, "adapt.period must be positive");
    BTMF_CHECK_MSG(adapt.phi_lo <= adapt.phi_hi,
                   "adapt needs phi_lo <= phi_hi (dead band)");
    BTMF_CHECK_MSG(adapt.step_up >= 0.0 && adapt.step_down >= 0.0,
                   "adapt steps must be non-negative");
    BTMF_CHECK_MSG(adapt.consecutive >= 1, "adapt.consecutive must be >= 1");
    BTMF_CHECK_MSG(
        adapt.initial_rho >= 0.0 && adapt.initial_rho <= 1.0,
        "adapt.initial_rho must lie in [0, 1]");
  }
  faults.validate();
  obs.validate();
}

SimResult run_simulation(const SimConfig& config) {
  if (config.scheme == fluid::SchemeKind::kCmfsd) {
    return run_cmfsd_sim(config);
  }
  return run_multi_torrent_sim(config);
}

ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications,
                                    parallel::ThreadPool& pool) {
  BTMF_CHECK_MSG(num_replications >= 1, "need at least one replication");
  // Replications are isolated: one seed hitting a solver divergence or a
  // runaway population must not discard its siblings' work. Each slot
  // records either a result or the failure, and the aggregates below run
  // over the survivors.
  std::vector<SimResult> runs(num_replications);
  std::vector<std::uint64_t> seeds(num_replications, 0);
  std::vector<std::string> errors(num_replications);
  std::vector<char> failed(num_replications, 0);
  parallel::parallel_for(pool, 0, num_replications, [&](std::size_t r) {
    SimConfig rep = config;
    rep.seed = parallel::derive_seed(config.seed, r);
    seeds[r] = rep.seed;
    try {
      runs[r] = run_simulation(rep);
    } catch (const std::exception& e) {
      failed[r] = 1;
      errors[r] = e.what();
    }
  });

  ReplicationSummary summary;
  for (std::size_t r = 0; r < num_replications; ++r) {
    if (failed[r] != 0) {
      summary.failures.push_back({r, seeds[r], errors[r]});
    } else {
      summary.runs.push_back(std::move(runs[r]));
    }
  }
  if (summary.runs.empty()) {
    throw SolverError("all " + std::to_string(num_replications) +
                      " replications failed; first failure (replication " +
                      std::to_string(summary.failures.front().index) +
                      ", seed " +
                      std::to_string(summary.failures.front().seed) +
                      "): " + summary.failures.front().message);
  }

  math::RunningStats online, download;
  const unsigned num_classes = config.num_files;
  std::vector<math::RunningStats> c_online(num_classes),
      c_download(num_classes), c_lonline(num_classes),
      c_ldownload(num_classes), c_rho(num_classes);
  for (const SimResult& run : summary.runs) {
    online.add(run.avg_online_per_file);
    download.add(run.avg_download_per_file);
    for (unsigned k = 0; k < num_classes; ++k) {
      const PerClassResult& c = run.classes[k];
      if (c.completed_users == 0) continue;
      c_online[k].add(c.mean_online_per_file);
      c_download[k].add(c.mean_download_per_file);
      c_lonline[k].add(c.little_online_time);
      c_ldownload[k].add(c.little_download_time);
      c_rho[k].add(c.mean_final_rho);
    }
  }
  summary.mean_online_per_file = online.mean();
  summary.mean_download_per_file = download.mean();
  // A single surviving replication has no across-run variance; report
  // exactly 0 rather than trusting the n-1 divisor path with n == 1.
  if (summary.runs.size() > 1) {
    summary.stderr_online_per_file = online.stderr_mean();
    summary.stderr_download_per_file = download.stderr_mean();
  }
  summary.class_online_per_file.resize(num_classes);
  summary.class_download_per_file.resize(num_classes);
  summary.class_little_online.resize(num_classes);
  summary.class_little_download.resize(num_classes);
  summary.class_mean_final_rho.resize(num_classes);
  for (unsigned k = 0; k < num_classes; ++k) {
    summary.class_online_per_file[k] = c_online[k].mean();
    summary.class_download_per_file[k] = c_download[k].mean();
    summary.class_little_online[k] = c_lonline[k].mean();
    summary.class_little_download[k] = c_ldownload[k].mean();
    summary.class_mean_final_rho[k] = c_rho[k].mean();
  }
  return summary;
}

ReplicationSummary run_replications(const SimConfig& config,
                                    std::size_t num_replications) {
  return run_replications(config, num_replications, parallel::global_pool());
}

}  // namespace btmf::sim
