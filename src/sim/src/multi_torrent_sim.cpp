#include "btmf/sim/multi_torrent_sim.h"

#include <memory>

#include "btmf/sim/event_kernel.h"
#include "btmf/sim/policies.h"
#include "btmf/util/check.h"

namespace btmf::sim {

SimResult run_multi_torrent_sim(const SimConfig& config) {
  config.validate();
  // MFCD without joint completion degenerates to MTCD semantics:
  // independent per-file completions and departures.
  const fluid::SchemeKind scheme =
      config.scheme == fluid::SchemeKind::kMfcd &&
              !config.mfcd_joint_completion
          ? fluid::SchemeKind::kMtcd
          : config.scheme;
  BTMF_CHECK_MSG(scheme != fluid::SchemeKind::kCmfsd,
                 "multi-torrent engine does not handle CMFSD");
  std::unique_ptr<SchemePolicy> policy;
  switch (scheme) {
    case fluid::SchemeKind::kMtsd:
      policy = make_mtsd_policy();
      break;
    case fluid::SchemeKind::kMfcd:
      policy = make_mfcd_policy();
      break;
    default:
      policy = make_mtcd_policy();
      break;
  }
  EventKernel kernel(config, *policy);
  return kernel.run();
}

}  // namespace btmf::sim
