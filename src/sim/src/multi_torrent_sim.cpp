#include "btmf/sim/multi_torrent_sim.h"

#include <memory>
#include <utility>

#include "btmf/sim/policies.h"
#include "btmf/sim/sharded_kernel.h"
#include "btmf/util/check.h"

namespace btmf::sim {

SimResult run_multi_torrent_sim(const SimConfig& config) {
  config.validate();
  // MFCD without joint completion degenerates to MTCD semantics:
  // independent per-file completions and departures.
  const fluid::SchemeKind scheme =
      config.scheme == fluid::SchemeKind::kMfcd &&
              !config.mfcd_joint_completion
          ? fluid::SchemeKind::kMtcd
          : config.scheme;
  BTMF_CHECK_MSG(scheme != fluid::SchemeKind::kCmfsd,
                 "multi-torrent engine does not handle CMFSD");
  // ShardedKernel probes the policy: MTCD decomposes per torrent and runs
  // sharded (cfg.shards / cfg.kernel_threads apply); MTSD and MFCD couple
  // a user's torrents and run the serial kernel, ignoring the knobs.
  PolicyFactory factory;
  switch (scheme) {
    case fluid::SchemeKind::kMtsd:
      factory = make_mtsd_policy;
      break;
    case fluid::SchemeKind::kMfcd:
      factory = make_mfcd_policy;
      break;
    default:
      factory = make_mtcd_policy;
      break;
  }
  ShardedKernel kernel(config, std::move(factory));
  return kernel.run();
}

}  // namespace btmf::sim
