#include "btmf/sim/multi_torrent_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "btmf/sim/rng.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCompletionEps = 1e-9;
constexpr double kTimeEps = 1e-12;

enum class FileState : std::uint8_t { kDownloading, kSeeding, kDone };

struct User {
  double arrival = 0.0;
  std::vector<unsigned> files;       ///< torrent ids requested
  std::vector<double> remaining;     ///< per-file bytes left (MTCD/MTSD)
  std::vector<FileState> file_state;
  std::vector<double> rate_scratch;  ///< per-file rate of the current epoch
  std::vector<double> abort_time;    ///< per-download Exp(theta) deadline
  bool aborted = false;              ///< any download abandoned
  unsigned cls = 0;                  ///< number of files requested
  bool sampled = false;              ///< arrived after warm-up
  unsigned seq_pos = 0;              ///< MTSD: file currently processed
  unsigned live_parts = 0;           ///< MTCD: virtual peers not yet departed
  double aggregate_remaining = 0.0;  ///< MFCD: single content buffer
  double download_accum = 0.0;       ///< MTSD: summed stage durations
  double stage_start = 0.0;
  double last_completion = 0.0;
  std::size_t live_pos = 0;          ///< index into the live list
};

struct SeedDeparture {
  double time = 0.0;
  std::size_t user = 0;
  unsigned file_idx = 0;  ///< index into User::files; kAllFiles for MFCD
  bool operator>(const SeedDeparture& o) const { return time > o.time; }
};

constexpr unsigned kAllFiles = std::numeric_limits<unsigned>::max();

class Engine {
 public:
  explicit Engine(const SimConfig& config)
      : cfg_(config),
        scheme_(config.scheme == fluid::SchemeKind::kMfcd &&
                        !config.mfcd_joint_completion
                    ? fluid::SchemeKind::kMtcd
                    : config.scheme),
        rng_(config.seed),
        stats_(config.num_files),
        seed_bw_(config.num_files, 0.0),
        weight_sum_(config.num_files, 0.0),
        downloader_count_(config.num_files, 0),
        down_pop_(config.num_files, 0.0),
        seed_pop_(config.num_files, 0.0) {
    cfg_.validate();
    BTMF_CHECK_MSG(scheme_ != fluid::SchemeKind::kCmfsd,
                   "multi-torrent engine does not handle CMFSD");
  }

  SimResult run();

 private:
  [[nodiscard]] bool concurrent() const {
    return scheme_ != fluid::SchemeKind::kMtsd;
  }

  /// Rate of the download `f` of user `u` in its torrent; the epoch's
  /// pools (weight_sum_, seed_bw_) must be current. Capped by the user's
  /// download bandwidth share.
  [[nodiscard]] double download_rate(const User& u, unsigned f) const {
    const unsigned torrent = u.files[f];
    const double split = concurrent() ? 1.0 / static_cast<double>(u.cls) : 1.0;
    const double tft = cfg_.fluid.eta * cfg_.fluid.mu * split;
    const double w = weight_sum_[torrent];
    const double from_seeds = w > 0.0 ? split / w * seed_bw_[torrent] : 0.0;
    return std::min(tft + from_seeds, cfg_.download_bw * split);
  }

  [[nodiscard]] double draw_abort_deadline(double t) {
    return cfg_.abort_rate > 0.0 ? t + rng_.exponential(cfg_.abort_rate)
                                 : kInf;
  }

  void process_arrival(double t);
  void complete_file(std::size_t ui, unsigned f, double t);
  void complete_aggregate(std::size_t ui, double t);
  void process_seed_departure(const SeedDeparture& ev, double t);
  void start_download(std::size_t ui, unsigned f, double t);
  void abort_download(std::size_t ui, unsigned f, double t);
  void retire_user(std::size_t ui, double t);

  void add_live(std::size_t ui) {
    users_[ui].live_pos = live_.size();
    live_.push_back(ui);
  }
  void remove_live(std::size_t ui) {
    const std::size_t pos = users_[ui].live_pos;
    live_[pos] = live_.back();
    users_[live_[pos]].live_pos = pos;
    live_.pop_back();
  }

  SimConfig cfg_;
  fluid::SchemeKind scheme_;
  RandomStream rng_;
  StatsCollector stats_;

  std::vector<User> users_;
  std::vector<std::size_t> live_;  ///< users still owning any peer
  std::priority_queue<SeedDeparture, std::vector<SeedDeparture>,
                      std::greater<>>
      seed_queue_;

  // Per-torrent pools, maintained incrementally.
  std::vector<double> seed_bw_;          ///< sum of seed uploads
  std::vector<double> weight_sum_;       ///< sum of downloader weights
  std::vector<std::size_t> downloader_count_;

  // Per-class populations (virtual peers for concurrent schemes, users
  // for MTSD), maintained incrementally for the Little's-law averages.
  std::vector<double> down_pop_;
  std::vector<double> seed_pop_;

  std::size_t total_arrivals_ = 0;
  std::size_t active_peer_count_ = 0;
};

void Engine::start_download(std::size_t ui, unsigned f, double t) {
  User& u = users_[ui];
  const unsigned torrent = u.files[f];
  u.file_state[f] = FileState::kDownloading;
  u.remaining[f] = cfg_.file_size;
  u.stage_start = t;
  u.abort_time[f] = draw_abort_deadline(t);
  weight_sum_[torrent] +=
      concurrent() ? 1.0 / static_cast<double>(u.cls) : 1.0;
  ++downloader_count_[torrent];
}

void Engine::process_arrival(double t) {
  ++total_arrivals_;
  std::vector<unsigned> files;
  for (unsigned f = 0; f < cfg_.num_files; ++f) {
    if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
  }
  if (files.empty()) return;  // visitor requested nothing

  users_.emplace_back();
  const std::size_t ui = users_.size() - 1;
  User& u = users_[ui];
  u.arrival = t;
  u.cls = static_cast<unsigned>(files.size());
  u.files = std::move(files);
  u.remaining.assign(u.cls, 0.0);
  u.file_state.assign(u.cls, FileState::kDone);
  u.rate_scratch.assign(u.cls, 0.0);
  u.abort_time.assign(u.cls, kInf);
  u.sampled = t >= cfg_.warmup;
  if (u.sampled) stats_.record_arrival(u.cls);
  add_live(ui);

  switch (scheme_) {
    case fluid::SchemeKind::kMtcd:
      u.live_parts = u.cls;
      for (unsigned f = 0; f < u.cls; ++f) start_download(ui, f, t);
      down_pop_[u.cls - 1] += static_cast<double>(u.cls);
      active_peer_count_ += u.cls;
      break;
    case fluid::SchemeKind::kMfcd:
      u.aggregate_remaining =
          cfg_.file_size * static_cast<double>(u.cls);
      for (unsigned f = 0; f < u.cls; ++f) start_download(ui, f, t);
      down_pop_[u.cls - 1] += static_cast<double>(u.cls);
      active_peer_count_ += u.cls;
      break;
    case fluid::SchemeKind::kMtsd:
      rng_.shuffle(u.files);
      u.seq_pos = 0;
      start_download(ui, 0, t);
      down_pop_[u.cls - 1] += 1.0;
      active_peer_count_ += 1;
      break;
    case fluid::SchemeKind::kCmfsd:
      break;  // unreachable, rejected in the constructor
  }
  if (active_peer_count_ > cfg_.max_active_peers) {
    throw SolverError(
        "simulation exceeded max_active_peers — the configuration is "
        "outside the stable region (offered load exceeds service capacity)");
  }
}

void Engine::complete_file(std::size_t ui, unsigned f, double t) {
  User& u = users_[ui];
  const unsigned torrent = u.files[f];
  const double weight =
      concurrent() ? 1.0 / static_cast<double>(u.cls) : 1.0;
  weight_sum_[torrent] -= weight;
  if (--downloader_count_[torrent] == 0) weight_sum_[torrent] = 0.0;
  u.remaining[f] = 0.0;
  u.last_completion = t;

  if (scheme_ == fluid::SchemeKind::kMtcd) {
    // The virtual peer turns into a seed of its torrent with an
    // independent Exp(gamma) residence (paper Sec. 3.2 semantics).
    u.file_state[f] = FileState::kSeeding;
    seed_bw_[torrent] += cfg_.fluid.mu / static_cast<double>(u.cls);
    down_pop_[u.cls - 1] -= 1.0;
    seed_pop_[u.cls - 1] += 1.0;
    seed_queue_.push(
        {t + rng_.exponential(cfg_.fluid.gamma), ui, f});
  } else {  // MTSD
    u.file_state[f] = FileState::kSeeding;
    u.download_accum += t - u.stage_start;
    seed_bw_[torrent] += cfg_.fluid.mu;  // full bandwidth while seeding
    down_pop_[u.cls - 1] -= 1.0;
    seed_pop_[u.cls - 1] += 1.0;
    seed_queue_.push(
        {t + rng_.exponential(cfg_.fluid.gamma), ui, f});
  }
}

void Engine::complete_aggregate(std::size_t ui, double t) {
  User& u = users_[ui];
  u.aggregate_remaining = 0.0;
  u.last_completion = t;
  // All files finish together; the user seeds every subtorrent with mu/i
  // until one shared Exp(gamma) residence elapses.
  for (unsigned f = 0; f < u.cls; ++f) {
    const unsigned torrent = u.files[f];
    const double weight = 1.0 / static_cast<double>(u.cls);
    weight_sum_[torrent] -= weight;
    if (--downloader_count_[torrent] == 0) weight_sum_[torrent] = 0.0;
    u.file_state[f] = FileState::kSeeding;
    seed_bw_[torrent] += cfg_.fluid.mu / static_cast<double>(u.cls);
  }
  down_pop_[u.cls - 1] -= static_cast<double>(u.cls);
  seed_pop_[u.cls - 1] += static_cast<double>(u.cls);
  seed_queue_.push({t + rng_.exponential(cfg_.fluid.gamma), ui, kAllFiles});
}

void Engine::retire_user(std::size_t ui, double t) {
  User& u = users_[ui];
  remove_live(ui);
  if (!u.sampled) return;
  if (u.aborted) {
    // Users who abandoned any download are not comparable to the fluid
    // per-class sojourn metrics; count them separately.
    stats_.record_aborted();
    return;
  }
  const double online = t - u.arrival;
  const double download = scheme_ == fluid::SchemeKind::kMtsd
                              ? u.download_accum
                              : u.last_completion - u.arrival;
  stats_.record_user(u.cls, u.cls, online, download, /*final_rho=*/0.0,
                     /*adaptive=*/false);
}

void Engine::abort_download(std::size_t ui, unsigned f, double t) {
  User& u = users_[ui];
  u.aborted = true;
  const double weight =
      concurrent() ? 1.0 / static_cast<double>(u.cls) : 1.0;

  if (scheme_ == fluid::SchemeKind::kMfcd) {
    // Random-chunk downloading means no file is individually complete;
    // the whole visit is abandoned.
    for (unsigned g = 0; g < u.cls; ++g) {
      const unsigned torrent = u.files[g];
      weight_sum_[torrent] -= weight;
      if (--downloader_count_[torrent] == 0) weight_sum_[torrent] = 0.0;
      u.file_state[g] = FileState::kDone;
      u.abort_time[g] = kInf;
    }
    down_pop_[u.cls - 1] -= static_cast<double>(u.cls);
    active_peer_count_ -= u.cls;
    retire_user(ui, t);
    return;
  }

  const unsigned torrent = u.files[f];
  weight_sum_[torrent] -= weight;
  if (--downloader_count_[torrent] == 0) weight_sum_[torrent] = 0.0;
  u.file_state[f] = FileState::kDone;
  u.abort_time[f] = kInf;
  down_pop_[u.cls - 1] -= 1.0;
  active_peer_count_ -= 1;

  if (scheme_ == fluid::SchemeKind::kMtcd) {
    // Only this virtual peer leaves; siblings keep downloading/seeding.
    if (--u.live_parts == 0) retire_user(ui, t);
  } else {  // MTSD: the user walks away from its whole queue
    retire_user(ui, t);
  }
}

void Engine::process_seed_departure(const SeedDeparture& ev, double t) {
  User& u = users_[ev.user];
  if (ev.file_idx == kAllFiles) {  // MFCD joint departure
    for (unsigned f = 0; f < u.cls; ++f) {
      seed_bw_[u.files[f]] -= cfg_.fluid.mu / static_cast<double>(u.cls);
      u.file_state[f] = FileState::kDone;
    }
    seed_pop_[u.cls - 1] -= static_cast<double>(u.cls);
    active_peer_count_ -= u.cls;
    retire_user(ev.user, t);
    return;
  }

  const unsigned torrent = u.files[ev.file_idx];
  u.file_state[ev.file_idx] = FileState::kDone;
  seed_pop_[u.cls - 1] -= 1.0;

  if (scheme_ == fluid::SchemeKind::kMtcd) {
    seed_bw_[torrent] -= cfg_.fluid.mu / static_cast<double>(u.cls);
    active_peer_count_ -= 1;
    if (--u.live_parts == 0) retire_user(ev.user, t);
  } else {  // MTSD: move on to the next file or leave
    seed_bw_[torrent] -= cfg_.fluid.mu;
    ++u.seq_pos;
    if (u.seq_pos < u.cls) {
      start_download(ev.user, u.seq_pos, t);
      down_pop_[u.cls - 1] += 1.0;
    } else {
      active_peer_count_ -= 1;
      retire_user(ev.user, t);
    }
  }
}

SimResult Engine::run() {
  double t = 0.0;
  double next_arrival = rng_.exponential(cfg_.visit_rate);

  while (t < cfg_.horizon) {
    // --- compute rates, the earliest completion and the earliest abort -
    double min_tta = kInf;
    double min_abort = kInf;
    for (const std::size_t ui : live_) {
      User& u = users_[ui];
      if (scheme_ == fluid::SchemeKind::kMfcd) {
        if (u.file_state[0] != FileState::kDownloading) continue;
        double agg_rate = 0.0;
        for (unsigned f = 0; f < u.cls; ++f) {
          agg_rate += download_rate(u, f);
          min_abort = std::min(min_abort, u.abort_time[f]);
        }
        u.rate_scratch[0] = agg_rate;
        if (agg_rate > 0.0) {
          min_tta = std::min(min_tta, u.aggregate_remaining / agg_rate);
        }
      } else {
        for (unsigned f = 0; f < u.cls; ++f) {
          if (u.file_state[f] != FileState::kDownloading) continue;
          const double rate = download_rate(u, f);
          u.rate_scratch[f] = rate;
          min_abort = std::min(min_abort, u.abort_time[f]);
          if (rate > 0.0) {
            min_tta = std::min(min_tta, u.remaining[f] / rate);
          }
        }
      }
    }

    const double seed_time =
        seed_queue_.empty() ? kInf : seed_queue_.top().time;
    const double t_next = std::min(
        {next_arrival, seed_time, t + min_tta, min_abort, cfg_.horizon});
    const double dt = std::max(0.0, t_next - t);

    // --- advance downloads and population integrals --------------------
    if (dt > 0.0) {
      for (const std::size_t ui : live_) {
        User& u = users_[ui];
        if (scheme_ == fluid::SchemeKind::kMfcd) {
          if (u.file_state[0] == FileState::kDownloading) {
            u.aggregate_remaining -= u.rate_scratch[0] * dt;
          }
        } else {
          for (unsigned f = 0; f < u.cls; ++f) {
            if (u.file_state[f] == FileState::kDownloading) {
              u.remaining[f] -= u.rate_scratch[f] * dt;
            }
          }
        }
      }
      const double stat_lo = std::max(t, cfg_.warmup);
      if (t_next > stat_lo) {
        stats_.observe_populations(down_pop_, seed_pop_, t_next - stat_lo);
      }
    }
    t = t_next;
    if (t >= cfg_.horizon) break;

    // --- dispatch whatever is due at time t -----------------------------
    stats_.record_event();
    if (t + kTimeEps >= next_arrival) {
      process_arrival(t);
      next_arrival = t + rng_.exponential(cfg_.visit_rate);
    }
    while (!seed_queue_.empty() &&
           seed_queue_.top().time <= t + kTimeEps) {
      const SeedDeparture ev = seed_queue_.top();
      seed_queue_.pop();
      process_seed_departure(ev, t);
    }
    // Completion/abort sweep: catch every download that crossed zero or
    // whose abort clock fired. Completion wins a tie.
    for (std::size_t li = 0; li < live_.size();) {
      const std::size_t ui = live_[li];
      User& u = users_[ui];
      if (scheme_ == fluid::SchemeKind::kMfcd) {
        if (u.file_state[0] == FileState::kDownloading) {
          if (u.aggregate_remaining <= kCompletionEps * cfg_.file_size) {
            complete_aggregate(ui, t);
          } else {
            for (unsigned f = 0; f < u.cls; ++f) {
              if (u.abort_time[f] <= t + kTimeEps) {
                abort_download(ui, f, t);
                break;
              }
            }
          }
        }
      } else {
        for (unsigned f = 0; f < u.cls; ++f) {
          if (u.file_state[f] != FileState::kDownloading) continue;
          if (u.remaining[f] <= kCompletionEps * cfg_.file_size) {
            complete_file(ui, f, t);
          } else if (u.abort_time[f] <= t + kTimeEps) {
            abort_download(ui, f, t);
            if (scheme_ == fluid::SchemeKind::kMtsd) break;
          }
        }
      }
      // retire_user swaps another user into this slot; only advance when
      // the slot still holds the same user.
      const bool retired = li < live_.size() && live_[li] != ui;
      if (!retired) ++li;
    }
  }

  // Census of users still active at the horizon.
  for (const std::size_t ui : live_) {
    if (users_[ui].sampled) stats_.record_censored();
  }

  SimResult result = stats_.finalize(
      std::max(0.0, cfg_.horizon - cfg_.warmup), total_arrivals_);
  // Populations were counted in virtual peers for the concurrent schemes
  // (i per class-i user) and users for MTSD; Little's law then yields the
  // per-*peer* sojourn. Normalise both to "per file".
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const double files = static_cast<double>(k + 1);
    const double divisor = concurrent() ? files * files : files;
    result.classes[k].little_download_time /= divisor;
    result.classes[k].little_online_time /= divisor;
  }
  return result;
}

}  // namespace

SimResult run_multi_torrent_sim(const SimConfig& config) {
  Engine engine(config);
  return engine.run();
}

}  // namespace btmf::sim
