#include "btmf/sim/chunk_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "btmf/math/stats.h"
#include "btmf/sim/rng.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Chunk bitfield over up to a few hundred chunks, in 64-bit words.
class Bitfield {
 public:
  explicit Bitfield(unsigned bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(unsigned bit) {
    words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    ++count_;
  }
  void set_all() {
    for (unsigned b = 0; b < bits_; ++b) {
      words_[b / 64] |= std::uint64_t{1} << (b % 64);
    }
    count_ = bits_;
  }
  [[nodiscard]] bool test(unsigned bit) const {
    return (words_[bit / 64] >> (bit % 64)) & 1;
  }
  [[nodiscard]] unsigned count() const { return count_; }
  [[nodiscard]] bool full() const { return count_ == bits_; }

  /// True if `this` holds any chunk `other` lacks.
  [[nodiscard]] bool has_something_for(const Bitfield& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & ~other.words_[w]) return true;
    }
    return false;
  }

  /// Chunks in `this` and not in `other`, as indices.
  void missing_from(const Bitfield& other, std::vector<unsigned>& out) const {
    out.clear();
    for (unsigned b = 0; b < bits_; ++b) {
      if (test(b) && !other.test(b)) out.push_back(b);
    }
  }

 private:
  unsigned bits_;
  unsigned count_ = 0;
  std::vector<std::uint64_t> words_;
};

struct Peer {
  explicit Peer(unsigned chunks) : have(chunks) {}
  Bitfield have;
  bool is_seed = false;
  bool permanent = false;  ///< publisher seed, never departs
  double arrival = 0.0;
  double seed_depart = kInf;
  bool sampled = false;
  /// Decayed TFT credit: chunks recently received, by sender id.
  std::unordered_map<std::size_t, double> credit;
};

}  // namespace

void ChunkSimConfig::validate() const {
  BTMF_CHECK_MSG(num_chunks >= 1 && num_chunks <= 4096,
                 "num_chunks must lie in [1, 4096]");
  BTMF_CHECK_MSG(entry_rate > 0.0, "entry_rate must be positive");
  fluid.validate();
  BTMF_CHECK_MSG(optimistic_prob >= 0.0 && optimistic_prob <= 1.0,
                 "optimistic_prob must lie in [0, 1]");
  BTMF_CHECK_MSG(credit_decay >= 0.0 && credit_decay < 1.0,
                 "credit_decay must lie in [0, 1)");
  BTMF_CHECK_MSG(initial_seeds >= 1,
                 "need at least one publisher seed to bootstrap");
  BTMF_CHECK_MSG(horizon > 0.0 && warmup >= 0.0 && warmup < horizon,
                 "need 0 <= warmup < horizon");
  obs.validate();
}

ChunkSimResult run_chunk_sim(const ChunkSimConfig& config) {
  config.validate();
  const unsigned chunks = config.num_chunks;
  // One chunk per peer per slot: slot length so that a full file takes
  // 1/mu time units of dedicated upload.
  const double slot_dt = 1.0 / (config.fluid.mu * chunks);

  RandomStream rng(config.seed);
  std::vector<Peer> peers;
  std::vector<std::size_t> live;
  std::vector<unsigned> avail(chunks, 0);  // live copies per chunk

  const auto add_live = [&](std::size_t id) { live.push_back(id); };

  // Publisher seeds.
  for (unsigned s = 0; s < config.initial_seeds; ++s) {
    peers.emplace_back(chunks);
    peers.back().have.set_all();
    peers.back().is_seed = true;
    peers.back().permanent = true;
    add_live(peers.size() - 1);
    for (unsigned c = 0; c < chunks; ++c) ++avail[c];
  }

  math::RunningStats download_time;
  math::TimeAverage downloaders_avg, seeds_avg;
  double downloader_uploads = 0.0;
  double seed_uploads = 0.0;
  double idle_uploader_slots = 0.0;
  double uploader_slots = 0.0;

  std::vector<std::size_t> order;
  std::vector<std::size_t> interested;
  std::vector<unsigned> candidates;

  // Telemetry: cadence-sampled population series and batched slot spans.
  // Observation draws no randomness, so the result is identical with or
  // without sinks attached.
  const obs::ObsSink& sink = config.obs;
  const double sample_dt =
      sink.sample_dt > 0.0 ? sink.sample_dt : config.horizon / 512.0;
  double next_sample = sink.recorder != nullptr ? 0.0 : kInf;
  obs::SeriesId dl_series = 0, seed_series = 0, avail_series = 0;
  if (sink.recorder != nullptr) {
    dl_series = sink.recorder->series("chunk.downloaders");
    seed_series = sink.recorder->series("chunk.seeds");
    avail_series = sink.recorder->series("chunk.availability");
  }
  std::optional<obs::TraceWriter::Span> slot_span;
  std::size_t span_slots = 0;
  double slots_total = 0.0;

  double t = 0.0;
  while (t < config.horizon) {
    const bool measured = t >= config.warmup;
    slots_total += 1.0;
    if (sink.trace != nullptr) {
      if (!slot_span.has_value()) {
        slot_span.emplace(sink.trace->span("chunk.slots"));
      }
      if (++span_slots >= sink.trace_batch) {
        std::ostringstream args;
        args << "{\"slots\": " << span_slots << ", \"sim_t\": " << t << "}";
        slot_span->set_args(args.str());
        slot_span.reset();
        span_slots = 0;
      }
    }
    if (next_sample <= t) {
      double x = 0.0, y = 0.0;
      for (const std::size_t id : live) {
        (peers[id].is_seed ? y : x) += 1.0;
      }
      double copies = 0.0;
      for (const unsigned n : avail) copies += static_cast<double>(n);
      sink.recorder->append(dl_series, t, x);
      sink.recorder->append(seed_series, t, y);
      sink.recorder->append(avail_series, t,
                            copies / static_cast<double>(chunks));
      next_sample += sample_dt;
    }

    // --- arrivals (Poisson thinned to this slot) ------------------------
    const double expect = config.entry_rate * slot_dt;
    // Draw the Poisson count via inter-arrival exponentials.
    double budget = expect;
    while (true) {
      const double gap = rng.exponential(1.0);
      if (gap > budget) break;
      budget -= gap;
      peers.emplace_back(chunks);
      peers.back().arrival = t;
      peers.back().sampled = measured;
      add_live(peers.size() - 1);
    }
    if (live.size() > config.max_peers) {
      throw SolverError("chunk simulation exceeded max_peers");
    }

    // --- seed departures -------------------------------------------------
    for (std::size_t li = 0; li < live.size();) {
      Peer& p = peers[live[li]];
      if (p.is_seed && !p.permanent && p.seed_depart <= t) {
        for (unsigned c = 0; c < chunks; ++c) {
          if (p.have.test(c)) --avail[c];
        }
        live[li] = live.back();
        live.pop_back();
      } else {
        ++li;
      }
    }

    // --- population accounting -------------------------------------------
    if (measured) {
      double x = 0.0;
      double y = 0.0;
      for (const std::size_t id : live) {
        (peers[id].is_seed ? y : x) += 1.0;
      }
      downloaders_avg.add(x, slot_dt);
      seeds_avg.add(y, slot_dt);
    }

    // --- uploads: every peer with data ships one chunk --------------------
    order = live;
    rng.shuffle(order);
    for (const std::size_t uid : order) {
      Peer& u = peers[uid];
      if (u.have.count() == 0) continue;  // nothing to offer yet

      // Interested receivers: downloaders lacking something u has.
      interested.clear();
      for (const std::size_t vid : live) {
        if (vid == uid) continue;
        Peer& v = peers[vid];
        if (v.is_seed) continue;
        if (u.have.has_something_for(v.have)) interested.push_back(vid);
      }
      if (measured) uploader_slots += 1.0;
      if (interested.empty()) {
        if (measured) idle_uploader_slots += 1.0;
        continue;
      }

      // Receiver: seeds are altruistic; downloaders reciprocate their
      // best recent uploader except on optimistic unchokes.
      std::size_t receiver = interested[rng.index(interested.size())];
      if (!u.is_seed && !(config.optimistic_prob > 0.0 &&
                          rng.uniform() < config.optimistic_prob)) {
        double best_credit = 0.0;
        for (const std::size_t vid : interested) {
          const auto it = u.credit.find(vid);
          const double credit = it != u.credit.end() ? it->second : 0.0;
          if (credit > best_credit) {
            best_credit = credit;
            receiver = vid;
          }
        }
        // best_credit == 0 keeps the random (optimistic) choice.
      }

      // Chunk: local rarest first among what u can give the receiver.
      Peer& v = peers[receiver];
      u.have.missing_from(v.have, candidates);
      BTMF_ASSERT(!candidates.empty());
      unsigned chosen = candidates[0];
      unsigned best_avail = std::numeric_limits<unsigned>::max();
      const std::size_t start = rng.index(candidates.size());
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        const unsigned c = candidates[(start + k) % candidates.size()];
        if (avail[c] < best_avail) {
          best_avail = avail[c];
          chosen = c;
        }
      }

      v.have.set(chosen);
      ++avail[chosen];
      v.credit[uid] += 1.0;
      if (measured) {
        (u.is_seed ? seed_uploads : downloader_uploads) += 1.0;
      }

      if (v.have.full()) {
        v.is_seed = true;
        v.seed_depart = t + rng.exponential(config.fluid.gamma);
        v.credit.clear();
        if (v.sampled) download_time.add(t + slot_dt - v.arrival);
      }
    }

    // --- TFT credit decay --------------------------------------------------
    for (const std::size_t id : live) {
      Peer& p = peers[id];
      if (p.is_seed || p.credit.empty()) continue;
      for (auto it = p.credit.begin(); it != p.credit.end();) {
        it->second *= config.credit_decay;
        it = it->second < 0.01 ? p.credit.erase(it) : std::next(it);
      }
    }

    t += slot_dt;
  }
  if (slot_span.has_value()) {
    std::ostringstream args;
    args << "{\"slots\": " << span_slots << ", \"sim_t\": " << t << "}";
    slot_span->set_args(args.str());
    slot_span.reset();
  }
  if (sink.metrics != nullptr) {
    obs::MetricsRegistry& m = *sink.metrics;
    m.add(m.counter("chunk.slots"), static_cast<std::uint64_t>(slots_total));
    m.add(m.counter("chunk.completions"), download_time.count());
    m.add(m.counter("chunk.downloader_uploads"),
          static_cast<std::uint64_t>(downloader_uploads));
    m.add(m.counter("chunk.seed_uploads"),
          static_cast<std::uint64_t>(seed_uploads));
  }

  ChunkSimResult result;
  result.completed_peers = download_time.count();
  result.mean_download_time = download_time.mean();
  result.ci_download_time = download_time.ci_halfwidth();
  result.avg_downloaders = downloaders_avg.average();
  result.avg_seeds = seeds_avg.average();
  const double measured_slots =
      (config.horizon - config.warmup) / slot_dt;
  const double dl_per_slot = downloader_uploads / measured_slots;
  result.emergent_eta = result.avg_downloaders > 0.0
                            ? dl_per_slot / result.avg_downloaders
                            : 0.0;
  const double total_uploads = downloader_uploads + seed_uploads;
  if (total_uploads > 0.0) {
    result.downloader_upload_share = downloader_uploads / total_uploads;
    result.seed_upload_share = seed_uploads / total_uploads;
  }
  result.idle_fraction =
      uploader_slots > 0.0 ? idle_uploader_slots / uploader_slots : 0.0;
  if (result.emergent_eta > 0.0 &&
      config.fluid.gamma > config.fluid.mu) {
    result.fluid_prediction =
        (config.fluid.gamma - config.fluid.mu) /
        (config.fluid.gamma * config.fluid.mu * result.emergent_eta);
  }
  return result;
}

}  // namespace btmf::sim
