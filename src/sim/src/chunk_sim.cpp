// The chunk-level protocol engine.
//
// One slot = one potential chunk upload per peer (per upload session for
// the separate-torrent schemes, where a multi-torrent seed gives each of
// its torrents a full mu like the fluid's per-torrent seed populations).
// The K = 1 path is draw-for-draw identical to the original single-
// torrent substrate: every multi-file branch (wanted-set sampling, visit
// -order shuffles, torrent choice, CMFSD donation coins) is gated so it
// consumes randomness only when a genuine multi-file choice exists. The
// bit-identity test in tests/sim/chunk_sim_test.cpp pins this contract.
#include "btmf/sim/chunk_sim.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "btmf/math/stats.h"
#include "btmf/sim/rng.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Chunk bitfield over up to a few thousand chunks, in 64-bit words.
class Bitfield {
 public:
  explicit Bitfield(unsigned bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void set(unsigned bit) {
    words_[bit / 64] |= std::uint64_t{1} << (bit % 64);
    ++count_;
  }
  void set_all() {
    for (unsigned b = 0; b < bits_; ++b) {
      words_[b / 64] |= std::uint64_t{1} << (b % 64);
    }
    count_ = bits_;
  }
  [[nodiscard]] bool test(unsigned bit) const {
    return (words_[bit / 64] >> (bit % 64)) & 1;
  }
  [[nodiscard]] unsigned count() const { return count_; }
  [[nodiscard]] bool full() const { return count_ == bits_; }

  /// True if `this` holds any chunk `other` lacks.
  [[nodiscard]] bool has_something_for(const Bitfield& other) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & ~other.words_[w]) return true;
    }
    return false;
  }

  /// Appends `base` + index for every chunk in `this` and not in `other`.
  void append_missing_from(const Bitfield& other, unsigned base,
                           std::vector<unsigned>& out) const {
    for (unsigned b = 0; b < bits_; ++b) {
      if (test(b) && !other.test(b)) out.push_back(base + b);
    }
  }

 private:
  unsigned bits_;
  unsigned count_ = 0;
  std::vector<std::uint64_t> words_;
};

struct Peer {
  Peer(unsigned files, unsigned chunks_per_file, std::uint32_t wanted_mask)
      : wanted(wanted_mask), counted(wanted_mask) {
    have.reserve(files);
    for (unsigned f = 0; f < files; ++f) {
      have.emplace_back((wanted_mask >> f) & 1u ? chunks_per_file : 0u);
    }
  }

  std::vector<Bitfield> have;  ///< per-file piece bitmap (empty if unwanted)
  std::uint32_t wanted = 0;    ///< files this user downloads
  std::uint32_t done = 0;      ///< completed files
  /// Files whose held chunks are reflected in `avail` (i.e. still offered
  /// to the swarm); cleared per file on withdrawal, wholesale on removal.
  std::uint32_t counted = 0;
  bool is_seed = false;        ///< every wanted file complete
  bool permanent = false;      ///< publisher seed, never departs
  bool sampled = false;
  bool seeding_phase = false;  ///< MTSD: seeding between sequential files
  unsigned stage = 0;          ///< sequential schemes: index into `order`
  double arrival = 0.0;
  double stage_start = 0.0;    ///< current file's download start
  double download_accum = 0.0; ///< MTSD: summed downloading-phase time
  double seed_until = kInf;    ///< MTSD: inter-file seeding deadline
  double depart = kInf;        ///< final removal time, once known
  std::vector<std::uint8_t> order;       ///< sequential visit order
  std::vector<double> file_seed_depart;  ///< MTCD per-torrent deadlines
  /// Decayed TFT credit: chunks recently received, by sender id.
  std::unordered_map<std::size_t, double> credit;
  // Bandwidth-class state (inert under the homogeneous default).
  std::uint8_t bclass = 0;     ///< index into config.bandwidth_classes
  double up_credit = 0.0;      ///< fractional upload turns banked
  double down_credit = kInf;   ///< receive tokens (1 token = 1 chunk)
};

}  // namespace

const char* to_string(PiecePolicy policy) {
  switch (policy) {
    case PiecePolicy::kRarestFirst:
      return "rarest-first";
    case PiecePolicy::kRandom:
      return "random";
    case PiecePolicy::kModeSuppression:
      return "mode-suppression";
  }
  return "?";
}

PiecePolicy piece_policy_from_string(std::string_view name) {
  if (name == "rarest-first") return PiecePolicy::kRarestFirst;
  if (name == "random") return PiecePolicy::kRandom;
  if (name == "mode-suppression") return PiecePolicy::kModeSuppression;
  throw ConfigError("unknown piece policy '" + std::string(name) +
                    "' (expected rarest-first|random|mode-suppression)");
}

void ChunkSimConfig::validate() const {
  BTMF_CHECK_MSG(num_files >= 1 && num_files <= 32,
                 "num_files must lie in [1, 32]");
  BTMF_CHECK_MSG(num_chunks >= 1 && num_chunks <= 4096,
                 "num_chunks must lie in [1, 4096]");
  BTMF_CHECK_MSG(entry_rate > 0.0, "entry_rate must be positive");
  arrival.validate();
  fluid::validate_classes(bandwidth_classes);
  BTMF_CHECK_MSG(correlation > 0.0 && correlation <= 1.0,
                 "correlation must lie in (0, 1]");
  fluid.validate();
  BTMF_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "rho must lie in [0, 1]");
  BTMF_CHECK_MSG(suppression_prob >= 0.0 && suppression_prob <= 1.0,
                 "suppression_prob must lie in [0, 1]");
  BTMF_CHECK_MSG(optimistic_prob >= 0.0 && optimistic_prob <= 1.0,
                 "optimistic_prob must lie in [0, 1]");
  BTMF_CHECK_MSG(credit_decay >= 0.0 && credit_decay < 1.0,
                 "credit_decay must lie in [0, 1)");
  BTMF_CHECK_MSG(initial_seeds >= 1,
                 "need at least one publisher seed to bootstrap");
  BTMF_CHECK_MSG(horizon > 0.0 && warmup >= 0.0 && warmup < horizon,
                 "need 0 <= warmup < horizon");
  obs.validate();
}

ChunkSimResult run_chunk_sim(const ChunkSimConfig& config) {
  config.validate();
  const unsigned files = config.num_files;
  const unsigned chunks = config.num_chunks;
  const fluid::SchemeKind scheme = config.scheme;
  const bool sequential = scheme == fluid::SchemeKind::kMtsd ||
                          scheme == fluid::SchemeKind::kCmfsd;
  const std::uint32_t full_mask =
      files == 32 ? ~std::uint32_t{0} : (std::uint32_t{1} << files) - 1;
  // One chunk per peer per slot: slot length so that a full file takes
  // 1/mu time units of dedicated upload.
  const double slot_dt = 1.0 / (config.fluid.mu * chunks);

  // Bandwidth classes, mapped to slot units: one upload turn per slot is
  // rate mu, so a class earns upload_scale turns per slot (token bucket,
  // whole turns spent); a download cap c is c/mu receive tokens per slot,
  // with the bucket sized max(1, rate) so sub-chunk-per-slot rates bank
  // fractional credit instead of starving. Everything is inert under the
  // homogeneous default (no class draw, gates never bind).
  const bool have_classes = !config.bandwidth_classes.empty();
  std::vector<double> class_turns, class_tokens, class_bucket;
  double class_weight_total = 0.0;
  for (const fluid::BandwidthClass& cls : config.bandwidth_classes) {
    class_turns.push_back(cls.upload_scale);
    const double tokens =
        cls.download_cap > 0.0 ? cls.download_cap / config.fluid.mu : kInf;
    class_tokens.push_back(tokens);
    class_bucket.push_back(std::max(1.0, tokens));
    class_weight_total += cls.weight;
  }

  RandomStream rng(config.seed);
  std::vector<Peer> peers;
  std::vector<std::size_t> live;
  // Live copies per chunk, all files flattened: chunk c of file f is
  // avail[f * chunks + c]. Rarest-first reads these counts.
  std::vector<unsigned> avail(static_cast<std::size_t>(files) * chunks, 0);

  const auto file_bit = [](unsigned f) { return std::uint32_t{1} << f; };

  /// Which files `p` is actively downloading right now (0 for seeds, for
  /// MTSD peers in an inter-file seeding residence, and for nobody else).
  const auto accepts = [&](const Peer& p) -> std::uint32_t {
    if (p.is_seed) return 0;
    switch (scheme) {
      case fluid::SchemeKind::kMtcd:
      case fluid::SchemeKind::kMfcd:
        return p.wanted & ~p.done;
      case fluid::SchemeKind::kMtsd:
        return p.seeding_phase ? 0u : file_bit(p.order[p.stage]);
      case fluid::SchemeKind::kCmfsd:
        return file_bit(p.order[p.stage]);
    }
    return 0;
  };

  /// Stops offering file `f`: its copies leave the availability census.
  const auto withdraw = [&](Peer& p, unsigned f) {
    if (!((p.counted >> f) & 1u)) return;
    const Bitfield& bf = p.have[f];
    for (unsigned c = 0; c < chunks; ++c) {
      if (bf.test(c)) --avail[static_cast<std::size_t>(f) * chunks + c];
    }
    p.counted &= ~file_bit(f);
  };

  const auto spawn_peer = [&](std::uint32_t wanted_mask, double at,
                              bool sampled_flag) {
    peers.emplace_back(files, chunks, wanted_mask);
    Peer& p = peers.back();
    p.arrival = at;
    p.stage_start = at;
    p.sampled = sampled_flag;
    for (unsigned f = 0; f < files; ++f) {
      if ((wanted_mask >> f) & 1u) {
        p.order.push_back(static_cast<std::uint8_t>(f));
      }
    }
    // Sequential schemes visit the wanted files in a random per-user
    // order so no file is systematically first. Single-file users (and
    // every user at K = 1) draw nothing.
    if (sequential && p.order.size() > 1) rng.shuffle(p.order);
    if (have_classes) {
      // Weighted class draw, same walk as the event kernel's.
      double pick = rng.uniform() * class_weight_total;
      std::size_t b = 0;
      while (b + 1 < class_turns.size()) {
        pick -= config.bandwidth_classes[b].weight;
        if (pick < 0.0) break;
        ++b;
      }
      p.bclass = static_cast<std::uint8_t>(b);
      p.down_credit = class_bucket[b];
    }
    if (scheme == fluid::SchemeKind::kMtcd) {
      p.file_seed_depart.assign(files, kInf);
    }
    live.push_back(peers.size() - 1);
  };

  // Publisher seeds.
  for (unsigned s = 0; s < config.initial_seeds; ++s) {
    peers.emplace_back(files, chunks, full_mask);
    Peer& p = peers.back();
    for (unsigned f = 0; f < files; ++f) p.have[f].set_all();
    p.done = full_mask;
    p.is_seed = true;
    p.permanent = true;
    live.push_back(peers.size() - 1);
    for (unsigned& a : avail) ++a;
  }

  // Flash crowd: class-K users (wanting every file) injected at t = 0 on
  // top of the Poisson process. Default 0 — the knob exists to probe the
  // RFwPMS instability claim (bench/perf_chunk).
  for (unsigned n = 0; n < config.flash_crowd; ++n) {
    spawn_peer(full_mask, 0.0, config.warmup <= 0.0);
  }

  math::RunningStats download_time, online_time;
  math::TimeAverage downloaders_avg, seeds_avg;
  double downloader_uploads = 0.0;
  double seed_uploads = 0.0;
  double donated_uploads = 0.0;
  double idle_uploader_slots = 0.0;
  double uploader_slots = 0.0;
  double peak_downloaders = 0.0;

  // Per-file accumulators (eta_f = tft_uploads_f / bandwidth_share_f).
  std::vector<double> file_tft_uploads(files, 0.0);
  std::vector<double> file_share(files, 0.0);       // sum of 1/l per slot
  std::vector<double> file_downloaders(files, 0.0); // sum of x_f per slot
  std::vector<double> file_seeders(files, 0.0);     // sum of s_f per slot
  std::vector<math::RunningStats> file_download(files);
  std::vector<math::RunningStats> class_download(files), class_online(files);
  double sampled_download_sum = 0.0;
  double sampled_online_sum = 0.0;
  double sampled_files_sum = 0.0;
  double measured_slot_count = 0.0;

  const auto finalize_user = [&](Peer& v, double total_download) {
    if (!v.sampled) return;
    download_time.add(total_download);
    const double online = v.depart - v.arrival;
    online_time.add(online);
    const unsigned cls = static_cast<unsigned>(std::popcount(v.wanted));
    class_download[cls - 1].add(total_download);
    class_online[cls - 1].add(online);
    sampled_download_sum += total_download;
    sampled_online_sum += online;
    sampled_files_sum += static_cast<double>(cls);
  };

  // Scratch vectors reused across slots.
  std::vector<std::size_t> order;
  std::vector<std::size_t> interested;
  std::vector<unsigned> candidates;
  std::vector<unsigned> filtered;
  std::vector<std::size_t> down_all;                    // active downloaders
  std::vector<std::vector<std::size_t>> down_by_file(files);
  std::vector<unsigned> cand_files;
  std::vector<std::size_t> viable;
  std::vector<std::vector<std::size_t>> file_interest(files);

  // Telemetry: cadence-sampled population series and batched slot spans.
  // Observation draws no randomness, so the result is identical with or
  // without sinks attached.
  const obs::ObsSink& sink = config.obs;
  const double sample_dt =
      sink.sample_dt > 0.0 ? sink.sample_dt : config.horizon / 512.0;
  double next_sample = sink.recorder != nullptr ? 0.0 : kInf;
  obs::SeriesId dl_series = 0, seed_series = 0, avail_series = 0;
  std::vector<obs::SeriesId> file_dl_series, file_seed_series,
      file_avail_series;
  if (sink.recorder != nullptr) {
    dl_series = sink.recorder->series("chunk.downloaders");
    seed_series = sink.recorder->series("chunk.seeds");
    avail_series = sink.recorder->series("chunk.availability");
    if (files > 1) {
      for (unsigned f = 0; f < files; ++f) {
        const std::string tag = "chunk.file_" + std::to_string(f + 1);
        file_dl_series.push_back(sink.recorder->series(tag + ".downloaders"));
        file_seed_series.push_back(sink.recorder->series(tag + ".seeds"));
        file_avail_series.push_back(
            sink.recorder->series(tag + ".availability"));
      }
    }
  }
  std::optional<obs::TraceWriter::Span> slot_span;
  std::size_t span_slots = 0;
  double slots_total = 0.0;

  /// Local rarest-first: minimise live availability over `cand`, scanning
  /// from a random rotation so ties break uniformly.
  const auto rarest_pick = [&](const std::vector<unsigned>& cand) {
    unsigned chosen = cand[0];
    unsigned best_avail = std::numeric_limits<unsigned>::max();
    const std::size_t start = rng.index(cand.size());
    for (std::size_t k = 0; k < cand.size(); ++k) {
      const unsigned c = cand[(start + k) % cand.size()];
      if (avail[c] < best_avail) {
        best_avail = avail[c];
        chosen = c;
      }
    }
    return chosen;
  };

  const auto pick_chunk = [&]() -> unsigned {
    switch (config.policy) {
      case PiecePolicy::kRarestFirst:
        return rarest_pick(candidates);
      case PiecePolicy::kRandom:
        return candidates[rng.index(candidates.size())];
      case PiecePolicy::kModeSuppression: {
        // RFwPMS adapted to the slotted substrate: with probability s the
        // modal tier — the minimum-availability pieces every rarest-first
        // uploader would herd onto this slot — is suppressed, provided a
        // strictly less rare alternative exists.
        if (config.suppression_prob > 0.0 &&
            rng.uniform() < config.suppression_prob) {
          unsigned lo = std::numeric_limits<unsigned>::max();
          for (const unsigned c : candidates) lo = std::min(lo, avail[c]);
          filtered.clear();
          for (const unsigned c : candidates) {
            if (avail[c] > lo) filtered.push_back(c);
          }
          if (!filtered.empty()) return rarest_pick(filtered);
        }
        return rarest_pick(candidates);
      }
    }
    return candidates[0];
  };

  double t = 0.0;
  while (t < config.horizon) {
    const bool measured = t >= config.warmup;
    slots_total += 1.0;
    if (sink.trace != nullptr) {
      if (!slot_span.has_value()) {
        slot_span.emplace(sink.trace->span("chunk.slots"));
      }
      if (++span_slots >= sink.trace_batch) {
        std::ostringstream args;
        args << "{\"slots\": " << span_slots << ", \"sim_t\": " << t << "}";
        slot_span->set_args(args.str());
        slot_span.reset();
        span_slots = 0;
      }
    }
    if (next_sample <= t) {
      double x = 0.0, y = 0.0;
      for (const std::size_t id : live) {
        (accepts(peers[id]) == 0 ? y : x) += 1.0;
      }
      double copies = 0.0;
      for (const unsigned n : avail) copies += static_cast<double>(n);
      sink.recorder->append(dl_series, t, x);
      sink.recorder->append(seed_series, t, y);
      sink.recorder->append(avail_series, t,
                            copies / static_cast<double>(avail.size()));
      if (!file_dl_series.empty()) {
        std::vector<double> fx(files, 0.0), fs(files, 0.0);
        for (const std::size_t id : live) {
          const Peer& p = peers[id];
          std::uint32_t m = accepts(p);
          while (m != 0) {
            fx[static_cast<unsigned>(std::countr_zero(m))] += 1.0;
            m &= m - 1;
          }
          m = p.done & p.counted;
          while (m != 0) {
            fs[static_cast<unsigned>(std::countr_zero(m))] += 1.0;
            m &= m - 1;
          }
        }
        for (unsigned f = 0; f < files; ++f) {
          double fcopies = 0.0;
          for (unsigned c = 0; c < chunks; ++c) {
            fcopies += static_cast<double>(
                avail[static_cast<std::size_t>(f) * chunks + c]);
          }
          sink.recorder->append(file_dl_series[f], t, fx[f]);
          sink.recorder->append(file_seed_series[f], t, fs[f]);
          sink.recorder->append(file_avail_series[f], t,
                                fcopies / static_cast<double>(chunks));
        }
      }
      next_sample += sample_dt;
    }

    // --- arrivals (Poisson thinned to this slot) ------------------------
    // The per-slot expectation follows lambda(t); rate_at returns
    // entry_rate exactly for the homogeneous default.
    const double expect =
        config.arrival.rate_at(config.entry_rate, t) * slot_dt;
    // Replenish the receive buckets at the top of the slot.
    if (have_classes) {
      for (const std::size_t vid : live) {
        Peer& v = peers[vid];
        if (v.is_seed) continue;
        v.down_credit = std::min(v.down_credit + class_tokens[v.bclass],
                                 class_bucket[v.bclass]);
      }
    }
    // Draw the Poisson count via inter-arrival exponentials.
    double budget = expect;
    while (true) {
      const double gap = rng.exponential(1.0);
      if (gap > budget) break;
      budget -= gap;
      std::uint32_t wanted_mask = 1u;
      if (files > 1) {
        // Binomial wanted set conditioned on wanting at least one file
        // (the correlation model's L_i truncated at i = 0).
        do {
          wanted_mask = 0;
          for (unsigned f = 0; f < files; ++f) {
            if (rng.bernoulli(config.correlation)) wanted_mask |= file_bit(f);
          }
        } while (wanted_mask == 0);
      }
      spawn_peer(wanted_mask, t, measured);
    }
    if (live.size() > config.max_peers) {
      throw SolverError("chunk simulation exceeded max_peers");
    }

    // --- departures, per-torrent seeding expiries, MTSD stage advance ----
    for (std::size_t li = 0; li < live.size();) {
      Peer& p = peers[live[li]];
      if (!p.permanent) {
        if (scheme == fluid::SchemeKind::kMtcd) {
          std::uint32_t pending = p.done & p.counted;
          while (pending != 0) {
            const unsigned f = static_cast<unsigned>(std::countr_zero(pending));
            pending &= pending - 1;
            if (p.file_seed_depart[f] <= t) withdraw(p, f);
          }
        } else if (scheme == fluid::SchemeKind::kMtsd && p.seeding_phase &&
                   p.seed_until <= t) {
          withdraw(p, p.order[p.stage]);
          ++p.stage;
          p.seeding_phase = false;
          p.stage_start = t;
        }
        if (p.is_seed && p.depart <= t) {
          std::uint32_t rest = p.counted;
          while (rest != 0) {
            const unsigned f = static_cast<unsigned>(std::countr_zero(rest));
            rest &= rest - 1;
            withdraw(p, f);
          }
          p.have.clear();
          p.have.shrink_to_fit();
          live[li] = live.back();
          live.pop_back();
          continue;
        }
      }
      ++li;
    }

    // --- active-downloader index (live order, superset for this slot) ----
    // MTCD peers downloading several torrents focus their receive side on
    // ONE of them per slot (uniform): the paper's 1/l download-bandwidth
    // split as a protocol mechanic — a class-i peer draws each torrent's
    // service a 1/i fraction of the time, so its per-file time scales
    // like the fluid's iA. Single-torrent peers (and every peer at K = 1)
    // draw nothing.
    down_all.clear();
    for (auto& list : down_by_file) list.clear();
    for (const std::size_t vid : live) {
      std::uint32_t m = accepts(peers[vid]);
      if (m == 0) continue;
      down_all.push_back(vid);
      if (scheme == fluid::SchemeKind::kMtcd && (m & (m - 1)) != 0) {
        std::size_t skip = rng.index(static_cast<std::size_t>(std::popcount(m)));
        while (skip-- > 0) m &= m - 1;
        down_by_file[static_cast<unsigned>(std::countr_zero(m))].push_back(vid);
        continue;
      }
      while (m != 0) {
        down_by_file[static_cast<unsigned>(std::countr_zero(m))].push_back(vid);
        m &= m - 1;
      }
    }
    peak_downloaders =
        std::max(peak_downloaders, static_cast<double>(down_all.size()));

    // --- population accounting -------------------------------------------
    if (measured) {
      downloaders_avg.add(static_cast<double>(down_all.size()), slot_dt);
      seeds_avg.add(static_cast<double>(live.size() - down_all.size()),
                    slot_dt);
      measured_slot_count += 1.0;
      for (const std::size_t vid : down_all) {
        std::uint32_t m = accepts(peers[vid]);
        // Per-file TFT bandwidth share this downloader points at file f
        // (the eta denominator — docs/PROTOCOL.md). MTCD splits over the
        // *class* (all wanted torrents, the fluid's 1/i; completed ones
        // get theirs as altruistic sessions). CMFSD allocates only rho
        // of a donate-eligible peer's slot to tit-for-tat (the rest is
        // donation, which the fluid's pool serves without eta). The
        // merged/sequential schemes split over what is active.
        double share;
        if (scheme == fluid::SchemeKind::kMtcd) {
          share = 1.0 / static_cast<double>(std::popcount(peers[vid].wanted));
        } else if (scheme == fluid::SchemeKind::kCmfsd &&
                   (peers[vid].done & peers[vid].counted) != 0 &&
                   config.rho < 1.0) {
          share = config.rho;
        } else {
          share = 1.0 / static_cast<double>(std::popcount(m));
        }
        while (m != 0) {
          const unsigned f = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
          file_share[f] += share;
          file_downloaders[f] += 1.0;
        }
      }
      for (const std::size_t vid : live) {
        std::uint32_t m = peers[vid].done & peers[vid].counted;
        while (m != 0) {
          file_seeders[static_cast<unsigned>(std::countr_zero(m))] += 1.0;
          m &= m - 1;
        }
      }
    }

    // --- file completion (shared tail of every delivery) ------------------
    const auto on_file_complete = [&](Peer& v, unsigned f) {
      v.done |= file_bit(f);
      const bool concurrent_start = scheme == fluid::SchemeKind::kMtcd ||
                                    scheme == fluid::SchemeKind::kMfcd;
      if (v.sampled) {
        file_download[f].add(t + slot_dt -
                             (concurrent_start ? v.arrival : v.stage_start));
      }
      const bool last = (v.done & v.wanted) == v.wanted;
      switch (scheme) {
        case fluid::SchemeKind::kMtcd: {
          // Each completed torrent is seeded for its own Exp(gamma).
          v.file_seed_depart[f] = t + rng.exponential(config.fluid.gamma);
          if (last) {
            v.is_seed = true;
            double depart = 0.0;
            std::uint32_t m = v.wanted;
            while (m != 0) {
              const unsigned g = static_cast<unsigned>(std::countr_zero(m));
              m &= m - 1;
              depart = std::max(depart, v.file_seed_depart[g]);
            }
            v.depart = depart;
            v.credit.clear();
            finalize_user(v, t + slot_dt - v.arrival);
          }
          break;
        }
        case fluid::SchemeKind::kMtsd: {
          v.download_accum += t + slot_dt - v.stage_start;
          if (last) {
            v.is_seed = true;
            v.depart = t + rng.exponential(config.fluid.gamma);
            v.credit.clear();
            finalize_user(v, v.download_accum);
          } else {
            v.seeding_phase = true;
            v.seed_until = t + rng.exponential(config.fluid.gamma);
            v.credit.clear();
          }
          break;
        }
        case fluid::SchemeKind::kMfcd: {
          if (last) {
            v.is_seed = true;
            v.depart = t + rng.exponential(config.fluid.gamma);
            v.credit.clear();
            finalize_user(v, t + slot_dt - v.arrival);
          }
          break;
        }
        case fluid::SchemeKind::kCmfsd: {
          if (last) {
            v.is_seed = true;
            v.depart = t + rng.exponential(config.fluid.gamma);
            v.credit.clear();
            finalize_user(v, t + slot_dt - v.arrival);
          } else {
            ++v.stage;
            v.stage_start = t + slot_dt;
          }
          break;
        }
      }
    };

    // --- one upload session: pick a receiver among `scan`, then a chunk --
    // `allowed` limits which of the uploader's files are on offer;
    // `altruistic` sessions (seeds, MTSD inter-file seeding, CMFSD
    // donations) serve a random interested peer, TFT sessions reciprocate
    // the best recent uploader except on optimistic unchokes.
    const auto run_session = [&](Peer& u, std::size_t uid,
                                 const std::vector<std::size_t>& scan,
                                 std::uint32_t allowed, bool altruistic,
                                 bool donation) {
      interested.clear();
      for (const std::size_t vid : scan) {
        if (vid == uid) continue;
        Peer& v = peers[vid];
        if (v.down_credit < 1.0) continue;  // receive bucket empty
        std::uint32_t fs = accepts(v) & allowed;
        while (fs != 0) {
          const unsigned f = static_cast<unsigned>(std::countr_zero(fs));
          fs &= fs - 1;
          if (u.have[f].has_something_for(v.have[f])) {
            interested.push_back(vid);
            break;
          }
        }
      }
      if (measured) uploader_slots += 1.0;
      if (interested.empty()) {
        if (measured) idle_uploader_slots += 1.0;
        return;
      }

      std::size_t receiver = interested[rng.index(interested.size())];
      if (!altruistic && !(config.optimistic_prob > 0.0 &&
                           rng.uniform() < config.optimistic_prob)) {
        double best_credit = 0.0;
        for (const std::size_t vid : interested) {
          const auto it = u.credit.find(vid);
          const double credit = it != u.credit.end() ? it->second : 0.0;
          if (credit > best_credit) {
            best_credit = credit;
            receiver = vid;
          }
        }
        // best_credit == 0 keeps the random (optimistic) choice.
      }

      Peer& v = peers[receiver];
      candidates.clear();
      std::uint32_t fs = accepts(v) & allowed;
      while (fs != 0) {
        const unsigned f = static_cast<unsigned>(std::countr_zero(fs));
        fs &= fs - 1;
        u.have[f].append_missing_from(v.have[f], f * chunks, candidates);
      }
      BTMF_ASSERT(!candidates.empty());
      const unsigned chosen = pick_chunk();
      const unsigned cf = chosen / chunks;

      v.have[cf].set(chosen % chunks);
      ++avail[chosen];
      v.credit[uid] += 1.0;
      v.down_credit -= 1.0;  // inf stays inf under the homogeneous default
      if (measured) {
        (altruistic ? seed_uploads : downloader_uploads) += 1.0;
        if (!altruistic) file_tft_uploads[cf] += 1.0;
        if (donation) donated_uploads += 1.0;
      }
      if (v.have[cf].full()) on_file_complete(v, cf);
    };

    // --- the TFT download-side session for the separate-torrent schemes:
    // one mu split uniformly across the uploader's active torrents that
    // have an interested peer (no draw when only one qualifies).
    const auto run_download_session = [&](Peer& u, std::size_t uid,
                                          std::uint32_t active) {
      cand_files.clear();
      std::uint32_t m = active;
      while (m != 0) {
        const unsigned f = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        if (u.have[f].count() > 0) cand_files.push_back(f);
      }
      if (cand_files.empty()) return;  // nothing to offer yet: no session
      viable.clear();
      for (std::size_t ci = 0; ci < cand_files.size(); ++ci) {
        const unsigned f = cand_files[ci];
        std::vector<std::size_t>& list = file_interest[ci];
        list.clear();
        for (const std::size_t vid : down_by_file[f]) {
          if (vid == uid) continue;
          Peer& v = peers[vid];
          if (v.down_credit < 1.0) continue;  // receive bucket empty
          if (((accepts(v) >> f) & 1u) == 0) continue;
          if (u.have[f].has_something_for(v.have[f])) list.push_back(vid);
        }
        if (!list.empty()) viable.push_back(ci);
      }
      if (measured) uploader_slots += 1.0;
      if (viable.empty()) {
        if (measured) idle_uploader_slots += 1.0;
        return;
      }
      const std::size_t ci =
          viable.size() == 1 ? viable[0] : viable[rng.index(viable.size())];
      const unsigned f = cand_files[ci];
      const std::vector<std::size_t>& list = file_interest[ci];

      std::size_t receiver = list[rng.index(list.size())];
      if (!(config.optimistic_prob > 0.0 &&
            rng.uniform() < config.optimistic_prob)) {
        double best_credit = 0.0;
        for (const std::size_t vid : list) {
          const auto it = u.credit.find(vid);
          const double credit = it != u.credit.end() ? it->second : 0.0;
          if (credit > best_credit) {
            best_credit = credit;
            receiver = vid;
          }
        }
      }

      Peer& v = peers[receiver];
      candidates.clear();
      u.have[f].append_missing_from(v.have[f], f * chunks, candidates);
      BTMF_ASSERT(!candidates.empty());
      const unsigned chosen = pick_chunk();

      v.have[f].set(chosen % chunks);
      ++avail[chosen];
      v.credit[uid] += 1.0;
      v.down_credit -= 1.0;
      if (measured) {
        downloader_uploads += 1.0;
        file_tft_uploads[f] += 1.0;
      }
      if (v.have[f].full()) on_file_complete(v, f);
    };

    // --- uploads: every peer with data ships one chunk per session --------
    order = live;
    rng.shuffle(order);
    for (const std::size_t uid : order) {
      Peer& u = peers[uid];
      // A class-b peer banks upload_scale_b turns per slot and spends the
      // whole ones; publisher seeds (and every peer under the homogeneous
      // default) take exactly one turn — no extra draws, bit-identical.
      unsigned turns = 1;
      if (have_classes && !u.permanent) {
        u.up_credit += class_turns[u.bclass];
        turns = static_cast<unsigned>(u.up_credit);
        u.up_credit -= static_cast<double>(turns);
      }
      for (unsigned turn = 0; turn < turns; ++turn) {
      switch (scheme) {
        case fluid::SchemeKind::kMtcd: {
          // The paper's class split: a class-i user dedicates mu/i of
          // its upload to each wanted torrent for its whole stay —
          // downloading and seeding alike (the fluid's seed term is
          // mu_bar * y, not mu * y; that is where the A formula's
          // gamma - mu_bar numerator comes from). One upload session
          // per slot, on a uniformly drawn wanted torrent: altruistic
          // if that file is done and still seeded, tit-for-tat if it is
          // still downloading, idle if its seeding residence expired.
          std::uint32_t m = u.wanted;
          if ((m & (m - 1)) != 0) {
            std::size_t skip =
                rng.index(static_cast<std::size_t>(std::popcount(m)));
            while (skip-- > 0) m &= m - 1;
          }
          const unsigned f = static_cast<unsigned>(std::countr_zero(m));
          const std::uint32_t fb = file_bit(f);
          if ((u.done & u.counted & fb) != 0) {
            run_session(u, uid, down_by_file[f], fb,
                        /*altruistic=*/true, /*donation=*/false);
          } else if ((accepts(u) & fb) != 0) {
            run_download_session(u, uid, fb);
          }
          break;
        }
        case fluid::SchemeKind::kMtsd: {
          // Sequential: each subtorrent is an independent single
          // torrent — full-rate altruistic seeding of the current file
          // between downloads, full-rate tit-for-tat while downloading.
          std::uint32_t seeding = u.done & u.counted;
          while (seeding != 0) {
            const unsigned f = static_cast<unsigned>(std::countr_zero(seeding));
            seeding &= seeding - 1;
            run_session(u, uid, down_by_file[f], file_bit(f),
                        /*altruistic=*/true, /*donation=*/false);
          }
          const std::uint32_t active = accepts(u);
          if (active != 0) run_download_session(u, uid, active);
          break;
        }
        case fluid::SchemeKind::kMfcd: {
          // One merged swarm: a single session offers every held chunk.
          if (u.is_seed) {
            if ((u.wanted & u.counted) != 0) {
              run_session(u, uid, down_all, u.wanted & u.counted,
                          /*altruistic=*/true, /*donation=*/false);
            }
            break;
          }
          std::uint32_t offer = 0;
          std::uint32_t m = u.wanted & u.counted;
          while (m != 0) {
            const unsigned f = static_cast<unsigned>(std::countr_zero(m));
            m &= m - 1;
            if (u.have[f].count() > 0) offer |= file_bit(f);
          }
          if (offer != 0) {
            run_session(u, uid, down_all, offer, /*altruistic=*/false,
                        /*donation=*/false);
          }
          break;
        }
        case fluid::SchemeKind::kCmfsd: {
          if (u.is_seed) {
            if ((u.wanted & u.counted) != 0) {
              run_session(u, uid, down_all, u.wanted & u.counted,
                          /*altruistic=*/true, /*donation=*/false);
            }
            break;
          }
          // The paper's P(i, j) bandwidth split: with probability
          // 1 - rho the slot is donated to the peer's completed
          // subtorrents; otherwise it trades on the current one.
          const std::uint32_t donate_mask = u.done & u.counted;
          if (donate_mask != 0 && config.rho < 1.0 &&
              rng.uniform() < 1.0 - config.rho) {
            run_session(u, uid, down_all, donate_mask, /*altruistic=*/true,
                        /*donation=*/true);
            break;
          }
          const unsigned cur = u.order[u.stage];
          if (u.have[cur].count() > 0) {
            run_session(u, uid, down_by_file[cur], file_bit(cur),
                        /*altruistic=*/false, /*donation=*/false);
          }
          break;
        }
      }
      }
    }

    // --- TFT credit decay --------------------------------------------------
    for (const std::size_t id : live) {
      Peer& p = peers[id];
      if (p.is_seed || p.credit.empty()) continue;
      for (auto it = p.credit.begin(); it != p.credit.end();) {
        it->second *= config.credit_decay;
        it = it->second < 0.01 ? p.credit.erase(it) : std::next(it);
      }
    }

    t += slot_dt;
  }
  if (slot_span.has_value()) {
    std::ostringstream args;
    args << "{\"slots\": " << span_slots << ", \"sim_t\": " << t << "}";
    slot_span->set_args(args.str());
    slot_span.reset();
  }
  if (sink.metrics != nullptr) {
    obs::MetricsRegistry& m = *sink.metrics;
    m.add(m.counter("chunk.slots"), static_cast<std::uint64_t>(slots_total));
    m.add(m.counter("chunk.completions"), download_time.count());
    m.add(m.counter("chunk.downloader_uploads"),
          static_cast<std::uint64_t>(downloader_uploads));
    m.add(m.counter("chunk.seed_uploads"),
          static_cast<std::uint64_t>(seed_uploads));
    if (scheme == fluid::SchemeKind::kCmfsd) {
      m.add(m.counter("chunk.donated_uploads"),
            static_cast<std::uint64_t>(donated_uploads));
    }
  }

  ChunkSimResult result;
  result.completed_peers = download_time.count();
  result.mean_download_time = download_time.mean();
  result.ci_download_time = download_time.ci_halfwidth();
  result.mean_online_time = online_time.mean();
  result.avg_downloaders = downloaders_avg.average();
  result.avg_seeds = seeds_avg.average();
  result.peak_downloaders = peak_downloaders;
  const double measured_slots =
      (config.horizon - config.warmup) / slot_dt;
  const double dl_per_slot = downloader_uploads / measured_slots;
  if (files == 1) {
    result.emergent_eta = result.avg_downloaders > 0.0
                              ? dl_per_slot / result.avg_downloaders
                              : 0.0;
  } else {
    // K > 1: eta_hat = TFT chunks delivered per unit of allocated TFT
    // bandwidth share (the per-file shares summed). At K = 1 the two
    // definitions coincide; the branch keeps the single-torrent
    // expression bit-identical to the pre-refactor substrate.
    double tft_total = 0.0;
    double share_total = 0.0;
    for (unsigned f = 0; f < files; ++f) {
      tft_total += file_tft_uploads[f];
      share_total += file_share[f];
    }
    result.emergent_eta = share_total > 0.0 ? tft_total / share_total : 0.0;
  }
  const double total_uploads = downloader_uploads + seed_uploads;
  if (total_uploads > 0.0) {
    result.downloader_upload_share = downloader_uploads / total_uploads;
    result.seed_upload_share = seed_uploads / total_uploads;
  }
  result.idle_fraction =
      uploader_slots > 0.0 ? idle_uploader_slots / uploader_slots : 0.0;
  if (result.emergent_eta > 0.0 &&
      config.fluid.gamma > config.fluid.mu) {
    result.fluid_prediction =
        (config.fluid.gamma - config.fluid.mu) /
        (config.fluid.gamma * config.fluid.mu * result.emergent_eta);
  }
  if (sampled_files_sum > 0.0) {
    result.avg_download_per_file = sampled_download_sum / sampled_files_sum;
    result.avg_online_per_file = sampled_online_sum / sampled_files_sum;
  }
  result.files.resize(files);
  for (unsigned f = 0; f < files; ++f) {
    ChunkFileResult& fr = result.files[f];
    fr.emergent_eta =
        file_share[f] > 0.0 ? file_tft_uploads[f] / file_share[f] : 0.0;
    if (measured_slot_count > 0.0) {
      fr.avg_downloaders = file_downloaders[f] / measured_slot_count;
      fr.avg_seeds = file_seeders[f] / measured_slot_count;
    }
    fr.completions = file_download[f].count();
    fr.mean_download_time = file_download[f].mean();
  }
  result.classes.resize(files);
  for (unsigned i = 0; i < files; ++i) {
    ChunkClassResult& cr = result.classes[i];
    cr.completed_users = class_download[i].count();
    cr.mean_download_time = class_download[i].mean();
    cr.mean_online_time = class_online[i].mean();
  }
  return result;
}

}  // namespace btmf::sim
