#include "btmf/sim/faults.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "btmf/util/check.h"
#include "btmf/util/strings.h"

namespace btmf::sim {

namespace {

bool finite_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }

/// Same-type windows must not overlap: each fault kind models one shared
/// facility (the tracker, the seeding infrastructure, the access links),
/// and overlapping windows would make the recovery edges ambiguous.
void check_disjoint(std::vector<std::pair<double, double>> windows,
                    const char* what) {
  std::sort(windows.begin(), windows.end());
  for (std::size_t i = 1; i < windows.size(); ++i) {
    BTMF_CHECK_MSG(windows[i].first >= windows[i - 1].second,
                   std::string(what) + " fault windows must not overlap");
  }
}

}  // namespace

void FaultPlan::validate() const {
  std::vector<std::pair<double, double>> windows;
  for (const TrackerOutageFault& f : tracker_outages) {
    BTMF_CHECK_MSG(finite_nonneg(f.start), "tracker outage start must be >= 0");
    BTMF_CHECK_MSG(std::isfinite(f.duration) && f.duration > 0.0,
                   "tracker outage duration must be positive");
    BTMF_CHECK_MSG(f.drop || f.readmit_rate > 0.0,
                   "tracker outage readmit_rate must be positive");
    windows.emplace_back(f.start, f.start + f.duration);
  }
  check_disjoint(std::move(windows), "tracker");

  windows.clear();
  for (const SeedFailureFault& f : seed_failures) {
    BTMF_CHECK_MSG(finite_nonneg(f.start), "seed failure start must be >= 0");
    BTMF_CHECK_MSG(std::isfinite(f.duration) && f.duration > 0.0,
                   "seed failure duration must be positive");
    windows.emplace_back(f.start, f.start + f.duration);
  }
  check_disjoint(std::move(windows), "seed");

  for (const ChurnBurstFault& f : churn_bursts) {
    BTMF_CHECK_MSG(finite_nonneg(f.time), "churn burst time must be >= 0");
    BTMF_CHECK_MSG(f.kill_fraction >= 0.0 && f.kill_fraction <= 1.0,
                   "churn kill_fraction must lie in [0, 1]");
    BTMF_CHECK_MSG(f.progress_loss >= 0.0 && f.progress_loss <= 1.0,
                   "churn progress_loss must lie in [0, 1]");
    BTMF_CHECK_MSG(f.backoff_rate > 0.0,
                   "churn backoff_rate must be positive");
  }

  windows.clear();
  for (const BandwidthFault& f : bandwidth_faults) {
    BTMF_CHECK_MSG(finite_nonneg(f.start),
                   "bandwidth fault start must be >= 0");
    BTMF_CHECK_MSG(std::isfinite(f.duration) && f.duration > 0.0,
                   "bandwidth fault duration must be positive");
    BTMF_CHECK_MSG(f.scale > 0.0 && f.scale <= 1.0,
                   "bandwidth fault scale must lie in (0, 1]");
    windows.emplace_back(f.start, f.start + f.duration);
  }
  check_disjoint(std::move(windows), "bandwidth");
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& clause : util::split(spec, ';')) {
    const std::string trimmed{util::trim(clause)};
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = util::split(trimmed, ':');
    const std::string kind = util::to_lower(util::trim(parts[0]));
    const auto num = [&](std::size_t i) {
      BTMF_CHECK_MSG(i < parts.size(), "fault clause '" + trimmed +
                                           "' is missing a field");
      return util::parse_double(util::trim(parts[i]),
                                "fault clause '" + trimmed + "'");
    };
    if (kind == "tracker") {
      TrackerOutageFault f;
      f.start = num(1);
      f.duration = num(2);
      if (parts.size() > 3) {
        const std::string mode = util::to_lower(util::trim(parts[3]));
        if (mode == "drop") {
          f.drop = true;
        } else {
          BTMF_CHECK_MSG(mode == "queue",
                         "tracker mode must be 'drop' or 'queue', got '" +
                             mode + "'");
          if (parts.size() > 4) f.readmit_rate = num(4);
        }
      }
      plan.tracker_outages.push_back(f);
    } else if (kind == "seed") {
      SeedFailureFault f;
      f.start = num(1);
      f.duration = num(2);
      plan.seed_failures.push_back(f);
    } else if (kind == "churn") {
      ChurnBurstFault f;
      f.time = num(1);
      f.kill_fraction = num(2);
      if (parts.size() > 3) f.progress_loss = num(3);
      if (parts.size() > 4) f.backoff_rate = num(4);
      plan.churn_bursts.push_back(f);
    } else if (kind == "bw") {
      BandwidthFault f;
      f.start = num(1);
      f.duration = num(2);
      f.scale = num(3);
      plan.bandwidth_faults.push_back(f);
    } else {
      BTMF_CHECK_MSG(false, "unknown fault kind '" + kind +
                                "' (expected tracker|seed|churn|bw)");
    }
  }
  plan.validate();
  return plan;
}

}  // namespace btmf::sim
