// Scheme policies for the independent-torrent schemes (MTCD, MTSD) and
// the merged-buffer scheme (MFCD with joint completion).
//
// All three share the per-torrent pools of the fluid models: a torrent's
// downloaders pull at the common rate
//
//     R_T = min(eta * mu + seed_bw_T / weight_sum_T, download_bw),
//
// scaled by the user's bandwidth split (1/i for the concurrent schemes,
// 1 for MTSD). The split is folded into the *service target* instead of
// the rate, so one service group per torrent suffices: a class-i MTCD
// download owes file_size * i units of R_T integral. MFCD's merged buffer
// drains at (1/i) * sum of its torrents' R_T — a sum no single group rate
// captures cheaply — so MfcdPolicy schedules completions itself with a
// kinetic per-user heap over lazy per-torrent integrals (see below).
//
// MTCD is *shardable*: a class-i user is i independent virtual peers, one
// per torrent, with no cross-torrent coupling. MtcdPolicy therefore runs
// decomposed under ShardedKernel — it draws slot randomness from the
// kernel's counter streams and keeps populations through note_download /
// note_seed, and each kernel instance only materialises the slots of the
// torrents it owns. MTSD and MFCD couple a user's torrents (sequential
// stages, joint completion) and stay on the serial legacy path.
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "btmf/sim/policies.h"

namespace btmf::sim {

namespace {

/// Shared per-torrent pool bookkeeping (weights, seed bandwidth,
/// downloader counts) with a dirty list consumed by refresh_rates.
class TorrentPoolPolicy : public SchemePolicy {
 public:
  void attach(EventKernel& kernel) override {
    SchemePolicy::attach(kernel);
    const SimConfig& cfg = kernel.cfg();
    num_files_ = cfg.num_files;
    mu_ = cfg.fluid.mu;
    eta_ = cfg.fluid.eta;
    gamma_ = cfg.fluid.gamma;
    download_bw_ = cfg.download_bw;
    file_size_ = cfg.file_size;
    // Bandwidth classes: class b uploads at upload_scale_[b] * mu and
    // downloads at most cap_[b]. The homogeneous default (one class at
    // scale 1, cap download_bw) makes every expression below bit-exact
    // with the pre-demand-model arithmetic (x * 1.0 == x).
    if (cfg.bandwidth_classes.empty()) {
      num_bclasses_ = 1;
      upload_scale_.assign(1, 1.0);
      cap_.assign(1, download_bw_);
    } else {
      num_bclasses_ = static_cast<unsigned>(cfg.bandwidth_classes.size());
      upload_scale_.clear();
      cap_.clear();
      for (const fluid::BandwidthClass& cls : cfg.bandwidth_classes) {
        upload_scale_.push_back(cls.upload_scale);
        cap_.push_back(cls.download_cap > 0.0
                           ? std::min(download_bw_, cls.download_cap)
                           : download_bw_);
      }
    }
    weight_sum_.assign(num_files_, 0.0);
    seed_bw_.assign(num_files_, 0.0);
    downloader_count_.assign(num_files_, 0);
    dirty_.assign(num_files_, false);
    dirty_list_.clear();
    metrics_ = kernel.obs().metrics;
    if (metrics_ != nullptr) {
      refreshes_id_ = metrics_->counter("sim.mt.torrent_refreshes");
    }
  }

 protected:
  void mark_dirty(unsigned torrent) {
    if (!dirty_[torrent]) {
      dirty_[torrent] = true;
      dirty_list_.push_back(torrent);
    }
  }

  /// Telemetry: per-torrent rate re-derivations consumed this epoch.
  void count_refreshes() {
    if (metrics_ != nullptr && !dirty_list_.empty()) {
      metrics_->add(refreshes_id_, dirty_list_.size());
    }
  }

  /// The epoch's download rate of `torrent` for a class-`b` peer (0 when
  /// idle). The tit-for-tat term scales with the peer's own upload while
  /// the seed pool is shared per unit weight across all classes. During a
  /// bandwidth-degradation window every peer's mu and c scale together, so
  /// scale * min(...) is exact and the pool accumulators stay unscaled.
  [[nodiscard]] double torrent_rate(unsigned torrent, unsigned b) const {
    if (downloader_count_[torrent] == 0 || weight_sum_[torrent] <= 0.0) {
      return 0.0;
    }
    return bw_scale_ *
           std::min(eta_ * mu_ * upload_scale_[b] +
                        seed_bw_[torrent] / weight_sum_[torrent],
                    cap_[b]);
  }

  /// Service lane of (torrent, bandwidth class): group ids are laid out
  /// torrent-major so the homogeneous case collapses to lane == torrent.
  [[nodiscard]] unsigned lane(unsigned torrent, unsigned b) const {
    return torrent * num_bclasses_ + b;
  }

  /// The seeding bandwidth a class-`b` user contributes per unit share.
  [[nodiscard]] double seed_rate(unsigned b) const {
    return mu_ * upload_scale_[b];
  }

  void add_downloader(unsigned torrent, double weight) {
    weight_sum_[torrent] += weight;
    ++downloader_count_[torrent];
    mark_dirty(torrent);
  }

  void remove_downloader(unsigned torrent, double weight) {
    weight_sum_[torrent] -= weight;
    // Snap the pool shut when the last downloader leaves so float residue
    // never leaks into the next epoch's seed-bandwidth share.
    if (--downloader_count_[torrent] == 0) weight_sum_[torrent] = 0.0;
    mark_dirty(torrent);
  }

  /// Recounts the per-torrent pools and the kernel's per-class populations
  /// from the live users' slot states and compares against the incremental
  /// bookkeeping. `split` is true for the schemes whose per-slot share is
  /// 1/cls (MFCD) and false for MTSD's full-bandwidth stages. Legacy-path
  /// schemes only: the decomposed MTCD audit recounts its own way.
  void audit_shared_pools(bool split) const {
    const auto fail = [](const std::string& why) {
      throw AuditError("torrent-pool audit failed: " + why);
    };
    constexpr double kTol = 1e-6;
    std::vector<double> weight(num_files_, 0.0);
    std::vector<double> seed_bw(num_files_, 0.0);
    std::vector<std::size_t> count(num_files_, 0);
    std::vector<double> down(num_files_, 0.0);
    std::vector<double> seeds(num_files_, 0.0);
    for (const std::size_t ui : kernel_->live()) {
      const SimUser u = kernel_->user(ui);
      const double share = split ? 1.0 / static_cast<double>(u.cls) : 1.0;
      const double seed = seed_rate(kernel_->bandwidth_class(ui));
      for (unsigned f = 0; f < u.slots(); ++f) {
        if (u.state[f] == SlotState::kDownloading) {
          weight[u.files[f]] += share;
          ++count[u.files[f]];
          down[u.cls - 1] += 1.0;
        } else if (u.state[f] == SlotState::kSeeding) {
          seed_bw[u.files[f]] += seed * share;
          seeds[u.cls - 1] += 1.0;
        }
      }
    }
    for (unsigned f = 0; f < num_files_; ++f) {
      if (count[f] != downloader_count_[f]) {
        fail("downloader count of torrent " + std::to_string(f) +
             " diverged from the live slots");
      }
      if (std::abs(weight[f] - weight_sum_[f]) > kTol) {
        fail("weight sum of torrent " + std::to_string(f) +
             " diverged from the live slots");
      }
      if (std::abs(seed_bw[f] - seed_bw_[f]) > kTol) {
        fail("seed bandwidth of torrent " + std::to_string(f) +
             " diverged from the seeding slots");
      }
      if (std::abs(down[f] - kernel_->down_pop()[f]) > kTol) {
        fail("downloader population of class " + std::to_string(f + 1) +
             " diverged from the live slots");
      }
      if (std::abs(seeds[f] - kernel_->seed_pop()[f]) > kTol) {
        fail("seed population of class " + std::to_string(f + 1) +
             " diverged from the seeding slots");
      }
    }
  }

  unsigned num_files_ = 0;
  unsigned num_bclasses_ = 1;          ///< B >= 1; 1 when homogeneous
  std::vector<double> upload_scale_;   ///< per bandwidth class
  std::vector<double> cap_;            ///< effective download cap per class
  double mu_ = 0.0, eta_ = 0.0, gamma_ = 0.0;
  double download_bw_ = 0.0, file_size_ = 0.0;
  double bw_scale_ = 1.0;  ///< bandwidth-degradation multiplier on mu and c
  std::vector<double> weight_sum_;
  std::vector<double> seed_bw_;
  std::vector<std::size_t> downloader_count_;
  std::vector<bool> dirty_;
  std::vector<unsigned> dirty_list_;
  obs::MetricsRegistry* metrics_ = nullptr;  ///< null = inert
  obs::MetricId refreshes_id_ = 0;

 public:
  void on_fault_bandwidth(double scale, double /*t*/) override {
    bw_scale_ = scale;
    // Every torrent's rate changes; refresh_rates re-derives them all.
    for (unsigned f = 0; f < num_files_; ++f) mark_dirty(f);
  }
};

// ---------------------------------------------------------------------------
// MTCD: i independent virtual peers per class-i user.
// ---------------------------------------------------------------------------
class MtcdPolicy final : public TorrentPoolPolicy {
 public:
  void attach(EventKernel& kernel) override {
    TorrentPoolPolicy::attach(kernel);
    // One service lane per (torrent, bandwidth class); homogeneous runs
    // create exactly the historical one-group-per-torrent layout.
    for (unsigned g = 0; g < num_files_ * num_bclasses_; ++g) {
      kernel.new_group(0.0);
    }
  }

  /// Virtual peers are torrent-independent; ShardedKernel may decompose.
  [[nodiscard]] bool shardable() const override { return true; }

  void on_arrival(std::size_t ui, double t) override {
    SimUser u = kernel_->user(ui);
    // In a decomposed kernel the user's slots are the shard's owned
    // files only; arithmetic weights still use the logical class.
    u.live_parts = u.slots();
    for (unsigned f = 0; f < u.slots(); ++f) start_download(ui, f, t);
    kernel_->add_active_peers(u.slots());
  }

  void refresh_rates(double t) override {
    count_refreshes();
    for (const unsigned torrent : dirty_list_) {
      for (unsigned b = 0; b < num_bclasses_; ++b) {
        kernel_->set_group_rate(lane(torrent, b), torrent_rate(torrent, b),
                                t);
      }
      dirty_[torrent] = false;
    }
    dirty_list_.clear();
  }

  void on_complete(std::size_t ui, unsigned slot, double t) override {
    SimUser u = kernel_->user(ui);
    const unsigned torrent = u.files[slot];
    remove_downloader(torrent, 1.0 / static_cast<double>(u.cls));
    // The virtual peer turns into a seed of its torrent with an
    // independent Exp(gamma) residence (paper Sec. 3.2 semantics).
    u.state[slot] = SlotState::kSeeding;
    u.done[slot] = 1;
    seed_bw_[torrent] += seed_rate(kernel_->bandwidth_class(ui)) /
                         static_cast<double>(u.cls);
    u.last_completion = t;
    kernel_->note_download(torrent, u.cls, -1, t);
    kernel_->note_seed(torrent, u.cls, +1, t);
    kernel_->schedule_seed_departure(
        ui, slot, t + kernel_->slot_exponential(ui, slot, gamma_));
  }

  void on_seed_departure(std::size_t ui, unsigned file_idx,
                         double t) override {
    SimUser u = kernel_->user(ui);
    const unsigned torrent = u.files[file_idx];
    u.state[file_idx] = SlotState::kIdle;
    seed_bw_[torrent] -= seed_rate(kernel_->bandwidth_class(ui)) /
                         static_cast<double>(u.cls);
    mark_dirty(torrent);
    kernel_->note_seed(torrent, u.cls, -1, t);
    kernel_->remove_active_peers(1);
    if (--u.live_parts == 0) {
      kernel_->retire_user(ui, t, u.last_completion - u.arrival, 0.0, false);
    }
  }

  void on_abort(std::size_t ui, unsigned slot, double t) override {
    SimUser u = kernel_->user(ui);
    kernel_->end_service(ui, slot);
    u.state[slot] = SlotState::kIdle;
    u.aborted = true;
    remove_downloader(u.files[slot], 1.0 / static_cast<double>(u.cls));
    kernel_->note_download(u.files[slot], u.cls, -1, t);
    kernel_->remove_active_peers(1);
    // Only this virtual peer leaves; siblings keep downloading/seeding.
    if (--u.live_parts == 0) {
      kernel_->retire_user(ui, t, u.last_completion - u.arrival, 0.0, false);
    }
  }

  void on_fault_crash(std::size_t ui, double t) override {
    SimUser u = kernel_->user(ui);
    const double cls = static_cast<double>(u.cls);
    const double seed = seed_rate(kernel_->bandwidth_class(ui));
    for (unsigned f = 0; f < u.slots(); ++f) {
      if (u.state[f] == SlotState::kDownloading) {
        kernel_->end_service(ui, f);
        remove_downloader(u.files[f], 1.0 / cls);
        kernel_->note_download(u.files[f], u.cls, -1, t);
        kernel_->remove_active_peers(1);
      } else if (u.state[f] == SlotState::kSeeding) {
        // Queued seed departures of this slot go stale; the kernel skips
        // them because the slot is no longer kSeeding.
        seed_bw_[u.files[f]] -= seed / cls;
        mark_dirty(u.files[f]);
        kernel_->note_seed(u.files[f], u.cls, -1, t);
        kernel_->remove_active_peers(1);
      }
      u.state[f] = SlotState::kIdle;
    }
    u.live_parts = 0;
  }

  /// Recounts pools and the kernel's decomposed per-class counts from the
  /// live slots (the legacy audit checks down_pop/seed_pop, which the
  /// decomposed kernel does not maintain).
  void audit(double /*t*/) override {
    const auto fail = [](const std::string& why) {
      throw AuditError("MTCD pool audit failed: " + why);
    };
    constexpr double kTol = 1e-6;
    std::vector<double> weight(num_files_, 0.0);
    std::vector<double> seed_bw(num_files_, 0.0);
    std::vector<std::size_t> count(num_files_, 0);
    std::vector<std::int64_t> down(num_files_, 0);
    std::vector<std::int64_t> seeds(num_files_, 0);
    for (const std::size_t ui : kernel_->live()) {
      const SimUser u = kernel_->user(ui);
      const double share = 1.0 / static_cast<double>(u.cls);
      const double seed = seed_rate(kernel_->bandwidth_class(ui));
      for (unsigned f = 0; f < u.slots(); ++f) {
        if (u.state[f] == SlotState::kDownloading) {
          weight[u.files[f]] += share;
          ++count[u.files[f]];
          ++down[u.cls - 1];
        } else if (u.state[f] == SlotState::kSeeding) {
          seed_bw[u.files[f]] += seed * share;
          ++seeds[u.cls - 1];
        }
      }
    }
    for (unsigned f = 0; f < num_files_; ++f) {
      if (count[f] != downloader_count_[f]) {
        fail("downloader count of torrent " + std::to_string(f) +
             " diverged from the live slots");
      }
      if (std::abs(weight[f] - weight_sum_[f]) > kTol) {
        fail("weight sum of torrent " + std::to_string(f) +
             " diverged from the live slots");
      }
      if (std::abs(seed_bw[f] - seed_bw_[f]) > kTol) {
        fail("seed bandwidth of torrent " + std::to_string(f) +
             " diverged from the seeding slots");
      }
      if (down[f] != kernel_->down_count(f)) {
        fail("downloader count of class " + std::to_string(f + 1) +
             " diverged from the live slots");
      }
      if (seeds[f] != kernel_->seed_count(f)) {
        fail("seed count of class " + std::to_string(f + 1) +
             " diverged from the seeding slots");
      }
    }
  }

  [[nodiscard]] double little_divisor(double files) const override {
    return files * files;
  }

 private:
  void start_download(std::size_t ui, unsigned slot, double t) {
    SimUser u = kernel_->user(ui);
    const unsigned torrent = u.files[slot];
    add_downloader(torrent, 1.0 / static_cast<double>(u.cls));
    kernel_->note_download(torrent, u.cls, +1, t);
    // Group rate is the unsplit R_{T,b}; the 1/i split is an i-fold work.
    kernel_->begin_service(ui, slot,
                           lane(torrent, kernel_->bandwidth_class(ui)),
                           file_size_ * static_cast<double>(u.cls), t);
    kernel_->arm_abort(ui, slot, t);
  }
};

// ---------------------------------------------------------------------------
// MTSD: one file at a time at full bandwidth, seed between stages.
// ---------------------------------------------------------------------------
class MtsdPolicy final : public TorrentPoolPolicy {
 public:
  void attach(EventKernel& kernel) override {
    TorrentPoolPolicy::attach(kernel);
    for (unsigned g = 0; g < num_files_ * num_bclasses_; ++g) {
      kernel.new_group(0.0);
    }
  }

  void on_arrival(std::size_t ui, double t) override {
    SimUser u = kernel_->user(ui);
    kernel_->rng().shuffle(u.files);
    u.seq_pos = 0;
    start_download(ui, 0, t);
    kernel_->down_pop()[u.cls - 1] += 1.0;
    kernel_->add_active_peers(1);
  }

  void refresh_rates(double t) override {
    count_refreshes();
    for (const unsigned torrent : dirty_list_) {
      for (unsigned b = 0; b < num_bclasses_; ++b) {
        kernel_->set_group_rate(lane(torrent, b), torrent_rate(torrent, b),
                                t);
      }
      dirty_[torrent] = false;
    }
    dirty_list_.clear();
  }

  void on_complete(std::size_t ui, unsigned slot, double t) override {
    SimUser u = kernel_->user(ui);
    const unsigned torrent = u.files[slot];
    remove_downloader(torrent, 1.0);
    u.state[slot] = SlotState::kSeeding;
    u.done[slot] = 1;
    u.download_accum += t - u.stage_start;
    // Full (class-scaled) bandwidth while seeding.
    seed_bw_[torrent] += seed_rate(kernel_->bandwidth_class(ui));
    u.last_completion = t;
    kernel_->down_pop()[u.cls - 1] -= 1.0;
    kernel_->seed_pop()[u.cls - 1] += 1.0;
    kernel_->schedule_seed_departure(ui, slot,
                                     t + kernel_->rng().exponential(gamma_));
  }

  void on_seed_departure(std::size_t ui, unsigned file_idx,
                         double t) override {
    SimUser u = kernel_->user(ui);
    u.state[file_idx] = SlotState::kIdle;
    seed_bw_[u.files[file_idx]] -= seed_rate(kernel_->bandwidth_class(ui));
    mark_dirty(u.files[file_idx]);
    kernel_->seed_pop()[u.cls - 1] -= 1.0;
    // Move on to the next file or leave.
    ++u.seq_pos;
    if (u.seq_pos < u.cls) {
      start_download(ui, u.seq_pos, t);
      kernel_->down_pop()[u.cls - 1] += 1.0;
    } else {
      kernel_->remove_active_peers(1);
      kernel_->retire_user(ui, t, u.download_accum, 0.0, false);
    }
  }

  void on_abort(std::size_t ui, unsigned slot, double t) override {
    SimUser u = kernel_->user(ui);
    kernel_->end_service(ui, slot);
    u.state[slot] = SlotState::kIdle;
    u.aborted = true;
    remove_downloader(u.files[slot], 1.0);
    kernel_->down_pop()[u.cls - 1] -= 1.0;
    kernel_->remove_active_peers(1);
    // The user walks away from its whole queue.
    kernel_->retire_user(ui, t, u.download_accum, 0.0, false);
  }

  void on_fault_crash(std::size_t ui, double t) override {
    (void)t;
    SimUser u = kernel_->user(ui);
    const double seed = seed_rate(kernel_->bandwidth_class(ui));
    // Exactly one slot is active at a time in the sequential scheme, but
    // the teardown sweeps them all for robustness.
    for (unsigned f = 0; f < u.cls; ++f) {
      if (u.state[f] == SlotState::kDownloading) {
        kernel_->end_service(ui, f);
        remove_downloader(u.files[f], 1.0);
        kernel_->down_pop()[u.cls - 1] -= 1.0;
        kernel_->remove_active_peers(1);
      } else if (u.state[f] == SlotState::kSeeding) {
        seed_bw_[u.files[f]] -= seed;
        mark_dirty(u.files[f]);
        kernel_->seed_pop()[u.cls - 1] -= 1.0;
        kernel_->remove_active_peers(1);
      }
      u.state[f] = SlotState::kIdle;
    }
  }

  void audit(double /*t*/) override { audit_shared_pools(false); }

  [[nodiscard]] double little_divisor(double files) const override {
    return files;
  }

 private:
  void start_download(std::size_t ui, unsigned slot, double t) {
    SimUser u = kernel_->user(ui);
    add_downloader(u.files[slot], 1.0);
    u.stage_start = t;
    kernel_->begin_service(ui, slot,
                           lane(u.files[slot], kernel_->bandwidth_class(ui)),
                           file_size_, t);
    kernel_->arm_abort(ui, slot, t);
  }
};

// ---------------------------------------------------------------------------
// MFCD (joint completion): one merged buffer per user; all files finish
// together and the user then seeds every subtorrent for one shared
// Exp(gamma) residence.
//
// A class-i buffer drains at (1/i) * sum of its torrents' R_T, so in the
// summed per-torrent integral S(t) = sum_f S_{T_f}(t) the user completes
// when S reaches S(t0) + file_size * i^2. Grouping users by exact file
// set (up to 2^K groups) makes every rate epoch fan out to every group
// containing a dirty torrent — roughly *all* of them once the population
// is large. Instead the policy keeps only K lazy per-torrent integrals
// and schedules each user kinetically: a wake time
//
//     t + need / sum_f bound_{T_f},    bound_T >= R_T at all times,
//
// is a guaranteed-early bound on the true completion (service can only
// accrue slower than the bounds allow), so the kernel never steps past a
// completion. At each wake the user is either due or re-keyed; `need`
// shrinks by at least the factor headroom/(1+headroom) per wake, so a
// completion costs O(log(need/eps)) wakes. bound_T only needs attention
// when R_T breaks through it — then the members of that torrent are
// re-keyed — which the 10% headroom makes rare, instead of per-event.
// ---------------------------------------------------------------------------
class MfcdPolicy final : public TorrentPoolPolicy {
 public:
  void attach(EventKernel& kernel) override {
    TorrentPoolPolicy::attach(kernel);
    // Rates, integrals, and bounds live per (torrent, bandwidth class)
    // lane; member lists stay per torrent (a breakthrough re-keys every
    // member of the torrent, which is safe for all lanes).
    rate_.assign(num_files_ * num_bclasses_, 0.0);
    integ_.assign(num_files_ * num_bclasses_, 0.0);
    integ_mark_.assign(num_files_ * num_bclasses_, 0.0);
    bound_.assign(num_files_ * num_bclasses_, 0.0);
    members_.assign(num_files_, {});
  }

  void on_arrival(std::size_t ui, double t) override {
    SimUser u = kernel_->user(ui);
    const double cls = static_cast<double>(u.cls);
    for (unsigned f = 0; f < u.cls; ++f) {
      const unsigned torrent = u.files[f];
      add_downloader(torrent, 1.0 / cls);
      u.state[f] = SlotState::kDownloading;
      // gid doubles as the user's position in each torrent's member list.
      u.gid[f] = members_[torrent].size();
      members_[torrent].push_back({ui, f});
    }
    u.target[0] = set_integral(u, kernel_->bandwidth_class(ui), t) +
                  file_size_ * cls * cls;
    if (ui >= wakes_.id_capacity()) wakes_.resize(ui + 1);
    rekey(ui, t);
    for (unsigned f = 0; f < u.cls; ++f) kernel_->arm_abort(ui, f, t);
    kernel_->down_pop()[u.cls - 1] += cls;
    kernel_->add_active_peers(u.cls);
  }

  void refresh_rates(double t) override {
    count_refreshes();
    for (const unsigned torrent : dirty_list_) {
      bool changed = false;
      bool broke = false;
      for (unsigned b = 0; b < num_bclasses_; ++b) {
        const unsigned ln = lane(torrent, b);
        // The old slope applied on [mark, t]; bank it before swapping.
        integ_[ln] += rate_[ln] * (t - integ_mark_[ln]);
        integ_mark_[ln] = t;
        const double r = torrent_rate(torrent, b);
        if (r != rate_[ln]) {
          rate_[ln] = r;
          changed = true;
        }
        if (r > bound_[ln]) {
          // The rate broke through the guarded bound: wakes computed
          // against the old bound may now be too late.
          bound_[ln] = r * (1.0 + kHeadroom);
          broke = true;
        } else if (r * (1.0 + kHeadroom) * (1.0 + kHeadroom) < bound_[ln]) {
          // Tighten once a spike decays, or wakes stay needlessly early.
          // Outstanding wakes used the larger bound and remain safe.
          bound_[ln] = r * (1.0 + kHeadroom);
        }
      }
      if (changed) kernel_->add_rate_epochs(1);
      if (broke) {
        // Re-key every member of the torrent (cheap superset of the
        // members in the breaking lanes).
        for (const auto& member : members_[torrent]) rekey(member.first, t);
      }
      dirty_[torrent] = false;
    }
    dirty_list_.clear();
  }

  void on_complete(std::size_t /*ui*/, unsigned /*slot*/,
                   double /*t*/) override {
    BTMF_ASSERT(false && "MFCD completions are policy-scheduled");
  }

  [[nodiscard]] double next_policy_event_time() const override {
    return wakes_.empty() ? std::numeric_limits<double>::infinity()
                          : wakes_.top_key();
  }

  void on_policy_event(double t) override {
    while (!wakes_.empty() && wakes_.top_key() <= t + kTimeEps) {
      const std::size_t ui = wakes_.top_id();
      const SimUser u = kernel_->user(ui);
      if (due(u.target[0],
              set_integral(u, kernel_->bandwidth_class(ui), t))) {
        finish_user(ui, t);
      } else {
        rekey(ui, t);
      }
    }
  }

  void on_seed_departure(std::size_t ui, unsigned /*file_idx*/,
                         double t) override {
    SimUser u = kernel_->user(ui);
    const double cls = static_cast<double>(u.cls);
    const double seed = seed_rate(kernel_->bandwidth_class(ui));
    for (unsigned f = 0; f < u.cls; ++f) {
      seed_bw_[u.files[f]] -= seed / cls;
      mark_dirty(u.files[f]);
      u.state[f] = SlotState::kIdle;
    }
    kernel_->seed_pop()[u.cls - 1] -= cls;
    kernel_->remove_active_peers(u.cls);
    kernel_->retire_user(ui, t, u.last_completion - u.arrival, 0.0, false);
  }

  void on_abort(std::size_t ui, unsigned /*slot*/, double t) override {
    // Random-chunk downloading means no file is individually complete;
    // the whole visit is abandoned.
    SimUser u = kernel_->user(ui);
    wakes_.erase(ui);
    const double cls = static_cast<double>(u.cls);
    for (unsigned f = 0; f < u.cls; ++f) {
      drop_member(u, f);
      remove_downloader(u.files[f], 1.0 / cls);
      u.state[f] = SlotState::kIdle;
    }
    u.aborted = true;
    kernel_->down_pop()[u.cls - 1] -= cls;
    kernel_->remove_active_peers(u.cls);
    kernel_->retire_user(ui, t, 0.0, 0.0, false);
  }

  void on_fault_crash(std::size_t ui, double t) override {
    (void)t;
    SimUser u = kernel_->user(ui);
    wakes_.erase(ui);
    const double cls = static_cast<double>(u.cls);
    const double seed = seed_rate(kernel_->bandwidth_class(ui));
    for (unsigned f = 0; f < u.cls; ++f) {
      if (u.state[f] == SlotState::kDownloading) {
        drop_member(u, f);
        remove_downloader(u.files[f], 1.0 / cls);
        kernel_->down_pop()[u.cls - 1] -= 1.0;
        kernel_->remove_active_peers(1);
      } else if (u.state[f] == SlotState::kSeeding) {
        seed_bw_[u.files[f]] -= seed / cls;
        mark_dirty(u.files[f]);
        kernel_->seed_pop()[u.cls - 1] -= 1.0;
        kernel_->remove_active_peers(1);
      }
      u.state[f] = SlotState::kIdle;
    }
  }

  /// MFCD schedules completions itself; the kernel auditor must not
  /// expect per-slot service-group entries.
  [[nodiscard]] bool kernel_scheduled() const override { return false; }

  void audit(double /*t*/) override {
    audit_shared_pools(true);
    const auto fail = [](const std::string& why) {
      throw AuditError("MFCD audit failed: " + why);
    };
    std::string reason;
    if (!wakes_.validate(&reason)) fail("wake heap: " + reason);
    std::size_t member_entries = 0;
    for (unsigned torrent = 0; torrent < num_files_; ++torrent) {
      for (unsigned b = 0; b < num_bclasses_; ++b) {
        if (bound_[lane(torrent, b)] + 1e-12 < rate_[lane(torrent, b)]) {
          fail("bound of torrent " + std::to_string(torrent) + " lane " +
               std::to_string(b) + " fell below its rate");
        }
      }
      member_entries += members_[torrent].size();
      for (std::size_t at = 0; at < members_[torrent].size(); ++at) {
        const auto [ui, slot] = members_[torrent][at];
        const SimUser u = kernel_->user(ui);
        if (slot >= u.cls || u.files[slot] != torrent) {
          fail("member entry does not match its user's file set");
        }
        if (u.state[slot] != SlotState::kDownloading) {
          fail("member entry for a slot that is not downloading");
        }
        if (u.gid[slot] != at) {
          fail("member position cross-reference broken");
        }
      }
    }
    std::size_t downloading_slots = 0;
    for (const std::size_t ui : kernel_->live()) {
      const SimUser u = kernel_->user(ui);
      for (unsigned f = 0; f < u.cls; ++f) {
        if (u.state[f] == SlotState::kDownloading) ++downloading_slots;
      }
    }
    if (member_entries != downloading_slots) {
      fail("member lists and downloading slots disagree");
    }
  }

  [[nodiscard]] double little_divisor(double files) const override {
    return files * files;
  }

 private:
  static constexpr double kHeadroom = 0.1;
  static constexpr double kTimeEps = 1e-12;  // kernel simultaneity window

  /// Lazy integral of one (torrent, bandwidth class) service lane.
  [[nodiscard]] double lane_integral(unsigned ln, double t) const {
    return integ_[ln] + rate_[ln] * (t - integ_mark_[ln]);
  }

  [[nodiscard]] double set_integral(const SimUser& u, unsigned b,
                                    double t) const {
    double acc = 0.0;
    for (unsigned f = 0; f < u.cls; ++f) {
      acc += lane_integral(lane(u.files[f], b), t);
    }
    return acc;
  }

  /// Same service-space due test as the kernel's.
  [[nodiscard]] static bool due(double target, double acc) {
    return target - acc <= 1e-9 * std::max(1.0, std::abs(target));
  }

  /// Recomputes the guaranteed-early wake of `ui` from the current
  /// integrals and bounds.
  void rekey(std::size_t ui, double t) {
    const SimUser u = kernel_->user(ui);
    const unsigned b = kernel_->bandwidth_class(ui);
    const double acc = set_integral(u, b, t);
    if (due(u.target[0], acc)) {
      wakes_.set(ui, t);
      return;
    }
    double ub = 0.0;
    for (unsigned f = 0; f < u.cls; ++f) ub += bound_[lane(u.files[f], b)];
    if (ub <= 0.0) {
      // Every subtorrent idle; a rate rising from zero breaks through its
      // bound and re-keys the members, so erasing here is safe.
      wakes_.erase(ui);
      return;
    }
    // Clamp outside the simultaneity window so a huge `ub` cannot pin the
    // wake at the current time and spin the policy-event loop.
    wakes_.set(ui, t + std::max((u.target[0] - acc) / ub, 2.0 * kTimeEps));
  }

  /// Swap-removes (ui, slot) from its torrent's member list.
  void drop_member(SimUser& u, unsigned slot) {
    auto& list = members_[u.files[slot]];
    const std::size_t at = u.gid[slot];
    const auto moved = list.back();
    list[at] = moved;
    kernel_->user(moved.first).gid[moved.second] = at;
    list.pop_back();
  }

  void finish_user(std::size_t ui, double t) {
    wakes_.erase(ui);
    SimUser u = kernel_->user(ui);
    const double cls = static_cast<double>(u.cls);
    const double seed = seed_rate(kernel_->bandwidth_class(ui));
    for (unsigned f = 0; f < u.cls; ++f) {
      const unsigned torrent = u.files[f];
      drop_member(u, f);
      remove_downloader(torrent, 1.0 / cls);
      u.state[f] = SlotState::kSeeding;
      u.done[f] = 1;
      seed_bw_[torrent] += seed / cls;
    }
    u.last_completion = t;
    kernel_->down_pop()[u.cls - 1] -= cls;
    kernel_->seed_pop()[u.cls - 1] += cls;
    kernel_->schedule_seed_departure(ui, EventKernel::kAllFiles,
                                     t + kernel_->rng().exponential(gamma_));
  }

  std::vector<double> rate_;        ///< current R_{T,b} per lane
  std::vector<double> integ_;       ///< S_{T,b} banked at integ_mark_
  std::vector<double> integ_mark_;
  std::vector<double> bound_;       ///< ratcheted bound_{T,b} >= R_{T,b}
  /// T -> (ui, slot) of its current downloaders; positions live in gid.
  std::vector<std::vector<std::pair<std::size_t, unsigned>>> members_;
  IndexedMinHeap wakes_;            ///< ui -> guaranteed-early wake time
};

}  // namespace

std::unique_ptr<SchemePolicy> make_mtcd_policy() {
  return std::make_unique<MtcdPolicy>();
}
std::unique_ptr<SchemePolicy> make_mtsd_policy() {
  return std::make_unique<MtsdPolicy>();
}
std::unique_ptr<SchemePolicy> make_mfcd_policy() {
  return std::make_unique<MfcdPolicy>();
}

}  // namespace btmf::sim
