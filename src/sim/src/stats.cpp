#include "btmf/sim/stats.h"

#include "btmf/util/check.h"

namespace btmf::sim {

StatsCollector::StatsCollector(unsigned num_classes)
    : num_classes_(num_classes),
      downloaders_(num_classes),
      seeds_(num_classes),
      online_per_file_(num_classes),
      download_per_file_(num_classes),
      final_rho_(num_classes),
      arrivals_(num_classes, 0),
      rho_series_(rho_recorder_.series("adapt.rho_mean")) {
  BTMF_CHECK_MSG(num_classes >= 1, "StatsCollector needs >= 1 class");
}

void StatsCollector::observe_populations(
    const std::vector<double>& downloaders_per_class,
    const std::vector<double>& seeds_per_class, double dt) {
  BTMF_ASSERT(downloaders_per_class.size() == num_classes_);
  BTMF_ASSERT(seeds_per_class.size() == num_classes_);
  if (dt <= 0.0) return;
  for (unsigned k = 0; k < num_classes_; ++k) {
    downloaders_[k].add(downloaders_per_class[k], dt);
    seeds_[k].add(seeds_per_class[k], dt);
  }
}

void StatsCollector::record_arrival(unsigned user_class) {
  BTMF_ASSERT(user_class >= 1 && user_class <= num_classes_);
  ++arrivals_[user_class - 1];
}

void StatsCollector::record_user(unsigned user_class, unsigned files_requested,
                                 double online, double download,
                                 double final_rho, bool adaptive) {
  BTMF_ASSERT(user_class >= 1 && user_class <= num_classes_);
  const double files = static_cast<double>(files_requested);
  online_per_file_[user_class - 1].add(online / files);
  download_per_file_[user_class - 1].add(download / files);
  if (adaptive) final_rho_[user_class - 1].add(final_rho);
  online_sum_ += online;
  download_sum_ += download;
  files_sum_ += files;
  ++users_;
}

void StatsCollector::add_arrivals(unsigned user_class, std::size_t n) {
  BTMF_ASSERT(user_class >= 1 && user_class <= num_classes_);
  arrivals_[user_class - 1] += n;
}

void StatsCollector::record_rho_sample(double t, double mean_rho) {
  rho_recorder_.append(rho_series_, t, mean_rho);
}

SimResult StatsCollector::finalize(double measured_time,
                                   std::size_t total_arrivals) const {
  SimResult result;
  result.classes.resize(num_classes_);
  for (unsigned k = 0; k < num_classes_; ++k) {
    PerClassResult& c = result.classes[k];
    c.completed_users = online_per_file_[k].count();
    c.arrival_rate = measured_time > 0.0
                         ? static_cast<double>(arrivals_[k]) / measured_time
                         : 0.0;
    c.mean_online_per_file = online_per_file_[k].mean();
    c.ci_online_per_file = online_per_file_[k].ci_halfwidth();
    c.mean_download_per_file = download_per_file_[k].mean();
    c.ci_download_per_file = download_per_file_[k].ci_halfwidth();
    c.avg_downloaders = downloaders_[k].average();
    c.avg_seeds = seeds_[k].average();
    if (c.arrival_rate > 0.0) {
      c.little_download_time = c.avg_downloaders / c.arrival_rate;
      c.little_online_time =
          (c.avg_downloaders + c.avg_seeds) / c.arrival_rate;
    }
    c.mean_final_rho = final_rho_[k].mean();
  }
  result.avg_online_per_file =
      files_sum_ > 0.0 ? online_sum_ / files_sum_ : 0.0;
  result.avg_download_per_file =
      files_sum_ > 0.0 ? download_sum_ / files_sum_ : 0.0;
  result.avg_online_per_user =
      users_ > 0 ? online_sum_ / static_cast<double>(users_) : 0.0;
  result.measured_time = measured_time;
  result.total_users = users_;
  result.total_arrivals = total_arrivals;
  result.censored_users = censored_;
  result.aborted_users = aborted_;
  result.events_processed = events_;
  const obs::SeriesData rho = rho_recorder_.data(rho_series_);
  result.rho_trajectory_time = rho.t;
  result.rho_trajectory_mean = rho.v;
  return result;
}

}  // namespace btmf::sim
