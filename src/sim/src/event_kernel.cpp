#include "btmf/sim/event_kernel.h"

#include <sstream>

#include "btmf/parallel/seeds.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"
#include "btmf/util/stopwatch.h"

namespace btmf::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Events within this window of the current time are dispatched together,
/// matching the pre-refactor engines' simultaneity rule.
constexpr double kTimeEps = 1e-12;

const std::greater<> kMinHeap{};
}  // namespace

EventKernel::EventKernel(const SimConfig& config, SchemePolicy& policy,
                         ShardSpec shard)
    : cfg_(config),
      policy_(policy),
      shard_(shard),
      rng_(config.seed),
      stats_(config.num_files),
      down_pop_(config.num_files, 0.0),
      seed_pop_(config.num_files, 0.0) {
  cfg_.validate();
  paranoid_ = cfg_.paranoid;
#ifdef BTMF_PARANOID
  paranoid_ = true;
#endif
  build_fault_timeline();

  if (shard_.decomposed) {
    slot_root_ = parallel::derive_seed(cfg_.seed, parallel::kSlotStreamDomain);
    const std::size_t k = cfg_.num_files;
    down_cells_.assign(k * k, {});
    seed_cells_.assign(k * k, {});
    down_cnt_.assign(k, 0);
    seed_cnt_.assign(k, 0);
    arrivals_cls_.assign(k, 0);
  }

  // Telemetry: the internal population sampler is always on (it backs the
  // SimResult trajectories and draws no randomness); the external sinks
  // stay null unless the caller attached them. Decomposed runs sample on
  // a finer default grid: the merged peak-peer gauge is read off it.
  obs_ = cfg_.obs;
  sample_dt_ = obs_.sample_dt > 0.0
                   ? obs_.sample_dt
                   : cfg_.horizon / (shard_.decomposed ? 4096.0 : 512.0);
  sampler_ = std::make_unique<obs::TimeSeriesRecorder>(0);  // exact cadence
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const std::string cls = ".c" + std::to_string(k + 1);
    down_series_.push_back(sampler_->series("sim.downloaders" + cls));
    seed_series_.push_back(sampler_->series("sim.seeds" + cls));
  }
  live_series_ = sampler_->series("sim.live_peers");
  queue_series_ = sampler_->series("sim.readmission_queue");
  recovering_series_ = sampler_->series("sim.recovering");
  arrival_series_ = sampler_->series("kernel.arrival_rate");
  arrival_peak_ = cfg_.arrival.peak_rate(cfg_.visit_rate);
  if (obs_.metrics != nullptr) {
    hist_online_ = obs_.metrics->histogram("sim.user_online_per_file");
    hist_download_ = obs_.metrics->histogram("sim.user_download_per_file");
    hist_files_ = obs_.metrics->histogram("sim.user_files");
  }

  policy_.attach(*this);
}

void EventKernel::build_fault_timeline() {
  const FaultPlan& plan = cfg_.faults;
  using Kind = FaultEdge::Kind;
  for (std::size_t i = 0; i < plan.tracker_outages.size(); ++i) {
    const TrackerOutageFault& f = plan.tracker_outages[i];
    fault_timeline_.push_back({f.start, Kind::kTrackerDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kTrackerUp, i});
  }
  for (std::size_t i = 0; i < plan.seed_failures.size(); ++i) {
    const SeedFailureFault& f = plan.seed_failures[i];
    fault_timeline_.push_back({f.start, Kind::kSeedDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kSeedUp, i});
  }
  for (std::size_t i = 0; i < plan.bandwidth_faults.size(); ++i) {
    const BandwidthFault& f = plan.bandwidth_faults[i];
    fault_timeline_.push_back({f.start, Kind::kBandwidthDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kBandwidthUp, i});
  }
  for (std::size_t i = 0; i < plan.churn_bursts.size(); ++i) {
    fault_timeline_.push_back({plan.churn_bursts[i].time, Kind::kChurn, i});
  }
  std::sort(fault_timeline_.begin(), fault_timeline_.end());
}

std::size_t EventKernel::new_group(double t) {
  groups_.emplace_back();
  groups_.back().last_t = t;
  candidates_.resize(groups_.size());
  return groups_.size() - 1;
}

void EventKernel::set_group_rate(std::size_t gid, double rate, double t) {
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  if (rate != g.rate) {
    g.rate = rate;
    ++rate_epochs_;
    update_candidate(gid);
  }
}

void EventKernel::add_group_rate(std::size_t gid, double delta, double t) {
  if (delta == 0.0) return;
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  g.rate = std::max(0.0, g.rate + delta);
  ++rate_epochs_;
  update_candidate(gid);
}

void EventKernel::drop_stale_pending(ServiceGroup& g) {
  while (!g.pending.empty()) {
    const PendingEntry& e = g.pending.front();
    // seq first: a recycled row must be recognised as stale before any
    // slot column of its new tenant is consulted.
    if (pool_.seq(e.ui) == e.seq && pool_.sched_gen(e.ui, e.slot) == e.gen) {
      break;
    }
    std::pop_heap(g.pending.begin(), g.pending.end(), kMinHeap);
    g.pending.pop_back();
  }
}

void EventKernel::update_candidate(std::size_t gid) {
  ServiceGroup& g = groups_[gid];
  drop_stale_pending(g);
  if (g.pending.empty()) {
    candidates_.erase(gid);
    return;
  }
  const PendingEntry& top = g.pending.front();
  double when;
  if (due(top.target, g.acc)) {
    when = g.last_t;
  } else if (g.rate > 0.0) {
    // A not-yet-due target must land strictly outside the simultaneity
    // window, or the drain loop would re-derive the same candidate forever
    // when rate is so large that need/rate underflows kTimeEps.
    when = std::max(g.last_t + (top.target - g.acc) / g.rate,
                    g.last_t + 2.0 * kTimeEps);
  } else {
    candidates_.erase(gid);
    return;
  }
  candidates_.set(gid, when);
}

void EventKernel::begin_service(std::size_t ui, unsigned slot,
                                std::size_t gid, double work, double t) {
  SimUser u = pool_.view(ui);
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.state[slot] = SlotState::kDownloading;
  ++u.sched_gen[slot];
  ++u.inst[slot];
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push_back({u.target[slot], u.seq, ui, slot, u.sched_gen[slot]});
  std::push_heap(g.pending.begin(), g.pending.end(), kMinHeap);
  update_candidate(gid);
}

void EventKernel::move_service(std::size_t ui, unsigned slot,
                               std::size_t gid, double work, double t) {
  SimUser u = pool_.view(ui);
  const std::size_t old_gid = u.gid[slot];
  ++u.sched_gen[slot];  // old entry goes stale; abort clock stays armed
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push_back({u.target[slot], u.seq, ui, slot, u.sched_gen[slot]});
  std::push_heap(g.pending.begin(), g.pending.end(), kMinHeap);
  if (old_gid != gid) update_candidate(old_gid);
  update_candidate(gid);
}

void EventKernel::end_service(std::size_t ui, unsigned slot) {
  SimUser u = pool_.view(ui);
  ++u.sched_gen[slot];
  ++u.inst[slot];
  update_candidate(u.gid[slot]);
}

double EventKernel::remaining_work(std::size_t ui, unsigned slot, double t) {
  const SimUser u = pool_.view(ui);
  ServiceGroup& g = groups_[u.gid[slot]];
  sync_group(g, t);
  return std::max(0.0, u.target[slot] - g.acc);
}

double EventKernel::slot_exponential(std::size_t ui, unsigned slot,
                                     double rate) {
  if (!shard_.decomposed) return rng_.exponential(rate);
  // Keyed by (admission seq, file id): both are invariant to the shard
  // layout, so the same download draws the same variate at any shard
  // count — the core of the sharded determinism contract.
  const std::uint64_t key = parallel::derive_seed(
      parallel::derive_seed(slot_root_, pool_.seq(ui)), pool_.file(ui, slot));
  return parallel::counter_exponential(key, pool_.bump_rng_ctr(ui, slot),
                                       rate);
}

void EventKernel::note_download(unsigned torrent, unsigned cls, int delta,
                                double t) {
  PopCell& c =
      down_cells_[static_cast<std::size_t>(torrent) * cfg_.num_files +
                  (cls - 1)];
  flush_cell(c, t);
  c.cnt += delta;
  down_cnt_[cls - 1] += delta;
}

void EventKernel::note_seed(unsigned torrent, unsigned cls, int delta,
                            double t) {
  PopCell& c =
      seed_cells_[static_cast<std::size_t>(torrent) * cfg_.num_files +
                  (cls - 1)];
  flush_cell(c, t);
  c.cnt += delta;
  seed_cnt_[cls - 1] += delta;
}

void EventKernel::arm_abort(std::size_t ui, unsigned slot, double t) {
  if (cfg_.abort_rate <= 0.0) return;
  const double deadline = t + slot_exponential(ui, slot, cfg_.abort_rate);
  abort_queue_.push_back(
      {deadline, pool_.seq(ui), ui, slot, pool_.inst(ui, slot)});
  std::push_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
}

void EventKernel::schedule_seed_departure(std::size_t ui, unsigned file_idx,
                                          double when) {
  // While the seeding infrastructure is down, residences cannot start:
  // the departure fires immediately (the policy's RNG draw still
  // happened, so recovery re-synchronises with the clean-run stream).
  if (seed_down_) when = now_;
  seed_queue_.push_back({when, pool_.seq(ui), ui, file_idx});
  std::push_heap(seed_queue_.begin(), seed_queue_.end(), kMinHeap);
}

void EventKernel::add_active_peers(std::size_t n) {
  active_peer_count_ += n;
  if (active_peer_count_ > cfg_.max_active_peers) {
    throw SolverError(
        "simulation exceeded max_active_peers — the configuration is "
        "outside the stable region (offered load exceeds service capacity)");
  }
}

void EventKernel::retire_user(std::size_t ui, double t, double download,
                              double final_rho, bool adaptive) {
  if (shard_.decomposed) {
    remove_live(ui);
    if (pool_.sampled(ui)) {
      closures_.push_back(
          {pool_.seq(ui), pool_.cls(ui),
           static_cast<std::uint8_t>(pool_.aborted(ui) ? 1 : 0), 0,
           t - pool_.arrival(ui), download});
    }
    pool_.release(ui);
    return;
  }
  const SimUser u = pool_.view(ui);
  remove_live(ui);
  if (!u.sampled) return;
  if (u.aborted) {
    // Users who abandoned a download are not comparable to the fluid
    // per-class sojourn metrics; count them separately.
    stats_.record_aborted();
    return;
  }
  if (obs_.metrics != nullptr) {
    const double files = static_cast<double>(u.cls);
    obs_.metrics->observe(hist_online_, (t - u.arrival) / files);
    obs_.metrics->observe(hist_download_, download / files);
    obs_.metrics->observe(hist_files_, files);
  }
  stats_.record_user(u.cls, u.cls, t - u.arrival, download, final_rho,
                     adaptive);
}

void EventKernel::process_arrival(double t) {
  ++total_arrivals_;
  if (tracker_down_) {
    if (tracker_drop_) {
      ++arrivals_dropped_;
    } else {
      ++arrivals_queued_;
      ++tracker_queue_;
      note_readmission_peak();
    }
    return;
  }
  scratch_files_.clear();
  for (unsigned f = 0; f < cfg_.num_files; ++f) {
    if (rng_.bernoulli(cfg_.file_probability(f))) scratch_files_.push_back(f);
  }
  if (scratch_files_.empty()) return;  // visitor requested nothing
  admit_user(scratch_files_, t);
}

void EventKernel::admit_user(std::span<const unsigned> files, double t) {
  const unsigned cls = static_cast<unsigned>(files.size());
  const bool sampled = t >= cfg_.warmup;
  // The admission sequence advances for every admitted user in every
  // shard — shards replay the identical arrival stream, so seq is a
  // global, shard-invariant user identity.
  const std::uint64_t seq = next_seq_++;
  // The bandwidth-class draw shares the arrival stream and happens before
  // the decomposed ownership filter for the same reason seq does: every
  // shard must consume the identical draws to assign the same class to
  // the same admission. Gated so homogeneous runs draw nothing new.
  std::uint8_t bclass = 0;
  if (!cfg_.bandwidth_classes.empty()) {
    double pick =
        rng_.uniform() * fluid::total_weight(cfg_.bandwidth_classes);
    for (std::size_t b = 0; b + 1 < cfg_.bandwidth_classes.size(); ++b) {
      pick -= cfg_.bandwidth_classes[b].weight;
      if (pick < 0.0) break;
      ++bclass;
    }
  }
  const auto stamp_class = [this, bclass](std::size_t ui) {
    if (cfg_.bandwidth_classes.empty()) return;
    if (bclass_.size() <= ui) bclass_.resize(ui + 1, 0);
    bclass_[ui] = bclass;
  };
  if (shard_.decomposed) {
    if (sampled) ++arrivals_cls_[cls - 1];
    if (owns_torrent(files[0])) ++prim_events_;  // admission, home-counted
    scratch_owned_.clear();
    for (const unsigned f : files) {
      if (owns_torrent(f)) scratch_owned_.push_back(f);
    }
    if (scratch_owned_.empty()) return;  // no slot of ours; other shards'
    const std::size_t ui = pool_.create(scratch_owned_, cls, t, sampled, seq);
    stamp_class(ui);
    add_live(ui);
    policy_.on_arrival(ui, t);
    return;
  }
  const std::size_t ui = pool_.create(files, cls, t, sampled, seq);
  stamp_class(ui);
  if (sampled) stats_.record_arrival(cls);
  add_live(ui);
  policy_.on_arrival(ui, t);
}

double EventKernel::peek_abort() {
  while (!abort_queue_.empty()) {
    const AbortEntry& e = abort_queue_.front();
    if (pool_.seq(e.ui) == e.seq && pool_.inst(e.ui, e.slot) == e.inst &&
        pool_.state(e.ui, e.slot) == SlotState::kDownloading) {
      return e.time;
    }
    std::pop_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
    abort_queue_.pop_back();
  }
  return kInf;
}

void EventKernel::drain_completions(double t) {
  while (!candidates_.empty() && candidates_.top_key() <= t + kTimeEps) {
    const std::size_t gid = candidates_.top_id();
    ServiceGroup& g = groups_[gid];
    sync_group(g, t);
    drop_stale_pending(g);
    if (!g.pending.empty() && due(g.pending.front().target, g.acc)) {
      const PendingEntry e = g.pending.front();
      std::pop_heap(g.pending.begin(), g.pending.end(), kMinHeap);
      g.pending.pop_back();
      SimUser u = pool_.view(e.ui);
      ++u.sched_gen[e.slot];
      ++u.inst[e.slot];  // the abort clock lost the race
      policy_.on_complete(e.ui, e.slot, t);
      if (shard_.decomposed) ++prim_events_;
    }
    update_candidate(gid);
  }
}

void EventKernel::drain_aborts(double t) {
  while (peek_abort() <= t + kTimeEps) {
    const AbortEntry e = abort_queue_.front();
    std::pop_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
    abort_queue_.pop_back();
    policy_.on_abort(e.ui, e.slot, t);
    if (shard_.decomposed) ++prim_events_;
  }
}

// ---- fault machinery ------------------------------------------------------

void EventKernel::push_readmission(double when, std::vector<unsigned> files) {
  readmissions_.push_back({when, readmission_seq_++, std::move(files)});
  std::push_heap(readmissions_.begin(), readmissions_.end(), kMinHeap);
  note_readmission_peak();
}

void EventKernel::note_readmission_peak() {
  readmission_queue_peak_ =
      std::max(readmission_queue_peak_, tracker_queue_ + readmissions_.size());
}

void EventKernel::apply_tracker_down(const TrackerOutageFault& f) {
  tracker_down_ = true;
  tracker_drop_ = f.drop;
}

void EventKernel::apply_tracker_up(const TrackerOutageFault& f, double t) {
  tracker_down_ = false;
  // Every visitor queued during the outage retries independently with an
  // exponential backoff from the moment the tracker answers again.
  for (std::size_t i = 0; i < tracker_queue_; ++i) {
    push_readmission(t + rng_.exponential(f.readmit_rate), {});
  }
  tracker_queue_ = 0;
}

void EventKernel::apply_seed_down(double t) {
  seed_down_ = true;
  // The seeding infrastructure failed: every residence in flight ends now.
  // Dispatch in (time, seq, idx) order so the collapse is deterministic.
  std::vector<SeedDeparture> in_flight;
  in_flight.swap(seed_queue_);
  std::sort(in_flight.begin(), in_flight.end(),
            [](const SeedDeparture& a, const SeedDeparture& b) {
              return b > a;
            });
  for (const SeedDeparture& ev : in_flight) {
    if (pool_.seq(ev.ui) != ev.seq) continue;  // row recycled, entry stale
    const unsigned check = ev.file_idx == kAllFiles ? 0U : ev.file_idx;
    if (pool_.state(ev.ui, check) == SlotState::kSeeding) {
      policy_.on_seed_departure(ev.ui, ev.file_idx, t);
    }
  }
}

void EventKernel::apply_churn(const ChurnBurstFault& f, double t) {
  // Snapshot the victims first: the teardown swap-removes from the live
  // list, and the kill coin flips must be drawn in live order.
  std::vector<std::size_t> victims;
  for (const std::size_t ui : live_) {
    const SimUser u = pool_.view(ui);
    const bool downloading =
        std::any_of(u.state.begin(), u.state.end(), [](SlotState s) {
          return s == SlotState::kDownloading;
        });
    if (downloading && rng_.bernoulli(f.kill_fraction)) {
      victims.push_back(ui);
    }
  }
  for (const std::size_t ui : victims) {
    policy_.on_fault_crash(ui, t);
    remove_live(ui);
    ++downloads_killed_;
    const SimUser u = pool_.view(ui);
    // The peer re-arrives after a backoff, re-requesting everything it
    // had in flight plus every finished file the crash destroyed.
    std::vector<unsigned> refetch;
    for (unsigned s = 0; s < u.slots(); ++s) {
      if (u.done[s] != 0 && !rng_.bernoulli(f.progress_loss)) continue;
      refetch.push_back(u.files[s]);
    }
    // The crashed row is recycled (decomposed mode only — the legacy
    // kernel keeps rows so raw ids stay admission-ordered).
    if (shard_.decomposed) pool_.release(ui);
    if (!refetch.empty()) {
      push_readmission(t + rng_.exponential(f.backoff_rate),
                       std::move(refetch));
    }
  }
}

void EventKernel::drain_readmissions(double t) {
  while (!readmissions_.empty() &&
         readmissions_.front().time <= t + kTimeEps) {
    std::pop_heap(readmissions_.begin(), readmissions_.end(), kMinHeap);
    Readmission r = std::move(readmissions_.back());
    readmissions_.pop_back();
    ++readmissions_count_;
    std::vector<unsigned> files = std::move(r.files);
    if (files.empty()) {
      // A tracker-outage visitor retrying: the file set is drawn now.
      for (unsigned f = 0; f < cfg_.num_files; ++f) {
        if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
      }
      if (files.empty()) continue;  // requested nothing after all
    }
    admit_user(files, t);
  }
}

void EventKernel::process_fault_edges(double t) {
  using Kind = FaultEdge::Kind;
  while (fault_cursor_ < fault_timeline_.size() &&
         fault_timeline_[fault_cursor_].time <= t + kTimeEps) {
    const FaultEdge e = fault_timeline_[fault_cursor_++];
    const std::size_t pre_fault_peers = active_peer_count_;
    switch (e.kind) {
      case Kind::kTrackerDown:
        apply_tracker_down(cfg_.faults.tracker_outages[e.idx]);
        break;
      case Kind::kTrackerUp:
        apply_tracker_up(cfg_.faults.tracker_outages[e.idx], t);
        break;
      case Kind::kSeedDown:
        apply_seed_down(t);
        break;
      case Kind::kSeedUp:
        seed_down_ = false;
        break;
      case Kind::kBandwidthDown:
        policy_.on_fault_bandwidth(cfg_.faults.bandwidth_faults[e.idx].scale,
                                   t);
        break;
      case Kind::kBandwidthUp:
        policy_.on_fault_bandwidth(1.0, t);
        break;
      case Kind::kChurn:
        apply_churn(cfg_.faults.churn_bursts[e.idx], t);
        break;
    }
    ++faults_injected_;
    if (shard_.decomposed) ++prim_events_;
    if (obs_.trace != nullptr) {
      const char* name = "fault.churn";
      switch (e.kind) {
        case Kind::kTrackerDown: name = "fault.tracker_down"; break;
        case Kind::kTrackerUp: name = "fault.tracker_up"; break;
        case Kind::kSeedDown: name = "fault.seed_down"; break;
        case Kind::kSeedUp: name = "fault.seed_up"; break;
        case Kind::kBandwidthDown: name = "fault.bandwidth_down"; break;
        case Kind::kBandwidthUp: name = "fault.bandwidth_up"; break;
        case Kind::kChurn: name = "fault.churn"; break;
      }
      std::ostringstream args;
      args << "{\"sim_t\": " << t
           << ", \"live_peers\": " << active_peer_count_ << "}";
      obs_.trace->instant(name, args.str());
    }
    begin_recovery_watch(pre_fault_peers, t);
    // Corruption must surface at the fault that caused it, so the
    // auditor runs right at the edge, before any organic event.
    if (paranoid_) audit(t);
  }
}

void EventKernel::begin_recovery_watch(std::size_t pre_fault_peers,
                                       double t) {
  // Only faults that actually dent the population open an episode;
  // already-watching episodes keep their original reference level.
  if (!recovering_ && active_peer_count_ < pre_fault_peers) {
    recovering_ = true;
    recover_ref_ = pre_fault_peers;
    recovery_start_ = t;
  }
}

void EventKernel::update_recovery_watch(double t) {
  if (recovering_ && active_peer_count_ >= recover_ref_) {
    time_to_recover_ = std::max(time_to_recover_, t - recovery_start_);
    recovering_ = false;
  }
}

// ---- paranoid auditor -----------------------------------------------------

void EventKernel::audit(double t) {
  const auto fail = [&](const std::string& why) {
    std::ostringstream os;
    os << "paranoid audit failed at t = " << t << ": " << why;
    throw AuditError(os.str());
  };

  // Live-list cross-references.
  for (std::size_t pos = 0; pos < live_.size(); ++pos) {
    const std::size_t ui = live_[pos];
    if (ui >= pool_.size()) fail("live list references unknown user");
    if (pool_.seq(ui) == UserPool::kDeadSeq) {
      fail("live list references a released pool row");
    }
    if (pool_.live_pos(ui) != pos) {
      fail("live_pos cross-reference broken for user " + std::to_string(ui));
    }
  }

  // Cross-group candidate heap.
  std::string reason;
  if (!candidates_.validate(&reason)) fail("candidate heap: " + reason);

  // Service-group integrals and pending heaps.
  for (std::size_t gid = 0; gid < groups_.size(); ++gid) {
    const ServiceGroup& g = groups_[gid];
    if (!(std::isfinite(g.rate) && g.rate >= 0.0)) {
      fail("group " + std::to_string(gid) + " has invalid rate");
    }
    if (!std::isfinite(g.acc)) {
      fail("group " + std::to_string(gid) + " integral is not finite");
    }
    if (g.last_t > t + 1e-9) {
      fail("group " + std::to_string(gid) + " integral is ahead of time");
    }
    if (!std::is_heap(g.pending.begin(), g.pending.end(), kMinHeap)) {
      fail("group " + std::to_string(gid) + " pending heap order violated");
    }
    bool has_valid = false;
    for (const PendingEntry& e : g.pending) {
      if (e.ui >= pool_.size()) fail("pending entry references unknown user");
      if (pool_.seq(e.ui) != e.seq) continue;  // row recycled, entry stale
      const SimUser u = pool_.view(e.ui);
      if (e.slot >= u.slots()) fail("pending entry slot out of range");
      if (u.sched_gen[e.slot] != e.gen) continue;  // stale entry, fine
      has_valid = true;
      if (u.gid[e.slot] != gid) {
        fail("live pending entry sits in the wrong group");
      }
      if (u.state[e.slot] != SlotState::kDownloading) {
        fail("scheduled slot is not downloading");
      }
      if (e.target != u.target[e.slot]) {
        fail("pending entry target diverged from the slot target");
      }
    }
    if (has_valid && g.rate > 0.0 && !candidates_.contains(gid)) {
      fail("group " + std::to_string(gid) +
           " has live work and positive rate but no candidate entry");
    }
  }

  // Every downloading slot of every live user is scheduled exactly once
  // (policies that run their own completion scheduler opt out).
  if (policy_.kernel_scheduled()) {
    for (const std::size_t ui : live_) {
      const SimUser u = pool_.view(ui);
      for (unsigned s = 0; s < u.slots(); ++s) {
        if (u.state[s] != SlotState::kDownloading) continue;
        if (u.gid[s] >= groups_.size()) fail("slot gid out of range");
        const ServiceGroup& g = groups_[u.gid[s]];
        std::size_t n = 0;
        for (const PendingEntry& e : g.pending) {
          if (e.ui == ui && e.seq == u.seq && e.slot == s &&
              e.gen == u.sched_gen[s]) {
            ++n;
          }
        }
        if (n != 1) {
          fail("downloading slot has " + std::to_string(n) +
               " live heap entries (expected 1)");
        }
      }
    }
  }

  // Population integrals must stay finite and non-negative.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    if (!std::isfinite(down_pop_[k]) || down_pop_[k] < -1e-6) {
      fail("downloader population of class " + std::to_string(k + 1) +
           " is negative or non-finite");
    }
    if (!std::isfinite(seed_pop_[k]) || seed_pop_[k] < -1e-6) {
      fail("seed population of class " + std::to_string(k + 1) +
           " is negative or non-finite");
    }
  }
  if (shard_.decomposed) {
    for (unsigned k = 0; k < cfg_.num_files; ++k) {
      if (down_cnt_[k] < 0) {
        fail("decomposed downloader count of class " + std::to_string(k + 1) +
             " went negative");
      }
      if (seed_cnt_[k] < 0) {
        fail("decomposed seed count of class " + std::to_string(k + 1) +
             " went negative");
      }
    }
  }

  // Scheme-specific pool recounts.
  policy_.audit(t);
}

// ---- telemetry ------------------------------------------------------------

void EventKernel::record_sample(double when) {
  if (shard_.decomposed) {
    for (unsigned k = 0; k < cfg_.num_files; ++k) {
      sampler_->append(down_series_[k], when,
                       static_cast<double>(down_cnt_[k]));
      sampler_->append(seed_series_[k], when,
                       static_cast<double>(seed_cnt_[k]));
    }
  } else {
    for (unsigned k = 0; k < cfg_.num_files; ++k) {
      sampler_->append(down_series_[k], when, down_pop_[k]);
      sampler_->append(seed_series_[k], when, seed_pop_[k]);
    }
  }
  sampler_->append(live_series_, when,
                   static_cast<double>(active_peer_count_));
  sampler_->append(queue_series_, when,
                   static_cast<double>(tracker_queue_ + readmissions_.size()));
  sampler_->append(recovering_series_, when, recovering_ ? 1.0 : 0.0);
  sampler_->append(arrival_series_, when,
                   cfg_.arrival.rate_at(cfg_.visit_rate, when));
}

void EventKernel::flush_dispatch_span() {
  if (!dispatch_span_.has_value()) return;
  std::ostringstream args;
  args << "{\"rounds\": " << dispatch_rounds_ << ", \"sim_t\": " << now_
       << "}";
  dispatch_span_->set_args(args.str());
  dispatch_span_.reset();  // ends the span
  dispatch_rounds_ = 0;
}

void EventKernel::export_observations(SimResult& result) {
  // Population trajectories: the shared time axis plus one series per
  // class (every series is appended in lockstep, so axes agree).
  const obs::SeriesData axis = sampler_->data(down_series_[0]);
  result.population_time = axis.t;
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    result.downloaders_trajectory.push_back(
        sampler_->data(down_series_[k]).v);
    result.seeds_trajectory.push_back(sampler_->data(seed_series_[k]).v);
  }

  if (obs_.recorder != nullptr) {
    for (const auto& [name, data] : sampler_->all()) {
      obs_.recorder->import_series(name, data.t, data.v);
    }
    if (!result.rho_trajectory_time.empty()) {
      obs_.recorder->import_series("adapt.rho_mean",
                                   result.rho_trajectory_time,
                                   result.rho_trajectory_mean);
    }
  }

  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.add(m.counter("sim.events"), result.events_processed);
    m.add(m.counter("sim.arrivals"), result.total_arrivals);
    m.add(m.counter("sim.users_completed"), result.total_users);
    m.add(m.counter("sim.users_censored"), result.censored_users);
    m.add(m.counter("sim.users_aborted"), result.aborted_users);
    m.add(m.counter("sim.rate_epochs"), result.rate_epochs);
    m.add(m.counter("sim.faults_injected"), result.faults_injected);
    m.add(m.counter("sim.downloads_killed"), result.downloads_killed);
    m.add(m.counter("sim.readmissions"), result.readmissions);
    m.set(m.gauge("sim.peak_live_peers"),
          static_cast<double>(result.peak_live_peers));
    m.set(m.gauge("sim.time_to_recover"), result.time_to_recover);
    m.set(m.gauge("sim.readmission_queue_peak"),
          static_cast<double>(result.readmission_queue_peak));
  }
}

// ---- main loop ------------------------------------------------------------

SimResult EventKernel::run() {
  util::Stopwatch wall;
  start();
  run_until(cfg_.horizon);
  SimResult result = finish();
  result.wall_clock_seconds = wall.seconds();
  return result;
}

void EventKernel::start() {
  BTMF_CHECK_MSG(!started_, "EventKernel::start called twice");
  started_ = true;
  cur_t_ = 0.0;
  next_arrival_ = next_arrival_after(0.0);
}

double EventKernel::next_arrival_after(double t) {
  if (cfg_.arrival.homogeneous()) {
    return t + rng_.exponential(cfg_.visit_rate);
  }
  // Lewis-Shedler thinning: candidate gaps at the peak rate, each kept
  // with probability lambda(s)/peak. Exact for any bounded lambda, and
  // every draw here is gated behind the non-homogeneous branch so
  // homogeneous runs replay the historical stream bit for bit.
  double s = t;
  for (;;) {
    s += rng_.exponential(arrival_peak_);
    if (s >= cfg_.horizon) return s;  // never dispatched; stop thinning
    if (rng_.uniform() * arrival_peak_ <=
        cfg_.arrival.rate_at(cfg_.visit_rate, s)) {
      return s;
    }
  }
}

void EventKernel::run_until(double t_end) {
  double t = cur_t_;

  while (t < cfg_.horizon) {
    // Apply pending rate epochs before choosing the next event: rates
    // changed by the last dispatch take effect from the current time.
    policy_.refresh_rates(t);

    const double completion_time =
        candidates_.empty() ? kInf : candidates_.top_key();
    const double abort_time = peek_abort();
    const double seed_time =
        seed_queue_.empty() ? kInf : seed_queue_.front().time;
    const double policy_time = policy_.next_policy_event_time();
    const double fault_time = next_fault_time();
    const double readmit_time = next_readmission_time();
    const double t_next =
        std::min({next_arrival_, seed_time, completion_time, abort_time,
                  policy_time, fault_time, readmit_time, cfg_.horizon});

    if (t_next > t_end && t_end < cfg_.horizon) {
      // Epoch barrier: nothing fires in (t, t_end], so pause exactly at
      // the boundary. Populations are constant on [t, t_next); sampling
      // the grid points up to t_end now records the same left-limit
      // values an unpaused run would.
      while (next_sample_ <= t_end) {
        record_sample(next_sample_);
        next_sample_ += sample_dt_;
      }
      t = t_end;
      break;
    }

    if (t_next > t) {
      if (!shard_.decomposed) {
        const double stat_lo = std::max(t, cfg_.warmup);
        if (t_next > stat_lo) {
          stats_.observe_populations(down_pop_, seed_pop_, t_next - stat_lo);
        }
      }
      // Sample the piecewise-constant populations at every cadence point
      // the advance steps over (left limits — the value holding on
      // [t, t_next)). Pure observation: no RNG, no event-time changes.
      const double sample_hi = std::min(t_next, cfg_.horizon);
      while (next_sample_ <= sample_hi) {
        record_sample(next_sample_);
        next_sample_ += sample_dt_;
      }
      t = t_next;
    }
    if (t >= cfg_.horizon) break;

    // ---- dispatch everything due at time t (completion wins a tie with
    // ---- an abort because completions drain first) ----------------------
    if (obs_.trace != nullptr) {
      if (!dispatch_span_.has_value()) {
        dispatch_span_.emplace(obs_.trace->span("kernel.dispatch"));
      }
      if (++dispatch_rounds_ >= obs_.trace_batch) flush_dispatch_span();
    }
    if (!shard_.decomposed) {
      stats_.record_event();
      peak_live_peers_ = std::max(peak_live_peers_, active_peer_count_);
    }
    now_ = t;
    process_fault_edges(t);
    if (t + kTimeEps >= next_arrival_) {
      process_arrival(t);
      next_arrival_ = next_arrival_after(t);
    }
    drain_readmissions(t);
    while (!seed_queue_.empty() && seed_queue_.front().time <= t + kTimeEps) {
      const SeedDeparture ev = seed_queue_.front();
      std::pop_heap(seed_queue_.begin(), seed_queue_.end(), kMinHeap);
      seed_queue_.pop_back();
      // Entries of crashed (or recycled) users are stale: their slots are
      // no longer seeding. Skipping them here keeps the queue clean.
      if (pool_.seq(ev.ui) == ev.seq) {
        const unsigned check = ev.file_idx == kAllFiles ? 0U : ev.file_idx;
        if (pool_.state(ev.ui, check) == SlotState::kSeeding) {
          policy_.on_seed_departure(ev.ui, ev.file_idx, t);
          if (shard_.decomposed) ++prim_events_;
        }
      }
    }
    if (t + kTimeEps >= policy_time) policy_.on_policy_event(t);
    drain_completions(t);
    drain_aborts(t);
    update_recovery_watch(t);
    if (paranoid_) audit(t);
  }

  cur_t_ = t;
}

SimResult EventKernel::finish() {
  // Census of users still active at the horizon.
  for (const std::size_t ui : live_) {
    if (pool_.sampled(ui)) stats_.record_censored();
  }
  if (recovering_) ++faults_unrecovered_;
  flush_dispatch_span();
  // Close the trajectories exactly at the horizon so the series cover
  // the full run even when the cadence does not divide it.
  if (sampler_->data(live_series_).t.empty() ||
      sampler_->data(live_series_).t.back() < cfg_.horizon) {
    record_sample(cfg_.horizon);
  }

  SimResult result = stats_.finalize(
      std::max(0.0, cfg_.horizon - cfg_.warmup), total_arrivals_);
  // Little's law yields the per-*peer* sojourn from the population the
  // policy counted; normalise to "per file" like every other metric.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const double divisor =
        policy_.little_divisor(static_cast<double>(k + 1));
    result.classes[k].little_download_time /= divisor;
    result.classes[k].little_online_time /= divisor;
  }
  result.rate_epochs = rate_epochs_;
  result.peak_live_peers = peak_live_peers_;
  result.faults_injected = faults_injected_;
  result.downloads_killed = downloads_killed_;
  result.arrivals_dropped = arrivals_dropped_;
  result.arrivals_queued = arrivals_queued_;
  result.readmissions = readmissions_count_;
  result.readmission_queue_peak = readmission_queue_peak_;
  result.time_to_recover = time_to_recover_;
  result.faults_unrecovered = faults_unrecovered_;
  export_observations(result);
  return result;
}

ShardOutput EventKernel::shard_finish() {
  const double horizon = cfg_.horizon;
  // Census closures for users still live at the horizon. Order does not
  // matter: the merge sorts all closures by admission seq before folding.
  for (const std::size_t ui : live_) {
    if (!pool_.sampled(ui)) continue;
    closures_.push_back(
        {pool_.seq(ui), pool_.cls(ui),
         static_cast<std::uint8_t>(pool_.aborted(ui) ? 1 : 0), 1,
         horizon - pool_.arrival(ui), 0.0});
  }
  if (recovering_) ++faults_unrecovered_;
  flush_dispatch_span();
  if (sampler_->data(live_series_).t.empty() ||
      sampler_->data(live_series_).t.back() < horizon) {
    record_sample(horizon);
  }

  ShardOutput out;
  out.down_integral.resize(down_cells_.size());
  out.seed_integral.resize(seed_cells_.size());
  for (std::size_t i = 0; i < down_cells_.size(); ++i) {
    flush_cell(down_cells_[i], horizon);
    flush_cell(seed_cells_[i], horizon);
    out.down_integral[i] = down_cells_[i].integ;
    out.seed_integral[i] = seed_cells_[i].integ;
  }
  out.closures = std::move(closures_);
  out.arrivals_by_class = arrivals_cls_;
  out.total_arrivals = total_arrivals_;
  out.prim_events = prim_events_;
  out.rate_epochs = rate_epochs_;

  out.sample_time = sampler_->data(live_series_).t;
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    out.down_series.push_back(sampler_->data(down_series_[k]).v);
    out.seed_series.push_back(sampler_->data(seed_series_[k]).v);
  }
  out.live_series = sampler_->data(live_series_).v;
  out.queue_series = sampler_->data(queue_series_).v;
  out.recovering_series = sampler_->data(recovering_series_).v;

  out.faults_injected = faults_injected_;
  out.downloads_killed = downloads_killed_;
  out.arrivals_dropped = arrivals_dropped_;
  out.arrivals_queued = arrivals_queued_;
  out.readmissions = readmissions_count_;
  out.readmission_queue_peak = readmission_queue_peak_;
  out.faults_unrecovered = faults_unrecovered_;
  out.time_to_recover = time_to_recover_;
  return out;
}

}  // namespace btmf::sim
