#include "btmf/sim/event_kernel.h"

#include "btmf/util/check.h"
#include "btmf/util/error.h"
#include "btmf/util/stopwatch.h"

namespace btmf::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Events within this window of the current time are dispatched together,
/// matching the pre-refactor engines' simultaneity rule.
constexpr double kTimeEps = 1e-12;
}  // namespace

EventKernel::EventKernel(const SimConfig& config, SchemePolicy& policy)
    : cfg_(config),
      policy_(policy),
      rng_(config.seed),
      stats_(config.num_files),
      down_pop_(config.num_files, 0.0),
      seed_pop_(config.num_files, 0.0) {
  cfg_.validate();
  policy_.attach(*this);
}

std::size_t EventKernel::new_group(double t) {
  groups_.emplace_back();
  groups_.back().last_t = t;
  candidates_.resize(groups_.size());
  return groups_.size() - 1;
}

void EventKernel::set_group_rate(std::size_t gid, double rate, double t) {
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  if (rate != g.rate) {
    g.rate = rate;
    ++rate_epochs_;
    update_candidate(gid);
  }
}

void EventKernel::add_group_rate(std::size_t gid, double delta, double t) {
  if (delta == 0.0) return;
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  g.rate = std::max(0.0, g.rate + delta);
  ++rate_epochs_;
  update_candidate(gid);
}

void EventKernel::drop_stale_pending(ServiceGroup& g) {
  while (!g.pending.empty()) {
    const PendingEntry& e = g.pending.top();
    if (users_[e.ui].sched_gen[e.slot] == e.gen) break;
    g.pending.pop();
  }
}

void EventKernel::update_candidate(std::size_t gid) {
  ServiceGroup& g = groups_[gid];
  drop_stale_pending(g);
  if (g.pending.empty()) {
    candidates_.erase(gid);
    return;
  }
  const PendingEntry& top = g.pending.top();
  double when;
  if (due(top.target, g.acc)) {
    when = g.last_t;
  } else if (g.rate > 0.0) {
    // A not-yet-due target must land strictly outside the simultaneity
    // window, or the drain loop would re-derive the same candidate forever
    // when rate is so large that need/rate underflows kTimeEps.
    when = std::max(g.last_t + (top.target - g.acc) / g.rate,
                    g.last_t + 2.0 * kTimeEps);
  } else {
    candidates_.erase(gid);
    return;
  }
  candidates_.set(gid, when);
}

void EventKernel::begin_service(std::size_t ui, unsigned slot,
                                std::size_t gid, double work, double t) {
  SimUser& u = users_[ui];
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.state[slot] = SlotState::kDownloading;
  ++u.sched_gen[slot];
  ++u.inst[slot];
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push({u.target[slot], ui, slot, u.sched_gen[slot]});
  update_candidate(gid);
}

void EventKernel::move_service(std::size_t ui, unsigned slot,
                               std::size_t gid, double work, double t) {
  SimUser& u = users_[ui];
  const std::size_t old_gid = u.gid[slot];
  ++u.sched_gen[slot];  // old entry goes stale; abort clock stays armed
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push({u.target[slot], ui, slot, u.sched_gen[slot]});
  if (old_gid != gid) update_candidate(old_gid);
  update_candidate(gid);
}

void EventKernel::end_service(std::size_t ui, unsigned slot) {
  SimUser& u = users_[ui];
  ++u.sched_gen[slot];
  ++u.inst[slot];
  update_candidate(u.gid[slot]);
}

double EventKernel::remaining_work(std::size_t ui, unsigned slot, double t) {
  SimUser& u = users_[ui];
  ServiceGroup& g = groups_[u.gid[slot]];
  sync_group(g, t);
  return std::max(0.0, u.target[slot] - g.acc);
}

void EventKernel::arm_abort(std::size_t ui, unsigned slot, double t) {
  if (cfg_.abort_rate <= 0.0) return;
  const double deadline = t + rng_.exponential(cfg_.abort_rate);
  abort_queue_.push({deadline, ui, slot, users_[ui].inst[slot]});
}

void EventKernel::schedule_seed_departure(std::size_t ui, unsigned file_idx,
                                          double when) {
  seed_queue_.push({when, ui, file_idx});
}

void EventKernel::add_active_peers(std::size_t n) {
  active_peer_count_ += n;
  if (active_peer_count_ > cfg_.max_active_peers) {
    throw SolverError(
        "simulation exceeded max_active_peers — the configuration is "
        "outside the stable region (offered load exceeds service capacity)");
  }
}

void EventKernel::retire_user(std::size_t ui, double t, double download,
                              double final_rho, bool adaptive) {
  SimUser& u = users_[ui];
  remove_live(ui);
  if (!u.sampled) return;
  if (u.aborted) {
    // Users who abandoned a download are not comparable to the fluid
    // per-class sojourn metrics; count them separately.
    stats_.record_aborted();
    return;
  }
  stats_.record_user(u.cls, u.cls, t - u.arrival, download, final_rho,
                     adaptive);
}

void EventKernel::process_arrival(double t) {
  ++total_arrivals_;
  std::vector<unsigned> files;
  for (unsigned f = 0; f < cfg_.num_files; ++f) {
    if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
  }
  if (files.empty()) return;  // visitor requested nothing

  users_.emplace_back();
  const std::size_t ui = users_.size() - 1;
  SimUser& u = users_[ui];
  u.arrival = t;
  u.cls = static_cast<unsigned>(files.size());
  u.files = std::move(files);
  u.sampled = t >= cfg_.warmup;
  u.state.assign(u.cls, SlotState::kIdle);
  u.sched_gen.assign(u.cls, 0);
  u.inst.assign(u.cls, 0);
  u.gid.assign(u.cls, 0);
  u.target.assign(u.cls, 0.0);
  if (u.sampled) stats_.record_arrival(u.cls);
  add_live(ui);
  policy_.on_arrival(ui, t);
}

double EventKernel::peek_abort() {
  while (!abort_queue_.empty()) {
    const AbortEntry& e = abort_queue_.top();
    const SimUser& u = users_[e.ui];
    if (u.inst[e.slot] == e.inst &&
        u.state[e.slot] == SlotState::kDownloading) {
      return e.time;
    }
    abort_queue_.pop();
  }
  return kInf;
}

void EventKernel::drain_completions(double t) {
  while (!candidates_.empty() && candidates_.top_key() <= t + kTimeEps) {
    const std::size_t gid = candidates_.top_id();
    ServiceGroup& g = groups_[gid];
    sync_group(g, t);
    drop_stale_pending(g);
    if (!g.pending.empty() && due(g.pending.top().target, g.acc)) {
      const PendingEntry e = g.pending.top();
      g.pending.pop();
      SimUser& u = users_[e.ui];
      ++u.sched_gen[e.slot];
      ++u.inst[e.slot];  // the abort clock lost the race
      policy_.on_complete(e.ui, e.slot, t);
    }
    update_candidate(gid);
  }
}

void EventKernel::drain_aborts(double t) {
  while (peek_abort() <= t + kTimeEps) {
    const AbortEntry e = abort_queue_.top();
    abort_queue_.pop();
    policy_.on_abort(e.ui, e.slot, t);
  }
}

SimResult EventKernel::run() {
  util::Stopwatch wall;
  double t = 0.0;
  double next_arrival = rng_.exponential(cfg_.visit_rate);

  while (t < cfg_.horizon) {
    // Apply pending rate epochs before choosing the next event: rates
    // changed by the last dispatch take effect from the current time.
    policy_.refresh_rates(t);

    const double completion_time =
        candidates_.empty() ? kInf : candidates_.top_key();
    const double abort_time = peek_abort();
    const double seed_time =
        seed_queue_.empty() ? kInf : seed_queue_.top().time;
    const double policy_time = policy_.next_policy_event_time();
    const double t_next =
        std::min({next_arrival, seed_time, completion_time, abort_time,
                  policy_time, cfg_.horizon});

    if (t_next > t) {
      const double stat_lo = std::max(t, cfg_.warmup);
      if (t_next > stat_lo) {
        stats_.observe_populations(down_pop_, seed_pop_, t_next - stat_lo);
      }
      t = t_next;
    }
    if (t >= cfg_.horizon) break;

    // ---- dispatch everything due at time t (completion wins a tie with
    // ---- an abort because completions drain first) ----------------------
    stats_.record_event();
    peak_live_peers_ = std::max(peak_live_peers_, active_peer_count_);
    if (t + kTimeEps >= next_arrival) {
      process_arrival(t);
      next_arrival = t + rng_.exponential(cfg_.visit_rate);
    }
    while (!seed_queue_.empty() && seed_queue_.top().time <= t + kTimeEps) {
      const SeedDeparture ev = seed_queue_.top();
      seed_queue_.pop();
      policy_.on_seed_departure(ev.ui, ev.file_idx, t);
    }
    if (t + kTimeEps >= policy_time) policy_.on_policy_event(t);
    drain_completions(t);
    drain_aborts(t);
  }

  // Census of users still active at the horizon.
  for (const std::size_t ui : live_) {
    if (users_[ui].sampled) stats_.record_censored();
  }

  SimResult result = stats_.finalize(
      std::max(0.0, cfg_.horizon - cfg_.warmup), total_arrivals_);
  // Little's law yields the per-*peer* sojourn from the population the
  // policy counted; normalise to "per file" like every other metric.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const double divisor =
        policy_.little_divisor(static_cast<double>(k + 1));
    result.classes[k].little_download_time /= divisor;
    result.classes[k].little_online_time /= divisor;
  }
  result.rate_epochs = rate_epochs_;
  result.peak_live_peers = peak_live_peers_;
  result.wall_clock_seconds = wall.seconds();
  return result;
}

}  // namespace btmf::sim
