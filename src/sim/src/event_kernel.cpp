#include "btmf/sim/event_kernel.h"

#include <sstream>

#include "btmf/util/check.h"
#include "btmf/util/error.h"
#include "btmf/util/stopwatch.h"

namespace btmf::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// Events within this window of the current time are dispatched together,
/// matching the pre-refactor engines' simultaneity rule.
constexpr double kTimeEps = 1e-12;

const std::greater<> kMinHeap{};
}  // namespace

EventKernel::EventKernel(const SimConfig& config, SchemePolicy& policy)
    : cfg_(config),
      policy_(policy),
      rng_(config.seed),
      stats_(config.num_files),
      down_pop_(config.num_files, 0.0),
      seed_pop_(config.num_files, 0.0) {
  cfg_.validate();
  paranoid_ = cfg_.paranoid;
#ifdef BTMF_PARANOID
  paranoid_ = true;
#endif
  build_fault_timeline();

  // Telemetry: the internal population sampler is always on (it backs the
  // SimResult trajectories and draws no randomness); the external sinks
  // stay null unless the caller attached them.
  obs_ = cfg_.obs;
  sample_dt_ = obs_.sample_dt > 0.0 ? obs_.sample_dt : cfg_.horizon / 512.0;
  sampler_ = std::make_unique<obs::TimeSeriesRecorder>(0);  // exact cadence
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const std::string cls = ".c" + std::to_string(k + 1);
    down_series_.push_back(sampler_->series("sim.downloaders" + cls));
    seed_series_.push_back(sampler_->series("sim.seeds" + cls));
  }
  live_series_ = sampler_->series("sim.live_peers");
  queue_series_ = sampler_->series("sim.readmission_queue");
  recovering_series_ = sampler_->series("sim.recovering");
  if (obs_.metrics != nullptr) {
    hist_online_ = obs_.metrics->histogram("sim.user_online_per_file");
    hist_download_ = obs_.metrics->histogram("sim.user_download_per_file");
    hist_files_ = obs_.metrics->histogram("sim.user_files");
  }

  policy_.attach(*this);
}

void EventKernel::build_fault_timeline() {
  const FaultPlan& plan = cfg_.faults;
  using Kind = FaultEdge::Kind;
  for (std::size_t i = 0; i < plan.tracker_outages.size(); ++i) {
    const TrackerOutageFault& f = plan.tracker_outages[i];
    fault_timeline_.push_back({f.start, Kind::kTrackerDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kTrackerUp, i});
  }
  for (std::size_t i = 0; i < plan.seed_failures.size(); ++i) {
    const SeedFailureFault& f = plan.seed_failures[i];
    fault_timeline_.push_back({f.start, Kind::kSeedDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kSeedUp, i});
  }
  for (std::size_t i = 0; i < plan.bandwidth_faults.size(); ++i) {
    const BandwidthFault& f = plan.bandwidth_faults[i];
    fault_timeline_.push_back({f.start, Kind::kBandwidthDown, i});
    fault_timeline_.push_back({f.start + f.duration, Kind::kBandwidthUp, i});
  }
  for (std::size_t i = 0; i < plan.churn_bursts.size(); ++i) {
    fault_timeline_.push_back({plan.churn_bursts[i].time, Kind::kChurn, i});
  }
  std::sort(fault_timeline_.begin(), fault_timeline_.end());
}

std::size_t EventKernel::new_group(double t) {
  groups_.emplace_back();
  groups_.back().last_t = t;
  candidates_.resize(groups_.size());
  return groups_.size() - 1;
}

void EventKernel::set_group_rate(std::size_t gid, double rate, double t) {
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  if (rate != g.rate) {
    g.rate = rate;
    ++rate_epochs_;
    update_candidate(gid);
  }
}

void EventKernel::add_group_rate(std::size_t gid, double delta, double t) {
  if (delta == 0.0) return;
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  g.rate = std::max(0.0, g.rate + delta);
  ++rate_epochs_;
  update_candidate(gid);
}

void EventKernel::drop_stale_pending(ServiceGroup& g) {
  while (!g.pending.empty()) {
    const PendingEntry& e = g.pending.front();
    if (users_[e.ui].sched_gen[e.slot] == e.gen) break;
    std::pop_heap(g.pending.begin(), g.pending.end(), kMinHeap);
    g.pending.pop_back();
  }
}

void EventKernel::update_candidate(std::size_t gid) {
  ServiceGroup& g = groups_[gid];
  drop_stale_pending(g);
  if (g.pending.empty()) {
    candidates_.erase(gid);
    return;
  }
  const PendingEntry& top = g.pending.front();
  double when;
  if (due(top.target, g.acc)) {
    when = g.last_t;
  } else if (g.rate > 0.0) {
    // A not-yet-due target must land strictly outside the simultaneity
    // window, or the drain loop would re-derive the same candidate forever
    // when rate is so large that need/rate underflows kTimeEps.
    when = std::max(g.last_t + (top.target - g.acc) / g.rate,
                    g.last_t + 2.0 * kTimeEps);
  } else {
    candidates_.erase(gid);
    return;
  }
  candidates_.set(gid, when);
}

void EventKernel::begin_service(std::size_t ui, unsigned slot,
                                std::size_t gid, double work, double t) {
  SimUser& u = users_[ui];
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.state[slot] = SlotState::kDownloading;
  ++u.sched_gen[slot];
  ++u.inst[slot];
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push_back({u.target[slot], ui, slot, u.sched_gen[slot]});
  std::push_heap(g.pending.begin(), g.pending.end(), kMinHeap);
  update_candidate(gid);
}

void EventKernel::move_service(std::size_t ui, unsigned slot,
                               std::size_t gid, double work, double t) {
  SimUser& u = users_[ui];
  const std::size_t old_gid = u.gid[slot];
  ++u.sched_gen[slot];  // old entry goes stale; abort clock stays armed
  ServiceGroup& g = groups_[gid];
  sync_group(g, t);
  u.gid[slot] = gid;
  u.target[slot] = g.acc + work;
  g.pending.push_back({u.target[slot], ui, slot, u.sched_gen[slot]});
  std::push_heap(g.pending.begin(), g.pending.end(), kMinHeap);
  if (old_gid != gid) update_candidate(old_gid);
  update_candidate(gid);
}

void EventKernel::end_service(std::size_t ui, unsigned slot) {
  SimUser& u = users_[ui];
  ++u.sched_gen[slot];
  ++u.inst[slot];
  update_candidate(u.gid[slot]);
}

double EventKernel::remaining_work(std::size_t ui, unsigned slot, double t) {
  SimUser& u = users_[ui];
  ServiceGroup& g = groups_[u.gid[slot]];
  sync_group(g, t);
  return std::max(0.0, u.target[slot] - g.acc);
}

void EventKernel::arm_abort(std::size_t ui, unsigned slot, double t) {
  if (cfg_.abort_rate <= 0.0) return;
  const double deadline = t + rng_.exponential(cfg_.abort_rate);
  abort_queue_.push_back({deadline, ui, slot, users_[ui].inst[slot]});
  std::push_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
}

void EventKernel::schedule_seed_departure(std::size_t ui, unsigned file_idx,
                                          double when) {
  // While the seeding infrastructure is down, residences cannot start:
  // the departure fires immediately (the policy's RNG draw still
  // happened, so recovery re-synchronises with the clean-run stream).
  if (seed_down_) when = now_;
  seed_queue_.push_back({when, ui, file_idx});
  std::push_heap(seed_queue_.begin(), seed_queue_.end(), kMinHeap);
}

void EventKernel::add_active_peers(std::size_t n) {
  active_peer_count_ += n;
  if (active_peer_count_ > cfg_.max_active_peers) {
    throw SolverError(
        "simulation exceeded max_active_peers — the configuration is "
        "outside the stable region (offered load exceeds service capacity)");
  }
}

void EventKernel::retire_user(std::size_t ui, double t, double download,
                              double final_rho, bool adaptive) {
  SimUser& u = users_[ui];
  remove_live(ui);
  if (!u.sampled) return;
  if (u.aborted) {
    // Users who abandoned a download are not comparable to the fluid
    // per-class sojourn metrics; count them separately.
    stats_.record_aborted();
    return;
  }
  if (obs_.metrics != nullptr) {
    const double files = static_cast<double>(u.cls);
    obs_.metrics->observe(hist_online_, (t - u.arrival) / files);
    obs_.metrics->observe(hist_download_, download / files);
    obs_.metrics->observe(hist_files_, files);
  }
  stats_.record_user(u.cls, u.cls, t - u.arrival, download, final_rho,
                     adaptive);
}

void EventKernel::process_arrival(double t) {
  ++total_arrivals_;
  if (tracker_down_) {
    if (tracker_drop_) {
      ++arrivals_dropped_;
    } else {
      ++arrivals_queued_;
      ++tracker_queue_;
      note_readmission_peak();
    }
    return;
  }
  std::vector<unsigned> files;
  for (unsigned f = 0; f < cfg_.num_files; ++f) {
    if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
  }
  if (files.empty()) return;  // visitor requested nothing
  admit_user(std::move(files), t);
}

void EventKernel::admit_user(std::vector<unsigned> files, double t) {
  users_.emplace_back();
  const std::size_t ui = users_.size() - 1;
  SimUser& u = users_[ui];
  u.arrival = t;
  u.cls = static_cast<unsigned>(files.size());
  u.files = std::move(files);
  u.sampled = t >= cfg_.warmup;
  u.state.assign(u.cls, SlotState::kIdle);
  u.sched_gen.assign(u.cls, 0);
  u.inst.assign(u.cls, 0);
  u.gid.assign(u.cls, 0);
  u.target.assign(u.cls, 0.0);
  u.done.assign(u.cls, 0);
  if (u.sampled) stats_.record_arrival(u.cls);
  add_live(ui);
  policy_.on_arrival(ui, t);
}

double EventKernel::peek_abort() {
  while (!abort_queue_.empty()) {
    const AbortEntry& e = abort_queue_.front();
    const SimUser& u = users_[e.ui];
    if (u.inst[e.slot] == e.inst &&
        u.state[e.slot] == SlotState::kDownloading) {
      return e.time;
    }
    std::pop_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
    abort_queue_.pop_back();
  }
  return kInf;
}

void EventKernel::drain_completions(double t) {
  while (!candidates_.empty() && candidates_.top_key() <= t + kTimeEps) {
    const std::size_t gid = candidates_.top_id();
    ServiceGroup& g = groups_[gid];
    sync_group(g, t);
    drop_stale_pending(g);
    if (!g.pending.empty() && due(g.pending.front().target, g.acc)) {
      const PendingEntry e = g.pending.front();
      std::pop_heap(g.pending.begin(), g.pending.end(), kMinHeap);
      g.pending.pop_back();
      SimUser& u = users_[e.ui];
      ++u.sched_gen[e.slot];
      ++u.inst[e.slot];  // the abort clock lost the race
      policy_.on_complete(e.ui, e.slot, t);
    }
    update_candidate(gid);
  }
}

void EventKernel::drain_aborts(double t) {
  while (peek_abort() <= t + kTimeEps) {
    const AbortEntry e = abort_queue_.front();
    std::pop_heap(abort_queue_.begin(), abort_queue_.end(), kMinHeap);
    abort_queue_.pop_back();
    policy_.on_abort(e.ui, e.slot, t);
  }
}

// ---- fault machinery ------------------------------------------------------

void EventKernel::push_readmission(double when, std::vector<unsigned> files) {
  readmissions_.push_back({when, readmission_seq_++, std::move(files)});
  std::push_heap(readmissions_.begin(), readmissions_.end(), kMinHeap);
  note_readmission_peak();
}

void EventKernel::note_readmission_peak() {
  readmission_queue_peak_ =
      std::max(readmission_queue_peak_, tracker_queue_ + readmissions_.size());
}

void EventKernel::apply_tracker_down(const TrackerOutageFault& f) {
  tracker_down_ = true;
  tracker_drop_ = f.drop;
}

void EventKernel::apply_tracker_up(const TrackerOutageFault& f, double t) {
  tracker_down_ = false;
  // Every visitor queued during the outage retries independently with an
  // exponential backoff from the moment the tracker answers again.
  for (std::size_t i = 0; i < tracker_queue_; ++i) {
    push_readmission(t + rng_.exponential(f.readmit_rate), {});
  }
  tracker_queue_ = 0;
}

void EventKernel::apply_seed_down(double t) {
  seed_down_ = true;
  // The seeding infrastructure failed: every residence in flight ends now.
  // Dispatch in (time, ui, idx) order so the collapse is deterministic.
  std::vector<SeedDeparture> in_flight;
  in_flight.swap(seed_queue_);
  std::sort(in_flight.begin(), in_flight.end(),
            [](const SeedDeparture& a, const SeedDeparture& b) {
              return b > a;
            });
  for (const SeedDeparture& ev : in_flight) {
    const SimUser& u = users_[ev.ui];
    const unsigned check = ev.file_idx == kAllFiles ? 0U : ev.file_idx;
    if (u.state[check] == SlotState::kSeeding) {
      policy_.on_seed_departure(ev.ui, ev.file_idx, t);
    }
  }
}

void EventKernel::apply_churn(const ChurnBurstFault& f, double t) {
  // Snapshot the victims first: the teardown swap-removes from the live
  // list, and the kill coin flips must be drawn in live order.
  std::vector<std::size_t> victims;
  for (const std::size_t ui : live_) {
    const SimUser& u = users_[ui];
    const bool downloading =
        std::any_of(u.state.begin(), u.state.end(), [](SlotState s) {
          return s == SlotState::kDownloading;
        });
    if (downloading && rng_.bernoulli(f.kill_fraction)) {
      victims.push_back(ui);
    }
  }
  for (const std::size_t ui : victims) {
    policy_.on_fault_crash(ui, t);
    remove_live(ui);
    ++downloads_killed_;
    SimUser& u = users_[ui];
    // The peer re-arrives after a backoff, re-requesting everything it
    // had in flight plus every finished file the crash destroyed.
    std::vector<unsigned> refetch;
    for (unsigned s = 0; s < u.cls; ++s) {
      if (u.done[s] != 0 && !rng_.bernoulli(f.progress_loss)) continue;
      refetch.push_back(u.files[s]);
    }
    if (!refetch.empty()) {
      push_readmission(t + rng_.exponential(f.backoff_rate),
                       std::move(refetch));
    }
  }
}

void EventKernel::drain_readmissions(double t) {
  while (!readmissions_.empty() &&
         readmissions_.front().time <= t + kTimeEps) {
    std::pop_heap(readmissions_.begin(), readmissions_.end(), kMinHeap);
    Readmission r = std::move(readmissions_.back());
    readmissions_.pop_back();
    ++readmissions_count_;
    std::vector<unsigned> files = std::move(r.files);
    if (files.empty()) {
      // A tracker-outage visitor retrying: the file set is drawn now.
      for (unsigned f = 0; f < cfg_.num_files; ++f) {
        if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
      }
      if (files.empty()) continue;  // requested nothing after all
    }
    admit_user(std::move(files), t);
  }
}

void EventKernel::process_fault_edges(double t) {
  using Kind = FaultEdge::Kind;
  while (fault_cursor_ < fault_timeline_.size() &&
         fault_timeline_[fault_cursor_].time <= t + kTimeEps) {
    const FaultEdge e = fault_timeline_[fault_cursor_++];
    const std::size_t pre_fault_peers = active_peer_count_;
    switch (e.kind) {
      case Kind::kTrackerDown:
        apply_tracker_down(cfg_.faults.tracker_outages[e.idx]);
        break;
      case Kind::kTrackerUp:
        apply_tracker_up(cfg_.faults.tracker_outages[e.idx], t);
        break;
      case Kind::kSeedDown:
        apply_seed_down(t);
        break;
      case Kind::kSeedUp:
        seed_down_ = false;
        break;
      case Kind::kBandwidthDown:
        policy_.on_fault_bandwidth(cfg_.faults.bandwidth_faults[e.idx].scale,
                                   t);
        break;
      case Kind::kBandwidthUp:
        policy_.on_fault_bandwidth(1.0, t);
        break;
      case Kind::kChurn:
        apply_churn(cfg_.faults.churn_bursts[e.idx], t);
        break;
    }
    ++faults_injected_;
    if (obs_.trace != nullptr) {
      const char* name = "fault.churn";
      switch (e.kind) {
        case Kind::kTrackerDown: name = "fault.tracker_down"; break;
        case Kind::kTrackerUp: name = "fault.tracker_up"; break;
        case Kind::kSeedDown: name = "fault.seed_down"; break;
        case Kind::kSeedUp: name = "fault.seed_up"; break;
        case Kind::kBandwidthDown: name = "fault.bandwidth_down"; break;
        case Kind::kBandwidthUp: name = "fault.bandwidth_up"; break;
        case Kind::kChurn: name = "fault.churn"; break;
      }
      std::ostringstream args;
      args << "{\"sim_t\": " << t
           << ", \"live_peers\": " << active_peer_count_ << "}";
      obs_.trace->instant(name, args.str());
    }
    begin_recovery_watch(pre_fault_peers, t);
    // Corruption must surface at the fault that caused it, so the
    // auditor runs right at the edge, before any organic event.
    if (paranoid_) audit(t);
  }
}

void EventKernel::begin_recovery_watch(std::size_t pre_fault_peers,
                                       double t) {
  // Only faults that actually dent the population open an episode;
  // already-watching episodes keep their original reference level.
  if (!recovering_ && active_peer_count_ < pre_fault_peers) {
    recovering_ = true;
    recover_ref_ = pre_fault_peers;
    recovery_start_ = t;
  }
}

void EventKernel::update_recovery_watch(double t) {
  if (recovering_ && active_peer_count_ >= recover_ref_) {
    time_to_recover_ = std::max(time_to_recover_, t - recovery_start_);
    recovering_ = false;
  }
}

// ---- paranoid auditor -----------------------------------------------------

void EventKernel::audit(double t) {
  const auto fail = [&](const std::string& why) {
    std::ostringstream os;
    os << "paranoid audit failed at t = " << t << ": " << why;
    throw AuditError(os.str());
  };

  // Live-list cross-references.
  for (std::size_t pos = 0; pos < live_.size(); ++pos) {
    const std::size_t ui = live_[pos];
    if (ui >= users_.size()) fail("live list references unknown user");
    if (users_[ui].live_pos != pos) {
      fail("live_pos cross-reference broken for user " + std::to_string(ui));
    }
  }

  // Cross-group candidate heap.
  std::string reason;
  if (!candidates_.validate(&reason)) fail("candidate heap: " + reason);

  // Service-group integrals and pending heaps.
  for (std::size_t gid = 0; gid < groups_.size(); ++gid) {
    const ServiceGroup& g = groups_[gid];
    if (!(std::isfinite(g.rate) && g.rate >= 0.0)) {
      fail("group " + std::to_string(gid) + " has invalid rate");
    }
    if (!std::isfinite(g.acc)) {
      fail("group " + std::to_string(gid) + " integral is not finite");
    }
    if (g.last_t > t + 1e-9) {
      fail("group " + std::to_string(gid) + " integral is ahead of time");
    }
    if (!std::is_heap(g.pending.begin(), g.pending.end(), kMinHeap)) {
      fail("group " + std::to_string(gid) + " pending heap order violated");
    }
    bool has_valid = false;
    for (const PendingEntry& e : g.pending) {
      if (e.ui >= users_.size()) fail("pending entry references unknown user");
      const SimUser& u = users_[e.ui];
      if (e.slot >= u.cls) fail("pending entry slot out of range");
      if (u.sched_gen[e.slot] != e.gen) continue;  // stale entry, fine
      has_valid = true;
      if (u.gid[e.slot] != gid) {
        fail("live pending entry sits in the wrong group");
      }
      if (u.state[e.slot] != SlotState::kDownloading) {
        fail("scheduled slot is not downloading");
      }
      if (e.target != u.target[e.slot]) {
        fail("pending entry target diverged from the slot target");
      }
    }
    if (has_valid && g.rate > 0.0 && !candidates_.contains(gid)) {
      fail("group " + std::to_string(gid) +
           " has live work and positive rate but no candidate entry");
    }
  }

  // Every downloading slot of every live user is scheduled exactly once
  // (policies that run their own completion scheduler opt out).
  if (policy_.kernel_scheduled()) {
    for (const std::size_t ui : live_) {
      const SimUser& u = users_[ui];
      for (unsigned s = 0; s < u.cls; ++s) {
        if (u.state[s] != SlotState::kDownloading) continue;
        if (u.gid[s] >= groups_.size()) fail("slot gid out of range");
        const ServiceGroup& g = groups_[u.gid[s]];
        std::size_t n = 0;
        for (const PendingEntry& e : g.pending) {
          if (e.ui == ui && e.slot == s && e.gen == u.sched_gen[s]) ++n;
        }
        if (n != 1) {
          fail("downloading slot has " + std::to_string(n) +
               " live heap entries (expected 1)");
        }
      }
    }
  }

  // Population integrals must stay finite and non-negative.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    if (!std::isfinite(down_pop_[k]) || down_pop_[k] < -1e-6) {
      fail("downloader population of class " + std::to_string(k + 1) +
           " is negative or non-finite");
    }
    if (!std::isfinite(seed_pop_[k]) || seed_pop_[k] < -1e-6) {
      fail("seed population of class " + std::to_string(k + 1) +
           " is negative or non-finite");
    }
  }

  // Scheme-specific pool recounts.
  policy_.audit(t);
}

// ---- telemetry ------------------------------------------------------------

void EventKernel::record_sample(double when) {
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    sampler_->append(down_series_[k], when, down_pop_[k]);
    sampler_->append(seed_series_[k], when, seed_pop_[k]);
  }
  sampler_->append(live_series_, when,
                   static_cast<double>(active_peer_count_));
  sampler_->append(queue_series_, when,
                   static_cast<double>(tracker_queue_ + readmissions_.size()));
  sampler_->append(recovering_series_, when, recovering_ ? 1.0 : 0.0);
}

void EventKernel::flush_dispatch_span() {
  if (!dispatch_span_.has_value()) return;
  std::ostringstream args;
  args << "{\"rounds\": " << dispatch_rounds_ << ", \"sim_t\": " << now_
       << "}";
  dispatch_span_->set_args(args.str());
  dispatch_span_.reset();  // ends the span
  dispatch_rounds_ = 0;
}

void EventKernel::export_observations(SimResult& result) {
  // Population trajectories: the shared time axis plus one series per
  // class (every series is appended in lockstep, so axes agree).
  const obs::SeriesData axis = sampler_->data(down_series_[0]);
  result.population_time = axis.t;
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    result.downloaders_trajectory.push_back(
        sampler_->data(down_series_[k]).v);
    result.seeds_trajectory.push_back(sampler_->data(seed_series_[k]).v);
  }

  if (obs_.recorder != nullptr) {
    for (const auto& [name, data] : sampler_->all()) {
      obs_.recorder->import_series(name, data.t, data.v);
    }
    if (!result.rho_trajectory_time.empty()) {
      obs_.recorder->import_series("adapt.rho_mean",
                                   result.rho_trajectory_time,
                                   result.rho_trajectory_mean);
    }
  }

  if (obs_.metrics != nullptr) {
    obs::MetricsRegistry& m = *obs_.metrics;
    m.add(m.counter("sim.events"), result.events_processed);
    m.add(m.counter("sim.arrivals"), result.total_arrivals);
    m.add(m.counter("sim.users_completed"), result.total_users);
    m.add(m.counter("sim.users_censored"), result.censored_users);
    m.add(m.counter("sim.users_aborted"), result.aborted_users);
    m.add(m.counter("sim.rate_epochs"), result.rate_epochs);
    m.add(m.counter("sim.faults_injected"), result.faults_injected);
    m.add(m.counter("sim.downloads_killed"), result.downloads_killed);
    m.add(m.counter("sim.readmissions"), result.readmissions);
    m.set(m.gauge("sim.peak_live_peers"),
          static_cast<double>(result.peak_live_peers));
    m.set(m.gauge("sim.time_to_recover"), result.time_to_recover);
    m.set(m.gauge("sim.readmission_queue_peak"),
          static_cast<double>(result.readmission_queue_peak));
  }
}

// ---- main loop ------------------------------------------------------------

SimResult EventKernel::run() {
  util::Stopwatch wall;
  double t = 0.0;
  double next_arrival = rng_.exponential(cfg_.visit_rate);

  while (t < cfg_.horizon) {
    // Apply pending rate epochs before choosing the next event: rates
    // changed by the last dispatch take effect from the current time.
    policy_.refresh_rates(t);

    const double completion_time =
        candidates_.empty() ? kInf : candidates_.top_key();
    const double abort_time = peek_abort();
    const double seed_time =
        seed_queue_.empty() ? kInf : seed_queue_.front().time;
    const double policy_time = policy_.next_policy_event_time();
    const double fault_time = next_fault_time();
    const double readmit_time = next_readmission_time();
    const double t_next =
        std::min({next_arrival, seed_time, completion_time, abort_time,
                  policy_time, fault_time, readmit_time, cfg_.horizon});

    if (t_next > t) {
      const double stat_lo = std::max(t, cfg_.warmup);
      if (t_next > stat_lo) {
        stats_.observe_populations(down_pop_, seed_pop_, t_next - stat_lo);
      }
      // Sample the piecewise-constant populations at every cadence point
      // the advance steps over (left limits — the value holding on
      // [t, t_next)). Pure observation: no RNG, no event-time changes.
      const double sample_hi = std::min(t_next, cfg_.horizon);
      while (next_sample_ <= sample_hi) {
        record_sample(next_sample_);
        next_sample_ += sample_dt_;
      }
      t = t_next;
    }
    if (t >= cfg_.horizon) break;

    // ---- dispatch everything due at time t (completion wins a tie with
    // ---- an abort because completions drain first) ----------------------
    if (obs_.trace != nullptr) {
      if (!dispatch_span_.has_value()) {
        dispatch_span_.emplace(obs_.trace->span("kernel.dispatch"));
      }
      if (++dispatch_rounds_ >= obs_.trace_batch) flush_dispatch_span();
    }
    stats_.record_event();
    peak_live_peers_ = std::max(peak_live_peers_, active_peer_count_);
    now_ = t;
    process_fault_edges(t);
    if (t + kTimeEps >= next_arrival) {
      process_arrival(t);
      next_arrival = t + rng_.exponential(cfg_.visit_rate);
    }
    drain_readmissions(t);
    while (!seed_queue_.empty() && seed_queue_.front().time <= t + kTimeEps) {
      const SeedDeparture ev = seed_queue_.front();
      std::pop_heap(seed_queue_.begin(), seed_queue_.end(), kMinHeap);
      seed_queue_.pop_back();
      // Entries of crashed users are stale: their slots are no longer
      // seeding. Skipping them here keeps the queue free of tombstones.
      const SimUser& u = users_[ev.ui];
      const unsigned check = ev.file_idx == kAllFiles ? 0U : ev.file_idx;
      if (u.state[check] == SlotState::kSeeding) {
        policy_.on_seed_departure(ev.ui, ev.file_idx, t);
      }
    }
    if (t + kTimeEps >= policy_time) policy_.on_policy_event(t);
    drain_completions(t);
    drain_aborts(t);
    update_recovery_watch(t);
    if (paranoid_) audit(t);
  }

  // Census of users still active at the horizon.
  for (const std::size_t ui : live_) {
    if (users_[ui].sampled) stats_.record_censored();
  }
  if (recovering_) ++faults_unrecovered_;
  flush_dispatch_span();
  // Close the trajectories exactly at the horizon so the series cover
  // the full run even when the cadence does not divide it.
  if (sampler_->data(live_series_).t.empty() ||
      sampler_->data(live_series_).t.back() < cfg_.horizon) {
    record_sample(cfg_.horizon);
  }

  SimResult result = stats_.finalize(
      std::max(0.0, cfg_.horizon - cfg_.warmup), total_arrivals_);
  // Little's law yields the per-*peer* sojourn from the population the
  // policy counted; normalise to "per file" like every other metric.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const double divisor =
        policy_.little_divisor(static_cast<double>(k + 1));
    result.classes[k].little_download_time /= divisor;
    result.classes[k].little_online_time /= divisor;
  }
  result.rate_epochs = rate_epochs_;
  result.peak_live_peers = peak_live_peers_;
  result.faults_injected = faults_injected_;
  result.downloads_killed = downloads_killed_;
  result.arrivals_dropped = arrivals_dropped_;
  result.arrivals_queued = arrivals_queued_;
  result.readmissions = readmissions_count_;
  result.readmission_queue_peak = readmission_queue_peak_;
  result.time_to_recover = time_to_recover_;
  result.faults_unrecovered = faults_unrecovered_;
  export_observations(result);
  result.wall_clock_seconds = wall.seconds();
  return result;
}

}  // namespace btmf::sim
