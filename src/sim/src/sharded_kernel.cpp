#include "btmf/sim/sharded_kernel.h"

#include <algorithm>
#include <exception>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "btmf/parallel/thread_pool.h"
#include "btmf/util/check.h"
#include "btmf/util/stopwatch.h"

namespace btmf::sim {

ShardedKernel::ShardedKernel(const SimConfig& config, PolicyFactory factory)
    : cfg_(config), factory_(std::move(factory)) {
  cfg_.validate();
  BTMF_CHECK_MSG(factory_ != nullptr, "ShardedKernel needs a policy factory");
}

SimResult ShardedKernel::run() {
  util::Stopwatch wall;
  std::unique_ptr<SchemePolicy> probe = factory_();
  if (!probe->shardable()) {
    // Serial legacy path, bit-identical to the pre-sharding kernel.
    EventKernel kernel(cfg_, *probe);
    return kernel.run();
  }

  // A faulted config can only reach here with shards == 1: the fault
  // layer is global (churn picks victims across all torrents, outages
  // gate the shared arrival path) and validate() rejects shards > 1 with
  // a non-empty plan as a typed configuration error.
  const unsigned num_shards =
      std::min(std::max(1U, cfg_.shards), cfg_.num_files);

  // Shard kernels observe nothing themselves: their sample series and
  // counters surface through ShardOutput and are exported once, merged,
  // by this driver. Only the sampling cadence knob passes through.
  SimConfig shard_cfg = cfg_;
  shard_cfg.obs = obs::ObsSink{};
  shard_cfg.obs.sample_dt = cfg_.obs.sample_dt;

  std::vector<std::unique_ptr<SchemePolicy>> policies;
  std::vector<std::unique_ptr<EventKernel>> kernels;
  policies.reserve(num_shards);
  kernels.reserve(num_shards);
  policies.push_back(std::move(probe));
  for (unsigned s = 1; s < num_shards; ++s) policies.push_back(factory_());
  for (unsigned s = 0; s < num_shards; ++s) {
    kernels.push_back(std::make_unique<EventKernel>(
        shard_cfg, *policies[s], ShardSpec{s, num_shards, true}));
  }

  const unsigned threads =
      cfg_.kernel_threads == 0
          ? std::max(1U, std::thread::hardware_concurrency())
          : cfg_.kernel_threads;
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 1 && num_shards > 1) {
    pool = std::make_unique<parallel::ThreadPool>(
        std::min<std::size_t>(threads, num_shards));
  }

  for (auto& kernel : kernels) kernel->start();

  double barrier_wait_s = 0.0;
  std::vector<double> task_s(num_shards, 0.0);
  for (unsigned e = 1; e <= kEpochs; ++e) {
    const double t_end = e == kEpochs
                             ? cfg_.horizon
                             : cfg_.horizon * static_cast<double>(e) /
                                   static_cast<double>(kEpochs);
    if (pool != nullptr) {
      std::vector<std::future<double>> futures;
      futures.reserve(num_shards);
      for (unsigned s = 0; s < num_shards; ++s) {
        EventKernel* kernel = kernels[s].get();
        futures.push_back(pool->submit([kernel, t_end] {
          const util::Stopwatch sw;
          kernel->run_until(t_end);
          return sw.seconds();
        }));
      }
      // Join EVERY future before rethrowing: an exception must not leave
      // sibling shards running against kernels about to be destroyed.
      std::exception_ptr first_error;
      for (unsigned s = 0; s < num_shards; ++s) {
        try {
          task_s[s] = futures[s].get();
        } catch (...) {
          if (first_error == nullptr) first_error = std::current_exception();
        }
      }
      if (first_error != nullptr) std::rethrow_exception(first_error);
    } else {
      for (unsigned s = 0; s < num_shards; ++s) {
        const util::Stopwatch sw;
        kernels[s]->run_until(t_end);
        task_s[s] = sw.seconds();
      }
    }
    // Idle time a fully-parallel execution would spend waiting at this
    // barrier: every shard sits until the slowest one arrives.
    const double slowest = *std::max_element(task_s.begin(), task_s.end());
    double sum = 0.0;
    for (const double s : task_s) sum += s;
    barrier_wait_s += static_cast<double>(num_shards) * slowest - sum;

    if (cfg_.paranoid) {
      for (unsigned s = 0; s < num_shards; ++s) {
        if (kernels[s]->current_time() != t_end) {
          throw AuditError(
              "sharded epoch barrier audit failed: shard " +
              std::to_string(s) + " paused at t=" +
              std::to_string(kernels[s]->current_time()) +
              " instead of the epoch boundary " + std::to_string(t_end));
        }
      }
    }
    if (cfg_.obs.trace != nullptr) {
      for (unsigned s = 0; s < num_shards; ++s) {
        std::ostringstream args;
        args << "{\"shard\": " << s << ", \"epoch\": " << e
             << ", \"t_end\": " << t_end << ", \"task_s\": " << task_s[s]
             << "}";
        cfg_.obs.trace->instant("sharded.epoch", args.str());
      }
    }
  }

  std::vector<ShardOutput> outs;
  outs.reserve(num_shards);
  for (auto& kernel : kernels) outs.push_back(kernel->shard_finish());

  SimResult result =
      merge(std::move(outs), *policies[0], num_shards, barrier_wait_s);
  result.wall_clock_seconds = wall.seconds();
  return result;
}

SimResult ShardedKernel::merge(std::vector<ShardOutput> outs,
                               SchemePolicy& policy, unsigned num_shards,
                               double barrier_wait_s) {
  const unsigned K = cfg_.num_files;
  const double measured = std::max(0.0, cfg_.horizon - cfg_.warmup);

  StatsCollector merged(K);
  for (unsigned k = 0; k < K; ++k) {
    // The arrival process is replayed identically in every shard; shard 0
    // speaks for all of them.
    merged.add_arrivals(k + 1, outs[0].arrivals_by_class[k]);
  }
  std::size_t prim_events = 0;
  std::size_t rate_epochs = 0;
  for (const ShardOutput& o : outs) {
    prim_events += o.prim_events;
    rate_epochs += o.rate_epochs;
  }
  merged.add_events(prim_events);

  // Fold per-user closures: a user whose files span shards yields one
  // closure per shard. Sorting by the (globally unique, shard-invariant)
  // admission seq groups them; the fold rules are order-insensitive
  // (any/max), so the result does not depend on shard layout.
  std::vector<ShardClosure> closures;
  for (ShardOutput& o : outs) {
    closures.insert(closures.end(), o.closures.begin(), o.closures.end());
    o.closures.clear();
  }
  std::sort(closures.begin(), closures.end(),
            [](const ShardClosure& a, const ShardClosure& b) {
              return a.seq < b.seq;
            });
  obs::MetricsRegistry* metrics = cfg_.obs.metrics;
  const obs::MetricId hist_online =
      metrics != nullptr ? metrics->histogram("sim.user_online_per_file") : 0;
  const obs::MetricId hist_download =
      metrics != nullptr ? metrics->histogram("sim.user_download_per_file")
                         : 0;
  const obs::MetricId hist_files =
      metrics != nullptr ? metrics->histogram("sim.user_files") : 0;
  for (std::size_t i = 0; i < closures.size();) {
    ShardClosure user = closures[i];
    std::size_t j = i + 1;
    for (; j < closures.size() && closures[j].seq == user.seq; ++j) {
      user.censored |= closures[j].censored;
      user.aborted |= closures[j].aborted;
      user.online = std::max(user.online, closures[j].online);
      user.download = std::max(user.download, closures[j].download);
    }
    i = j;
    if (user.censored != 0) {
      merged.record_censored();
    } else if (user.aborted != 0) {
      merged.record_aborted();
    } else {
      if (metrics != nullptr) {
        const double files = static_cast<double>(user.cls);
        metrics->observe(hist_online, user.online / files);
        metrics->observe(hist_download, user.download / files);
        metrics->observe(hist_files, files);
      }
      merged.record_user(user.cls, user.cls, user.online, user.download, 0.0,
                         false);
    }
  }

  SimResult result = merged.finalize(measured, outs[0].total_arrivals);

  // Per-class population averages: sum the per-(torrent, class) integrals
  // in ascending torrent order. Only the owner shard's cell is nonzero,
  // so the summation order — and hence every float rounding — is the same
  // for any shard count.
  for (unsigned k = 0; k < K; ++k) {
    double down_integral = 0.0;
    double seed_integral = 0.0;
    for (unsigned f = 0; f < K; ++f) {
      const ShardOutput& owner = outs[f % num_shards];
      down_integral += owner.down_integral[f * K + k];
      seed_integral += owner.seed_integral[f * K + k];
    }
    PerClassResult& c = result.classes[k];
    c.avg_downloaders = measured > 0.0 ? down_integral / measured : 0.0;
    c.avg_seeds = measured > 0.0 ? seed_integral / measured : 0.0;
    const double divisor =
        policy.little_divisor(static_cast<double>(k + 1));
    if (c.arrival_rate > 0.0) {
      c.little_download_time = c.avg_downloaders / c.arrival_rate / divisor;
      c.little_online_time =
          (c.avg_downloaders + c.avg_seeds) / c.arrival_rate / divisor;
    }
  }

  result.rate_epochs = rate_epochs;

  // Sample series merge elementwise: every shard records on the identical
  // grid (same cadence, same barrier schedule, closed at the horizon).
  const std::vector<double>& axis = outs[0].sample_time;
  for (const ShardOutput& o : outs) {
    BTMF_CHECK_MSG(o.sample_time.size() == axis.size(),
                   "shard sample grids diverged — sampling is not "
                   "deterministic across shards");
  }
  result.population_time = axis;
  result.downloaders_trajectory.assign(K, std::vector<double>(axis.size()));
  result.seeds_trajectory.assign(K, std::vector<double>(axis.size()));
  std::vector<double> live(axis.size(), 0.0);
  std::vector<double> queue(axis.size(), 0.0);
  std::vector<double> recovering(axis.size(), 0.0);
  for (const ShardOutput& o : outs) {
    for (unsigned k = 0; k < K; ++k) {
      for (std::size_t i = 0; i < axis.size(); ++i) {
        result.downloaders_trajectory[k][i] += o.down_series[k][i];
        result.seeds_trajectory[k][i] += o.seed_series[k][i];
      }
    }
    for (std::size_t i = 0; i < axis.size(); ++i) {
      live[i] += o.live_series[i];
      queue[i] += o.queue_series[i];
      recovering[i] = std::max(recovering[i], o.recovering_series[i]);
    }
  }
  double peak = 0.0;
  for (const double v : live) peak = std::max(peak, v);
  result.peak_live_peers = static_cast<std::size_t>(peak);

  // Fault counters: a non-empty plan forces one shard, so shard 0 holds
  // them all (they are zero otherwise).
  result.faults_injected = outs[0].faults_injected;
  result.downloads_killed = outs[0].downloads_killed;
  result.arrivals_dropped = outs[0].arrivals_dropped;
  result.arrivals_queued = outs[0].arrivals_queued;
  result.readmissions = outs[0].readmissions;
  result.readmission_queue_peak = outs[0].readmission_queue_peak;
  result.time_to_recover = outs[0].time_to_recover;
  result.faults_unrecovered = outs[0].faults_unrecovered;

  // Driver-level export into the caller's sinks, mirroring the legacy
  // kernel's counter/gauge names plus the shard-level extras.
  if (cfg_.obs.recorder != nullptr) {
    obs::TimeSeriesRecorder& rec = *cfg_.obs.recorder;
    for (unsigned k = 0; k < K; ++k) {
      const std::string cls = ".c" + std::to_string(k + 1);
      rec.import_series("sim.downloaders" + cls, axis,
                        result.downloaders_trajectory[k]);
      rec.import_series("sim.seeds" + cls, axis, result.seeds_trajectory[k]);
    }
    rec.import_series("sim.live_peers", axis, live);
    rec.import_series("sim.readmission_queue", axis, queue);
    rec.import_series("sim.recovering", axis, recovering);
    // The arrival-rate series is a pure function of the demand spec, so
    // the driver reconstructs it on the merged grid instead of summing
    // shard copies (every shard replays the identical arrival stream).
    std::vector<double> arrival_rate(axis.size());
    for (std::size_t i = 0; i < axis.size(); ++i) {
      arrival_rate[i] = cfg_.arrival.rate_at(cfg_.visit_rate, axis[i]);
    }
    rec.import_series("kernel.arrival_rate", axis, arrival_rate);
  }
  if (metrics != nullptr) {
    obs::MetricsRegistry& m = *metrics;
    m.add(m.counter("sim.events"), result.events_processed);
    m.add(m.counter("sim.arrivals"), result.total_arrivals);
    m.add(m.counter("sim.users_completed"), result.total_users);
    m.add(m.counter("sim.users_censored"), result.censored_users);
    m.add(m.counter("sim.users_aborted"), result.aborted_users);
    m.add(m.counter("sim.rate_epochs"), result.rate_epochs);
    m.add(m.counter("sim.faults_injected"), result.faults_injected);
    m.add(m.counter("sim.downloads_killed"), result.downloads_killed);
    m.add(m.counter("sim.readmissions"), result.readmissions);
    m.set(m.gauge("sim.peak_live_peers"),
          static_cast<double>(result.peak_live_peers));
    m.set(m.gauge("sim.time_to_recover"), result.time_to_recover);
    m.set(m.gauge("sim.readmission_queue_peak"),
          static_cast<double>(result.readmission_queue_peak));
    m.set(m.gauge("sim.kernel.shards"), static_cast<double>(num_shards));
    m.set(m.gauge("sim.kernel.epochs"), static_cast<double>(kEpochs));
    m.set(m.gauge("sim.kernel.barrier_wait_s"), barrier_wait_s);
    for (unsigned s = 0; s < num_shards; ++s) {
      m.add(m.counter("sim.kernel.shard" + std::to_string(s) + ".events"),
            outs[s].prim_events);
    }
  }
  return result;
}

}  // namespace btmf::sim
