#include "btmf/sim/cmfsd_sim.h"

#include <memory>

#include "btmf/sim/event_kernel.h"
#include "btmf/sim/policies.h"
#include "btmf/util/check.h"

namespace btmf::sim {

SimResult run_cmfsd_sim(const SimConfig& config) {
  config.validate();
  BTMF_CHECK_MSG(config.scheme == fluid::SchemeKind::kCmfsd,
                 "CMFSD engine only handles the CMFSD scheme");
  std::unique_ptr<SchemePolicy> policy = make_cmfsd_policy();
  EventKernel kernel(config, *policy);
  return kernel.run();
}

}  // namespace btmf::sim
