#include "btmf/sim/cmfsd_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <vector>

#include "btmf/sim/rng.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCompletionEps = 1e-9;
constexpr double kTimeEps = 1e-12;

enum class UserState : std::uint8_t { kDownloading, kSeeding, kDeparted };

struct User {
  double arrival = 0.0;
  std::vector<unsigned> files;   ///< requested subtorrents, shuffled order
  unsigned cls = 0;
  unsigned seq_pos = 0;          ///< files[seq_pos] is being downloaded
  double remaining = 0.0;
  double rate = 0.0;             ///< current epoch's download rate
  UserState state = UserState::kDownloading;
  bool sampled = false;

  double rho = 0.0;              ///< current bandwidth-split ratio
  bool cheater = false;
  bool adaptive = false;

  unsigned vseed_target = 0;     ///< completed file served (local pool mode)
  double stage_start = 0.0;
  double download_accum = 0.0;
  double abort_time = kInf;      ///< Exp(theta) deadline of this stage

  // Adapt accumulators over the current measurement period.
  double uploaded_virtual = 0.0;
  double received_virtual = 0.0;
  unsigned hi_streak = 0;
  unsigned lo_streak = 0;

  std::size_t live_pos = 0;
};

struct SeedDeparture {
  double time = 0.0;
  std::size_t user = 0;
  bool operator>(const SeedDeparture& o) const { return time > o.time; }
};

class Engine {
 public:
  explicit Engine(const SimConfig& config)
      : cfg_(config), rng_(config.seed), stats_(config.num_files),
        down_pop_(config.num_files, 0.0), seed_pop_(config.num_files, 0.0) {
    cfg_.validate();
    BTMF_CHECK_MSG(cfg_.scheme == fluid::SchemeKind::kCmfsd,
                   "CMFSD engine only handles the CMFSD scheme");
  }

  SimResult run();

 private:
  /// True while the peer donates virtual-seed bandwidth.
  [[nodiscard]] static bool is_partial_seed(const User& u) {
    return u.state == UserState::kDownloading && u.seq_pos > 0;
  }
  [[nodiscard]] static double tft_share(const User& u) {
    return u.seq_pos == 0 ? 1.0 : u.rho;  // P(i, j) of the fluid model
  }

  void process_arrival(double t);
  void complete_file(std::size_t ui, double t);
  void abort_user(std::size_t ui, double t);
  void process_seed_departure(std::size_t ui, double t);
  void adapt_tick(double t);
  void pick_vseed_target(User& u);

  [[nodiscard]] double draw_abort_deadline(double t) {
    return cfg_.abort_rate > 0.0 ? t + rng_.exponential(cfg_.abort_rate)
                                 : kInf;
  }

  void add_live(std::size_t ui) {
    users_[ui].live_pos = live_.size();
    live_.push_back(ui);
  }
  void remove_live(std::size_t ui) {
    const std::size_t pos = users_[ui].live_pos;
    live_[pos] = live_.back();
    users_[live_[pos]].live_pos = pos;
    live_.pop_back();
  }

  SimConfig cfg_;
  RandomStream rng_;
  StatsCollector stats_;

  std::vector<User> users_;
  std::vector<std::size_t> live_;  ///< downloaders and seeds
  std::priority_queue<SeedDeparture, std::vector<SeedDeparture>,
                      std::greater<>>
      seed_queue_;

  std::vector<double> down_pop_;
  std::vector<double> seed_pop_;

  std::size_t total_arrivals_ = 0;
  double next_debug_ = 0.0;

  // Scratch reused every epoch (local pool mode).
  std::vector<double> pool_per_subtorrent_;
  std::vector<double> virtual_per_subtorrent_;
  std::vector<std::size_t> downloaders_per_subtorrent_;
};

void Engine::pick_vseed_target(User& u) {
  // Serve a uniformly random completed file for the coming stage.
  BTMF_ASSERT(u.seq_pos >= 1);
  u.vseed_target = u.files[rng_.index(u.seq_pos)];
}

void Engine::process_arrival(double t) {
  ++total_arrivals_;
  std::vector<unsigned> files;
  for (unsigned f = 0; f < cfg_.num_files; ++f) {
    if (rng_.bernoulli(cfg_.file_probability(f))) files.push_back(f);
  }
  if (files.empty()) return;

  users_.emplace_back();
  const std::size_t ui = users_.size() - 1;
  User& u = users_[ui];
  u.arrival = t;
  u.cls = static_cast<unsigned>(files.size());
  u.files = std::move(files);
  rng_.shuffle(u.files);
  u.sampled = t >= cfg_.warmup;
  u.remaining = cfg_.file_size;
  u.stage_start = t;
  u.abort_time = draw_abort_deadline(t);

  if (u.cls > 1 && cfg_.cheater_fraction > 0.0 &&
      rng_.bernoulli(cfg_.cheater_fraction)) {
    u.cheater = true;
    u.rho = 1.0;
  } else if (cfg_.adapt.enabled) {
    u.adaptive = true;
    u.rho = cfg_.adapt.initial_rho;
  } else {
    u.rho = cfg_.rho;
  }

  if (u.sampled) stats_.record_arrival(u.cls);
  add_live(ui);
  down_pop_[u.cls - 1] += 1.0;
  if (live_.size() > cfg_.max_active_peers) {
    throw SolverError(
        "simulation exceeded max_active_peers — the configuration is "
        "outside the stable region (offered load exceeds service capacity)");
  }
}

void Engine::complete_file(std::size_t ui, double t) {
  User& u = users_[ui];
  u.download_accum += t - u.stage_start;
  ++u.seq_pos;
  if (u.seq_pos < u.cls) {
    u.remaining = cfg_.file_size;
    u.stage_start = t;
    u.abort_time = draw_abort_deadline(t);
    pick_vseed_target(u);
  } else {
    // Last file done: become a real seed for one Exp(gamma) residence.
    u.state = UserState::kSeeding;
    u.abort_time = kInf;
    down_pop_[u.cls - 1] -= 1.0;
    seed_pop_[u.cls - 1] += 1.0;
    seed_queue_.push({t + rng_.exponential(cfg_.fluid.gamma), ui});
  }
}

void Engine::abort_user(std::size_t ui, double t) {
  User& u = users_[ui];
  BTMF_ASSERT(u.state == UserState::kDownloading);
  u.state = UserState::kDeparted;
  down_pop_[u.cls - 1] -= 1.0;
  remove_live(ui);
  if (u.sampled) stats_.record_aborted();
  (void)t;
}

void Engine::process_seed_departure(std::size_t ui, double t) {
  User& u = users_[ui];
  BTMF_ASSERT(u.state == UserState::kSeeding);
  u.state = UserState::kDeparted;
  seed_pop_[u.cls - 1] -= 1.0;
  remove_live(ui);
  if (u.sampled) {
    stats_.record_user(u.cls, u.cls, t - u.arrival, u.download_accum, u.rho,
                       u.adaptive && u.cls > 1);
  }
}

void Engine::adapt_tick(double t) {
  const AdaptConfig& a = cfg_.adapt;
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (const std::size_t ui : live_) {
    User& u = users_[ui];
    if (!u.adaptive || u.cls <= 1) continue;
    if (u.state == UserState::kDownloading) {
      rho_sum += u.rho;
      ++rho_count;
    }
    if (!is_partial_seed(u)) continue;
    const double delta = (u.uploaded_virtual - u.received_virtual) / a.period;
    u.uploaded_virtual = 0.0;
    u.received_virtual = 0.0;
    if (delta > a.phi_hi) {
      ++u.hi_streak;
      u.lo_streak = 0;
      if (u.hi_streak >= a.consecutive) {
        u.rho = std::min(1.0, u.rho + a.step_up);
        u.hi_streak = 0;
      }
    } else if (delta < a.phi_lo) {
      ++u.lo_streak;
      u.hi_streak = 0;
      if (u.lo_streak >= a.consecutive) {
        u.rho = std::max(0.0, u.rho - a.step_down);
        u.lo_streak = 0;
      }
    } else {
      u.hi_streak = 0;
      u.lo_streak = 0;
    }
  }
  if (rho_count > 0 && t >= cfg_.warmup) {
    stats_.record_rho_sample(t, rho_sum / static_cast<double>(rho_count));
  }
}

SimResult Engine::run() {
  const double mu = cfg_.fluid.mu;
  const double eta = cfg_.fluid.eta;
  double t = 0.0;
  double next_arrival = rng_.exponential(cfg_.visit_rate);
  double next_adapt_tick =
      cfg_.adapt.enabled ? cfg_.adapt.period : kInf;

  const bool local_pool = cfg_.seed_pool != SeedPoolMode::kGlobal;
  const bool demand_aware =
      cfg_.seed_pool == SeedPoolMode::kSubtorrentDemandAware;
  pool_per_subtorrent_.assign(cfg_.num_files, 0.0);
  virtual_per_subtorrent_.assign(cfg_.num_files, 0.0);
  downloaders_per_subtorrent_.assign(cfg_.num_files, 0);

  while (t < cfg_.horizon) {
    // --- build this epoch's service pools -------------------------------
    double virtual_bw = 0.0;   // sum (1 - P) mu over partial seeds
    double seed_bw = 0.0;      // sum mu over real seeds
    std::size_t num_downloaders = 0;
    if (local_pool) {
      std::fill(pool_per_subtorrent_.begin(), pool_per_subtorrent_.end(),
                0.0);
      std::fill(virtual_per_subtorrent_.begin(),
                virtual_per_subtorrent_.end(), 0.0);
      std::fill(downloaders_per_subtorrent_.begin(),
                downloaders_per_subtorrent_.end(), 0);
      // Pass 1: demand (downloader counts) so demand-aware donors can
      // steer toward the most backlogged completed subtorrent.
      for (const std::size_t ui : live_) {
        const User& u = users_[ui];
        if (u.state == UserState::kDownloading) {
          ++downloaders_per_subtorrent_[u.files[u.seq_pos]];
        }
      }
    }
    for (const std::size_t ui : live_) {
      User& u = users_[ui];
      if (u.state == UserState::kDownloading) {
        ++num_downloaders;
        if (is_partial_seed(u)) {
          const double donated = (1.0 - u.rho) * mu;
          virtual_bw += donated;
          if (local_pool) {
            if (demand_aware) {
              // Re-target the completed subtorrent with the most
              // downloaders right now.
              unsigned best = u.files[0];
              std::size_t best_count = downloaders_per_subtorrent_[best];
              for (unsigned c = 1; c < u.seq_pos; ++c) {
                const unsigned f = u.files[c];
                if (downloaders_per_subtorrent_[f] > best_count) {
                  best = f;
                  best_count = downloaders_per_subtorrent_[f];
                }
              }
              u.vseed_target = best;
            }
            pool_per_subtorrent_[u.vseed_target] += donated;
            virtual_per_subtorrent_[u.vseed_target] += donated;
          }
        }
      } else if (u.state == UserState::kSeeding) {
        seed_bw += mu;
        if (local_pool) {
          // A real seed splits its bandwidth across the files it holds.
          const double per_file =
              mu / static_cast<double>(u.cls);
          for (const unsigned f : u.files) {
            pool_per_subtorrent_[f] += per_file;
          }
        }
      }
    }

    // --- per-downloader rates, earliest completion and abort ------------
    double min_tta = kInf;
    double min_abort = kInf;
    for (const std::size_t ui : live_) {
      User& u = users_[ui];
      if (u.state != UserState::kDownloading) continue;
      const double tft = eta * mu * tft_share(u);
      double pool_rate = 0.0;
      if (local_pool) {
        const unsigned sub = u.files[u.seq_pos];
        const std::size_t n = downloaders_per_subtorrent_[sub];
        pool_rate = n > 0 ? pool_per_subtorrent_[sub] /
                                static_cast<double>(n)
                          : 0.0;
      } else if (num_downloaders > 0) {
        pool_rate =
            (virtual_bw + seed_bw) / static_cast<double>(num_downloaders);
      }
      u.rate = std::min(tft + pool_rate, cfg_.download_bw);
      min_abort = std::min(min_abort, u.abort_time);
      if (u.rate > 0.0) min_tta = std::min(min_tta, u.remaining / u.rate);
    }

    if (std::getenv("BTMF_SIM_DEBUG") && t >= next_debug_) {
      next_debug_ += 250.0;
      double wasted = 0.0, delivered = 0.0;
      for (unsigned f = 0; f < cfg_.num_files; ++f) {
        if (downloaders_per_subtorrent_[f] == 0) wasted += pool_per_subtorrent_[f];
        else delivered += pool_per_subtorrent_[f];
      }
      std::size_t stage1 = 0, stageN = 0;
      for (const std::size_t ui : live_) {
        const User& u = users_[ui];
        if (u.state != UserState::kDownloading) continue;
        if (u.seq_pos == 0) ++stage1; else ++stageN;
      }
      std::fprintf(stderr,
                   "t=%.0f N=%zu stage1=%zu stageN=%zu vbw=%.3f sbw=%.3f "
                   "wasted=%.3f sub_n=[%zu %zu %zu %zu %zu]\n",
                   t, num_downloaders, stage1, stageN, virtual_bw, seed_bw,
                   wasted, downloaders_per_subtorrent_[0],
                   downloaders_per_subtorrent_[1],
                   downloaders_per_subtorrent_[2],
                   downloaders_per_subtorrent_[3],
                   downloaders_per_subtorrent_[4]);
    }

    const double seed_time =
        seed_queue_.empty() ? kInf : seed_queue_.top().time;
    const double t_next = std::min(
        {next_arrival, seed_time, t + min_tta, min_abort, next_adapt_tick,
         cfg_.horizon});
    const double dt = std::max(0.0, t_next - t);

    // --- advance state ---------------------------------------------------
    if (dt > 0.0) {
      for (const std::size_t ui : live_) {
        User& u = users_[ui];
        if (u.state != UserState::kDownloading) continue;
        u.remaining -= u.rate * dt;
        if (u.adaptive) {
          if (is_partial_seed(u)) {
            u.uploaded_virtual += (1.0 - u.rho) * mu * dt;
          }
          // Bandwidth received from *virtual* seeds specifically.
          if (local_pool) {
            const unsigned sub = u.files[u.seq_pos];
            const std::size_t n = downloaders_per_subtorrent_[sub];
            if (n > 0) {
              u.received_virtual += virtual_per_subtorrent_[sub] /
                                    static_cast<double>(n) * dt;
            }
          } else if (num_downloaders > 0) {
            u.received_virtual +=
                virtual_bw / static_cast<double>(num_downloaders) * dt;
          }
        }
      }
      const double stat_lo = std::max(t, cfg_.warmup);
      if (t_next > stat_lo) {
        stats_.observe_populations(down_pop_, seed_pop_, t_next - stat_lo);
      }
    }
    t = t_next;
    if (t >= cfg_.horizon) break;

    // --- dispatch --------------------------------------------------------
    stats_.record_event();
    if (t + kTimeEps >= next_arrival) {
      process_arrival(t);
      next_arrival = t + rng_.exponential(cfg_.visit_rate);
    }
    while (!seed_queue_.empty() &&
           seed_queue_.top().time <= t + kTimeEps) {
      const std::size_t ui = seed_queue_.top().user;
      seed_queue_.pop();
      process_seed_departure(ui, t);
    }
    if (t + kTimeEps >= next_adapt_tick) {
      adapt_tick(t);
      next_adapt_tick += cfg_.adapt.period;
    }
    for (std::size_t li = 0; li < live_.size();) {
      const std::size_t ui = live_[li];
      User& u = users_[ui];
      if (u.state == UserState::kDownloading) {
        if (u.remaining <= kCompletionEps * cfg_.file_size) {
          complete_file(ui, t);
        } else if (u.abort_time <= t + kTimeEps) {
          abort_user(ui, t);  // swaps another user into this slot
        }
      }
      const bool slot_replaced = li < live_.size() && live_[li] != ui;
      if (!slot_replaced) ++li;
    }
  }

  for (const std::size_t ui : live_) {
    if (users_[ui].sampled) stats_.record_censored();
  }

  SimResult result = stats_.finalize(
      std::max(0.0, cfg_.horizon - cfg_.warmup), total_arrivals_);
  // Populations are in users; Little gives the per-user sojourn, which we
  // normalise to per-file like every other metric.
  for (unsigned k = 0; k < cfg_.num_files; ++k) {
    const double files = static_cast<double>(k + 1);
    result.classes[k].little_download_time /= files;
    result.classes[k].little_online_time /= files;
  }
  return result;
}

}  // namespace

SimResult run_cmfsd_sim(const SimConfig& config) {
  Engine engine(config);
  return engine.run();
}

}  // namespace btmf::sim
