// CMFSD scheme policy: sequential stages with partial seeds (paper
// Sec. 3.5), cheaters, the Adapt rho controller (Sec. 4.3) and the three
// seed-pool modes.
//
// A downloader's rate is min(eta * mu * P + pool_share, download_bw),
// where P is 1 in the first stage and rho afterwards (the tit-for-tat
// share kept for downloading) and pool_share is its cut of the virtual +
// real seed bandwidth. Downloads sharing the pair (tit-for-tat rate,
// subtorrent) form one service group — a handful of groups even with
// Adapt, because rho only takes values reachable by the step sizes. Under
// the global pool the pools are maintained incrementally, so a rate epoch
// costs O(groups * log groups); the subtorrent-local modes re-derive the
// per-subtorrent pools from the live list each epoch (demand-aware donors
// re-target every epoch by definition, so their supply vector is
// inherently a per-epoch quantity) while still scheduling completions
// through the groups.
//
// Adapt bookkeeping is lazy too: the kernel-wide integral of
// virtual_bw / n (the bandwidth an always-on downloader would have
// received from virtual seeds) is advanced at pool epochs, and each
// adaptive peer stores marks into it; uploads follow from (1 - rho) * mu
// times elapsed partial-seed time. Per-peer state is only touched at
// stage transitions and Adapt ticks, exactly like the pre-refactor
// engine's accumulate-then-reset cadence.
#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "btmf/sim/policies.h"

namespace btmf::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class CmfsdPolicy final : public SchemePolicy {
 public:
  void attach(EventKernel& kernel) override {
    SchemePolicy::attach(kernel);
    const SimConfig& cfg = kernel.cfg();
    num_files_ = cfg.num_files;
    mu_ = cfg.fluid.mu;
    eta_ = cfg.fluid.eta;
    gamma_ = cfg.fluid.gamma;
    download_bw_ = cfg.download_bw;
    file_size_ = cfg.file_size;
    fixed_rho_ = cfg.rho;
    cheater_fraction_ = cfg.cheater_fraction;
    adapt_ = cfg.adapt;
    warmup_ = cfg.warmup;
    local_pool_ = cfg.seed_pool != SeedPoolMode::kGlobal;
    demand_aware_ = cfg.seed_pool == SeedPoolMode::kSubtorrentDemandAware;
    next_adapt_ = adapt_.enabled ? adapt_.period : kInf;

    virtual_bw_ = seed_bw_ = 0.0;
    num_downloaders_ = 0;
    pools_dirty_ = false;
    pool_per_sub_.assign(num_files_, 0.0);
    virtual_per_sub_.assign(num_files_, 0.0);
    downloaders_per_sub_.assign(num_files_, 0);
    vint_acc_ = vint_rate_ = vint_last_ = 0.0;
    wint_acc_.assign(num_files_, 0.0);
    wint_rate_.assign(num_files_, 0.0);
    wint_last_ = 0.0;
    group_of_.clear();
    group_key_.clear();

    metrics_ = kernel.obs().metrics;
    trace_ = kernel.obs().trace;
    if (metrics_ != nullptr) {
      pool_rebuilds_id_ = metrics_->counter("sim.cmfsd.pool_rebuilds");
      adapt_ticks_id_ = metrics_->counter("sim.cmfsd.adapt_ticks");
      rho_moves_id_ = metrics_->counter("sim.cmfsd.rho_moves");
    }
  }

  void on_arrival(std::size_t ui, double t) override {
    SimUser u = kernel_->user(ui);
    kernel_->rng().shuffle(u.files);
    u.seq_pos = 0;
    if (u.cls > 1 && cheater_fraction_ > 0.0 &&
        kernel_->rng().bernoulli(cheater_fraction_)) {
      u.cheater = true;
      u.rho = 1.0;
    } else if (adapt_.enabled) {
      u.adaptive = true;
      u.rho = adapt_.initial_rho;
    } else {
      u.rho = fixed_rho_;
    }
    kernel_->down_pop()[u.cls - 1] += 1.0;
    kernel_->add_active_peers(1);
    ++num_downloaders_;
    start_stage(ui, t);
    u.rv_base = 0.0;
    u.rv_mark = recv_integral(u, t);
    pools_dirty_ = true;
  }

  void refresh_rates(double t) override {
    if (!pools_dirty_) return;
    if (!local_pool_) {
      // Swap the slope of the received-from-virtual-seeds integral before
      // the pool changes take effect at t.
      vint_acc_ += vint_rate_ * (t - vint_last_);
      vint_last_ = t;
      // Physical bandwidths all carry the degradation scale; the pool
      // accumulators stay unscaled and the scale applies at the end.
      vint_rate_ =
          num_downloaders_ > 0
              ? bw_scale_ * virtual_bw_ / static_cast<double>(num_downloaders_)
              : 0.0;
      const double pool =
          num_downloaders_ > 0
              ? (virtual_bw_ + seed_bw_) /
                    static_cast<double>(num_downloaders_)
              : 0.0;
      for (std::size_t gid = 0; gid < group_key_.size(); ++gid) {
        kernel_->set_group_rate(
            gid,
            bw_scale_ * std::min(group_key_[gid].first + pool, download_bw_),
            t);
      }
    } else {
      if (metrics_ != nullptr) metrics_->add(pool_rebuilds_id_);
      refresh_local_pools(t);
    }
    pools_dirty_ = false;
  }

  void on_complete(std::size_t ui, unsigned /*slot*/, double t) override {
    SimUser u = kernel_->user(ui);
    u.download_accum += t - u.stage_start;
    const bool was_partial = u.seq_pos > 0;
    if (u.adaptive) sync_received(u, t);  // before the subtorrent changes
    u.done[u.seq_pos] = 1;  // stage s downloaded file u.files[s]
    ++u.seq_pos;
    if (u.seq_pos < u.cls) {
      if (!was_partial) {
        // First stage done: the peer starts donating (1 - rho) * mu.
        virtual_bw_ += (1.0 - u.rho) * mu_;
        u.up_base = 0.0;
        u.up_mark = t;
      }
      // Serve a uniformly random completed file for the coming stage.
      u.vseed_target =
          u.files[kernel_->rng().index(u.seq_pos)];
      start_stage(ui, t);
      if (u.adaptive) u.rv_mark = recv_integral(u, t);
    } else {
      // Last file done: become a real seed for one Exp(gamma) residence.
      if (was_partial) virtual_bw_ -= (1.0 - u.rho) * mu_;
      --num_downloaders_;
      seed_bw_ += mu_;
      u.state[0] = SlotState::kSeeding;
      kernel_->down_pop()[u.cls - 1] -= 1.0;
      kernel_->seed_pop()[u.cls - 1] += 1.0;
      kernel_->schedule_seed_departure(
          ui, 0, t + kernel_->rng().exponential(gamma_));
    }
    pools_dirty_ = true;
  }

  void on_abort(std::size_t ui, unsigned /*slot*/, double t) override {
    SimUser u = kernel_->user(ui);
    kernel_->end_service(ui, 0);
    if (u.seq_pos > 0) virtual_bw_ -= (1.0 - u.rho) * mu_;
    --num_downloaders_;
    u.state[0] = SlotState::kIdle;
    u.aborted = true;
    kernel_->down_pop()[u.cls - 1] -= 1.0;
    kernel_->remove_active_peers(1);
    kernel_->retire_user(ui, t, u.download_accum, u.rho, false);
    pools_dirty_ = true;
  }

  void on_seed_departure(std::size_t ui, unsigned /*file_idx*/,
                         double t) override {
    SimUser u = kernel_->user(ui);
    seed_bw_ -= mu_;
    u.state[0] = SlotState::kIdle;
    kernel_->seed_pop()[u.cls - 1] -= 1.0;
    kernel_->remove_active_peers(1);
    kernel_->retire_user(ui, t, u.download_accum, u.rho,
                         u.adaptive && u.cls > 1);
    pools_dirty_ = true;
  }

  [[nodiscard]] double next_policy_event_time() const override {
    return next_adapt_;
  }

  void on_policy_event(double t) override {
    adapt_tick(t);
    next_adapt_ += adapt_.period;
  }

  void on_fault_crash(std::size_t ui, double t) override {
    (void)t;
    SimUser u = kernel_->user(ui);
    if (u.state[0] == SlotState::kDownloading) {
      kernel_->end_service(ui, 0);
      if (u.seq_pos > 0) virtual_bw_ -= (1.0 - u.rho) * mu_;
      --num_downloaders_;
      kernel_->down_pop()[u.cls - 1] -= 1.0;
      kernel_->remove_active_peers(1);
    } else if (u.state[0] == SlotState::kSeeding) {
      seed_bw_ -= mu_;
      kernel_->seed_pop()[u.cls - 1] -= 1.0;
      kernel_->remove_active_peers(1);
    }
    u.state[0] = SlotState::kIdle;
    pools_dirty_ = true;
  }

  void on_fault_bandwidth(double scale, double t) override {
    // The lazily-accumulated Adapt quantities elapsed at the old scale;
    // fold them before swapping it.
    vint_acc_ += vint_rate_ * (t - vint_last_);
    vint_last_ = t;
    for (unsigned s = 0; s < num_files_; ++s) {
      wint_acc_[s] += wint_rate_[s] * (t - wint_last_);
    }
    wint_last_ = t;
    for (const std::size_t ui : kernel_->live()) {
      SimUser u = kernel_->user(ui);
      if (u.adaptive && u.state[0] == SlotState::kDownloading &&
          u.seq_pos > 0) {
        u.up_base += (1.0 - u.rho) * mu_ * bw_scale_ * (t - u.up_mark);
        u.up_mark = t;
      }
    }
    bw_scale_ = scale;
    pools_dirty_ = true;
  }

  void audit(double /*t*/) override {
    const auto fail = [](const std::string& why) {
      throw AuditError("CMFSD audit failed: " + why);
    };
    constexpr double kTol = 1e-6;
    double virtual_bw = 0.0;
    double seed_bw = 0.0;
    std::size_t downloaders = 0;
    std::vector<double> down(num_files_, 0.0);
    std::vector<double> seeds(num_files_, 0.0);
    for (const std::size_t ui : kernel_->live()) {
      const SimUser u = kernel_->user(ui);
      if (u.state[0] == SlotState::kDownloading) {
        if (u.seq_pos >= u.cls) fail("downloading user past its last stage");
        ++downloaders;
        down[u.cls - 1] += 1.0;
        if (u.seq_pos > 0) virtual_bw += (1.0 - u.rho) * mu_;
      } else if (u.state[0] == SlotState::kSeeding) {
        seed_bw += mu_;
        seeds[u.cls - 1] += 1.0;
      } else {
        fail("live user with an idle slot");
      }
    }
    if (downloaders != num_downloaders_) {
      fail("downloader count diverged from the live list");
    }
    if (std::abs(virtual_bw - virtual_bw_) > kTol) {
      fail("virtual-seed pool diverged from the partial seeds");
    }
    if (std::abs(seed_bw - seed_bw_) > kTol) {
      fail("real-seed pool diverged from the seeding users");
    }
    for (unsigned k = 0; k < num_files_; ++k) {
      if (std::abs(down[k] - kernel_->down_pop()[k]) > kTol) {
        fail("downloader population of class " + std::to_string(k + 1) +
             " diverged from the live list");
      }
      if (std::abs(seeds[k] - kernel_->seed_pop()[k]) > kTol) {
        fail("seed population of class " + std::to_string(k + 1) +
             " diverged from the live list");
      }
    }
  }

  [[nodiscard]] double little_divisor(double files) const override {
    return files;
  }

 private:
  [[nodiscard]] unsigned current_sub(const SimUser& u) const {
    return u.files[u.seq_pos];
  }
  /// P(i, j) of the fluid model: full tit-for-tat in the first stage,
  /// rho afterwards.
  [[nodiscard]] double tft_rate(const SimUser& u) const {
    return eta_ * mu_ * (u.seq_pos == 0 ? 1.0 : u.rho);
  }

  std::size_t group_for(double tft, unsigned sub, double t) {
    const auto it = group_of_.find({tft, sub});
    if (it != group_of_.end()) return it->second;
    const std::size_t gid = kernel_->new_group(t);
    group_key_.emplace_back(tft, sub);
    group_of_.emplace(std::make_pair(tft, sub), gid);
    // The rate is set by the next refresh_rates: every membership or pool
    // change marks the pools dirty before the next event-time decision.
    return gid;
  }

  void start_stage(std::size_t ui, double t) {
    SimUser u = kernel_->user(ui);
    const unsigned sub = local_pool_ ? current_sub(u) : 0;
    kernel_->begin_service(ui, 0, group_for(tft_rate(u), sub, t),
                           file_size_, t);
    kernel_->arm_abort(ui, 0, t);
    u.stage_start = t;
  }

  /// Integral of the virtual-seed bandwidth a downloader of u's current
  /// subtorrent received per unit time, up to t.
  [[nodiscard]] double recv_integral(const SimUser& u, double t) const {
    if (!local_pool_) return vint_acc_ + vint_rate_ * (t - vint_last_);
    const unsigned sub = current_sub(u);
    return wint_acc_[sub] + wint_rate_[sub] * (t - wint_last_);
  }

  /// Folds the elapsed received-virtual bandwidth into rv_base; call
  /// before u's subtorrent (and hence reference integral) changes.
  void sync_received(SimUser& u, double t) const {
    const double now = recv_integral(u, t);
    u.rv_base += now - u.rv_mark;
    u.rv_mark = now;
  }

  /// Per-epoch rebuild of the subtorrent pools (both local modes), the
  /// literal port of the pre-refactor engine's epoch pass: demand counts
  /// first so demand-aware donors can re-target, then supply.
  void refresh_local_pools(double t) {
    for (unsigned s = 0; s < num_files_; ++s) {
      wint_acc_[s] += wint_rate_[s] * (t - wint_last_);
    }
    wint_last_ = t;
    std::fill(pool_per_sub_.begin(), pool_per_sub_.end(), 0.0);
    std::fill(virtual_per_sub_.begin(), virtual_per_sub_.end(), 0.0);
    std::fill(downloaders_per_sub_.begin(), downloaders_per_sub_.end(),
              std::size_t{0});
    for (const std::size_t ui : kernel_->live()) {
      const SimUser u = kernel_->user(ui);
      if (u.state[0] == SlotState::kDownloading) {
        ++downloaders_per_sub_[current_sub(u)];
      }
    }
    for (const std::size_t ui : kernel_->live()) {
      SimUser u = kernel_->user(ui);
      if (u.state[0] == SlotState::kDownloading) {
        if (u.seq_pos == 0) continue;
        const double donated = (1.0 - u.rho) * mu_;
        if (demand_aware_) {
          // Re-target the completed subtorrent with the most downloaders
          // right now.
          unsigned best = u.files[0];
          std::size_t best_count = downloaders_per_sub_[best];
          for (unsigned c = 1; c < u.seq_pos; ++c) {
            const unsigned f = u.files[c];
            if (downloaders_per_sub_[f] > best_count) {
              best = f;
              best_count = downloaders_per_sub_[f];
            }
          }
          u.vseed_target = best;
        }
        pool_per_sub_[u.vseed_target] += donated;
        virtual_per_sub_[u.vseed_target] += donated;
      } else if (u.state[0] == SlotState::kSeeding) {
        // A real seed splits its bandwidth across the files it holds.
        const double per_file = mu_ / static_cast<double>(u.cls);
        for (const unsigned f : u.files) pool_per_sub_[f] += per_file;
      }
    }
    for (unsigned s = 0; s < num_files_; ++s) {
      wint_rate_[s] =
          downloaders_per_sub_[s] > 0
              ? bw_scale_ * virtual_per_sub_[s] /
                    static_cast<double>(downloaders_per_sub_[s])
              : 0.0;
    }
    for (std::size_t gid = 0; gid < group_key_.size(); ++gid) {
      const auto& [tft, sub] = group_key_[gid];
      const double pool =
          downloaders_per_sub_[sub] > 0
              ? pool_per_sub_[sub] /
                    static_cast<double>(downloaders_per_sub_[sub])
              : 0.0;
      kernel_->set_group_rate(
          gid, bw_scale_ * std::min(tft + pool, download_bw_), t);
    }
  }

  void adapt_tick(double t) {
    std::optional<obs::TraceWriter::Span> span;
    if (trace_ != nullptr) span.emplace(trace_->span("cmfsd.adapt_tick"));
    if (metrics_ != nullptr) metrics_->add(adapt_ticks_id_);
    double rho_sum = 0.0;
    std::size_t rho_count = 0;
    for (const std::size_t ui : kernel_->live()) {
      SimUser u = kernel_->user(ui);
      if (!u.adaptive || u.cls <= 1) continue;
      const bool downloading = u.state[0] == SlotState::kDownloading;
      if (downloading) {
        rho_sum += u.rho;
        ++rho_count;
      }
      if (!downloading || u.seq_pos == 0) continue;  // partial seeds only
      const double uploaded =
          u.up_base + (1.0 - u.rho) * mu_ * bw_scale_ * (t - u.up_mark);
      const double received = u.rv_base + recv_integral(u, t) - u.rv_mark;
      const double delta = (uploaded - received) / adapt_.period;
      u.up_base = 0.0;
      u.up_mark = t;
      u.rv_base = 0.0;
      u.rv_mark = recv_integral(u, t);
      const double old_rho = u.rho;
      if (delta > adapt_.phi_hi) {
        ++u.hi_streak;
        u.lo_streak = 0;
        if (u.hi_streak >= adapt_.consecutive) {
          u.rho = std::min(1.0, u.rho + adapt_.step_up);
          u.hi_streak = 0;
        }
      } else if (delta < adapt_.phi_lo) {
        ++u.lo_streak;
        u.hi_streak = 0;
        if (u.lo_streak >= adapt_.consecutive) {
          u.rho = std::max(0.0, u.rho - adapt_.step_down);
          u.lo_streak = 0;
        }
      } else {
        u.hi_streak = 0;
        u.lo_streak = 0;
      }
      if (u.rho != old_rho) {
        if (metrics_ != nullptr) metrics_->add(rho_moves_id_);
        virtual_bw_ += (old_rho - u.rho) * mu_;
        // The tit-for-tat share of the in-flight stage changed: move the
        // download to the (new rate, subtorrent) group, preserving its
        // progress and abort clock.
        const double left = kernel_->remaining_work(ui, 0, t);
        const unsigned sub = local_pool_ ? current_sub(u) : 0;
        kernel_->move_service(ui, 0, group_for(tft_rate(u), sub, t), left,
                              t);
        pools_dirty_ = true;
      }
    }
    if (rho_count > 0 && t >= warmup_) {
      kernel_->stats().record_rho_sample(
          t, rho_sum / static_cast<double>(rho_count));
    }
  }

  unsigned num_files_ = 0;
  double mu_ = 0.0, eta_ = 0.0, gamma_ = 0.0;
  double download_bw_ = 0.0, file_size_ = 0.0;
  double fixed_rho_ = 0.0, cheater_fraction_ = 0.0;
  AdaptConfig adapt_{};
  double warmup_ = 0.0;
  bool local_pool_ = false;
  bool demand_aware_ = false;
  double next_adapt_ = kInf;
  double bw_scale_ = 1.0;  ///< bandwidth-degradation multiplier on mu and c

  // Global pools, maintained incrementally.
  double virtual_bw_ = 0.0;   ///< sum (1 - rho) * mu over partial seeds
  double seed_bw_ = 0.0;      ///< sum mu over real seeds
  std::size_t num_downloaders_ = 0;
  bool pools_dirty_ = false;

  // Subtorrent pools (local modes), rebuilt per epoch.
  std::vector<double> pool_per_sub_;
  std::vector<double> virtual_per_sub_;
  std::vector<std::size_t> downloaders_per_sub_;

  // Received-from-virtual-seeds integrals for Adapt.
  double vint_acc_ = 0.0, vint_rate_ = 0.0, vint_last_ = 0.0;
  std::vector<double> wint_acc_, wint_rate_;
  double wint_last_ = 0.0;

  // (tit-for-tat rate, subtorrent) -> service group.
  std::map<std::pair<double, unsigned>, std::size_t> group_of_;
  std::vector<std::pair<double, unsigned>> group_key_;

  // Telemetry (null = inert).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceWriter* trace_ = nullptr;
  obs::MetricId pool_rebuilds_id_ = 0;
  obs::MetricId adapt_ticks_id_ = 0;
  obs::MetricId rho_moves_id_ = 0;
};

}  // namespace

std::unique_ptr<SchemePolicy> make_cmfsd_policy() {
  return std::make_unique<CmfsdPolicy>();
}

}  // namespace btmf::sim
