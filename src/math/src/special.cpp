#include "btmf/math/special.h"

#include <cmath>

#include "btmf/util/check.h"

namespace btmf::math {

double log_binomial_coefficient(unsigned n, unsigned k) {
  BTMF_CHECK_MSG(k <= n, "binomial coefficient needs k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_coefficient(unsigned n, unsigned k) {
  return std::round(std::exp(log_binomial_coefficient(n, k)));
}

double binomial_pmf(unsigned n, unsigned k, double p) {
  BTMF_CHECK_MSG(k <= n, "binomial_pmf needs k <= n");
  BTMF_CHECK_MSG(p >= 0.0 && p <= 1.0, "binomial_pmf needs p in [0, 1]");
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_binomial_coefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

std::vector<double> binomial_pmf_vector(unsigned n, double p) {
  std::vector<double> pmf(n + 1);
  for (unsigned k = 0; k <= n; ++k) pmf[k] = binomial_pmf(n, k, p);
  return pmf;
}

std::vector<double> poisson_binomial_pmf_vector(
    std::span<const double> probs) {
  for (const double q : probs) {
    BTMF_CHECK_MSG(q >= 0.0 && q <= 1.0,
                   "Poisson-binomial probabilities must lie in [0, 1]");
  }
  std::vector<double> pmf(probs.size() + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t count = 0;
  for (const double q : probs) {
    ++count;
    // Convolve with Bernoulli(q), updating in place from the top.
    for (std::size_t k = count; k-- > 0;) {
      pmf[k + 1] += pmf[k] * q;
      pmf[k] *= 1.0 - q;
    }
  }
  return pmf;
}

}  // namespace btmf::math
