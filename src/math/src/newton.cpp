#include "btmf/math/newton.h"

#include <algorithm>
#include <cmath>

#include "btmf/math/vec.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::math {

Matrix numerical_jacobian(const VectorField& f, std::span<const double> x,
                          double eps_rel) {
  const std::size_t n = x.size();
  BTMF_CHECK_MSG(n > 0, "numerical_jacobian: empty state");
  std::vector<double> x_pert(x.begin(), x.end());
  std::vector<double> f0(n), f1(n);
  f(x, f0);

  Matrix jac(n, n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    const double h = eps_rel * std::max(std::abs(x[c]), 1.0);
    x_pert[c] = x[c] + h;
    f(x_pert, f1);
    x_pert[c] = x[c];
    const double inv_h = 1.0 / h;
    for (std::size_t r = 0; r < n; ++r) {
      jac(r, c) = (f1[r] - f0[r]) * inv_h;
    }
  }
  return jac;
}

NewtonResult newton_solve(const VectorField& f, std::vector<double> x0,
                          const NewtonOptions& options) {
  const std::size_t n = x0.size();
  BTMF_CHECK_MSG(n > 0, "newton_solve: empty state");

  NewtonResult result;
  result.x = std::move(x0);
  std::vector<double> fx(n), trial(n), f_trial(n);

  f(result.x, fx);
  result.residual_inf = norm_inf(fx);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (result.residual_inf <= options.tol) {
      result.converged = true;
      return result;
    }
    const Matrix jac =
        numerical_jacobian(f, result.x, options.jacobian_eps);
    const LuDecomposition lu(jac);
    // Newton step solves J d = -F.
    std::vector<double> neg_f(fx);
    scale(-1.0, neg_f);
    const std::vector<double> step = lu.solve(neg_f);

    double damping = 1.0;
    double trial_residual = result.residual_inf;
    bool improved = false;
    while (damping >= options.min_damping) {
      for (std::size_t i = 0; i < n; ++i) {
        trial[i] = result.x[i] + damping * step[i];
      }
      if (options.project) options.project(trial);
      f(trial, f_trial);
      trial_residual = norm_inf(f_trial);
      if (std::isfinite(trial_residual) &&
          trial_residual < result.residual_inf) {
        improved = true;
        break;
      }
      damping *= 0.5;
    }
    if (!improved) {
      // Stalled: report the best point found without claiming convergence.
      result.iterations = iter + 1;
      return result;
    }
    result.x = trial;
    fx = f_trial;
    result.residual_inf = trial_residual;
    result.iterations = iter + 1;
  }
  result.converged = result.residual_inf <= options.tol;
  return result;
}

}  // namespace btmf::math
