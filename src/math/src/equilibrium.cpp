#include "btmf/math/equilibrium.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "btmf/math/vec.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::math {

namespace {

double scaled_residual(const OdeRhs& rhs, const std::vector<double>& y) {
  std::vector<double> f(y.size());
  rhs(0.0, y, f);
  return norm_inf(f) / (1.0 + norm_inf(y));
}

}  // namespace

EquilibriumResult find_equilibrium(const OdeRhs& rhs, std::vector<double> y0,
                                   const EquilibriumOptions& options) {
  BTMF_CHECK_MSG(!y0.empty(), "find_equilibrium: empty state");
  BTMF_CHECK_MSG(options.residual_tol > 0.0,
                 "find_equilibrium: residual_tol must be positive");

  EquilibriumResult result;
  result.y = std::move(y0);

  AdaptiveOptions ode = options.ode;
  ode.clamp_nonnegative = options.clamp_nonnegative;
  if (options.trace != nullptr) ode.trace = options.trace;

  // Escalation ladder: rung 0 is the caller's configured strategy; if the
  // residual misses the tolerance, rungs 1 and 2 retry with more transient
  // time and a Newton polish allowed to damp its steps much deeper (the
  // step-halving line search is Newton's bisection fallback: each halving
  // bisects the segment towards the current iterate). Every rung records
  // its diagnostics, and only once the whole ladder is exhausted does the
  // failure surface as a SolverError carrying them.
  constexpr int kMaxRungs = 3;
  std::ostringstream diag;
  double chunk = options.chunk_time;
  double t = 0.0;

  for (int rung = 0; rung < kMaxRungs; ++rung) {
    std::optional<obs::TraceWriter::Span> rung_span;
    if (options.trace != nullptr) {
      rung_span.emplace(options.trace->span("equilibrium.rung"));
      rung_span->set_args("{\"rung\": " + std::to_string(rung) + "}");
    }
    const std::size_t budget = rung == 0 ? options.max_chunks : 8;
    for (std::size_t c = 0; c < budget; ++c) {
      result.residual_inf = scaled_residual(rhs, result.y);
      if (result.residual_inf <= options.residual_tol) break;
      AdaptiveResult step =
          integrate_dopri5(rhs, std::move(result.y), t, t + chunk, ode);
      result.y = std::move(step.y);
      t += chunk;
      chunk *= options.chunk_growth;
      ++result.chunks;
    }
    result.integrated_time = t;
    result.residual_inf = scaled_residual(rhs, result.y);
    diag << (rung == 0 ? "" : "; ") << "rung " << rung << ": transient to t="
         << result.integrated_time << " residual " << result.residual_inf;

    if (options.polish_with_newton) {
      // The autonomous field as a VectorField for Newton.
      const VectorField field = [&rhs](std::span<const double> x,
                                       std::span<double> out) {
        rhs(0.0, x, out);
      };
      NewtonOptions newton;
      newton.tol = options.residual_tol * 1e-3;
      // Deeper rungs may halve the step far below the default floor
      // before declaring the direction useless.
      newton.min_damping =
          rung == 0 ? 1.0 / 1024.0 : 1.0 / (1024.0 * 1024.0);
      if (options.clamp_nonnegative) {
        newton.project = [](std::span<double> x) { clamp_nonnegative(x); };
      }
      std::optional<obs::TraceWriter::Span> newton_span;
      if (options.trace != nullptr) {
        newton_span.emplace(options.trace->span("equilibrium.newton"));
      }
      NewtonResult polished = newton_solve(field, result.y, newton);
      if (newton_span.has_value()) {
        newton_span->set_args(
            "{\"iterations\": " + std::to_string(polished.iterations) +
            ", \"converged\": " + (polished.converged ? "true" : "false") +
            "}");
        newton_span.reset();
      }
      diag << ", newton " << polished.iterations << " iters "
           << (polished.converged ? "converged" : "stalled") << " at "
           << polished.residual_inf;
      // Accept the polish only if it genuinely improved the residual.
      const double polished_scaled =
          polished.residual_inf / (1.0 + norm_inf(polished.x));
      if (polished_scaled < result.residual_inf) {
        result.y = std::move(polished.x);
        result.residual_inf = polished_scaled;
        result.newton_converged = polished.converged;
      }
    }
    if (result.residual_inf <= options.residual_tol) break;
  }

  if (result.residual_inf > options.residual_tol) {
    throw SolverError(
        "find_equilibrium: residual " + std::to_string(result.residual_inf) +
        " did not reach tolerance " + std::to_string(options.residual_tol) +
        " after t = " + std::to_string(result.integrated_time) + " and " +
        std::to_string(result.chunks) +
        " chunks — the parameter set is likely outside the model's "
        "stability region (arrival rate exceeding service capacity). "
        "Ladder diagnostics: " +
        diag.str());
  }
  return result;
}

}  // namespace btmf::math
