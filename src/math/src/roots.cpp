#include "btmf/math/roots.h"

#include <algorithm>
#include <cmath>

#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::math {

namespace {

void require_bracket(double fa, double fb) {
  if (std::isnan(fa) || std::isnan(fb)) {
    throw SolverError("root finding: f evaluated to NaN at a bracket end");
  }
  if (fa * fb > 0.0) {
    throw SolverError("root finding: [a, b] does not bracket a root");
  }
}

}  // namespace

double bisect_root(const ScalarFn& f, double a, double b,
                   const RootOptions& options) {
  BTMF_CHECK_MSG(a < b, "bisect_root: need a < b");
  double fa = f(a);
  double fb = f(b);
  require_bracket(fa, fb);
  if (std::abs(fa) <= options.f_tol) return a;
  if (std::abs(fb) <= options.f_tol) return b;

  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    const double mid = 0.5 * (a + b);
    const double fm = f(mid);
    if (std::abs(fm) <= options.f_tol || (b - a) * 0.5 <= options.x_tol) {
      return mid;
    }
    if (fa * fm < 0.0) {
      b = mid;
      fb = fm;
    } else {
      a = mid;
      fa = fm;
    }
  }
  return 0.5 * (a + b);
}

double brent_root(const ScalarFn& f, double a, double b,
                  const RootOptions& options) {
  BTMF_CHECK_MSG(a < b, "brent_root: need a < b");
  double fa = f(a);
  double fb = f(b);
  require_bracket(fa, fb);
  if (std::abs(fa) <= options.f_tol) return a;
  if (std::abs(fb) <= options.f_tol) return b;

  // Brent (1973), following the classic zeroin structure.
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a;
  double fc = fa;
  bool used_bisection = true;
  double d = 0.0;  // step before last

  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double lo = (3.0 * a + b) / 4.0;
    const bool out_of_range = (s < std::min(lo, b) || s > std::max(lo, b));
    const bool slow_progress =
        (used_bisection && std::abs(s - b) >= std::abs(b - c) / 2.0) ||
        (!used_bisection && std::abs(s - b) >= std::abs(c - d) / 2.0);
    if (out_of_range || slow_progress) {
      s = 0.5 * (a + b);
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (std::abs(fb) <= options.f_tol || std::abs(b - a) <= options.x_tol) {
      return b;
    }
  }
  return b;
}

}  // namespace btmf::math
