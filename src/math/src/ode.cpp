#include "btmf/math/ode.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <sstream>

#include "btmf/math/vec.h"
#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::math {

namespace {

// Dormand–Prince 5(4) Butcher tableau (Dormand & Prince, 1980).
constexpr double kC[7] = {0.0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1.0, 1.0};
constexpr double kA[7][6] = {
    {},
    {1.0 / 5},
    {3.0 / 40, 9.0 / 40},
    {44.0 / 45, -56.0 / 15, 32.0 / 9},
    {19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
    {9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
    {35.0 / 384, 0.0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
};
// 5th-order solution weights (same as the 7th stage row: FSAL property).
constexpr double kB5[7] = {35.0 / 384,      0.0,         500.0 / 1113,
                           125.0 / 192,     -2187.0 / 6784, 11.0 / 84,
                           0.0};
// Embedded 4th-order weights.
constexpr double kB4[7] = {5179.0 / 57600,  0.0,          7571.0 / 16695,
                           393.0 / 640,     -92097.0 / 339200,
                           187.0 / 2100,    1.0 / 40};

}  // namespace

void euler_step(const OdeRhs& rhs, double t, double dt,
                std::span<const double> y, std::span<double> y_out) {
  const std::size_t n = y.size();
  std::vector<double> k(n);
  rhs(t, y, k);
  for (std::size_t i = 0; i < n; ++i) y_out[i] = y[i] + dt * k[i];
}

void heun_step(const OdeRhs& rhs, double t, double dt,
               std::span<const double> y, std::span<double> y_out) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), mid(n);
  rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) mid[i] = y[i] + dt * k1[i];
  rhs(t + dt, mid, k2);
  for (std::size_t i = 0; i < n; ++i)
    y_out[i] = y[i] + 0.5 * dt * (k1[i] + k2[i]);
}

void rk4_step(const OdeRhs& rhs, double t, double dt,
              std::span<const double> y, std::span<double> y_out) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  rhs(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  rhs(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  rhs(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  rhs(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y_out[i] = y[i] + (dt / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

std::vector<double> integrate_fixed(const OdeRhs& rhs, std::vector<double> y0,
                                    double t0, double t1, double dt,
                                    FixedStepMethod method,
                                    const OdeObserver& observer) {
  BTMF_CHECK_MSG(dt > 0.0, "integrate_fixed: dt must be positive");
  BTMF_CHECK_MSG(t1 >= t0, "integrate_fixed: t1 must be >= t0");
  std::vector<double> y = std::move(y0);
  std::vector<double> next(y.size());
  double t = t0;
  while (t < t1) {
    const double step = std::min(dt, t1 - t);
    switch (method) {
      case FixedStepMethod::kEuler:
        euler_step(rhs, t, step, y, next);
        break;
      case FixedStepMethod::kHeun:
        heun_step(rhs, t, step, y, next);
        break;
      case FixedStepMethod::kRk4:
        rk4_step(rhs, t, step, y, next);
        break;
    }
    y.swap(next);
    t += step;
    if (observer) observer(t, y);
  }
  return y;
}

AdaptiveResult integrate_dopri5(const OdeRhs& rhs, std::vector<double> y0,
                                double t0, double t1,
                                const AdaptiveOptions& options,
                                const OdeObserver& observer) {
  BTMF_CHECK_MSG(t1 >= t0, "integrate_dopri5: t1 must be >= t0");
  BTMF_CHECK_MSG(options.rtol > 0.0 && options.atol > 0.0,
                 "integrate_dopri5: tolerances must be positive");

  const std::size_t n = y0.size();
  AdaptiveResult result;
  result.y = std::move(y0);
  result.t = t0;
  if (t1 == t0 || n == 0) return result;

  std::optional<obs::TraceWriter::Span> span;
  if (options.trace != nullptr) {
    span.emplace(options.trace->span("ode.integrate"));
  }

  const double span_t = t1 - t0;
  double dt = options.initial_dt > 0.0 ? options.initial_dt : span_t / 100.0;
  const double max_dt = options.max_dt > 0.0 ? options.max_dt : span_t;
  dt = std::min(dt, max_dt);
  const double min_dt = span_t * 1e-14;

  std::vector<std::vector<double>> k(7, std::vector<double>(n));
  std::vector<double> y_stage(n), y5(n), err(n);

  // FSAL: stage 0 of the next step reuses stage 6 of the accepted step.
  rhs(result.t, result.y, k[0]);

  while (result.t < t1) {
    dt = std::min(dt, t1 - result.t);
    if (dt < min_dt) {
      throw SolverError("dopri5: step size underflow at t = " +
                        std::to_string(result.t));
    }

    for (std::size_t s = 1; s < 7; ++s) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = result.y[i];
        for (std::size_t j = 0; j < s; ++j) acc += dt * kA[s][j] * k[j][i];
        y_stage[i] = acc;
      }
      rhs(result.t + kC[s] * dt, y_stage, k[s]);
    }

    for (std::size_t i = 0; i < n; ++i) {
      double acc5 = 0.0;
      double acc4 = 0.0;
      for (std::size_t s = 0; s < 7; ++s) {
        acc5 += kB5[s] * k[s][i];
        acc4 += kB4[s] * k[s][i];
      }
      y5[i] = result.y[i] + dt * acc5;
      err[i] = dt * (acc5 - acc4);
    }

    const double err_norm =
        all_finite(y5) ? wrms_norm(err, result.y, options.atol, options.rtol)
                       : std::numeric_limits<double>::infinity();

    if (err_norm <= 1.0) {
      result.t += dt;
      result.y = y5;
      if (options.clamp_nonnegative) clamp_nonnegative(result.y);
      ++result.accepted_steps;
      if (options.trace != nullptr && options.trace_steps) {
        std::ostringstream args;
        args << "{\"t\": " << result.t << ", \"dt\": " << dt << "}";
        options.trace->instant("ode.step", args.str());
      }
      if (observer) observer(result.t, result.y);
      // FSAL: k7 (== k[6]) evaluated at (t+dt, y5) is the next step's k1.
      // Clamping invalidates it, so re-evaluate in that case.
      if (options.clamp_nonnegative) {
        rhs(result.t, result.y, k[0]);
      } else {
        k[0].swap(k[6]);
      }
    } else {
      ++result.rejected_steps;
    }

    if (result.accepted_steps + result.rejected_steps > options.max_steps) {
      throw SolverError("dopri5: exceeded max_steps = " +
                        std::to_string(options.max_steps));
    }

    // Standard controller: dt *= 0.9 * err^(-1/5), limited to [0.2, 5] x.
    double factor = 5.0;
    if (err_norm > 0.0) {
      factor = 0.9 * std::pow(err_norm, -0.2);
      factor = std::clamp(factor, 0.2, 5.0);
    }
    dt = std::min(dt * factor, max_dt);
  }
  if (span.has_value()) {
    std::ostringstream args;
    args << "{\"t0\": " << t0 << ", \"t1\": " << t1
         << ", \"accepted\": " << result.accepted_steps
         << ", \"rejected\": " << result.rejected_steps << "}";
    span->set_args(args.str());
  }
  return result;
}

}  // namespace btmf::math
