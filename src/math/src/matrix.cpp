#include "btmf/math/matrix.h"

#include <algorithm>
#include <cmath>

#include "btmf/util/check.h"
#include "btmf/util/error.h"

namespace btmf::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  BTMF_CHECK_MSG(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  BTMF_CHECK_MSG(x.size() == cols_, "matrix-vector size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) s += row_ptr[c] * x[c];
    y[r] = s;
  }
  return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
  BTMF_CHECK_MSG(cols_ == other.rows_, "matrix-matrix size mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

LuDecomposition::LuDecomposition(Matrix a) : lu_(std::move(a)) {
  BTMF_CHECK_MSG(lu_.rows() == lu_.cols(), "LU needs a square matrix");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);

  // Crout-style in-place LU with partial pivoting (Golub & Van Loan 3.4).
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      throw SolverError("LU: matrix is singular at column " +
                        std::to_string(k));
    }
    pivots_[k] = pivot_row;
    if (pivot_row != k) {
      permutation_sign_ = -permutation_sign_;
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

std::vector<double> LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = lu_.rows();
  BTMF_CHECK_MSG(b.size() == n, "LU solve: rhs size mismatch");
  std::vector<double> x(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    if (pivots_[k] != k) std::swap(x[k], x[pivots_[k]]);
  }
  // Forward substitution (L has unit diagonal).
  for (std::size_t r = 1; r < n; ++r) {
    double s = x[r];
    for (std::size_t c = 0; c < r; ++c) s -= lu_(r, c) * x[c];
    x[r] = s;
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= lu_(ri, c) * x[c];
    x[ri] = s / lu_(ri, ri);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = static_cast<double>(permutation_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace btmf::math
