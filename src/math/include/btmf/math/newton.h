// Damped Newton's method for square nonlinear systems F(x) = 0 with a
// forward-difference numerical Jacobian.
//
// Used to polish fluid-model equilibria found by transient integration and
// as an independent route to the same fixed point (the two must agree —
// see tests/fluid/cmfsd_test.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "btmf/math/matrix.h"

namespace btmf::math {

/// F(x) written into `out` (same length as x).
using VectorField =
    std::function<void(std::span<const double> x, std::span<double> out)>;

struct NewtonOptions {
  double tol = 1e-10;          ///< stop when ||F(x)||_inf <= tol
  std::size_t max_iterations = 100;
  double jacobian_eps = 1e-7;  ///< relative FD perturbation
  double min_damping = 1.0 / 1024.0;
  /// Optional projection applied after each update (e.g. clamp populations
  /// to be non-negative). May be empty.
  std::function<void(std::span<double>)> project = {};
};

struct NewtonResult {
  std::vector<double> x;
  double residual_inf = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Numerical Jacobian of F at x via forward differences.
Matrix numerical_jacobian(const VectorField& f, std::span<const double> x,
                          double eps_rel = 1e-7);

/// Damped Newton: full step first, halving the step while the residual
/// does not decrease. Throws btmf::SolverError if the Jacobian is singular.
/// Non-convergence is reported via `converged = false`, not an exception,
/// so callers can fall back to longer transient integration.
NewtonResult newton_solve(const VectorField& f, std::vector<double> x0,
                          const NewtonOptions& options = {});

}  // namespace btmf::math
