// Combinatorial special functions for the binomial file-correlation model.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace btmf::math {

/// ln C(n, k); exact for the small n used here, stable via lgamma.
double log_binomial_coefficient(unsigned n, unsigned k);

/// C(n, k) as a double (exact for n <= 60 or so).
double binomial_coefficient(unsigned n, unsigned k);

/// Binomial pmf P[X = k], X ~ Bin(n, p). Handles p = 0 and p = 1 exactly.
double binomial_pmf(unsigned n, unsigned k, double p);

/// The whole pmf vector {P[X=0], ..., P[X=n]} — sums to 1 by construction.
std::vector<double> binomial_pmf_vector(unsigned n, double p);

/// Poisson-binomial pmf: X = sum of independent Bernoulli(probs[f]).
/// Returns {P[X=0], ..., P[X=n]} via the O(n^2) convolution DP; exact and
/// stable for the catalogue sizes used here. Equals the binomial pmf when
/// all probabilities coincide.
std::vector<double> poisson_binomial_pmf_vector(
    std::span<const double> probs);

}  // namespace btmf::math
