// Scalar root finding: bisection and Brent's method.
//
// Used by the analysis helpers (e.g. solving for the correlation p at
// which MTCD's average online time crosses a given threshold) and by the
// Adapt fixed-point characterisation.
#pragma once

#include <cstddef>
#include <functional>

namespace btmf::math {

using ScalarFn = std::function<double(double)>;

struct RootOptions {
  double x_tol = 1e-12;
  double f_tol = 1e-12;
  std::size_t max_iterations = 200;
};

/// Finds a root of f in [a, b]; f(a) and f(b) must have opposite signs
/// (throws btmf::SolverError otherwise). Brent's method: inverse quadratic
/// interpolation with bisection fallback.
double brent_root(const ScalarFn& f, double a, double b,
                  const RootOptions& options = {});

/// Plain bisection, as a reference implementation for testing Brent.
double bisect_root(const ScalarFn& f, double a, double b,
                   const RootOptions& options = {});

}  // namespace btmf::math
