// Streaming sample statistics (Welford) with normal-approximation
// confidence intervals, used by the discrete-event simulator's collectors.
#pragma once

#include <cstddef>

namespace btmf::math {

class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of the normal-approximation CI at z (1.96 -> 95%).
  [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Pools another accumulator into this one (Chan et al. merge).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, for Little's-law
/// population averages: feed (value, duration) segments.
class TimeAverage {
 public:
  void add(double value, double duration) noexcept;
  [[nodiscard]] double average() const noexcept;
  [[nodiscard]] double total_time() const noexcept { return total_time_; }

 private:
  double weighted_sum_ = 0.0;
  double total_time_ = 0.0;
};

}  // namespace btmf::math
