// Steady-state finder for autonomous ODE systems y' = f(y).
//
// Strategy: integrate the transient with the adaptive RK45 in growing time
// chunks until ||f(y)||, scaled by the state magnitude, falls below a
// plateau tolerance — then polish the point with damped Newton. Transient
// integration is globally convergent for the (stable) fluid-model
// equilibria; Newton tightens the residual to near machine precision and
// its success certifies the point really is a fixed point.
#pragma once

#include <cstddef>
#include <vector>

#include "btmf/math/newton.h"
#include "btmf/math/ode.h"

namespace btmf::math {

struct EquilibriumOptions {
  double residual_tol = 1e-9;   ///< target ||f(y)||_inf / (1 + ||y||_inf)
  double chunk_time = 500.0;    ///< first integration chunk length
  double chunk_growth = 1.5;    ///< geometric growth of chunk length
  std::size_t max_chunks = 40;
  AdaptiveOptions ode;          ///< tolerances for the transient solver
  bool polish_with_newton = true;
  bool clamp_nonnegative = true;  ///< populations cannot go negative
};

struct EquilibriumResult {
  std::vector<double> y;        ///< the steady state
  double residual_inf = 0.0;    ///< ||f(y)||_inf at the returned point
  double integrated_time = 0.0; ///< total transient time simulated
  std::size_t chunks = 0;
  bool newton_converged = false;
};

/// Finds y* with f(y*) ~ 0 starting from y0. Throws btmf::SolverError if
/// the scaled residual never reaches `residual_tol` within the chunk
/// budget (which for these models indicates an infeasible parameter set,
/// e.g. arrival rate exceeding service capacity).
EquilibriumResult find_equilibrium(const OdeRhs& rhs, std::vector<double> y0,
                                   const EquilibriumOptions& options = {});

}  // namespace btmf::math
