// Steady-state finder for autonomous ODE systems y' = f(y).
//
// Strategy: integrate the transient with the adaptive RK45 in growing time
// chunks until ||f(y)||, scaled by the state magnitude, falls below a
// plateau tolerance — then polish the point with damped Newton. Transient
// integration is globally convergent for the (stable) fluid-model
// equilibria; Newton tightens the residual to near machine precision and
// its success certifies the point really is a fixed point.
#pragma once

#include <cstddef>
#include <vector>

#include "btmf/math/newton.h"
#include "btmf/math/ode.h"

namespace btmf::math {

struct EquilibriumOptions {
  double residual_tol = 1e-9;   ///< target ||f(y)||_inf / (1 + ||y||_inf)
  double chunk_time = 500.0;    ///< first integration chunk length
  double chunk_growth = 1.5;    ///< geometric growth of chunk length
  std::size_t max_chunks = 40;
  AdaptiveOptions ode;          ///< tolerances for the transient solver
  bool polish_with_newton = true;
  bool clamp_nonnegative = true;  ///< populations cannot go negative

  /// Optional Chrome-trace writer (non-owning, null = inert): each
  /// escalation rung becomes an "equilibrium.rung" span and each Newton
  /// polish an "equilibrium.newton" span; also forwarded to the transient
  /// integrator (AdaptiveOptions::trace).
  obs::TraceWriter* trace = nullptr;
};

struct EquilibriumResult {
  std::vector<double> y;        ///< the steady state
  double residual_inf = 0.0;    ///< ||f(y)||_inf at the returned point
  double integrated_time = 0.0; ///< total transient time simulated
  std::size_t chunks = 0;
  /// Whether the accepted Newton polish certified the point. May be false
  /// on a *successful* solve when the transient alone met residual_tol
  /// (or polishing was disabled); the invariant callers can rely on is
  /// "find_equilibrium returned => residual_inf <= residual_tol", enforced
  /// by the SolverError below — never this flag alone.
  bool newton_converged = false;
};

/// Finds y* with f(y*) ~ 0 starting from y0.
///
/// Robustness ladder: the configured transient-plus-polish strategy runs
/// first; if the residual misses the tolerance, up to two escalation rungs
/// retry with additional transient chunks and a damped Newton allowed to
/// halve its step far below the default floor (the bisection fallback of
/// the line search). Throws btmf::SolverError — carrying the per-rung
/// iteration diagnostics — only after the whole ladder is exhausted, which
/// for these models indicates an infeasible parameter set (e.g. arrival
/// rate exceeding service capacity).
EquilibriumResult find_equilibrium(const OdeRhs& rhs, std::vector<double> y0,
                                   const EquilibriumOptions& options = {});

}  // namespace btmf::math
