// Explicit ODE integrators: fixed-step Euler / Heun / RK4 and the adaptive
// Dormand–Prince 5(4) pair with PI-free standard step control.
//
// The BitTorrent fluid models are non-stiff (relaxation rates ~ mu, gamma,
// both << 1 per time unit), so explicit methods with error control are the
// right tool; the adaptive integrator is what the equilibrium finder and
// all transient plots use, and the fixed-step methods exist mainly as
// cross-checks and for the order-of-accuracy tests.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "btmf/obs/trace.h"

namespace btmf::math {

/// Right-hand side f(t, y) -> dy/dt, written into `dydt` (same length as y).
using OdeRhs =
    std::function<void(double t, std::span<const double> y,
                       std::span<double> dydt)>;

/// Observer invoked after each accepted step with (t, y); may be empty.
using OdeObserver =
    std::function<void(double t, std::span<const double> y)>;

/// One explicit Euler step (order 1).
void euler_step(const OdeRhs& rhs, double t, double dt,
                std::span<const double> y, std::span<double> y_out);

/// One Heun (explicit trapezoid) step (order 2).
void heun_step(const OdeRhs& rhs, double t, double dt,
               std::span<const double> y, std::span<double> y_out);

/// One classical Runge–Kutta step (order 4).
void rk4_step(const OdeRhs& rhs, double t, double dt,
              std::span<const double> y, std::span<double> y_out);

enum class FixedStepMethod { kEuler, kHeun, kRk4 };

/// Integrates y' = f from t0 to t1 with constant step dt (the final step is
/// shortened to land exactly on t1). Returns y(t1).
std::vector<double> integrate_fixed(const OdeRhs& rhs,
                                    std::vector<double> y0, double t0,
                                    double t1, double dt,
                                    FixedStepMethod method,
                                    const OdeObserver& observer = {});

struct AdaptiveOptions {
  double rtol = 1e-8;          ///< relative tolerance
  double atol = 1e-10;         ///< absolute tolerance
  double initial_dt = 0.0;     ///< 0 = choose automatically
  double max_dt = 0.0;         ///< 0 = no cap
  std::size_t max_steps = 1'000'000;
  bool clamp_nonnegative = false;  ///< clip tiny negative populations

  /// Optional Chrome-trace writer (non-owning, null = inert): the whole
  /// integration becomes one "ode.integrate" span stamped with the
  /// accepted/rejected step counts. With trace_steps, every accepted step
  /// additionally emits an instant event — verbose, debugging only.
  obs::TraceWriter* trace = nullptr;
  bool trace_steps = false;
};

struct AdaptiveResult {
  std::vector<double> y;       ///< state at the final time
  double t = 0.0;              ///< final time reached (== t1 on success)
  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;
};

/// Dormand–Prince RK5(4) with embedded error estimate and standard
/// step-size control. Throws btmf::SolverError if the step size underflows
/// or the step budget is exhausted.
AdaptiveResult integrate_dopri5(const OdeRhs& rhs, std::vector<double> y0,
                                double t0, double t1,
                                const AdaptiveOptions& options = {},
                                const OdeObserver& observer = {});

}  // namespace btmf::math
