// Free-function vector kernels over std::vector<double> / std::span.
//
// The fluid-model state vectors are small (tens of entries), so a full
// linear-algebra expression library would be overkill; these kernels are
// the handful of BLAS-1 operations the integrators and Newton need.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "btmf/util/check.h"

namespace btmf::math {

using DVec = std::vector<double>;

/// y += a * x
inline void axpy(double a, std::span<const double> x, std::span<double> y) {
  BTMF_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

/// x *= a
inline void scale(double a, std::span<double> x) {
  for (double& v : x) v *= a;
}

inline double dot(std::span<const double> x, std::span<const double> y) {
  BTMF_ASSERT(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

inline double norm2(std::span<const double> x) {
  return std::sqrt(dot(x, x));
}

inline double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

/// Weighted RMS norm with per-component scale |err_i| / (atol + rtol*|y_i|),
/// the standard error measure for adaptive ODE step control (Hairer I.4).
inline double wrms_norm(std::span<const double> err, std::span<const double> y,
                        double atol, double rtol) {
  BTMF_ASSERT(err.size() == y.size());
  if (err.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < err.size(); ++i) {
    const double scale_i = atol + rtol * std::abs(y[i]);
    const double e = err[i] / scale_i;
    s += e * e;
  }
  return std::sqrt(s / static_cast<double>(err.size()));
}

/// True if every component is finite.
inline bool all_finite(std::span<const double> x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Componentwise max(x, 0) — used to clamp populations that dip a hair
/// below zero from integrator truncation error.
inline void clamp_nonnegative(std::span<double> x) {
  for (double& v : x) v = std::max(v, 0.0);
}

}  // namespace btmf::math
