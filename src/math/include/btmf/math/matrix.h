// Dense row-major matrix with LU decomposition (partial pivoting).
//
// Sized for the fluid-model Jacobians: K(K+1)/2 + K unknowns, i.e. 65 for
// the paper's K = 10 and a few hundred for the largest ablations — well
// within dense-LU territory.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace btmf::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x
  [[nodiscard]] std::vector<double> multiply(
      std::span<const double> x) const;

  /// C = A B
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  [[nodiscard]] Matrix transposed() const;

  /// Max absolute entry — cheap conditioning diagnostic.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU decomposition with partial pivoting; throws btmf::SolverError if the
/// matrix is numerically singular.
class LuDecomposition {
 public:
  explicit LuDecomposition(Matrix a);

  /// Solves A x = b.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Determinant of A (sign from the permutation parity).
  [[nodiscard]] double determinant() const;

  [[nodiscard]] std::size_t order() const { return lu_.rows(); }

 private:
  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int permutation_sign_ = 1;
};

}  // namespace btmf::math
