#include "btmf/model/backend.h"

#include "backends.h"
#include "btmf/util/error.h"

namespace btmf::model {

const char* to_string(OutcomeStatus status) {
  switch (status) {
    case OutcomeStatus::kOk:
      return "ok";
    case OutcomeStatus::kUnsupported:
      return "unsupported";
    case OutcomeStatus::kFailed:
      return "failed";
  }
  return "?";
}

std::optional<std::string> Backend::unsupported_reason(
    const ScenarioSpec& spec) const {
  const BackendCapabilities caps = capabilities();
  const std::string who(name());
  if (!caps.supports_scheme(spec.scheme)) {
    return who + " does not evaluate " +
           std::string(fluid::to_string(spec.scheme));
  }
  if (caps.max_files != 0 && spec.num_files > caps.max_files) {
    return who + " models at most " + std::to_string(caps.max_files) +
           " file(s) (got K = " + std::to_string(spec.num_files) + ")";
  }
  // Universal rule, independent of the backend: at p = 0 no peer requests
  // any file, so the CMFSD torrent does not exist even as a limit.
  if (spec.scheme == fluid::SchemeKind::kCmfsd && spec.correlation == 0.0) {
    return "CMFSD needs p > 0 (no peer requests any file at p=0)";
  }
  if (spec.correlation == 0.0 && !caps.zero_correlation) {
    return who + " needs p > 0 (its readout needs arrivals; only the "
                 "closed forms take the p = 0 limit analytically)";
  }
  if (!spec.rho_per_class.empty() && !caps.rho_per_class) {
    return who + " does not honour rho_per_class";
  }
  if (spec.chunk_policy != sim::PiecePolicy::kRarestFirst &&
      !caps.piece_policies) {
    return who + " does not model piece selection (chunk_policy = " +
           std::string(sim::to_string(spec.chunk_policy)) + ")";
  }
  if (spec.adapt.enabled && !caps.adapt) {
    return who + " does not model the Adapt controller";
  }
  if (spec.cheater_fraction > 0.0 && !caps.cheaters) {
    return who + " does not model cheaters";
  }
  if (spec.abort_rate > 0.0 && !caps.aborts) {
    return who + " does not model download aborts";
  }
  if (!spec.faults.empty() && !caps.faults) {
    return who + " does not replay fault plans";
  }
  if (!spec.arrival.homogeneous() && !caps.arrivals_time_varying) {
    return who + " assumes a stationary arrival rate (arrival = " +
           std::string(fluid::to_string(spec.arrival.kind)) + ")";
  }
  if (!spec.bandwidth_classes.empty() && !caps.bandwidth_classes) {
    return who + " does not model heterogeneous bandwidth classes";
  }
  // Typed, not silent: the fault layer cannot be decomposed per torrent
  // (churn bursts pick victims across every torrent; outages gate the
  // shared arrival path), so a faulted spec only runs on one shard. The
  // sharded kernel used to force this silently; callers now get a
  // kUnsupported diagnostic and choose shards = 1 themselves.
  if (!spec.faults.empty() && caps.faults && spec.shards > 1) {
    return who + " cannot shard a faulted run (fault plans are globally "
                 "coupled across torrents); use shards = 1";
  }
  return std::nullopt;
}

Outcome Backend::evaluate(const ScenarioSpec& spec) const {
  Outcome outcome;
  outcome.scheme = spec.scheme;
  outcome.correlation = spec.correlation;
  try {
    spec.validate();
  } catch (const Error& error) {
    outcome.status = OutcomeStatus::kFailed;
    outcome.error = error.what();
    return outcome;
  }
  if (const std::optional<std::string> reason = unsupported_reason(spec)) {
    outcome.status = OutcomeStatus::kUnsupported;
    outcome.error = *reason;
    return outcome;
  }
  try {
    return do_evaluate(spec);
  } catch (const Error& error) {
    outcome.status = OutcomeStatus::kFailed;
    outcome.error = error.what();
    return outcome;
  }
}

Outcome Backend::evaluate_or_throw(const ScenarioSpec& spec) const {
  spec.validate();
  if (const std::optional<std::string> reason = unsupported_reason(spec)) {
    throw ConfigError(*reason);
  }
  return do_evaluate(spec);
}

const std::vector<const Backend*>& backend_registry() {
  static const std::vector<const Backend*> registry{
      &detail::fluid_equilibrium_backend(),
      &detail::fluid_transient_backend(),
      &detail::kernel_sim_backend(),
      &detail::chunk_sim_backend(),
      &detail::stochastic_epidemic_backend(),
  };
  return registry;
}

const Backend* find_backend(std::string_view name) {
  for (const Backend* backend : backend_registry()) {
    if (backend->name() == name) return backend;
  }
  return nullptr;
}

const Backend& require_backend(std::string_view name) {
  if (const Backend* backend = find_backend(name)) return *backend;
  std::string known;
  for (const Backend* backend : backend_registry()) {
    if (!known.empty()) known += '|';
    known += std::string(backend->name());
  }
  throw ConfigError("unknown backend '" + std::string(name) +
                    "' (expected " + known + ")");
}

}  // namespace btmf::model
