// The two stochastic backends.
//
//  * kernel-sim — one replication of the policy-driven discrete-event
//    kernel (the only backend that honours Adapt, cheaters, abort clocks
//    and fault plans). Per-class metrics are the post-warm-up sample
//    means; system averages are the run's own arrival-weighted averages.
//  * chunk-sim — the chunk-level protocol substrate (docs/PROTOCOL.md).
//    At K = 1 it is a single torrent fed at the scenario's torrent
//    arrival rate lambda0 * p; at K > 1 it runs the spec's scheme on
//    true multi-file torrents (per-file piece bitmaps, the configured
//    piece-selection policy, per-arrival wanted sets) fed at the user
//    entry rate lambda0 * (1 - (1-p)^K). Either way it measures the
//    sharing efficiency eta as it emerges instead of assuming it.
#include <cmath>
#include <limits>
#include <utility>

#include "backends.h"
#include "btmf/sim/simulator.h"

namespace btmf::model {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Outcome outcome_for(const ScenarioSpec& spec) {
  Outcome outcome;
  outcome.scheme = spec.scheme;
  outcome.correlation = spec.correlation;
  outcome.rho =
      spec.scheme == fluid::SchemeKind::kCmfsd ? spec.rho : kNaN;
  outcome.class_entry_rates = spec.correlation_model().system_entry_rates();
  return outcome;
}

class KernelSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "kernel-sim";
  }

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.monte_carlo = true;
    caps.trajectory = true;
    caps.sim_counters = true;
    caps.adapt = true;
    caps.cheaters = true;
    caps.aborts = true;
    caps.faults = true;
    caps.arrivals_time_varying = true;  // thinned non-homogeneous arrivals
    caps.bandwidth_classes = true;      // per-(torrent, class) service lanes
    return caps;
  }

  [[nodiscard]] std::optional<std::string> unsupported_reason(
      const ScenarioSpec& spec) const override {
    if (auto reason = Backend::unsupported_reason(spec)) return reason;
    // The CMFSD kernel policy schedules its collaborative stages on a
    // homogeneous rate pool; it has no per-class service lanes yet.
    if (spec.scheme == fluid::SchemeKind::kCmfsd &&
        !spec.bandwidth_classes.empty()) {
      return "kernel-sim does not model bandwidth classes under CMFSD";
    }
    return std::nullopt;
  }

 protected:
  [[nodiscard]] Outcome do_evaluate(const ScenarioSpec& spec) const override {
    Outcome outcome = outcome_for(spec);
    sim::SimResult result = sim::run_simulation(sim_config_from_spec(spec));

    const unsigned k = spec.num_files;
    std::vector<double> online(k, kNaN), download(k, kNaN);
    for (unsigned i = 1; i <= k && i <= result.classes.size(); ++i) {
      const sim::PerClassResult& cls = result.classes[i - 1];
      if (cls.completed_users == 0) continue;  // class never sampled
      online[i - 1] = cls.mean_online_per_file * i;
      download[i - 1] = cls.mean_download_per_file * i;
    }
    outcome.per_class =
        fluid::make_per_class_metrics(std::move(online), std::move(download));

    // The run's own arrival-weighted averages (the paper's estimator),
    // not a re-weighting with the model rates.
    outcome.avg_online_per_file = result.avg_online_per_file;
    outcome.avg_download_per_file = result.avg_download_per_file;
    outcome.avg_online_per_user = result.avg_online_per_user;

    Trajectory trajectory;
    trajectory.time = result.population_time;
    const std::size_t samples = result.population_time.size();
    trajectory.downloaders.assign(samples, 0.0);
    trajectory.seeds.assign(samples, 0.0);
    for (const std::vector<double>& series : result.downloaders_trajectory) {
      for (std::size_t s = 0; s < samples && s < series.size(); ++s) {
        trajectory.downloaders[s] += series[s];
      }
    }
    for (const std::vector<double>& series : result.seeds_trajectory) {
      for (std::size_t s = 0; s < samples && s < series.size(); ++s) {
        trajectory.seeds[s] += series[s];
      }
    }
    outcome.trajectory = std::move(trajectory);
    outcome.sim = std::move(result);
    return outcome;
  }
};

class ChunkSimBackend final : public Backend {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "chunk-sim";
  }

  [[nodiscard]] BackendCapabilities capabilities() const override {
    BackendCapabilities caps;
    caps.monte_carlo = true;
    caps.max_files = 32;  // piece-bitmap width (file masks are uint32)
    caps.piece_policies = true;
    caps.arrivals_time_varying = true;  // per-slot lambda(t) thinning
    caps.bandwidth_classes = true;      // upload turns / receive tokens
    return caps;
  }

 protected:
  [[nodiscard]] Outcome do_evaluate(const ScenarioSpec& spec) const override {
    Outcome outcome = outcome_for(spec);

    sim::ChunkSimConfig config;
    config.num_chunks = spec.num_chunks;
    config.fluid = spec.fluid;
    config.horizon = spec.horizon;
    config.warmup = spec.warmup;
    config.seed = spec.seed;
    config.policy = spec.chunk_policy;
    config.suppression_prob = spec.chunk_suppression;
    config.arrival = spec.arrival;
    config.bandwidth_classes = spec.bandwidth_classes;

    if (spec.num_files == 1) {
      // A K = 1 scenario is a single torrent visited at rate lambda0 * p
      // under every scheme. This arm reproduces the pre-multi-file
      // backend bit for bit (docs/REPRODUCTION.md gates on it).
      config.entry_rate = spec.visit_rate * spec.correlation;
      const sim::ChunkSimResult result = sim::run_chunk_sim(config);

      // Seeds linger Exp(gamma) after completing, exactly as in the
      // fluid setup, so online time is the measured download + 1/gamma.
      const double download = result.mean_download_time;
      const double online = download + 1.0 / spec.fluid.gamma;
      outcome.per_class = fluid::make_per_class_metrics({online}, {download});
      outcome.avg_online_per_file = online;
      outcome.avg_download_per_file = download;
      outcome.avg_online_per_user = online;
      outcome.chunk = result;
      return outcome;
    }

    // K > 1: run the spec's scheme on the multi-file substrate. The
    // engine draws each arrival's wanted set from the correlation model
    // conditioned on wanting at least one file, so it is fed the rate of
    // users who enter at all.
    config.num_files = spec.num_files;
    config.correlation = spec.correlation;
    config.entry_rate =
        spec.visit_rate *
        (1.0 - std::pow(1.0 - spec.correlation, spec.num_files));
    config.scheme = spec.scheme;
    config.rho = spec.scheme == fluid::SchemeKind::kCmfsd ? spec.rho : 0.0;
    const sim::ChunkSimResult result = sim::run_chunk_sim(config);

    const unsigned k = spec.num_files;
    std::vector<double> online(k, kNaN), download(k, kNaN);
    for (unsigned i = 1; i <= k && i <= result.classes.size(); ++i) {
      const sim::ChunkClassResult& cls = result.classes[i - 1];
      if (cls.completed_users == 0) continue;  // class never sampled
      online[i - 1] = cls.mean_online_time;
      download[i - 1] = cls.mean_download_time;
    }
    outcome.per_class =
        fluid::make_per_class_metrics(std::move(online), std::move(download));
    outcome.avg_online_per_file = result.avg_online_per_file;
    outcome.avg_download_per_file = result.avg_download_per_file;
    outcome.avg_online_per_user = result.mean_online_time;
    outcome.chunk = result;
    return outcome;
  }
};

}  // namespace

namespace detail {

const Backend& kernel_sim_backend() {
  static const KernelSimBackend backend;
  return backend;
}

const Backend& chunk_sim_backend() {
  static const ChunkSimBackend backend;
  return backend;
}

}  // namespace detail

}  // namespace btmf::model
