// Internal: accessors for the backend singletons, one per implementation
// translation unit. Only backend.cpp (the registry) includes this.
#pragma once

#include "btmf/model/backend.h"

namespace btmf::model::detail {

const Backend& fluid_equilibrium_backend();
const Backend& fluid_transient_backend();
const Backend& kernel_sim_backend();
const Backend& chunk_sim_backend();
const Backend& stochastic_epidemic_backend();

}  // namespace btmf::model::detail
